//! Roofline kernel execution.

use crate::energy::GpuEnergyModel;
use crate::spec::MultiGpu;
use papi_types::{ArithmeticIntensity, Bytes, Energy, Flops, Time};
use serde::{Deserialize, Serialize};

/// The FLOP and byte counts of one kernel invocation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelProfile {
    /// Floating-point operations.
    pub flops: Flops,
    /// Off-chip bytes moved (weights + activations + results).
    pub bytes: Bytes,
    /// Activation bytes that must be all-reduced across the
    /// tensor-parallel group after the kernel.
    pub allreduce_bytes: Bytes,
}

impl KernelProfile {
    /// A kernel with no collective afterwards.
    pub fn new(flops: Flops, bytes: Bytes) -> Self {
        Self {
            flops,
            bytes,
            allreduce_bytes: Bytes::ZERO,
        }
    }

    /// Adds an all-reduce on `bytes` of output activations.
    pub fn with_allreduce(mut self, bytes: Bytes) -> Self {
        self.allreduce_bytes = bytes;
        self
    }

    /// Arithmetic intensity of the kernel.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    #[track_caller]
    pub fn arithmetic_intensity(&self) -> ArithmeticIntensity {
        assert!(!self.bytes.is_zero(), "kernel moves no bytes");
        self.flops / self.bytes
    }
}

/// Outcome of running a kernel on a (multi-)GPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuKernelResult {
    /// Total latency including collectives and the launch floor.
    pub time: Time,
    /// Time attributable to compute (the roofline's compute leg).
    pub compute_time: Time,
    /// Time attributable to memory traffic (the roofline's memory leg).
    pub memory_time: Time,
    /// All-reduce time.
    pub allreduce_time: Time,
    /// Total energy.
    pub energy: Energy,
    /// True when the memory leg dominated.
    pub memory_bound: bool,
}

/// Executes `kernel` on `gpus` (work split evenly across the group) with
/// `energy_model` for the energy account.
pub fn execute_kernel(
    gpus: &MultiGpu,
    energy_model: &GpuEnergyModel,
    kernel: &KernelProfile,
) -> GpuKernelResult {
    let n = gpus.count as f64;
    let compute_time = Time::new(
        kernel.flops.value() / n / (gpus.gpu.peak_flops.value() * gpus.gpu.compute_efficiency),
    );
    let memory_time = Time::new(
        kernel.bytes.value() / n / (gpus.gpu.mem_bandwidth.value() * gpus.gpu.memory_efficiency),
    );
    let allreduce_time = gpus.allreduce_time(kernel.allreduce_bytes);
    let roofline = compute_time.max(memory_time);
    let time = roofline.max(gpus.gpu.kernel_floor) + allreduce_time;
    let energy = energy_model.kernel_energy(gpus, kernel, time);
    GpuKernelResult {
        time,
        compute_time,
        memory_time,
        allreduce_time,
        energy,
        memory_bound: memory_time.value() >= compute_time.value(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use papi_types::{Bytes, Flops};

    fn dgx() -> MultiGpu {
        MultiGpu::dgx6_a100()
    }

    fn em() -> GpuEnergyModel {
        GpuEnergyModel::a100()
    }

    /// An FC kernel at batch 16 on LLaMA-65B-ish sizes: memory-bound on
    /// the GPU (AI = 16 << knee 161).
    #[test]
    fn low_batch_fc_is_memory_bound() {
        let weights = Bytes::from_gib(120.0);
        let kernel = KernelProfile::new(Flops::from_tflops(2.0), weights);
        let r = execute_kernel(&dgx(), &em(), &kernel);
        assert!(r.memory_bound);
        // 120 GiB over 6 × 1935 GB/s × 0.85 ≈ 13 ms.
        assert!(r.time.as_millis() > 10.0 && r.time.as_millis() < 16.0);
    }

    #[test]
    fn high_ai_kernel_is_compute_bound() {
        let kernel = KernelProfile::new(Flops::from_tflops(500.0), Bytes::from_gib(1.0));
        let r = execute_kernel(&dgx(), &em(), &kernel);
        assert!(!r.memory_bound);
        assert!(r.compute_time.value() > r.memory_time.value());
    }

    #[test]
    fn kernel_floor_applies_to_tiny_kernels() {
        let kernel = KernelProfile::new(Flops::new(1e6), Bytes::from_kib(64.0));
        let r = execute_kernel(&dgx(), &em(), &kernel);
        assert!((r.time.value() - dgx().gpu.kernel_floor.value()).abs() < 1e-12);
    }

    #[test]
    fn allreduce_adds_to_latency() {
        let base = KernelProfile::new(Flops::from_tflops(2.0), Bytes::from_gib(100.0));
        let with = base.with_allreduce(Bytes::from_mib(64.0));
        let r0 = execute_kernel(&dgx(), &em(), &base);
        let r1 = execute_kernel(&dgx(), &em(), &with);
        assert!(r1.time.value() > r0.time.value());
        assert_eq!(
            r1.allreduce_time,
            dgx().allreduce_time(Bytes::from_mib(64.0))
        );
    }

    #[test]
    fn memory_bound_latency_flat_in_flops() {
        // The motivation-figure effect: below the knee, adding FLOPs
        // (more tokens re-using the same weights) costs nothing.
        let bytes = Bytes::from_gib(100.0);
        let a = execute_kernel(
            &dgx(),
            &em(),
            &KernelProfile::new(Flops::from_tflops(1.0), bytes),
        );
        let b = execute_kernel(
            &dgx(),
            &em(),
            &KernelProfile::new(Flops::from_tflops(8.0), bytes),
        );
        assert!((a.time.value() - b.time.value()).abs() < 1e-9);
    }

    #[test]
    fn arithmetic_intensity_accessor() {
        let k = KernelProfile::new(Flops::new(100.0), Bytes::new(50.0));
        assert!((k.arithmetic_intensity().value() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no bytes")]
    fn zero_byte_kernel_ai_panics() {
        let k = KernelProfile::new(Flops::new(100.0), Bytes::ZERO);
        let _ = k.arithmetic_intensity();
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Roofline latency is monotone in both FLOPs and bytes.
            #[test]
            fn latency_monotone(f1 in 1e9..1e15f64, f2 in 1e9..1e15f64, b in 1e6..1e12f64) {
                let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
                let r_lo = execute_kernel(&dgx(), &em(), &KernelProfile::new(Flops::new(lo), Bytes::new(b)));
                let r_hi = execute_kernel(&dgx(), &em(), &KernelProfile::new(Flops::new(hi), Bytes::new(b)));
                prop_assert!(r_lo.time.value() <= r_hi.time.value() + 1e-15);
            }

            /// The roofline legs bound total time from below (up to the
            /// launch floor) and the max leg plus collectives from above.
            #[test]
            fn roofline_brackets_latency(f in 1e9..1e15f64, b in 1e6..1e12f64) {
                let r = execute_kernel(&dgx(), &em(), &KernelProfile::new(Flops::new(f), Bytes::new(b)));
                let leg = r.compute_time.max(r.memory_time);
                prop_assert!(r.time.value() + 1e-15 >= leg.value());
                let upper = leg.max(dgx().gpu.kernel_floor) + r.allreduce_time;
                prop_assert!(r.time.value() <= upper.value() + 1e-15);
            }

            /// The memory-bound flag agrees with the arithmetic
            /// intensity against the knee (efficiency-adjusted).
            #[test]
            fn boundedness_consistent_with_knee(f in 1e9..1e15f64, b in 1e6..1e12f64) {
                let gpus = dgx();
                let r = execute_kernel(&gpus, &em(), &KernelProfile::new(Flops::new(f), Bytes::new(b)));
                let eff_knee = gpus.gpu.roofline_knee().value()
                    * gpus.gpu.compute_efficiency / gpus.gpu.memory_efficiency;
                let ai = f / b;
                if ai < eff_knee * 0.999 {
                    prop_assert!(r.memory_bound);
                } else if ai > eff_knee * 1.001 {
                    prop_assert!(!r.memory_bound);
                }
            }
        }
    }
}
