//! `papi-gpu` — a roofline model of computation-centric accelerators.
//!
//! The PAPI paper evaluates its GPU side (NVIDIA A100, and the 6-GPU
//! DGX-style node) at roofline granularity: a kernel with `F` FLOPs and
//! `B` bytes of traffic takes `max(F / peak_flops, B / peak_bandwidth)`
//! adjusted by empirical efficiency factors. That is exactly the model
//! here, plus:
//!
//! - multi-GPU tensor parallelism with an all-reduce cost on the
//!   activation volume,
//! - a kernel-launch floor (small kernels cannot beat a few
//!   microseconds),
//! - an energy model (pJ/FLOP for the tensor cores, pJ/byte for the
//!   off-chip hierarchy, plus base board power) calibrated so the
//!   paper's end-to-end energy-efficiency ratios hold.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod energy;
mod exec;
mod spec;

pub use energy::GpuEnergyModel;
pub use exec::{execute_kernel, GpuKernelResult, KernelProfile};
pub use spec::{GpuSpec, MultiGpu};
