//! GPU hardware specifications.

use papi_types::{ArithmeticIntensity, Bandwidth, Bytes, FlopsRate, Power, Time};
use serde::{Deserialize, Serialize};

/// One computation-centric accelerator (GPU/TPU/NPU-class).
///
/// # Example
///
/// ```
/// use papi_gpu::GpuSpec;
///
/// let a100 = GpuSpec::a100();
/// // The roofline knee: 312 TFLOPS / 1935 GB/s ≈ 161 FLOPs/byte.
/// assert!((a100.roofline_knee().value() - 161.2).abs() < 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Device name.
    pub name: String,
    /// Peak FP16 tensor throughput.
    pub peak_flops: FlopsRate,
    /// Peak HBM bandwidth.
    pub mem_bandwidth: Bandwidth,
    /// On-board memory capacity.
    pub memory: Bytes,
    /// Fraction of peak FLOPs a well-tuned GEMM reaches.
    pub compute_efficiency: f64,
    /// Fraction of peak bandwidth a streaming kernel reaches.
    pub memory_efficiency: f64,
    /// Minimum latency of any kernel (launch + sync overhead).
    pub kernel_floor: Time,
    /// Base board power while executing (beyond per-op energy).
    pub base_power: Power,
}

impl GpuSpec {
    /// NVIDIA A100 80 GB (SXM): 312 TFLOPS FP16 tensor, 1935 GB/s HBM2e.
    pub fn a100() -> Self {
        Self {
            name: "A100-80GB".to_owned(),
            peak_flops: FlopsRate::from_tflops(312.0),
            mem_bandwidth: Bandwidth::from_gb_per_sec(1935.0),
            memory: Bytes::from_gib(80.0),
            compute_efficiency: 0.70,
            memory_efficiency: 0.85,
            kernel_floor: Time::from_micros(5.0),
            // Sustained board draw during inference beyond the per-op
            // dynamic energy (SMs, scheduler, HBM PHY standby): the gap
            // between PIM's near-bank execution and an active GPU that
            // the paper's Fig. 8(b) energy results rest on.
            base_power: Power::from_watts(250.0),
        }
    }

    /// The A100 variant used inside PAPI: one of the five HBM stacks is
    /// the 12 GB FC-PIM die, so the processor sees 60 GB of plain memory
    /// (paper §7.1).
    pub fn a100_papi_60gb() -> Self {
        Self {
            name: "A100-PAPI-60GB".to_owned(),
            memory: Bytes::from_gib(60.0),
            ..Self::a100()
        }
    }

    /// The arithmetic intensity at which this device transitions from
    /// memory-bound to compute-bound (FLOPs/byte).
    pub fn roofline_knee(&self) -> ArithmeticIntensity {
        self.peak_flops / self.mem_bandwidth
    }

    /// Attainable FLOPs rate at arithmetic intensity `ai` (the classic
    /// roofline: `min(peak, ai × bandwidth)`), before efficiency factors.
    pub fn attainable_flops(&self, ai: ArithmeticIntensity) -> FlopsRate {
        FlopsRate::new(
            self.peak_flops
                .value()
                .min(ai.value() * self.mem_bandwidth.value()),
        )
    }
}

/// A tensor-parallel group of identical GPUs (the paper's 6×A100 node).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiGpu {
    /// The member device.
    pub gpu: GpuSpec,
    /// Number of devices working on each kernel.
    pub count: usize,
    /// Per-direction bandwidth of the all-reduce fabric (NVLink).
    pub allreduce_bandwidth: Bandwidth,
    /// Latency of one collective.
    pub allreduce_latency: Time,
}

impl MultiGpu {
    /// Six A100s over NVLink — the paper's GPU baseline complement.
    pub fn dgx6_a100() -> Self {
        Self {
            gpu: GpuSpec::a100(),
            count: 6,
            allreduce_bandwidth: Bandwidth::from_gb_per_sec(300.0),
            allreduce_latency: Time::from_micros(4.0),
        }
    }

    /// Aggregate peak FLOPs.
    pub fn peak_flops(&self) -> FlopsRate {
        FlopsRate::new(self.gpu.peak_flops.value() * self.count as f64)
    }

    /// Aggregate memory bandwidth.
    pub fn mem_bandwidth(&self) -> Bandwidth {
        self.gpu.mem_bandwidth * self.count as f64
    }

    /// Aggregate memory capacity.
    pub fn memory(&self) -> Bytes {
        self.gpu.memory * self.count as f64
    }

    /// Ring all-reduce time for `bytes` of activations: `2 (n-1)/n ×
    /// bytes / bandwidth` plus the collective latency. Zero for a single
    /// GPU.
    pub fn allreduce_time(&self, bytes: Bytes) -> Time {
        if self.count <= 1 || bytes.is_zero() {
            return Time::ZERO;
        }
        let volume = 2.0 * (self.count as f64 - 1.0) / self.count as f64 * bytes.value();
        self.allreduce_latency + Time::new(volume / self.allreduce_bandwidth.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_knee_matches_paper_numbers() {
        let knee = GpuSpec::a100().roofline_knee();
        assert!((knee.value() - 161.24).abs() < 0.1);
    }

    #[test]
    fn attainable_flops_is_rooflike() {
        let a100 = GpuSpec::a100();
        let low = a100.attainable_flops(ArithmeticIntensity::new(1.0));
        assert!((low.value() - 1935e9).abs() < 1e6);
        let high = a100.attainable_flops(ArithmeticIntensity::new(1000.0));
        assert_eq!(high.value(), a100.peak_flops.value());
    }

    #[test]
    fn papi_variant_has_60gb() {
        assert!((GpuSpec::a100_papi_60gb().memory.as_gib() - 60.0).abs() < 1e-9);
        assert_eq!(
            GpuSpec::a100_papi_60gb().peak_flops,
            GpuSpec::a100().peak_flops
        );
    }

    #[test]
    fn dgx_aggregates() {
        let dgx = MultiGpu::dgx6_a100();
        assert!((dgx.peak_flops().as_tflops() - 6.0 * 312.0).abs() < 1e-6);
        assert!((dgx.mem_bandwidth().as_gb_per_sec() - 6.0 * 1935.0).abs() < 1e-6);
        assert!((dgx.memory().as_gib() - 480.0).abs() < 1e-9);
    }

    #[test]
    fn allreduce_zero_for_single_gpu() {
        let mut solo = MultiGpu::dgx6_a100();
        solo.count = 1;
        assert_eq!(solo.allreduce_time(Bytes::from_mib(10.0)), Time::ZERO);
    }

    #[test]
    fn allreduce_grows_with_bytes() {
        let dgx = MultiGpu::dgx6_a100();
        let small = dgx.allreduce_time(Bytes::from_mib(1.0));
        let large = dgx.allreduce_time(Bytes::from_mib(100.0));
        assert!(large.value() > small.value());
        assert!(small.value() >= dgx.allreduce_latency.value());
    }
}
