//! GPU energy model.
//!
//! A GPU pays for data the way PIM never does: every byte crosses the
//! DRAM array, the HBM PHY, and the on-chip cache/register hierarchy
//! before a tensor core touches it. The per-byte constant here (~126
//! pJ/B ≈ 15.7 pJ/bit) is roughly 2× the near-bank PIM access energy —
//! the gap the paper's Fig. 8(b) energy-efficiency results ride on.

use crate::exec::KernelProfile;
use crate::spec::MultiGpu;
use papi_types::{Energy, Time};
use serde::{Deserialize, Serialize};

/// Per-operation energy constants for a GPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuEnergyModel {
    /// Energy per FLOP on the tensor cores, in picojoules.
    pub pj_per_flop: f64,
    /// Energy per off-chip byte (DRAM + PHY + on-chip hierarchy), in
    /// picojoules.
    pub pj_per_byte: f64,
    /// Energy per byte crossing the all-reduce fabric, in picojoules.
    pub pj_per_allreduce_byte: f64,
}

impl GpuEnergyModel {
    /// A100-class constants.
    pub fn a100() -> Self {
        Self {
            pj_per_flop: 1.3,
            pj_per_byte: 126.0,
            pj_per_allreduce_byte: 80.0,
        }
    }

    /// Energy of one kernel run of duration `time` on `gpus`.
    ///
    /// Includes dynamic compute + memory energy, collective traffic, and
    /// the base board power of every active GPU for the duration. Idle
    /// accelerators are assumed power-gated (documented substitution —
    /// the paper's energy accounting likewise charges only active units).
    pub fn kernel_energy(&self, gpus: &MultiGpu, kernel: &KernelProfile, time: Time) -> Energy {
        let dynamic = Energy::from_picojoules(
            kernel.flops.value() * self.pj_per_flop
                + kernel.bytes.value() * self.pj_per_byte
                + kernel.allreduce_bytes.value()
                    * self.pj_per_allreduce_byte
                    * 2.0
                    * (gpus.count.saturating_sub(1)) as f64,
        );
        let base = gpus.gpu.base_power * time * gpus.count as f64;
        dynamic + base
    }
}

impl Default for GpuEnergyModel {
    fn default() -> Self {
        Self::a100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use papi_types::{Bytes, Flops};

    #[test]
    fn memory_energy_dominates_dynamic_energy_of_low_ai_kernels() {
        let m = GpuEnergyModel::a100();
        let gpus = MultiGpu::dgx6_a100();
        // Memory-bound FC: 100 GiB of weights, 2 TFLOP.
        let kernel = KernelProfile::new(Flops::from_tflops(2.0), Bytes::from_gib(100.0));
        let e = m.kernel_energy(&gpus, &kernel, Time::from_millis(11.0));
        let mem_only = Energy::from_picojoules(kernel.bytes.value() * m.pj_per_byte);
        let compute_only = Energy::from_picojoules(kernel.flops.value() * m.pj_per_flop);
        // Memory movement dwarfs compute and is a large share of the
        // total (base board power takes the rest).
        assert!(mem_only.value() > 4.0 * compute_only.value());
        assert!(mem_only.value() / e.value() > 0.3);
    }

    #[test]
    fn base_power_scales_with_time_and_count() {
        let m = GpuEnergyModel::a100();
        let gpus = MultiGpu::dgx6_a100();
        let kernel = KernelProfile::new(Flops::new(0.0), Bytes::new(1.0));
        let e1 = m.kernel_energy(&gpus, &kernel, Time::from_millis(1.0));
        let e2 = m.kernel_energy(&gpus, &kernel, Time::from_millis(2.0));
        assert!((e2.value() - 2.0 * e1.value()).abs() / e1.value() < 1e-6);
    }

    #[test]
    fn allreduce_energy_zero_for_single_gpu() {
        let m = GpuEnergyModel::a100();
        let mut solo = MultiGpu::dgx6_a100();
        solo.count = 1;
        let with = KernelProfile::new(Flops::new(1.0), Bytes::new(1.0))
            .with_allreduce(Bytes::from_mib(100.0));
        let without = KernelProfile::new(Flops::new(1.0), Bytes::new(1.0));
        let t = Time::from_micros(10.0);
        assert_eq!(
            m.kernel_energy(&solo, &with, t),
            m.kernel_energy(&solo, &without, t)
        );
    }

    #[test]
    fn gpu_byte_energy_exceeds_pim_access_energy() {
        // The premise of the paper's energy results: off-chip movement on
        // the GPU costs ~2× the near-bank PIM access (≈62 pJ/B).
        let m = GpuEnergyModel::a100();
        assert!(m.pj_per_byte > 1.8 * 62.15);
        assert!(m.pj_per_byte < 3.0 * 62.15);
    }
}
