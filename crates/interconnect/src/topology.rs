//! The PAPI system's interconnect topology (paper Fig. 5(a)).

use crate::link::LinkSpec;
use papi_types::{Bytes, Energy, Time};
use serde::{Deserialize, Serialize};

/// A class of traffic in the PAPI system.
///
/// The first three classes are *intra-node* (paper Fig. 5(a)); the last
/// two are *cluster-scope* — they cross the inter-node fabric of a
/// [`ClusterTopology`](crate::ClusterTopology) and only exist once a
/// model is sharded tensor-parallel across nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Route {
    /// Processing units ↔ FC-PIM devices (weight/activation volume).
    PuToFcPim,
    /// Host or PUs ↔ disaggregated Attn-PIM devices (Q vectors, scores).
    PuToAttnPim,
    /// Host CPU ↔ processing units (commands, scheduling).
    HostToPu,
    /// Per-layer activation all-reduce among the nodes of one
    /// tensor-parallel group.
    TpAllReduce,
    /// KV-cache blocks scattered to the tensor-parallel shard that owns
    /// them (prefill write-out, request migration).
    KvShard,
    /// A finished prefill's whole KV cache handed from a prefill-role
    /// replica to a decode-role replica of a disaggregated fleet (bulk
    /// one-shot transfer, priced by
    /// [`MigrationPricing`](crate::MigrationPricing)).
    KvMigrate,
    /// A spilled prefix re-materialized from the replica that owns its
    /// fleet-wide `GlobalKvTier` record onto the replica serving the
    /// re-landed request (read-only copy-out over the inter-node
    /// fabric, priced by [`TierPricing`](crate::TierPricing) composed
    /// with the cluster's fabric [`LinkSpec`]).
    KvFetch,
}

impl Route {
    /// Whether this traffic crosses the inter-node fabric (and so needs
    /// a [`ClusterTopology`](crate::ClusterTopology), not a single-node
    /// [`SystemTopology`]).
    pub fn is_cluster_scope(&self) -> bool {
        matches!(
            self,
            Route::TpAllReduce | Route::KvShard | Route::KvMigrate | Route::KvFetch
        )
    }
}

/// Error returned when a topology cannot host the requested device
/// counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologyError {
    message: String,
}

impl TopologyError {
    /// An error describing why a topology (or fleet shape built on
    /// one) cannot be hosted.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl core::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invalid topology: {}", self.message)
    }
}

impl std::error::Error for TopologyError {}

/// Which link serves each route, plus attached device counts.
///
/// # Example
///
/// ```
/// use papi_interconnect::{Route, SystemTopology};
/// use papi_types::Bytes;
///
/// let topo = SystemTopology::papi_default(30, 60).unwrap();
/// let q = topo.transfer_time(Route::PuToAttnPim, Bytes::from_kib(256.0));
/// assert!(q.as_micros() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemTopology {
    fc_pim_link: LinkSpec,
    attn_pim_link: LinkSpec,
    host_link: LinkSpec,
    fc_pim_devices: usize,
    attn_pim_devices: usize,
}

impl SystemTopology {
    /// The paper's default wiring: NVLink to FC-PIM, CXL to the
    /// disaggregated Attn-PIM pool, PCIe to the host.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] if a device pool exceeds its fabric's
    /// fan-out (e.g. more than 4096 CXL devices).
    pub fn papi_default(
        fc_pim_devices: usize,
        attn_pim_devices: usize,
    ) -> Result<Self, TopologyError> {
        Self::new(
            LinkSpec::nvlink(),
            LinkSpec::cxl(),
            LinkSpec::pcie_gen5_x16(),
            fc_pim_devices,
            attn_pim_devices,
        )
    }

    /// Builds a topology with explicit links.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] if a device pool exceeds its fabric's
    /// fan-out. The FC-PIM pool is allowed to span multiple NVLink
    /// domains (one per GPU), so it is checked per 5-device group.
    pub fn new(
        fc_pim_link: LinkSpec,
        attn_pim_link: LinkSpec,
        host_link: LinkSpec,
        fc_pim_devices: usize,
        attn_pim_devices: usize,
    ) -> Result<Self, TopologyError> {
        if !attn_pim_link.supports_devices(attn_pim_devices) {
            return Err(TopologyError {
                message: format!(
                    "{} Attn-PIM devices exceed {}'s fan-out of {}",
                    attn_pim_devices, attn_pim_link.name, attn_pim_link.max_devices
                ),
            });
        }
        // FC-PIM stacks sit on GPU packages, 5 per GPU: per-domain count
        // is small; only reject absurd configurations.
        if fc_pim_devices > fc_pim_link.max_devices * 16 {
            return Err(TopologyError {
                message: format!(
                    "{fc_pim_devices} FC-PIM devices cannot be reached over {}",
                    fc_pim_link.name
                ),
            });
        }
        Ok(Self {
            fc_pim_link,
            attn_pim_link,
            host_link,
            fc_pim_devices,
            attn_pim_devices,
        })
    }

    /// The pooled view of `nodes` identical nodes driven as one logical
    /// system (a tensor-parallel group): every route's bandwidth scales
    /// by the node count — each node owns its own copy of the links, and
    /// the group's traffic splits across them — while per-message
    /// latency is unchanged. Device counts scale the same way.
    /// `nodes == 1` is the identity.
    pub fn aggregated(mut self, nodes: usize) -> Self {
        let factor = nodes as f64;
        for link in [
            &mut self.fc_pim_link,
            &mut self.attn_pim_link,
            &mut self.host_link,
        ] {
            link.bandwidth = link.bandwidth * factor;
        }
        self.fc_pim_devices *= nodes;
        self.attn_pim_devices *= nodes;
        self
    }

    /// The link serving `route`.
    ///
    /// # Panics
    ///
    /// Panics on a [cluster-scope](Route::is_cluster_scope) route: a
    /// single node has no inter-node fabric — wire one with
    /// [`ClusterTopology`](crate::ClusterTopology).
    #[track_caller]
    pub fn link(&self, route: Route) -> &LinkSpec {
        match route {
            Route::PuToFcPim => &self.fc_pim_link,
            Route::PuToAttnPim => &self.attn_pim_link,
            Route::HostToPu => &self.host_link,
            Route::TpAllReduce | Route::KvShard | Route::KvMigrate | Route::KvFetch => {
                panic!("{route:?} is cluster-scope traffic; a single-node SystemTopology has no inter-node fabric")
            }
        }
    }

    /// Devices attached on `route` (0 for the host route).
    ///
    /// # Panics
    ///
    /// Panics on a [cluster-scope](Route::is_cluster_scope) route.
    #[track_caller]
    pub fn devices(&self, route: Route) -> usize {
        match route {
            Route::PuToFcPim => self.fc_pim_devices,
            Route::PuToAttnPim => self.attn_pim_devices,
            Route::HostToPu => 0,
            Route::TpAllReduce | Route::KvShard | Route::KvMigrate | Route::KvFetch => {
                panic!("{route:?} is cluster-scope traffic; a single-node SystemTopology has no inter-node fabric")
            }
        }
    }

    /// Time to move `bytes` over `route` in one message.
    pub fn transfer_time(&self, route: Route, bytes: Bytes) -> Time {
        self.link(route).transfer_time(bytes)
    }

    /// Energy to move `bytes` over `route`.
    pub fn transfer_energy(&self, route: Route, bytes: Bytes) -> Energy {
        self.link(route).transfer_energy(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_is_valid() {
        let t = SystemTopology::papi_default(30, 60).unwrap();
        assert_eq!(t.devices(Route::PuToFcPim), 30);
        assert_eq!(t.devices(Route::PuToAttnPim), 60);
        assert_eq!(t.link(Route::PuToFcPim).name, "NVLink");
        assert_eq!(t.link(Route::PuToAttnPim).name, "CXL");
    }

    #[test]
    fn pcie_attn_pool_fan_out_enforced() {
        let r = SystemTopology::new(
            LinkSpec::nvlink(),
            LinkSpec::pcie_gen5_x16(),
            LinkSpec::pcie_gen5_x16(),
            30,
            60, // over PCIe's 32-device limit
        );
        assert!(r.is_err());
        assert!(r.unwrap_err().to_string().contains("fan-out"));
    }

    #[test]
    fn cxl_scales_to_large_pools() {
        assert!(SystemTopology::papi_default(30, 4096).is_ok());
        assert!(SystemTopology::papi_default(30, 4097).is_err());
    }

    #[test]
    fn aggregation_scales_bandwidth_and_devices_not_latency() {
        let one = SystemTopology::papi_default(30, 60).unwrap();
        let four = one.clone().aggregated(4);
        assert_eq!(one.clone().aggregated(1), one);
        for route in [Route::PuToFcPim, Route::PuToAttnPim, Route::HostToPu] {
            assert_eq!(
                four.link(route).bandwidth.value(),
                4.0 * one.link(route).bandwidth.value()
            );
            assert_eq!(four.link(route).latency, one.link(route).latency);
        }
        assert_eq!(four.devices(Route::PuToFcPim), 120);
        assert_eq!(four.devices(Route::PuToAttnPim), 240);
        // Bulk transfers speed up; tiny ones stay latency-floored.
        let bulk = Bytes::from_mib(256.0);
        assert!(
            four.transfer_time(Route::PuToFcPim, bulk).value()
                < one.transfer_time(Route::PuToFcPim, bulk).value()
        );
    }

    #[test]
    fn route_scope_classification() {
        assert!(!Route::PuToFcPim.is_cluster_scope());
        assert!(!Route::HostToPu.is_cluster_scope());
        assert!(Route::TpAllReduce.is_cluster_scope());
        assert!(Route::KvShard.is_cluster_scope());
        assert!(Route::KvFetch.is_cluster_scope());
    }

    #[test]
    #[should_panic(expected = "cluster-scope")]
    fn single_node_topology_rejects_cluster_routes() {
        let t = SystemTopology::papi_default(30, 60).unwrap();
        let _ = t.link(Route::TpAllReduce);
    }

    #[test]
    fn weight_route_is_fastest_for_bulk() {
        let t = SystemTopology::papi_default(30, 60).unwrap();
        let bulk = Bytes::from_mib(256.0);
        let over_nvlink = t.transfer_time(Route::PuToFcPim, bulk);
        let over_cxl = t.transfer_time(Route::PuToAttnPim, bulk);
        assert!(over_nvlink.value() < over_cxl.value());
    }
}
