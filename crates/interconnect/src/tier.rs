//! Pricing for KV capacity-tier traffic: spilling cold prefix blocks
//! out of the attention pool and fetching them back on reuse.
//!
//! L3 (DIMM-PIM) and PIM-AI both put a *capacity tier* below the
//! attention pool's DRAM: host DIMMs that hold KV state the hot pool
//! cannot, reached over a memory-class link rather than an inter-node
//! fabric. [`TierPricing`] is the declarative knob for what crossing
//! that boundary costs — the tier-side twin of
//! [`MigrationPricing`](crate::MigrationPricing), but node-local: there
//! is no fleet fabric to ride, so the default is a DDR5 DIMM-class
//! link and the alternatives are an explicit [`LinkSpec`] (CXL-attached
//! memory, a PCIe staging path) or `Free` (the ablation knob equality
//! pins build on).
//!
//! Only *fetches* are priced. A spill replaces an eviction that would
//! have discarded the blocks outright, and the write-back happens off
//! the serving critical path; a fetch sits squarely on it — its latency
//! lands in the admitted request's TTFT.

use crate::link::LinkSpec;
use papi_types::{Bytes, Energy, Time};
use serde::{Deserialize, Serialize};

/// The priced cost of moving one prefix across the tier boundary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TierCost {
    /// Payload moved: `kv_blocks × block_bytes`.
    pub bytes: Bytes,
    /// One-shot transfer latency (a fetch serializes this into the
    /// admitted request's prefill path).
    pub time: Time,
    /// Wire/DRAM energy of the transfer.
    pub energy: Energy,
}

impl TierCost {
    /// A zero-cost crossing (the `Free` pricing, or an empty payload).
    pub const ZERO: TierCost = TierCost {
        bytes: Bytes::ZERO,
        time: Time::ZERO,
        energy: Energy::ZERO,
    };
}

/// Which link KV tier traffic crosses.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub enum TierPricing {
    /// A host-DRAM DIMM channel ([`LinkSpec::ddr5_dimm`]) — the L3-style
    /// default: the capacity tier is ordinary (or DIMM-PIM) host memory
    /// on the processor's own DDR interface.
    #[default]
    HostDimm,
    /// An explicit link — e.g. [`LinkSpec::cxl`] for a CXL memory
    /// expander, or a PCIe staging path.
    Link(LinkSpec),
    /// Crossing the tier is free: zero latency, zero energy. The
    /// ablation knob for isolating capacity effects from transfer cost.
    Free,
}

impl TierPricing {
    /// The link this pricing crosses, if any.
    fn link(&self) -> Option<LinkSpec> {
        match self {
            TierPricing::HostDimm => Some(LinkSpec::ddr5_dimm()),
            TierPricing::Link(link) => Some(link.clone()),
            TierPricing::Free => None,
        }
    }

    /// Prices moving `kv_blocks` blocks of `block_bytes` each across
    /// the tier boundary (one direction — a fetch or a spill).
    pub fn cost(&self, kv_blocks: u64, block_bytes: Bytes) -> TierCost {
        let Some(link) = self.link() else {
            return TierCost::ZERO;
        };
        let bytes = block_bytes * kv_blocks as f64;
        if bytes.is_zero() {
            return TierCost::ZERO;
        }
        TierCost {
            bytes,
            time: link.transfer_time(bytes),
            energy: link.transfer_energy(bytes),
        }
    }

    /// Display label for reports and sweeps.
    pub fn label(&self) -> String {
        match self {
            TierPricing::HostDimm => "host-dimm".to_owned(),
            TierPricing::Link(link) => link.name.clone(),
            TierPricing::Free => "free".to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block_bytes() -> Bytes {
        // 16-token blocks at ~2.5 MiB/token of KV.
        Bytes::from_mib(40.0)
    }

    #[test]
    fn default_pricing_rides_the_dimm_channel() {
        let dimm = LinkSpec::ddr5_dimm();
        let cost = TierPricing::default().cost(8, block_bytes());
        let payload = block_bytes() * 8.0;
        assert_eq!(cost.bytes, payload);
        assert_eq!(cost.time, dimm.transfer_time(payload));
        assert_eq!(cost.energy, dimm.transfer_energy(payload));
    }

    #[test]
    fn explicit_link_overrides_the_dimm_default() {
        let cxl = LinkSpec::cxl();
        let over_cxl = TierPricing::Link(cxl.clone()).cost(4, block_bytes());
        assert_eq!(over_cxl.time, cxl.transfer_time(block_bytes() * 4.0));
        assert_ne!(
            over_cxl.time,
            TierPricing::HostDimm.cost(4, block_bytes()).time
        );
    }

    #[test]
    fn free_and_empty_crossings_cost_nothing() {
        assert_eq!(TierPricing::Free.cost(1_000, block_bytes()), TierCost::ZERO);
        assert_eq!(TierPricing::HostDimm.cost(0, block_bytes()), TierCost::ZERO);
    }

    #[test]
    fn fetch_is_cheaper_than_an_inter_node_migration_on_latency_and_energy() {
        // The point of a node-local tier: re-landing a prefix costs a
        // DIMM read — ~13× lower link latency and 7× less energy per
        // byte than riding the inter-node fabric. (Raw bandwidth is
        // comparable: one DDR5 channel vs one NDR direction.)
        let payload = block_bytes() * 64.0;
        let dimm = LinkSpec::ddr5_dimm();
        let fabric = LinkSpec::infiniband_ndr();
        assert!(dimm.latency.value() < fabric.latency.value());
        assert!(
            dimm.transfer_energy(payload).value() < fabric.transfer_energy(payload).value(),
            "a host-DIMM crossing must cost less energy than the fabric"
        );
    }

    #[test]
    fn labels() {
        assert_eq!(TierPricing::HostDimm.label(), "host-dimm");
        assert_eq!(TierPricing::Free.label(), "free");
        assert_eq!(TierPricing::Link(LinkSpec::cxl()).label(), "CXL");
    }
}
