//! `papi-interconnect` — link and topology models for the PAPI system.
//!
//! The paper's system (§6.3) wires three classes of traffic differently:
//!
//! - **PU ↔ FC-PIM**: weight-volume traffic over NVLink (high bandwidth,
//!   on-package);
//! - **host/PU ↔ Attn-PIM**: small Q-vector/score traffic over PCIe or
//!   CXL (cheap, scales to many disaggregated devices — PCIe to 32 per
//!   bus, CXL to 4096);
//! - **host ↔ PU**: command/launch traffic over PCIe.
//!
//! This crate provides the latency/bandwidth/energy link model
//! ([`LinkSpec`]), and the [`SystemTopology`] that assigns a link to each
//! route and validates device fan-out.
//!
//! Beyond the paper's single node, [`ClusterTopology`] scales the same
//! link model to a *fleet*: tensor-parallel groups of nodes joined by an
//! inter-node fabric (InfiniBand/Ethernet presets), replicated
//! data-parallel, with TP all-reduce, KV-shard, and prefill→decode KV
//! migration traffic as dedicated [`Route`] classes (migration priced
//! declaratively through [`MigrationPricing`]).
//!
//! Below the attention pool, [`TierPricing`] prices the node-local KV
//! *capacity tier* (host DIMMs per L3, CXL memory): what spilling a
//! cold prefix out of the pool — and fetching it back on reuse — costs
//! in latency, bandwidth, and energy.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cluster;
mod link;
mod migration;
mod tier;
mod topology;

pub use cluster::ClusterTopology;
pub use link::LinkSpec;
pub use migration::{MigrationCost, MigrationPricing};
pub use tier::{TierCost, TierPricing};
pub use topology::{Route, SystemTopology, TopologyError};
