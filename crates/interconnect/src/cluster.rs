//! Inter-node cluster topology: tensor-parallel groups of PAPI nodes,
//! replicated data-parallel.
//!
//! The paper's system is one node (Fig. 5(a)). A production fleet
//! shards the model across a **tensor-parallel (TP) group** of nodes —
//! each node holds `1/tp` of the FC weights and `1/tp` of the KV
//! capacity — and replicates whole groups **data-parallel (DP)** behind
//! a request router. Two new traffic classes appear on the inter-node
//! fabric:
//!
//! - [`Route::TpAllReduce`] — the per-layer activation all-reduce that
//!   stitches a TP group's partial FC outputs back together;
//! - [`Route::KvShard`] — KV-cache blocks scattered to the shard that
//!   owns them during prefill write-out.
//!
//! [`ClusterTopology`] wires both over an inter-node [`LinkSpec`]
//! (InfiniBand NDR by default) while delegating intra-node routes to
//! the per-node [`SystemTopology`].

use crate::link::LinkSpec;
use crate::topology::{Route, SystemTopology, TopologyError};
use papi_types::{Bytes, Energy, Time};
use serde::{Deserialize, Serialize};

/// A fleet of PAPI nodes: `tp_degree` nodes per tensor-parallel group,
/// `dp_replicas` groups behind the router, all joined by one inter-node
/// fabric.
///
/// # Example
///
/// ```
/// use papi_interconnect::{ClusterTopology, Route};
/// use papi_types::Bytes;
///
/// let cluster = ClusterTopology::papi_default(4, 2).unwrap();
/// assert_eq!(cluster.nodes(), 8);
/// let t = cluster.transfer_time(Route::TpAllReduce, Bytes::from_mib(1.0));
/// assert!(t.as_micros() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterTopology {
    node: SystemTopology,
    inter_node: LinkSpec,
    tp_degree: usize,
    dp_replicas: usize,
}

impl ClusterTopology {
    /// The default fleet wiring: paper-default nodes (30 FC-PIM + 60
    /// Attn-PIM devices each) joined by InfiniBand NDR.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] if either degree is zero or the fleet
    /// exceeds the fabric's fan-out.
    pub fn papi_default(tp_degree: usize, dp_replicas: usize) -> Result<Self, TopologyError> {
        Self::new(
            SystemTopology::papi_default(30, 60)?,
            LinkSpec::infiniband_ndr(),
            tp_degree,
            dp_replicas,
        )
    }

    /// Builds a cluster over explicit node wiring and inter-node fabric.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] if either degree is zero or
    /// `tp_degree × dp_replicas` exceeds the fabric's fan-out.
    pub fn new(
        node: SystemTopology,
        inter_node: LinkSpec,
        tp_degree: usize,
        dp_replicas: usize,
    ) -> Result<Self, TopologyError> {
        if tp_degree == 0 || dp_replicas == 0 {
            return Err(TopologyError::new(
                "a cluster needs at least one node per group and one replica".to_owned(),
            ));
        }
        let nodes = tp_degree * dp_replicas;
        if !inter_node.supports_devices(nodes) {
            return Err(TopologyError::new(format!(
                "{nodes} nodes exceed {}'s fan-out of {}",
                inter_node.name, inter_node.max_devices
            )));
        }
        Ok(Self {
            node,
            inter_node,
            tp_degree,
            dp_replicas,
        })
    }

    /// The per-node intra-node wiring.
    pub fn node(&self) -> &SystemTopology {
        &self.node
    }

    /// The inter-node fabric.
    pub fn inter_node(&self) -> &LinkSpec {
        &self.inter_node
    }

    /// Nodes per tensor-parallel group.
    pub fn tp_degree(&self) -> usize {
        self.tp_degree
    }

    /// Data-parallel replicas (TP groups) in the fleet.
    pub fn dp_replicas(&self) -> usize {
        self.dp_replicas
    }

    /// Total nodes in the fleet.
    pub fn nodes(&self) -> usize {
        self.tp_degree * self.dp_replicas
    }

    /// The link serving `route`: cluster-scope routes ride the
    /// inter-node fabric, node-scope routes delegate to the node wiring.
    pub fn link(&self, route: Route) -> &LinkSpec {
        if route.is_cluster_scope() {
            &self.inter_node
        } else {
            self.node.link(route)
        }
    }

    /// Time to move `bytes` over `route` in one message (cluster-scope
    /// collectives have dedicated methods; this is the point-to-point
    /// view).
    pub fn transfer_time(&self, route: Route, bytes: Bytes) -> Time {
        self.link(route).transfer_time(bytes)
    }

    /// Energy to move `bytes` over `route`.
    pub fn transfer_energy(&self, route: Route, bytes: Bytes) -> Energy {
        self.link(route).transfer_energy(bytes)
    }

    /// Ring all-reduce of `bytes` among the nodes of one TP group
    /// ([`Route::TpAllReduce`]). Zero when `tp_degree == 1`.
    pub fn all_reduce_time(&self, bytes: Bytes) -> Time {
        self.inter_node.all_reduce_time(bytes, self.tp_degree)
    }

    /// Wire energy of the TP-group all-reduce.
    pub fn all_reduce_energy(&self, bytes: Bytes) -> Energy {
        self.inter_node.all_reduce_energy(bytes, self.tp_degree)
    }

    /// Time to scatter `bytes` of KV blocks across the TP group's
    /// shards ([`Route::KvShard`]): `(tp-1)/tp` of the payload crosses
    /// the fabric. Zero when `tp_degree == 1`.
    pub fn kv_shard_time(&self, bytes: Bytes) -> Time {
        self.inter_node.scatter_time(bytes, self.tp_degree)
    }

    /// Wire energy of the KV-shard scatter.
    pub fn kv_shard_energy(&self, bytes: Bytes) -> Energy {
        self.inter_node.scatter_energy(bytes, self.tp_degree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerate_degrees_rejected() {
        assert!(ClusterTopology::papi_default(0, 4).is_err());
        assert!(ClusterTopology::papi_default(4, 0).is_err());
        assert!(ClusterTopology::papi_default(1, 1).is_ok());
    }

    #[test]
    fn fleet_fan_out_enforced() {
        // 1024-port InfiniBand: 256×4 fits, 512×4 does not.
        assert!(ClusterTopology::papi_default(4, 256).is_ok());
        let r = ClusterTopology::papi_default(4, 512);
        assert!(r.is_err());
        assert!(r.unwrap_err().to_string().contains("fan-out"));
    }

    #[test]
    fn cluster_routes_ride_the_inter_node_fabric() {
        let c = ClusterTopology::papi_default(4, 2).unwrap();
        assert_eq!(c.link(Route::TpAllReduce).name, "InfiniBand-NDR");
        assert_eq!(c.link(Route::KvShard).name, "InfiniBand-NDR");
        assert_eq!(c.link(Route::KvFetch).name, "InfiniBand-NDR");
        // Node-scope routes still resolve to the node's wiring.
        assert_eq!(c.link(Route::PuToFcPim).name, "NVLink");
        assert_eq!(c.link(Route::PuToAttnPim).name, "CXL");
    }

    #[test]
    fn tp1_collectives_are_free() {
        let c = ClusterTopology::papi_default(1, 8).unwrap();
        let b = Bytes::from_mib(4.0);
        assert_eq!(c.all_reduce_time(b), Time::ZERO);
        assert_eq!(c.kv_shard_time(b), Time::ZERO);
        assert_eq!(c.all_reduce_energy(b).value(), 0.0);
    }

    #[test]
    fn wider_tp_pays_more_collective_time() {
        let b = Bytes::from_mib(4.0);
        let tp2 = ClusterTopology::papi_default(2, 1).unwrap();
        let tp8 = ClusterTopology::papi_default(8, 1).unwrap();
        assert!(tp8.all_reduce_time(b).value() > tp2.all_reduce_time(b).value());
        assert!(tp8.kv_shard_time(b).value() > tp2.kv_shard_time(b).value());
    }
}
