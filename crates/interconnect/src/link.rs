//! Point-to-point link model.

use papi_types::{Bandwidth, Bytes, Energy, Time};
use serde::{Deserialize, Serialize};

/// One interconnect link: latency + bandwidth + per-byte energy, with a
/// device fan-out limit.
///
/// # Example
///
/// ```
/// use papi_interconnect::LinkSpec;
/// use papi_types::Bytes;
///
/// let nvlink = LinkSpec::nvlink();
/// let pcie = LinkSpec::pcie_gen5_x16();
/// let payload = Bytes::from_mib(64.0);
/// assert!(nvlink.transfer_time(payload).value() < pcie.transfer_time(payload).value());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Link name.
    pub name: String,
    /// Per-direction sustained bandwidth.
    pub bandwidth: Bandwidth,
    /// One-way message latency (includes protocol/synchronization cost).
    pub latency: Time,
    /// Energy per byte moved, in picojoules.
    pub pj_per_byte: f64,
    /// Maximum devices attachable to one instance of this fabric.
    pub max_devices: usize,
}

impl LinkSpec {
    /// NVLink (A100 generation): 300 GB/s per direction.
    pub fn nvlink() -> Self {
        Self {
            name: "NVLink".to_owned(),
            bandwidth: Bandwidth::from_gb_per_sec(300.0),
            latency: Time::from_micros(2.0),
            pj_per_byte: 10.0,
            max_devices: 18,
        }
    }

    /// PCIe Gen5 ×16: 64 GB/s per direction, up to 32 devices per bus
    /// (paper §6.3).
    pub fn pcie_gen5_x16() -> Self {
        Self {
            name: "PCIe-Gen5-x16".to_owned(),
            bandwidth: Bandwidth::from_gb_per_sec(64.0),
            latency: Time::from_micros(2.5),
            pj_per_byte: 20.0,
            max_devices: 32,
        }
    }

    /// CXL 2.0 over PCIe Gen5 phy: same bandwidth class, lower protocol
    /// latency, scales to 4096 devices (paper §6.3).
    pub fn cxl() -> Self {
        Self {
            name: "CXL".to_owned(),
            bandwidth: Bandwidth::from_gb_per_sec(64.0),
            latency: Time::from_micros(1.5),
            pj_per_byte: 18.0,
            max_devices: 4096,
        }
    }

    /// Time to move `bytes` in one message.
    pub fn transfer_time(&self, bytes: Bytes) -> Time {
        self.latency + bytes / self.bandwidth
    }

    /// Time to move `bytes` split over `streams` concurrent messages that
    /// share the link bandwidth (latency paid once; the wire is the
    /// bottleneck).
    pub fn contended_transfer_time(&self, bytes: Bytes, streams: usize) -> Time {
        let _ = streams.max(1);
        self.transfer_time(bytes)
    }

    /// Energy to move `bytes`.
    pub fn transfer_energy(&self, bytes: Bytes) -> Energy {
        Energy::from_picojoules(bytes.value() * self.pj_per_byte)
    }

    /// Whether `devices` endpoints fit on one instance of this fabric.
    pub fn supports_devices(&self, devices: usize) -> bool {
        devices <= self.max_devices
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn presets_ordering() {
        let nv = LinkSpec::nvlink();
        let pcie = LinkSpec::pcie_gen5_x16();
        let cxl = LinkSpec::cxl();
        assert!(nv.bandwidth.value() > pcie.bandwidth.value());
        assert!(cxl.latency.value() < pcie.latency.value());
        assert!(cxl.max_devices > pcie.max_devices);
    }

    #[test]
    fn transfer_time_has_latency_floor() {
        let l = LinkSpec::pcie_gen5_x16();
        let t = l.transfer_time(Bytes::new(1.0));
        assert!((t.value() - l.latency.value()).abs() < 1e-9);
    }

    #[test]
    fn fan_out_limits() {
        assert!(LinkSpec::pcie_gen5_x16().supports_devices(32));
        assert!(!LinkSpec::pcie_gen5_x16().supports_devices(33));
        assert!(LinkSpec::cxl().supports_devices(60));
        assert!(LinkSpec::cxl().supports_devices(4096));
    }

    #[test]
    fn energy_linear_in_bytes() {
        let l = LinkSpec::nvlink();
        let e1 = l.transfer_energy(Bytes::from_mib(1.0));
        let e4 = l.transfer_energy(Bytes::from_mib(4.0));
        assert!((e4.value() - 4.0 * e1.value()).abs() < 1e-18);
    }

    proptest! {
        #[test]
        fn transfer_time_monotone(bytes_a in 0.0..1e12f64, bytes_b in 0.0..1e12f64) {
            let l = LinkSpec::cxl();
            let (lo, hi) = if bytes_a <= bytes_b { (bytes_a, bytes_b) } else { (bytes_b, bytes_a) };
            prop_assert!(
                l.transfer_time(Bytes::new(lo)).value() <= l.transfer_time(Bytes::new(hi)).value()
            );
        }

        #[test]
        fn contended_no_faster_than_single(bytes in 1.0..1e10f64, streams in 1usize..64) {
            let l = LinkSpec::pcie_gen5_x16();
            let single = l.transfer_time(Bytes::new(bytes));
            let contended = l.contended_transfer_time(Bytes::new(bytes), streams);
            prop_assert!(contended.value() >= single.value() - 1e-15);
        }
    }
}
