//! Point-to-point link model.

use papi_types::{Bandwidth, Bytes, Energy, Time};
use serde::{Deserialize, Serialize};

/// One interconnect link: latency + bandwidth + per-byte energy, with a
/// device fan-out limit.
///
/// # Example
///
/// ```
/// use papi_interconnect::LinkSpec;
/// use papi_types::Bytes;
///
/// let nvlink = LinkSpec::nvlink();
/// let pcie = LinkSpec::pcie_gen5_x16();
/// let payload = Bytes::from_mib(64.0);
/// assert!(nvlink.transfer_time(payload).value() < pcie.transfer_time(payload).value());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Link name.
    pub name: String,
    /// Per-direction sustained bandwidth.
    pub bandwidth: Bandwidth,
    /// One-way message latency (includes protocol/synchronization cost).
    pub latency: Time,
    /// Energy per byte moved, in picojoules.
    pub pj_per_byte: f64,
    /// Maximum devices attachable to one instance of this fabric.
    pub max_devices: usize,
}

impl LinkSpec {
    /// NVLink (A100 generation): 300 GB/s per direction.
    pub fn nvlink() -> Self {
        Self {
            name: "NVLink".to_owned(),
            bandwidth: Bandwidth::from_gb_per_sec(300.0),
            latency: Time::from_micros(2.0),
            pj_per_byte: 10.0,
            max_devices: 18,
        }
    }

    /// PCIe Gen5 ×16: 64 GB/s per direction, up to 32 devices per bus
    /// (paper §6.3).
    pub fn pcie_gen5_x16() -> Self {
        Self {
            name: "PCIe-Gen5-x16".to_owned(),
            bandwidth: Bandwidth::from_gb_per_sec(64.0),
            latency: Time::from_micros(2.5),
            pj_per_byte: 20.0,
            max_devices: 32,
        }
    }

    /// CXL 2.0 over PCIe Gen5 phy: same bandwidth class, lower protocol
    /// latency, scales to 4096 devices (paper §6.3).
    pub fn cxl() -> Self {
        Self {
            name: "CXL".to_owned(),
            bandwidth: Bandwidth::from_gb_per_sec(64.0),
            latency: Time::from_micros(1.5),
            pj_per_byte: 18.0,
            max_devices: 4096,
        }
    }

    /// One DDR5-4800 DIMM channel — the memory-class link a host-DRAM
    /// KV capacity tier sits behind (L3's DIMM-PIM tier and PIM-AI's
    /// DIMM devices both live here): 38.4 GB/s per channel, sub-µs
    /// access, DRAM-cheap energy per byte, a socket's worth of DIMMs.
    pub fn ddr5_dimm() -> Self {
        Self {
            name: "DDR5-DIMM".to_owned(),
            bandwidth: Bandwidth::from_gb_per_sec(38.4),
            latency: Time::from_micros(0.15),
            pj_per_byte: 5.0,
            max_devices: 16,
        }
    }

    /// InfiniBand NDR (400 Gb/s) — the default *inter-node* fabric of a
    /// PAPI cluster: 50 GB/s per direction, ~2 µs end-to-end RDMA
    /// latency through one switch hop, switch-scale fan-out. The paper
    /// models a single node; this preset is how the cluster layer wires
    /// nodes together.
    pub fn infiniband_ndr() -> Self {
        Self {
            name: "InfiniBand-NDR".to_owned(),
            bandwidth: Bandwidth::from_gb_per_sec(50.0),
            latency: Time::from_micros(2.0),
            pj_per_byte: 35.0,
            max_devices: 1024,
        }
    }

    /// 100 GbE RDMA (RoCE) — a cheaper, slower inter-node alternative:
    /// 12.5 GB/s per direction with higher message latency.
    pub fn ethernet_100g() -> Self {
        Self {
            name: "100GbE-RoCE".to_owned(),
            bandwidth: Bandwidth::from_gb_per_sec(12.5),
            latency: Time::from_micros(8.0),
            pj_per_byte: 50.0,
            max_devices: 1024,
        }
    }

    /// Time to move `bytes` in one message.
    pub fn transfer_time(&self, bytes: Bytes) -> Time {
        self.latency + bytes / self.bandwidth
    }

    /// Time to move `bytes` split over `streams` concurrent messages that
    /// share the link bandwidth (latency paid once; the wire is the
    /// bottleneck).
    pub fn contended_transfer_time(&self, bytes: Bytes, streams: usize) -> Time {
        let _ = streams.max(1);
        self.transfer_time(bytes)
    }

    /// Energy to move `bytes`.
    pub fn transfer_energy(&self, bytes: Bytes) -> Energy {
        Energy::from_picojoules(bytes.value() * self.pj_per_byte)
    }

    /// Ring all-reduce time for `bytes` across `participants` endpoints
    /// of this fabric: each endpoint forwards `2 (p-1)/p × bytes`, with
    /// the message latency paid once (the ring pipelines its steps —
    /// the same model as `MultiGpu::allreduce_time` intra-node). Zero
    /// for a single participant or no payload.
    pub fn all_reduce_time(&self, bytes: Bytes, participants: usize) -> Time {
        if participants <= 1 || bytes.is_zero() {
            return Time::ZERO;
        }
        let p = participants as f64;
        let volume = 2.0 * (p - 1.0) / p * bytes.value();
        self.latency + Bytes::new(volume) / self.bandwidth
    }

    /// Total wire energy of a ring all-reduce: every endpoint forwards
    /// `2 (p-1)/p × bytes`, so the fleet moves `2 (p-1) × bytes`.
    pub fn all_reduce_energy(&self, bytes: Bytes, participants: usize) -> Energy {
        if participants <= 1 {
            return Energy::ZERO;
        }
        self.transfer_energy(bytes) * (2.0 * (participants as f64 - 1.0))
    }

    /// Time to scatter `bytes` evenly over `parts` endpoints where one
    /// part stays local: `(parts-1)/parts` of the payload crosses the
    /// wire. Zero for a single part.
    pub fn scatter_time(&self, bytes: Bytes, parts: usize) -> Time {
        if parts <= 1 || bytes.is_zero() {
            return Time::ZERO;
        }
        let remote = bytes.value() * (parts as f64 - 1.0) / parts as f64;
        self.transfer_time(Bytes::new(remote))
    }

    /// Wire energy of the [`scatter_time`](Self::scatter_time) transfer.
    pub fn scatter_energy(&self, bytes: Bytes, parts: usize) -> Energy {
        if parts <= 1 {
            return Energy::ZERO;
        }
        self.transfer_energy(Bytes::new(
            bytes.value() * (parts as f64 - 1.0) / parts as f64,
        ))
    }

    /// Whether `devices` endpoints fit on one instance of this fabric.
    pub fn supports_devices(&self, devices: usize) -> bool {
        devices <= self.max_devices
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn presets_ordering() {
        let nv = LinkSpec::nvlink();
        let pcie = LinkSpec::pcie_gen5_x16();
        let cxl = LinkSpec::cxl();
        assert!(nv.bandwidth.value() > pcie.bandwidth.value());
        assert!(cxl.latency.value() < pcie.latency.value());
        assert!(cxl.max_devices > pcie.max_devices);
    }

    #[test]
    fn transfer_time_has_latency_floor() {
        let l = LinkSpec::pcie_gen5_x16();
        let t = l.transfer_time(Bytes::new(1.0));
        assert!((t.value() - l.latency.value()).abs() < 1e-9);
    }

    #[test]
    fn fan_out_limits() {
        assert!(LinkSpec::pcie_gen5_x16().supports_devices(32));
        assert!(!LinkSpec::pcie_gen5_x16().supports_devices(33));
        assert!(LinkSpec::cxl().supports_devices(60));
        assert!(LinkSpec::cxl().supports_devices(4096));
    }

    #[test]
    fn inter_node_presets_are_slower_than_intra_node() {
        let ib = LinkSpec::infiniband_ndr();
        let eth = LinkSpec::ethernet_100g();
        let nv = LinkSpec::nvlink();
        assert!(ib.bandwidth.value() < nv.bandwidth.value());
        assert!(eth.bandwidth.value() < ib.bandwidth.value());
        assert!(eth.latency.value() > ib.latency.value());
    }

    #[test]
    fn all_reduce_degenerates_to_zero_for_one_participant() {
        let ib = LinkSpec::infiniband_ndr();
        assert_eq!(ib.all_reduce_time(Bytes::from_mib(8.0), 1), Time::ZERO);
        assert_eq!(ib.all_reduce_energy(Bytes::from_mib(8.0), 1).value(), 0.0);
        assert_eq!(ib.scatter_time(Bytes::from_mib(8.0), 1), Time::ZERO);
    }

    #[test]
    fn all_reduce_cost_grows_with_participants_and_bytes() {
        let ib = LinkSpec::infiniband_ndr();
        let b = Bytes::from_mib(16.0);
        let t2 = ib.all_reduce_time(b, 2);
        let t4 = ib.all_reduce_time(b, 4);
        let t8 = ib.all_reduce_time(b, 8);
        assert!(t2.value() < t4.value() && t4.value() < t8.value());
        let small = ib.all_reduce_time(Bytes::from_kib(64.0), 4);
        assert!(small.value() < t4.value());
        // Fleet wire volume is 2 (p-1) × bytes.
        let e4 = ib.all_reduce_energy(b, 4);
        assert!((e4.value() - ib.transfer_energy(b).value() * 6.0).abs() < 1e-15);
    }

    #[test]
    fn scatter_moves_only_the_remote_share() {
        let ib = LinkSpec::infiniband_ndr();
        let b = Bytes::from_mib(4.0);
        let t4 = ib.scatter_time(b, 4);
        let expected = ib.transfer_time(Bytes::new(b.value() * 0.75));
        assert_eq!(t4, expected);
        assert!(ib.scatter_energy(b, 4).value() < ib.transfer_energy(b).value());
    }

    #[test]
    fn energy_linear_in_bytes() {
        let l = LinkSpec::nvlink();
        let e1 = l.transfer_energy(Bytes::from_mib(1.0));
        let e4 = l.transfer_energy(Bytes::from_mib(4.0));
        assert!((e4.value() - 4.0 * e1.value()).abs() < 1e-18);
    }

    proptest! {
        #[test]
        fn transfer_time_monotone(bytes_a in 0.0..1e12f64, bytes_b in 0.0..1e12f64) {
            let l = LinkSpec::cxl();
            let (lo, hi) = if bytes_a <= bytes_b { (bytes_a, bytes_b) } else { (bytes_b, bytes_a) };
            prop_assert!(
                l.transfer_time(Bytes::new(lo)).value() <= l.transfer_time(Bytes::new(hi)).value()
            );
        }

        #[test]
        fn contended_no_faster_than_single(bytes in 1.0..1e10f64, streams in 1usize..64) {
            let l = LinkSpec::pcie_gen5_x16();
            let single = l.transfer_time(Bytes::new(bytes));
            let contended = l.contended_transfer_time(Bytes::new(bytes), streams);
            prop_assert!(contended.value() >= single.value() - 1e-15);
        }
    }
}
