//! Pricing for [`Route::KvMigrate`](crate::Route) traffic: the bulk KV
//! handoff a disaggregated fleet pays when a prefill-role replica hands
//! a decode-ready sequence to a decode-role replica.
//!
//! The payload is the sequence's whole paged KV cache —
//! `kv_blocks × block_bytes` — moved in one message over whichever link
//! the fleet assigns to migration traffic. [`MigrationPricing`] makes
//! that assignment declarative: ride the inter-node fabric (the
//! default), pin a dedicated link, or price migration as free (the
//! ablation knob equality pins are built on: an all-colocated fleet
//! with free migration must reproduce the non-disaggregated engine bit
//! for bit).

use crate::link::LinkSpec;
use papi_types::{Bytes, Energy, Time};
use serde::{Deserialize, Serialize};

/// The priced cost of one KV migration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationCost {
    /// Payload moved: `kv_blocks × block_bytes`.
    pub bytes: Bytes,
    /// One-shot transfer latency (the sequence occupies neither pool
    /// while this elapses).
    pub time: Time,
    /// Wire energy of the transfer.
    pub energy: Energy,
}

impl MigrationCost {
    /// A zero-cost migration (the `Free` pricing, or an empty payload).
    pub const ZERO: MigrationCost = MigrationCost {
        bytes: Bytes::ZERO,
        time: Time::ZERO,
        energy: Energy::ZERO,
    };
}

/// Which link [`Route::KvMigrate`](crate::Route) traffic crosses.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub enum MigrationPricing {
    /// Ride the fleet's inter-node fabric (the link TP collectives
    /// already cross) — the default.
    #[default]
    Fabric,
    /// A dedicated migration link (e.g. a cheaper Ethernet plane kept
    /// off the collective-critical fabric).
    Link(LinkSpec),
    /// Migration is free: zero latency, zero energy. The ablation knob
    /// for isolating scheduling effects from transfer cost.
    Free,
}

impl MigrationPricing {
    /// Prices moving `kv_blocks` blocks of `block_bytes` each, where
    /// `fabric` is the fleet's inter-node link (used by
    /// [`MigrationPricing::Fabric`]).
    pub fn cost(&self, fabric: &LinkSpec, kv_blocks: u64, block_bytes: Bytes) -> MigrationCost {
        let link = match self {
            MigrationPricing::Fabric => fabric,
            MigrationPricing::Link(link) => link,
            MigrationPricing::Free => return MigrationCost::ZERO,
        };
        let bytes = block_bytes * kv_blocks as f64;
        if bytes.is_zero() {
            return MigrationCost::ZERO;
        }
        MigrationCost {
            bytes,
            time: link.transfer_time(bytes),
            energy: link.transfer_energy(bytes),
        }
    }

    /// Display label for reports and sweeps.
    pub fn label(&self) -> String {
        match self {
            MigrationPricing::Fabric => "fabric".to_owned(),
            MigrationPricing::Link(link) => link.name.clone(),
            MigrationPricing::Free => "free".to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block_bytes() -> Bytes {
        // 16-token blocks at ~2.5 MiB/token of KV — a realistic
        // LLaMA-65B-class figure.
        Bytes::from_mib(40.0)
    }

    #[test]
    fn fabric_pricing_matches_a_plain_transfer() {
        let fabric = LinkSpec::infiniband_ndr();
        let cost = MigrationPricing::Fabric.cost(&fabric, 8, block_bytes());
        let payload = block_bytes() * 8.0;
        assert_eq!(cost.bytes, payload);
        assert_eq!(cost.time, fabric.transfer_time(payload));
        assert_eq!(cost.energy, fabric.transfer_energy(payload));
    }

    #[test]
    fn dedicated_link_overrides_the_fabric() {
        let fabric = LinkSpec::infiniband_ndr();
        let eth = LinkSpec::ethernet_100g();
        let over_eth = MigrationPricing::Link(eth.clone()).cost(&fabric, 4, block_bytes());
        assert_eq!(over_eth.time, eth.transfer_time(block_bytes() * 4.0));
        assert!(
            over_eth.time.value()
                > MigrationPricing::Fabric
                    .cost(&fabric, 4, block_bytes())
                    .time
                    .value()
        );
    }

    #[test]
    fn free_and_empty_migrations_cost_nothing() {
        let fabric = LinkSpec::infiniband_ndr();
        assert_eq!(
            MigrationPricing::Free.cost(&fabric, 1_000, block_bytes()),
            MigrationCost::ZERO
        );
        assert_eq!(
            MigrationPricing::Fabric.cost(&fabric, 0, block_bytes()),
            MigrationCost::ZERO
        );
    }

    #[test]
    fn cost_scales_linearly_in_blocks_minus_the_latency_floor() {
        let fabric = LinkSpec::infiniband_ndr();
        let one = MigrationPricing::Fabric.cost(&fabric, 1, block_bytes());
        let ten = MigrationPricing::Fabric.cost(&fabric, 10, block_bytes());
        let wire = |c: MigrationCost| c.time.value() - fabric.latency.value();
        assert!((wire(ten) - 10.0 * wire(one)).abs() < 1e-12);
        assert!((ten.energy.value() - 10.0 * one.energy.value()).abs() < 1e-12);
    }

    #[test]
    fn labels() {
        assert_eq!(MigrationPricing::Fabric.label(), "fabric");
        assert_eq!(MigrationPricing::Free.label(), "free");
        assert_eq!(
            MigrationPricing::Link(LinkSpec::ethernet_100g()).label(),
            "100GbE-RoCE"
        );
    }
}
