//! One function per paper figure.
//!
//! Every function returns plain row structs so the bench harness (and
//! the `fig*` binaries in `papi-bench`) can print the same series the
//! paper plots. EXPERIMENTS.md records the paper-vs-measured comparison
//! for each.

use crate::autoscale::AutoscaleSpec;
use crate::cluster::{ClusterEngine, ClusterSpec, SharedTierSpec};
use crate::config::{DesignKind, SystemConfig};
use crate::engine::DecodingSimulator;
use crate::metrics::ExecutionReport;
use crate::serving::{KvTierSpec, ServingEngine, SessionTuning};
use crate::slo::SloSpec;
use papi_gpu::{GpuEnergyModel, GpuSpec, MultiGpu};
use papi_interconnect::TierPricing;
use papi_llm::{ModelPreset, RooflinePoint};
use papi_pim::power::power_draw;
use papi_pim::{PimConfig, PimDevice, PimEnergyBreakdown, PimEnergyModel};
use papi_sched::estimator::AiComparison;
use papi_types::{DataType, Power};
use papi_workload::{
    ArrivalProcess, ConversationDataset, DatasetKind, MigrationSpec, PolicySpec, ReplicaRole,
    ServingWorkload, WorkloadSpec,
};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// The paper's standard batch sizes for Figs. 8/9/11.
pub const BATCHES: [u64; 3] = [4, 16, 64];
/// The paper's standard speculation lengths for Figs. 8/9/11.
pub const SPECULATION_LENGTHS: [u64; 3] = [1, 2, 4];

// ---------------------------------------------------------------------
// Fig. 2 — roofline analysis
// ---------------------------------------------------------------------

/// Fig. 2(a): OPT-30B FC and attention roofline points, batch 4→128 at
/// speculation length 8; Fig. 2(b): speculation 2→8 at batch 32.
pub fn fig2_roofline() -> (Vec<RooflinePoint>, Vec<RooflinePoint>) {
    let model = ModelPreset::Opt30B.config();
    let a100 = GpuSpec::a100();
    let kv_len = 512;
    let sweep_a = [4u64, 8, 16, 32, 64, 128]
        .into_iter()
        .flat_map(|batch| {
            papi_llm::roofline::roofline_points(
                &model,
                batch,
                8,
                kv_len,
                a100.peak_flops,
                a100.mem_bandwidth,
            )
        })
        .collect();
    let sweep_b = [2u64, 4, 6, 8]
        .into_iter()
        .flat_map(|spec| {
            papi_llm::roofline::roofline_points(
                &model,
                32,
                spec,
                kv_len,
                a100.peak_flops,
                a100.mem_bandwidth,
            )
        })
        .collect();
    (sweep_a, sweep_b)
}

// ---------------------------------------------------------------------
// Fig. 3 — runtime RLP decay
// ---------------------------------------------------------------------

/// One request's lifetime within the batch (Fig. 3's horizontal bars).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestLifetime {
    /// Request id within the batch.
    pub request: u64,
    /// Decoding iterations until the request emitted `<|eos|>`.
    pub iterations: u64,
}

/// Fig. 3: per-request decoding iterations and the remaining-RLP series
/// for one static batch.
pub fn fig3_rlp_decay(batch: u64, seed: u64) -> (Vec<RequestLifetime>, Vec<u64>) {
    let spec =
        WorkloadSpec::static_batching(DatasetKind::CreativeWriting, batch, 1).with_seed(seed);
    let lifetimes = spec
        .requests()
        .iter()
        .map(|r| RequestLifetime {
            request: r.id,
            iterations: r.output_len,
        })
        .collect();
    let trace = spec.trace();
    (lifetimes, trace.rlp_series())
}

// ---------------------------------------------------------------------
// Fig. 4 — FC kernel latency across platforms
// ---------------------------------------------------------------------

/// One bar of Fig. 4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FcLatencyRow {
    /// Speculation length.
    pub speculation: u64,
    /// Batch size.
    pub batch: u64,
    /// Platform label.
    pub platform: &'static str,
    /// FC latency in milliseconds.
    pub latency_ms: f64,
    /// Latency normalized to the A100 GPU at the same parallelism.
    pub normalized_to_a100: f64,
}

/// Fig. 4: FC kernel latency of A100 GPUs vs HBM-PIM vs AttAcc, batch
/// {1, 4, 16, 64} × speculation {2, 8}, normalized to the A100.
pub fn fig4_fc_latency() -> Vec<FcLatencyRow> {
    let model = ModelPreset::Gpt3_66B.config();
    let gpus = MultiGpu::dgx6_a100();
    let gpu_energy = GpuEnergyModel::a100();
    let hbm_pim = PimDevice::hbm_pim();
    let attacc = PimDevice::attacc();
    let mut rows = Vec::new();
    for speculation in [2u64, 8] {
        for batch in [1u64, 4, 16, 64] {
            let tokens = batch * speculation;
            let gpu_t = crate::engine::fc_latency_on_pu(&model, &gpus, &gpu_energy, tokens);
            let hbm_t = crate::engine::fc_latency_on_pim(
                &model,
                &hbm_pim,
                crate::config::FC_POOL_DEVICES,
                tokens,
            );
            let attacc_t = crate::engine::fc_latency_on_pim(
                &model,
                &attacc,
                crate::config::FC_POOL_DEVICES,
                tokens,
            );
            for (platform, t) in [
                ("A100 GPU", gpu_t),
                ("HBM-PIM", hbm_t),
                ("AttAcc", attacc_t),
            ] {
                rows.push(FcLatencyRow {
                    speculation,
                    batch,
                    platform,
                    latency_ms: t.as_millis(),
                    normalized_to_a100: t.value() / gpu_t.value(),
                });
            }
        }
    }
    rows
}

// ---------------------------------------------------------------------
// Fig. 6 — arithmetic-intensity estimation accuracy
// ---------------------------------------------------------------------

/// Fig. 6: measured vs estimated FC arithmetic intensity for GPT-3 66B.
pub fn fig6_ai_estimation() -> Vec<AiComparison> {
    AiComparison::fig6_grid(&ModelPreset::Gpt3_66B.config())
}

// ---------------------------------------------------------------------
// Fig. 7 — PIM energy breakdown and power vs data reuse
// ---------------------------------------------------------------------

/// One point of the Fig. 7(c) power curves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerRow {
    /// PIM configuration label (`"4P1B"` …).
    pub config: String,
    /// DRAM data-reuse level.
    pub reuse: u64,
    /// Sustained power of one device.
    pub power_watts: f64,
    /// Whether it fits the 116 W HBM3 budget.
    pub within_budget: bool,
}

/// Fig. 7: (a) the energy split with no data reuse, (b) at reuse 64,
/// (c) power vs reuse for 4P1B / 2P1B / 1P1B against the 116 W budget.
pub fn fig7_energy_power() -> (PimEnergyBreakdown, PimEnergyBreakdown, Vec<PowerRow>) {
    let energy_model = PimEnergyModel::paper();
    let device = PimDevice::attacc();
    let pj_per_byte = device.dram_access_pj_per_byte();
    let macs = 1e9;
    let no_reuse = energy_model.breakdown(papi_types::Bytes::new(macs * 2.0), pj_per_byte, macs);
    let reuse64 =
        energy_model.breakdown(papi_types::Bytes::new(macs * 2.0 / 64.0), pj_per_byte, macs);

    let budget = Power::from_watts(116.0);
    let mut rows = Vec::new();
    let devices = [
        PimDevice::fc_pim(), // 4P1B / 96 banks
        two_p1b_device(),
        PimDevice::attacc(), // 1P1B / 128 banks
    ];
    for device in &devices {
        for reuse in [1u64, 2, 4, 8, 16, 32, 64] {
            let p = power_draw(device, reuse, DataType::Fp16);
            rows.push(PowerRow {
                config: device.config.label(),
                reuse,
                power_watts: p.as_watts(),
                within_budget: p.value() <= budget.value(),
            });
        }
    }
    (no_reuse, reuse64, rows)
}

/// The intermediate 2P1B configuration of Fig. 7(c) (96 banks per the
/// Eq. (3) area solver).
pub fn two_p1b_device() -> PimDevice {
    PimDevice::new(
        "2P1B",
        papi_dram::HbmDevice {
            name: "HBM3-2P1B-12GB".to_owned(),
            topology: papi_dram::Topology::fc_pim_12gb(),
            timing: papi_dram::TimingParams::hbm3(),
            energy: papi_dram::EnergyParams::hbm3(),
        },
        PimConfig::PIM_2P1B,
        papi_pim::FpuSpec::attacc(),
        PimEnergyModel::paper(),
    )
}

// ---------------------------------------------------------------------
// Figs. 8/9/10/11 — end-to-end comparisons
// ---------------------------------------------------------------------

/// One configuration's result across designs, normalized to a baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EndToEndRow {
    /// Model name.
    pub model: String,
    /// Dataset name.
    pub dataset: String,
    /// Speculation length.
    pub speculation: u64,
    /// Batch size.
    pub batch: u64,
    /// Design label.
    pub design: String,
    /// Speedup over the baseline design (A100+AttAcc).
    pub speedup: f64,
    /// Energy-efficiency improvement over the baseline.
    pub energy_efficiency: f64,
    /// Absolute decode latency in seconds.
    pub latency_s: f64,
    /// Absolute energy in joules.
    pub energy_j: f64,
}

fn run_design(kind: DesignKind, model: ModelPreset, workload: &WorkloadSpec) -> ExecutionReport {
    DecodingSimulator::new(SystemConfig::build(kind, model.config())).run(workload)
}

/// Runs `designs` on one `(model, dataset, spec, batch)` cell and
/// normalizes to the first entry (the paper normalizes to A100+AttAcc).
pub fn end_to_end_cell(
    model: ModelPreset,
    dataset: DatasetKind,
    speculation: u64,
    batch: u64,
    designs: &[DesignKind],
    seed: u64,
) -> Vec<EndToEndRow> {
    let workload = WorkloadSpec::static_batching(dataset, batch, speculation).with_seed(seed);
    let trace = workload.trace();
    let reports: Vec<ExecutionReport> = designs
        .iter()
        .map(|&kind| {
            DecodingSimulator::new(SystemConfig::build(kind, model.config())).run_trace(&trace)
        })
        .collect();
    let base = &reports[0];
    designs
        .iter()
        .zip(&reports)
        .map(|(&kind, report)| EndToEndRow {
            model: model.to_string(),
            dataset: dataset.to_string(),
            speculation,
            batch,
            design: kind.label().to_owned(),
            speedup: report.speedup_over(base),
            energy_efficiency: report.energy_efficiency_over(base),
            latency_s: report.total_latency().as_secs(),
            energy_j: report.total_energy().as_joules(),
        })
        .collect()
}

/// Fig. 8: the full creative-writing grid — 3 models × speculation
/// {1, 2, 4} × batch {4, 16, 64} × 4 designs, normalized to A100+AttAcc.
///
/// Cells are independent simulator runs, so the grid fans out across
/// cores; the row order (and every value) stays deterministic.
pub fn fig8_end_to_end(seed: u64) -> Vec<EndToEndRow> {
    let cells: Vec<(ModelPreset, u64, u64)> = ModelPreset::EVALUATED
        .into_iter()
        .flat_map(|model| {
            SPECULATION_LENGTHS
                .into_iter()
                .flat_map(move |speculation| {
                    BATCHES
                        .into_iter()
                        .map(move |batch| (model, speculation, batch))
                })
        })
        .collect();
    cells
        .par_iter()
        .flat_map_iter(|&(model, speculation, batch)| {
            end_to_end_cell(
                model,
                DatasetKind::CreativeWriting,
                speculation,
                batch,
                &DesignKind::FIG8,
                seed,
            )
        })
        .collect()
}

/// Fig. 9: the general-qa grid for GPT-3 175B with the three designs the
/// paper shows (A100+AttAcc, AttAcc-only, PAPI).
pub fn fig9_general_qa(seed: u64) -> Vec<EndToEndRow> {
    let designs = [
        DesignKind::A100AttAcc,
        DesignKind::AttAccOnly,
        DesignKind::Papi,
    ];
    let cells: Vec<(u64, u64)> = SPECULATION_LENGTHS
        .into_iter()
        .flat_map(|speculation| BATCHES.into_iter().map(move |batch| (speculation, batch)))
        .collect();
    cells
        .par_iter()
        .flat_map_iter(|&(speculation, batch)| {
            end_to_end_cell(
                ModelPreset::Gpt3_175B,
                DatasetKind::GeneralQa,
                speculation,
                batch,
                &designs,
                seed,
            )
        })
        .collect()
}

/// Fig. 10(a): batch sweep 4→128 at speculation 1; Fig. 10(b):
/// speculation sweep 1→8 at batch 4 — LLaMA-65B on creative-writing,
/// three designs.
pub fn fig10_sensitivity(seed: u64) -> (Vec<EndToEndRow>, Vec<EndToEndRow>) {
    let designs = [
        DesignKind::A100AttAcc,
        DesignKind::AttAccOnly,
        DesignKind::Papi,
    ];
    let batches = [4u64, 8, 16, 32, 64, 128];
    let sweep_a: Vec<EndToEndRow> = batches
        .par_iter()
        .flat_map_iter(|&batch| {
            end_to_end_cell(
                ModelPreset::Llama65B,
                DatasetKind::CreativeWriting,
                1,
                batch,
                &designs,
                seed,
            )
        })
        .collect();
    let sweep_b: Vec<EndToEndRow> = [1u64, 2, 4, 8]
        .par_iter()
        .flat_map_iter(|&speculation| {
            end_to_end_cell(
                ModelPreset::Llama65B,
                DatasetKind::CreativeWriting,
                speculation,
                4,
                &designs,
                seed,
            )
        })
        .collect();
    (sweep_a, sweep_b)
}

/// Fig. 11: PIM-only PAPI vs AttAcc-only (decoding phase), speculation
/// {1, 2, 4} × batch {4, 16, 64} on LLaMA-65B creative-writing. The
/// returned rows are normalized to AttAcc-only, so `speedup` is directly
/// the figure's bar height.
pub fn fig11_pim_only(seed: u64) -> Vec<EndToEndRow> {
    let designs = [DesignKind::AttAccOnly, DesignKind::PimOnlyPapi];
    let cells: Vec<(u64, u64)> = SPECULATION_LENGTHS
        .into_iter()
        .flat_map(|speculation| BATCHES.into_iter().map(move |batch| (speculation, batch)))
        .collect();
    cells
        .par_iter()
        .flat_map_iter(|&(speculation, batch)| {
            end_to_end_cell(
                ModelPreset::Llama65B,
                DatasetKind::CreativeWriting,
                speculation,
                batch,
                &designs,
                seed,
            )
        })
        .collect()
}

// ---------------------------------------------------------------------
// Fig. 12 — execution-time breakdown per token
// ---------------------------------------------------------------------

/// One design's per-token time split (Fig. 12).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BreakdownRow {
    /// Design label.
    pub design: String,
    /// Attention time per token, ms.
    pub attention_ms: f64,
    /// FC time per token, ms.
    pub fc_ms: f64,
    /// Communication time per token, ms.
    pub communication_ms: f64,
    /// Other (dispatch/monitoring) time per token, ms.
    pub other_ms: f64,
}

impl BreakdownRow {
    /// Total per-token time.
    pub fn total_ms(&self) -> f64 {
        self.attention_ms + self.fc_ms + self.communication_ms + self.other_ms
    }
}

/// Fig. 12: per-token execution-time breakdown of AttAcc-only vs
/// PIM-only PAPI (LLaMA-65B, batch 4, speculation 4).
pub fn fig12_breakdown(seed: u64) -> Vec<BreakdownRow> {
    let workload =
        WorkloadSpec::static_batching(DatasetKind::CreativeWriting, 4, 4).with_seed(seed);
    [DesignKind::AttAccOnly, DesignKind::PimOnlyPapi]
        .into_iter()
        .map(|kind| {
            let report = run_design(kind, ModelPreset::Llama65B, &workload);
            let per_token = 1.0 / report.tokens as f64;
            BreakdownRow {
                design: kind.label().to_owned(),
                attention_ms: report.phases.attention.as_millis() * per_token,
                fc_ms: report.phases.fc.as_millis() * per_token,
                communication_ms: report.phases.communication.as_millis() * per_token,
                other_ms: report.phases.other.as_millis() * per_token,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Serving load sweeps (beyond the paper: the online regime)
// ---------------------------------------------------------------------

/// One `(design, arrival rate)` point of a serving load sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServingSweepRow {
    /// Design label.
    pub design: String,
    /// Offered load, requests per second.
    pub rate_per_sec: f64,
    /// Requests served.
    pub requests: u64,
    /// Median time-to-first-token, ms.
    pub ttft_p50_ms: f64,
    /// 99th-percentile time-to-first-token, ms.
    pub ttft_p99_ms: f64,
    /// Median time-per-output-token, ms.
    pub tpot_p50_ms: f64,
    /// 99th-percentile time-per-output-token, ms.
    pub tpot_p99_ms: f64,
    /// 99th-percentile queueing delay, ms.
    pub queue_p99_ms: f64,
    /// Requests completed within the SLO, per second.
    pub goodput_rps: f64,
    /// Fraction of requests meeting the SLO.
    pub slo_attainment: f64,
    /// Output-token throughput.
    pub tokens_per_sec: f64,
    /// Online rescheduling events (PU ↔ FC-PIM migrations).
    pub scheduler_switches: u64,
    /// KV-pressure preemption events.
    pub preemptions: u64,
}

/// A serving load-sweep specification: which designs serve which
/// Poisson loads, scored against which SLO.
#[derive(Debug, Clone)]
pub struct LoadSweep {
    /// Model served.
    pub model: ModelPreset,
    /// Dataset category requests are drawn from.
    pub dataset: DatasetKind,
    /// Offered loads, requests per second.
    pub rates: Vec<f64>,
    /// Requests per `(design, rate)` point.
    pub num_requests: usize,
    /// Designs compared.
    pub designs: Vec<DesignKind>,
    /// Batch cap (scheduler window) for every engine.
    pub max_batch: u64,
    /// Latency objective goodput is scored against.
    pub slo: SloSpec,
    /// Seed shared by every point, so the curves differ only by
    /// hardware and scheduling.
    pub seed: u64,
}

impl LoadSweep {
    /// Serves every `(rate, design)` point and collects one row each.
    ///
    /// Points are independent simulator runs and fan out across cores;
    /// the results are deterministic and ordered rate-major,
    /// design-minor.
    pub fn run(&self) -> Vec<ServingSweepRow> {
        let points: Vec<(f64, DesignKind)> = self
            .rates
            .iter()
            .flat_map(|&rate| self.designs.iter().map(move |&design| (rate, design)))
            .collect();
        points
            .par_iter()
            .map(|&(rate, design)| {
                let workload = ServingWorkload::poisson(self.dataset, rate, self.num_requests)
                    .with_seed(self.seed);
                let engine = ServingEngine::new(SystemConfig::build(design, self.model.config()))
                    .with_max_batch(self.max_batch);
                let report = engine.run(&workload);
                let ttft = report.ttft_summary().expect("non-empty episode");
                let tpot = report.tpot_summary().expect("non-empty episode");
                let queue = report.queueing_summary().expect("non-empty episode");
                ServingSweepRow {
                    design: design.label().to_owned(),
                    rate_per_sec: rate,
                    requests: report.records.len() as u64,
                    ttft_p50_ms: ttft.p50.as_millis(),
                    ttft_p99_ms: ttft.p99.as_millis(),
                    tpot_p50_ms: tpot.p50.as_millis(),
                    tpot_p99_ms: tpot.p99.as_millis(),
                    queue_p99_ms: queue.p99.as_millis(),
                    goodput_rps: report.goodput(&self.slo),
                    slo_attainment: report.slo_attainment(&self.slo),
                    tokens_per_sec: report.tokens_per_second(),
                    scheduler_switches: report.scheduler.switches,
                    preemptions: report.preemptions,
                }
            })
            .collect()
    }
}

// ---------------------------------------------------------------------
// Prefix-cache sweeps (beyond the paper: paged KV with prefix sharing)
// ---------------------------------------------------------------------

/// One `(KV mode, arrival rate)` point of a prefix-cache sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrefixCacheRow {
    /// KV accounting mode: `"scalar"` (block 1, no sharing, monolithic
    /// prefill) or `"paged+prefix"` (block-granular, shared prefixes,
    /// optionally chunked prefill).
    pub mode: String,
    /// Offered load, requests per second.
    pub rate_per_sec: f64,
    /// Requests served.
    pub requests: u64,
    /// Requests completed within the SLO, per second.
    pub goodput_rps: f64,
    /// Fraction of requests meeting the SLO.
    pub slo_attainment: f64,
    /// Median time-to-first-token, ms.
    pub ttft_p50_ms: f64,
    /// 99th-percentile time-to-first-token, ms.
    pub ttft_p99_ms: f64,
    /// Fraction of prefill demand served from the prefix cache.
    pub cache_hit_rate: f64,
    /// Largest number of KV blocks ever simultaneously held.
    pub peak_blocks_in_use: u64,
    /// Prefill waves priced over the episode.
    pub prefill_chunks: u64,
    /// KV-pressure preemption events.
    pub preemptions: u64,
}

/// A prefix-cache sweep: the same conversation-structured load served
/// with scalar KV accounting vs the paged pool with prefix sharing —
/// equal DRAM, equal admission headroom, so any gap is purely the
/// cache subsystem.
#[derive(Debug, Clone)]
pub struct PrefixCacheSweep {
    /// Model served.
    pub model: ModelPreset,
    /// Design serving it.
    pub design: DesignKind,
    /// Prefix-structured request population.
    pub conversations: ConversationDataset,
    /// Offered loads, requests per second.
    pub rates: Vec<f64>,
    /// Requests per `(mode, rate)` point.
    pub num_requests: usize,
    /// Batch cap (scheduler window) for every engine.
    pub max_batch: u64,
    /// Admission-planning fraction of the KV pool (both modes).
    pub kv_headroom: f64,
    /// Paged mode's tokens per block.
    pub block_size: u64,
    /// Paged mode's chunked-prefill budget (`None` = monolithic).
    pub prefill_chunk: Option<u64>,
    /// Latency objective goodput is scored against.
    pub slo: SloSpec,
    /// Seed shared by every point.
    pub seed: u64,
}

impl PrefixCacheSweep {
    fn engine(&self, paged: bool) -> ServingEngine {
        let mut engine = ServingEngine::new(SystemConfig::build(self.design, self.model.config()))
            .with_max_batch(self.max_batch)
            .with_kv_headroom(self.kv_headroom);
        if paged {
            engine = engine
                .with_kv_block_size(self.block_size)
                .with_prefix_sharing(true);
            if let Some(chunk) = self.prefill_chunk {
                engine = engine.with_prefill_chunk(chunk);
            }
        }
        engine
    }

    /// Serves every `(rate, mode)` point and collects one row each.
    ///
    /// Points are independent simulator runs and fan out across cores;
    /// results are deterministic and ordered rate-major with the scalar
    /// baseline first at each rate.
    pub fn run(&self) -> Vec<PrefixCacheRow> {
        let points: Vec<(f64, bool)> = self
            .rates
            .iter()
            .flat_map(|&rate| [(rate, false), (rate, true)])
            .collect();
        points
            .par_iter()
            .map(|&(rate, paged)| {
                let workload =
                    ServingWorkload::poisson(self.conversations, rate, self.num_requests)
                        .with_seed(self.seed);
                let report = self.engine(paged).run(&workload);
                let ttft = report.ttft_summary().expect("non-empty episode");
                PrefixCacheRow {
                    mode: if paged { "paged+prefix" } else { "scalar" }.to_owned(),
                    rate_per_sec: rate,
                    requests: report.records.len() as u64,
                    goodput_rps: report.goodput(&self.slo),
                    slo_attainment: report.slo_attainment(&self.slo),
                    ttft_p50_ms: ttft.p50.as_millis(),
                    ttft_p99_ms: ttft.p99.as_millis(),
                    cache_hit_rate: report.kv.hit_rate(),
                    peak_blocks_in_use: report.kv.peak_blocks_in_use,
                    prefill_chunks: report.kv.prefill_chunks,
                    preemptions: report.preemptions,
                }
            })
            .collect()
    }
}

// ---------------------------------------------------------------------
// Tiered-KV sweeps (beyond the paper: spill-to-host offload, after L3)
// ---------------------------------------------------------------------

/// One tier configuration's row of a [`TieredKvSweep`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TieredKvRow {
    /// Configuration label: `"evict"` for the tierless baseline, or
    /// `"tier:{budget}@{pricing}"` for a tiered point.
    pub mode: String,
    /// The tier's block budget (zero for the baseline).
    pub tier_budget_blocks: u64,
    /// Requests served.
    pub requests: u64,
    /// Requests completed within the SLO, per second.
    pub goodput_rps: f64,
    /// Fraction of requests meeting the SLO.
    pub slo_attainment: f64,
    /// Median time-to-first-token, ms.
    pub ttft_p50_ms: f64,
    /// 99th-percentile time-to-first-token, ms (priced fetches land
    /// here).
    pub ttft_p99_ms: f64,
    /// Fraction of prefill demand served from cache (tier fetches
    /// included).
    pub cache_hit_rate: f64,
    /// Prefix-cache evictions (each becomes a spill candidate).
    pub prefix_evictions: u64,
    /// Evicted prefixes the tier kept.
    pub tier_spills: u64,
    /// Spilled prefixes fetched back on reuse.
    pub tier_fetches: u64,
    /// Total priced fetch transfer time, ms.
    pub tier_fetch_time_ms: f64,
    /// KV-pressure preemption events.
    pub preemptions: u64,
}

/// A tiered-KV sweep: one thrashing conversation workload served with
/// plain eviction and then with a KV capacity tier at each budget in
/// [`tier_budgets`](Self::tier_budgets) — same hot pool, same
/// admission headroom, so any gap is purely what surviving an eviction
/// is worth at the configured transfer pricing.
#[derive(Debug, Clone)]
pub struct TieredKvSweep {
    /// Model served.
    pub model: ModelPreset,
    /// Design serving it.
    pub design: DesignKind,
    /// Prefix-structured request population (long contexts thrash
    /// best).
    pub conversations: ConversationDataset,
    /// Offered load, requests per second.
    pub rate_per_sec: f64,
    /// Requests per point.
    pub num_requests: usize,
    /// Batch cap (scheduler window) for every engine.
    pub max_batch: u64,
    /// Admission-planning fraction of the KV pool.
    pub kv_headroom: f64,
    /// Tokens per block (hot pool and tier).
    pub block_size: u64,
    /// Tier block budgets swept (the tierless baseline is always run
    /// first).
    pub tier_budgets: Vec<u64>,
    /// Transfer pricing at the tier boundary.
    pub pricing: TierPricing,
    /// Latency objective goodput is scored against.
    pub slo: SloSpec,
    /// Seed shared by every point.
    pub seed: u64,
}

impl TieredKvSweep {
    fn engine(&self, tier: Option<KvTierSpec>) -> ServingEngine {
        let mut engine = ServingEngine::new(SystemConfig::build(self.design, self.model.config()))
            .with_max_batch(self.max_batch)
            .with_kv_headroom(self.kv_headroom)
            .with_kv_block_size(self.block_size)
            .with_prefix_sharing(true);
        if let Some(spec) = tier {
            engine = engine.with_kv_tier(spec);
        }
        engine
    }

    /// Serves the baseline and every tier budget, one row each.
    ///
    /// Points are independent simulator runs and fan out across cores;
    /// results are deterministic, baseline first, then budgets in the
    /// given order.
    pub fn run(&self) -> Vec<TieredKvRow> {
        let points: Vec<Option<u64>> = std::iter::once(None)
            .chain(self.tier_budgets.iter().copied().map(Some))
            .collect();
        points
            .par_iter()
            .map(|&budget| {
                let workload = ServingWorkload::poisson(
                    self.conversations,
                    self.rate_per_sec,
                    self.num_requests,
                )
                .with_seed(self.seed);
                let tier = budget.map(|b| KvTierSpec::new(b).with_pricing(self.pricing.clone()));
                let report = self.engine(tier).run(&workload);
                let ttft = report.ttft_summary().expect("non-empty episode");
                TieredKvRow {
                    mode: match budget {
                        None => "evict".to_owned(),
                        Some(b) => format!("tier:{b}@{}", self.pricing.label()),
                    },
                    tier_budget_blocks: budget.unwrap_or(0),
                    requests: report.records.len() as u64,
                    goodput_rps: report.goodput(&self.slo),
                    slo_attainment: report.slo_attainment(&self.slo),
                    ttft_p50_ms: ttft.p50.as_millis(),
                    ttft_p99_ms: ttft.p99.as_millis(),
                    cache_hit_rate: report.kv.hit_rate(),
                    prefix_evictions: report.kv.prefix_evictions,
                    tier_spills: report.kv.tier_spills,
                    tier_fetches: report.kv.tier_fetches,
                    tier_fetch_time_ms: report.kv.tier_fetch_time_s * 1e3,
                    preemptions: report.preemptions,
                }
            })
            .collect()
    }
}

// ---------------------------------------------------------------------
// Cluster sweeps (beyond the paper: the fleet regime)
// ---------------------------------------------------------------------

/// One `(fleet shape, arrival rate)` point of a cluster sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterSweepRow {
    /// Fleet shape label, `"{dp}x TP{tp}"`.
    pub shape: String,
    /// Nodes per tensor-parallel group.
    pub tp_degree: usize,
    /// Data-parallel replicas.
    pub dp_replicas: usize,
    /// Routing policy label.
    pub routing: String,
    /// Offered load, requests per second.
    pub rate_per_sec: f64,
    /// Requests served fleet-wide.
    pub requests: u64,
    /// Median fleet time-to-first-token, ms.
    pub ttft_p50_ms: f64,
    /// 99th-percentile fleet time-to-first-token, ms.
    pub ttft_p99_ms: f64,
    /// Median fleet time-per-output-token, ms.
    pub tpot_p50_ms: f64,
    /// 99th-percentile fleet time-per-output-token, ms.
    pub tpot_p99_ms: f64,
    /// Requests completed within the SLO, per second of fleet makespan.
    pub goodput_rps: f64,
    /// Fraction of requests meeting the SLO.
    pub slo_attainment: f64,
    /// Fleet output-token throughput.
    pub tokens_per_sec: f64,
    /// Replicas that served at least one request.
    pub replicas_used: usize,
}

/// A cluster-sweep specification: which fleet shapes (TP degree ×
/// DP replicas, same total node count or not) serve which Poisson
/// loads, scored against which SLO.
#[derive(Debug, Clone)]
pub struct ClusterSweep {
    /// Model served (sharded across each TP group).
    pub model: ModelPreset,
    /// Per-node design replicated across the fleet.
    pub design: DesignKind,
    /// Dataset category requests are drawn from.
    pub dataset: DatasetKind,
    /// Offered loads, requests per second.
    pub rates: Vec<f64>,
    /// Requests per `(shape, rate)` point.
    pub num_requests: usize,
    /// Fleet shapes compared, as `(tp_degree, dp_replicas)` pairs.
    pub shapes: Vec<(usize, usize)>,
    /// How each fleet's router picks replicas.
    pub routing: PolicySpec,
    /// Session knobs of every replica (the same struct every serving
    /// surface tunes through).
    pub tuning: SessionTuning,
    /// Latency objective goodput is scored against.
    pub slo: SloSpec,
    /// Seed shared by every point.
    pub seed: u64,
}

impl ClusterSweep {
    /// Serves every `(rate, shape)` point and collects one row each.
    ///
    /// Points are independent simulator runs and fan out across cores;
    /// results are deterministic and ordered rate-major, shape-minor.
    ///
    /// # Panics
    ///
    /// Panics if a shape is degenerate or exceeds the inter-node
    /// fabric's fan-out.
    pub fn run(&self) -> Vec<ClusterSweepRow> {
        let points: Vec<(f64, (usize, usize))> = self
            .rates
            .iter()
            .flat_map(|&rate| self.shapes.iter().map(move |&shape| (rate, shape)))
            .collect();
        points
            .par_iter()
            .map(|&(rate, (tp, dp))| {
                let workload = ServingWorkload::poisson(self.dataset, rate, self.num_requests)
                    .with_seed(self.seed);
                let engine = ClusterEngine::new(
                    ClusterSpec::new(self.design, self.model.config(), tp, dp)
                        .with_routing(self.routing)
                        .with_tuning(self.tuning.clone()),
                )
                .expect("sweep shape is a valid fleet");
                let report = engine.run(&workload);
                let ttft = report.ttft_summary().expect("non-empty episode");
                let tpot = report.tpot_summary().expect("non-empty episode");
                ClusterSweepRow {
                    shape: format!("{dp}x TP{tp}"),
                    tp_degree: tp,
                    dp_replicas: dp,
                    routing: self.routing.label().to_owned(),
                    rate_per_sec: rate,
                    requests: report.requests(),
                    ttft_p50_ms: ttft.p50.as_millis(),
                    ttft_p99_ms: ttft.p99.as_millis(),
                    tpot_p50_ms: tpot.p50.as_millis(),
                    tpot_p99_ms: tpot.p99.as_millis(),
                    goodput_rps: report.goodput(&self.slo),
                    slo_attainment: report.slo_attainment(&self.slo),
                    tokens_per_sec: report.tokens_per_second(),
                    replicas_used: report
                        .replicas
                        .iter()
                        .filter(|r| !r.records.is_empty())
                        .count(),
                }
            })
            .collect()
    }
}

// ---------------------------------------------------------------------
// Routing sweeps (beyond the paper: control-plane policy comparison)
// ---------------------------------------------------------------------

/// One `(routing policy, arrival rate)` point of a routing sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoutingSweepRow {
    /// Routing policy label.
    pub routing: String,
    /// Offered load, requests per second.
    pub rate_per_sec: f64,
    /// Requests served fleet-wide.
    pub requests: u64,
    /// Fleet-wide prefix-cache hit rate (fraction of prefill demand
    /// served from the replicas' caches).
    pub cache_hit_rate: f64,
    /// Requests completed within the SLO, per second of fleet makespan.
    pub goodput_rps: f64,
    /// Fraction of requests meeting the SLO.
    pub slo_attainment: f64,
    /// Median fleet time-to-first-token, ms.
    pub ttft_p50_ms: f64,
    /// 99th-percentile fleet time-to-first-token, ms.
    pub ttft_p99_ms: f64,
    /// Fleet output-token throughput.
    pub tokens_per_sec: f64,
    /// KV-pressure preemptions across the fleet.
    pub preemptions: u64,
    /// Replicas that served at least one request.
    pub replicas_used: usize,
}

/// A routing-policy sweep: the same prefix-structured load, the same
/// fleet, the same DRAM — only the control-plane policy differs, so any
/// gap in fleet hit rate or goodput is purely the router. This is the
/// experiment the closed routing enum could not express: policies like
/// [`PolicySpec::prefix_affinity`] need the arriving request's
/// conversation key, which only the trait-based [`RouteContext`]
/// carries.
///
/// [`RouteContext`]: papi_workload::RouteContext
#[derive(Debug, Clone)]
pub struct RoutingSweep {
    /// Model served.
    pub model: ModelPreset,
    /// Per-node design replicated across the fleet.
    pub design: DesignKind,
    /// Prefix-structured request population (multi-turn conversations).
    pub conversations: ConversationDataset,
    /// Offered loads, requests per second.
    pub rates: Vec<f64>,
    /// Requests per `(policy, rate)` point.
    pub num_requests: usize,
    /// Nodes per tensor-parallel group.
    pub tp_degree: usize,
    /// Data-parallel replicas behind the router.
    pub dp_replicas: usize,
    /// Routing policies compared.
    pub policies: Vec<PolicySpec>,
    /// Session knobs of every replica (prefix sharing should be on —
    /// otherwise there is no cache for routing to protect).
    pub tuning: SessionTuning,
    /// Latency objective goodput is scored against.
    pub slo: SloSpec,
    /// Seed shared by every point.
    pub seed: u64,
}

impl RoutingSweep {
    /// Serves every `(rate, policy)` point and collects one row each.
    ///
    /// Points are independent simulator runs and fan out across cores;
    /// results are deterministic and ordered rate-major, policy-minor.
    ///
    /// # Panics
    ///
    /// Panics if the fleet shape is degenerate or exceeds the
    /// inter-node fabric's fan-out.
    pub fn run(&self) -> Vec<RoutingSweepRow> {
        let points: Vec<(f64, PolicySpec)> = self
            .rates
            .iter()
            .flat_map(|&rate| self.policies.iter().map(move |&policy| (rate, policy)))
            .collect();
        points
            .par_iter()
            .map(|&(rate, policy)| {
                let workload =
                    ServingWorkload::poisson(self.conversations, rate, self.num_requests)
                        .with_seed(self.seed);
                let engine = ClusterEngine::new(
                    ClusterSpec::new(
                        self.design,
                        self.model.config(),
                        self.tp_degree,
                        self.dp_replicas,
                    )
                    .with_routing(policy)
                    .with_tuning(self.tuning.clone()),
                )
                .expect("sweep shape is a valid fleet");
                let report = engine.run(&workload);
                let ttft = report.ttft_summary().expect("non-empty episode");
                RoutingSweepRow {
                    routing: report.routing.clone(),
                    rate_per_sec: rate,
                    requests: report.requests(),
                    cache_hit_rate: report.cache_hit_rate(),
                    goodput_rps: report.goodput(&self.slo),
                    slo_attainment: report.slo_attainment(&self.slo),
                    ttft_p50_ms: ttft.p50.as_millis(),
                    ttft_p99_ms: ttft.p99.as_millis(),
                    tokens_per_sec: report.tokens_per_second(),
                    preemptions: report.preemptions(),
                    replicas_used: report
                        .replicas
                        .iter()
                        .filter(|r| !r.records.is_empty())
                        .count(),
                }
            })
            .collect()
    }
}

// ---------------------------------------------------------------------
// Fleet-wide prefix sharing (beyond the paper: global KV tier)
// ---------------------------------------------------------------------

/// One `(routing policy, shared-tier config, rate)` point of a
/// [`GlobalPrefixSweep`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GlobalPrefixRow {
    /// Routing policy label.
    pub routing: String,
    /// Shared-tier configuration: `"off"` for a private-tier fleet,
    /// otherwise the fabric pricing label (`"InfiniBand-NDR"`,
    /// `"free"`, …).
    pub shared_tier: String,
    /// Offered load, requests per second.
    pub rate_per_sec: f64,
    /// Requests served fleet-wide.
    pub requests: u64,
    /// Fleet-wide prefix hit rate (fraction of prefill demand served
    /// from cache, local tier, or remote fetch).
    pub cache_hit_rate: f64,
    /// Requests completed within the SLO, per second of fleet makespan.
    pub goodput_rps: f64,
    /// Fraction of requests meeting the SLO.
    pub slo_attainment: f64,
    /// Median fleet time-to-first-token, ms.
    pub ttft_p50_ms: f64,
    /// 99th-percentile fleet time-to-first-token, ms.
    pub ttft_p99_ms: f64,
    /// Fleet output-token throughput.
    pub tokens_per_sec: f64,
    /// Cross-replica re-materializations out of the fleet directory.
    pub remote_fetches: u64,
    /// Logical tokens restored across the inter-node fabric.
    pub remote_fetched_tokens: u64,
    /// Fetched payload crossing the fabric, GB.
    pub remote_fetch_gb: f64,
    /// Total wire time of those fetches (lands in TTFT), seconds.
    pub remote_fetch_time_s: f64,
    /// Total wire energy of those fetches, J.
    pub remote_fetch_energy_j: f64,
    /// Prefixes registered in the fleet directory at episode end.
    pub directory_entries: u64,
    /// Replicas that served at least one request.
    pub replicas_used: usize,
}

/// A fleet-wide prefix-sharing sweep: the same membership-skewed
/// multi-turn load, the same fleet — only the routing policy and the
/// shared-tier configuration differ. Private-tier fleets
/// (`shared_tiers` entry `None`) can only reuse a conversation's
/// context on its home replica; shared-tier fleets re-materialize it
/// from the owning replica at inter-node fabric cost, and the
/// [`TierPricing::Free`] ablation isolates how much of the remaining
/// gap is the wire.
#[derive(Debug, Clone)]
pub struct GlobalPrefixSweep {
    /// Model served.
    pub model: ModelPreset,
    /// Per-node design replicated across the fleet.
    pub design: DesignKind,
    /// Prefix-structured request population (multi-turn conversations).
    pub conversations: ConversationDataset,
    /// Offered loads, requests per second.
    pub rates: Vec<f64>,
    /// Requests per point.
    pub num_requests: usize,
    /// Nodes per tensor-parallel group.
    pub tp_degree: usize,
    /// Data-parallel replicas behind the router.
    pub dp_replicas: usize,
    /// Routing policies compared.
    pub policies: Vec<PolicySpec>,
    /// Shared-tier configurations compared (`None` = private tiers
    /// only).
    pub shared_tiers: Vec<Option<SharedTierSpec>>,
    /// Session knobs of every replica; must carry a `kv_tier` (the
    /// directory registers spilled records).
    pub tuning: SessionTuning,
    /// Latency objective goodput is scored against.
    pub slo: SloSpec,
    /// Seed shared by every point.
    pub seed: u64,
}

impl GlobalPrefixSweep {
    /// Serves every `(rate, shared-tier, policy)` point and collects
    /// one row each.
    ///
    /// Points are independent simulator runs and fan out across cores;
    /// results are deterministic and ordered rate-major, then
    /// shared-tier, then policy.
    ///
    /// # Panics
    ///
    /// Panics if the fleet shape is degenerate, exceeds the fabric's
    /// fan-out, or enables a shared tier without a private `kv_tier`.
    pub fn run(&self) -> Vec<GlobalPrefixRow> {
        let points: Vec<(f64, Option<SharedTierSpec>, PolicySpec)> = self
            .rates
            .iter()
            .flat_map(|&rate| {
                self.shared_tiers.iter().flat_map(move |tier| {
                    self.policies
                        .iter()
                        .map(move |&policy| (rate, tier.clone(), policy))
                })
            })
            .collect();
        points
            .par_iter()
            .map(|(rate, tier, policy)| {
                let workload =
                    ServingWorkload::poisson(self.conversations, *rate, self.num_requests)
                        .with_seed(self.seed);
                let mut spec = ClusterSpec::new(
                    self.design,
                    self.model.config(),
                    self.tp_degree,
                    self.dp_replicas,
                )
                .with_routing(*policy)
                .with_tuning(self.tuning.clone());
                if let Some(shared) = tier {
                    spec = spec.with_shared_tier(shared.clone());
                }
                let engine = ClusterEngine::new(spec).expect("sweep shape is a valid fleet");
                let report = engine.run(&workload);
                let ttft = report.ttft_summary().expect("non-empty episode");
                let global = report.global_tier.as_ref();
                GlobalPrefixRow {
                    routing: report.routing.clone(),
                    shared_tier: global.map_or_else(|| "off".to_owned(), |g| g.pricing.clone()),
                    rate_per_sec: *rate,
                    requests: report.requests(),
                    cache_hit_rate: report.cache_hit_rate(),
                    goodput_rps: report.goodput(&self.slo),
                    slo_attainment: report.slo_attainment(&self.slo),
                    ttft_p50_ms: ttft.p50.as_millis(),
                    ttft_p99_ms: ttft.p99.as_millis(),
                    tokens_per_sec: report.tokens_per_second(),
                    remote_fetches: global.map_or(0, |g| g.fetches),
                    remote_fetched_tokens: global.map_or(0, |g| g.fetched_tokens),
                    remote_fetch_gb: global.map_or(0.0, |g| g.bytes / 1e9),
                    remote_fetch_time_s: report
                        .replicas
                        .iter()
                        .map(|r| r.kv.remote_fetch_time_s)
                        .sum(),
                    remote_fetch_energy_j: global.map_or(0.0, |g| g.energy.value()),
                    directory_entries: global.map_or(0, |g| g.entries),
                    replicas_used: report
                        .replicas
                        .iter()
                        .filter(|r| !r.records.is_empty())
                        .count(),
                }
            })
            .collect()
    }
}

// ---------------------------------------------------------------------
// Autoscaling sweeps (beyond the paper: elastic fleet provisioning)
// ---------------------------------------------------------------------

/// One provisioning configuration's row of an [`AutoscaleSweep`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AutoscaleRow {
    /// Provisioning label: `"fixed"` for the peak-sized baseline,
    /// otherwise the autoscale policy's label.
    pub provisioning: String,
    /// Requests served fleet-wide.
    pub requests: u64,
    /// Requests completed within the SLO, per second of fleet makespan.
    pub goodput_rps: f64,
    /// Fraction of requests meeting the SLO.
    pub slo_attainment: f64,
    /// Median fleet time-to-first-token, ms.
    pub ttft_p50_ms: f64,
    /// 99th-percentile fleet time-to-first-token, ms.
    pub ttft_p99_ms: f64,
    /// Fleet output-token throughput.
    pub tokens_per_sec: f64,
    /// Total fleet energy, kJ.
    pub energy_kj: f64,
    /// Replica-hours the configuration provisioned (rented). For the
    /// fixed baseline this is `dp_replicas` × the episode length.
    pub provisioned_hours: f64,
    /// What the peak-sized fixed fleet rents over the same episode —
    /// the savings denominator (equal to `provisioned_hours` on the
    /// fixed row).
    pub fixed_fleet_hours: f64,
    /// Most replicas simultaneously active.
    pub peak_active: usize,
    /// Lifecycle transitions over the episode (0 for fixed).
    pub scale_events: usize,
    /// Fleet energy per SLO-good output token, J.
    pub energy_per_good_token_j: f64,
}

/// An elastic-provisioning sweep: the same workload (typically a
/// multi-hour [`ArrivalProcess::Diurnal`] or
/// [`ArrivalProcess::FlashCrowd`] arrival pattern), the same
/// peak-sized fleet — only the provisioning strategy differs. A `None`
/// entry is the fixed peak-sized baseline; each `Some(spec)` entry
/// lets the named [`AutoscalePolicy`](crate::autoscale::AutoscalePolicy)
/// resize the fleet, trading warm-up lag against replica-hours and
/// energy per good token.
#[derive(Debug, Clone)]
pub struct AutoscaleSweep {
    /// Model served.
    pub model: ModelPreset,
    /// Per-node design replicated across the fleet.
    pub design: DesignKind,
    /// The workload every configuration serves (seed included).
    pub workload: ServingWorkload,
    /// Nodes per tensor-parallel group.
    pub tp_degree: usize,
    /// Data-parallel replicas provisioned at peak.
    pub dp_replicas: usize,
    /// How the router picks replicas.
    pub routing: PolicySpec,
    /// Session knobs of every replica.
    pub tuning: SessionTuning,
    /// Latency objective goodput and "good tokens" are scored against.
    pub slo: SloSpec,
    /// Provisioning configurations compared (`None` = fixed fleet).
    pub autoscalers: Vec<Option<AutoscaleSpec>>,
}

impl AutoscaleSweep {
    /// Serves the workload under every provisioning configuration and
    /// collects one row each, in configuration order.
    ///
    /// Points are independent simulator runs and fan out across cores.
    ///
    /// # Panics
    ///
    /// Panics if the fleet shape is degenerate or an autoscale spec
    /// fails [`ClusterEngine::new`] validation.
    pub fn run(&self) -> Vec<AutoscaleRow> {
        self.autoscalers
            .par_iter()
            .map(|autoscale| {
                let mut spec = ClusterSpec::new(
                    self.design,
                    self.model.config(),
                    self.tp_degree,
                    self.dp_replicas,
                )
                .with_routing(self.routing)
                .with_tuning(self.tuning.clone());
                if let Some(autoscale) = autoscale {
                    spec = spec.with_autoscale(autoscale.clone());
                }
                let engine = ClusterEngine::new(spec).expect("sweep shape is a valid fleet");
                let report = engine.run(&self.workload);
                let ttft = report.ttft_summary().expect("non-empty episode");
                let energy = report.energy();
                let good_tokens: u64 = report
                    .records()
                    .filter(|r| r.meets(&self.slo))
                    .map(|r| r.output_tokens)
                    .sum();
                let cost = report.fleet_cost.as_ref();
                // The fixed baseline rents the whole fleet for the
                // whole episode.
                let fixed_hours = self.dp_replicas as f64 * report.makespan().value() / 3600.0;
                AutoscaleRow {
                    provisioning: cost.map_or_else(|| "fixed".to_owned(), |c| c.policy.clone()),
                    requests: report.requests(),
                    goodput_rps: report.goodput(&self.slo),
                    slo_attainment: report.slo_attainment(&self.slo),
                    ttft_p50_ms: ttft.p50.as_millis(),
                    ttft_p99_ms: ttft.p99.as_millis(),
                    tokens_per_sec: report.tokens_per_second(),
                    energy_kj: energy.value() / 1e3,
                    provisioned_hours: cost.map_or(fixed_hours, |c| c.provisioned_hours),
                    fixed_fleet_hours: cost.map_or(fixed_hours, |c| c.fixed_fleet_hours),
                    peak_active: cost.map_or(self.dp_replicas, |c| c.peak_active),
                    scale_events: cost.map_or(0, |c| c.scale_events.len()),
                    energy_per_good_token_j: cost.map_or_else(
                        || {
                            if good_tokens > 0 {
                                energy.value() / good_tokens as f64
                            } else {
                                0.0
                            }
                        },
                        |c| c.energy_per_good_token_j,
                    ),
                }
            })
            .collect()
    }
}

// ---------------------------------------------------------------------
// Disaggregation sweeps (beyond the paper: prefill/decode pools)
// ---------------------------------------------------------------------

/// One `(fleet, burst shape)` point of a disaggregation sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DisaggregationRow {
    /// Fleet label (`"4x PIM-only PAPI colocated"` or
    /// `"2x A100+AttAcc prefill + 2x PIM-only PAPI decode"`).
    pub fleet: String,
    /// Requests per synchronized burst.
    pub burst_size: usize,
    /// Gap between bursts, seconds.
    pub burst_interval_s: f64,
    /// Requests served fleet-wide.
    pub requests: u64,
    /// Requests completed within the SLO, per second of fleet makespan.
    pub goodput_rps: f64,
    /// Fraction of requests meeting the SLO.
    pub slo_attainment: f64,
    /// Median fleet time-to-first-token, ms.
    pub ttft_p50_ms: f64,
    /// 99th-percentile fleet time-to-first-token, ms.
    pub ttft_p99_ms: f64,
    /// Median fleet time-per-output-token, ms.
    pub tpot_p50_ms: f64,
    /// 99th-percentile fleet time-per-output-token, ms.
    pub tpot_p99_ms: f64,
    /// Fleet output-token throughput.
    pub tokens_per_sec: f64,
    /// Prefill→decode KV migrations.
    pub migrations: u64,
    /// KV payload moved over the fabric, GB.
    pub migrated_gb: f64,
    /// 99th-percentile migration transfer latency, ms (0 when nothing
    /// migrated).
    pub migration_p99_ms: f64,
    /// KV-pressure preemptions across the fleet.
    pub preemptions: u64,
}

/// A disaggregation sweep: the same bursty long-context load served by
/// a homogeneous co-located fleet vs a role-split fleet (GPU-heavy
/// prefill pool + PIM-heavy decode pool) of the *same node count and
/// the same per-node attention-pool DRAM* — so the gap is purely the
/// phase/hardware match plus the priced migration cost the split pays
/// for it. This is the cluster-scale mirror of PAPI's intra-node
/// thesis: prefill/FC is compute-bound, decode attention is
/// memory-bound, and the fleet should route each phase to the pool
/// built for it.
#[derive(Debug, Clone)]
pub struct DisaggregationSweep {
    /// Model served.
    pub model: ModelPreset,
    /// The homogeneous baseline's per-node design.
    pub colocated_design: DesignKind,
    /// The split fleet's prefill-pool design (compute-heavy).
    pub prefill_design: DesignKind,
    /// The split fleet's decode-pool design (memory-heavy).
    pub decode_design: DesignKind,
    /// Total replicas in both fleets.
    pub replicas: usize,
    /// How many of the split fleet's replicas prefill (the rest
    /// decode).
    pub prefill_replicas: usize,
    /// Request population (long-context for the prefill-heavy regime).
    pub dataset: DatasetKind,
    /// Burst shapes swept, as `(burst_size, interval_sec)` pairs.
    pub bursts: Vec<(usize, f64)>,
    /// Requests per `(fleet, burst)` point.
    pub num_requests: usize,
    /// Session knobs of every replica in both fleets.
    pub tuning: SessionTuning,
    /// Latency objective goodput is scored against.
    pub slo: SloSpec,
    /// Seed shared by every point.
    pub seed: u64,
}

impl DisaggregationSweep {
    /// The homogeneous and role-split fleet specs this sweep compares.
    fn specs(&self) -> [(String, ClusterSpec); 2] {
        let colocated =
            ClusterSpec::new(self.colocated_design, self.model.config(), 1, self.replicas)
                .with_tuning(self.tuning.clone());
        let roles: Vec<ReplicaRole> = (0..self.replicas)
            .map(|i| {
                if i < self.prefill_replicas {
                    ReplicaRole::Prefill
                } else {
                    ReplicaRole::Decode
                }
            })
            .collect();
        let split = ClusterSpec::new(self.decode_design, self.model.config(), 1, self.replicas)
            .with_roles(roles)
            .with_prefill_design(self.prefill_design)
            .with_migration(MigrationSpec::JoinShortestQueue)
            .with_tuning(self.tuning.clone());
        [
            (
                format!(
                    "{}x {} colocated",
                    self.replicas,
                    self.colocated_design.label()
                ),
                colocated,
            ),
            (
                format!(
                    "{}x {} prefill + {}x {} decode",
                    self.prefill_replicas,
                    self.prefill_design.label(),
                    self.replicas - self.prefill_replicas,
                    self.decode_design.label()
                ),
                split,
            ),
        ]
    }

    /// Serves every `(burst, fleet)` point and collects one row each.
    ///
    /// Points are independent simulator runs and fan out across cores;
    /// results are deterministic and ordered burst-major with the
    /// co-located baseline first at each point.
    ///
    /// # Panics
    ///
    /// Panics if the fleet shape is invalid (e.g. `prefill_replicas`
    /// not strictly between 0 and `replicas`).
    pub fn run(&self) -> Vec<DisaggregationRow> {
        let points: Vec<((usize, f64), usize)> = self
            .bursts
            .iter()
            .flat_map(|&burst| [(burst, 0usize), (burst, 1usize)])
            .collect();
        points
            .par_iter()
            .map(|&((burst_size, interval_sec), which)| {
                let (label, spec) = self.specs()[which].clone();
                let workload = ServingWorkload::new(
                    self.dataset,
                    ArrivalProcess::Bursty {
                        burst_size,
                        interval_sec,
                    },
                    self.num_requests,
                )
                .with_seed(self.seed);
                let report = ClusterEngine::new(spec)
                    .expect("sweep shape is a valid fleet")
                    .run(&workload);
                let ttft = report.ttft_summary().expect("non-empty episode");
                let tpot = report.tpot_summary().expect("non-empty episode");
                DisaggregationRow {
                    fleet: label,
                    burst_size,
                    burst_interval_s: interval_sec,
                    requests: report.requests(),
                    goodput_rps: report.goodput(&self.slo),
                    slo_attainment: report.slo_attainment(&self.slo),
                    ttft_p50_ms: ttft.p50.as_millis(),
                    ttft_p99_ms: ttft.p99.as_millis(),
                    tpot_p50_ms: tpot.p50.as_millis(),
                    tpot_p99_ms: tpot.p99.as_millis(),
                    tokens_per_sec: report.tokens_per_second(),
                    migrations: report.migration.migrations,
                    migrated_gb: report.migration.bytes / 1e9,
                    migration_p99_ms: report.migration.latency.map_or(0.0, |l| l.p99.as_millis()),
                    preemptions: report.preemptions(),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use papi_llm::Boundedness;
    use papi_types::geometric_mean;

    #[test]
    fn fig2_shapes() {
        let (a, b) = fig2_roofline();
        assert_eq!(a.len(), 12); // 6 batches × 2 kernels
        assert_eq!(b.len(), 8); // 4 speculation lengths × 2 kernels

        // Attention never compute-bound; FC flips in both sweeps.
        for p in a.iter().chain(&b) {
            if p.kernel == "Attention" {
                assert_eq!(p.boundedness, Boundedness::MemoryBound);
            }
        }
        assert!(a
            .iter()
            .any(|p| p.kernel == "FC" && p.boundedness == Boundedness::ComputeBound));
        assert!(a
            .iter()
            .any(|p| p.kernel == "FC" && p.boundedness == Boundedness::MemoryBound));
    }

    #[test]
    fn fig3_rlp_decays_to_one() {
        let (lifetimes, rlp) = fig3_rlp_decay(32, 5);
        assert_eq!(lifetimes.len(), 32);
        assert_eq!(rlp[0], 32);
        assert_eq!(*rlp.last().unwrap(), 1);
        assert!(rlp.windows(2).all(|w| w[1] <= w[0]));
    }

    #[test]
    fn fig4_pim_wins_low_batch_gpu_wins_high() {
        let rows = fig4_fc_latency();
        let find = |spec, batch, platform: &str| {
            rows.iter()
                .find(|r| r.speculation == spec && r.batch == batch && r.platform == platform)
                .unwrap()
                .normalized_to_a100
        };
        // Paper §3.3: batch 1 spec 8 and batch 4 spec 2 → AttAcc wins.
        assert!(find(8, 1, "AttAcc") < 1.0);
        assert!(find(2, 4, "AttAcc") < 1.0);
        // HBM-PIM (half the FPUs) wins at the lowest parallelism; its
        // crossover sits earlier than AttAcc's in our model (the paper
        // draws both under 1.0 at batch 4 × spec 2 — see EXPERIMENTS.md).
        assert!(find(2, 1, "HBM-PIM") < 1.0);
        // Exactly half the FPUs ⇒ exactly 2× AttAcc once compute-bound.
        assert!(find(2, 4, "HBM-PIM") < 2.05 * find(2, 4, "AttAcc"));
        // Batch 16+ → the A100 wins decisively.
        assert!(find(2, 16, "AttAcc") > 1.0);
        assert!(find(2, 64, "AttAcc") > 4.0);
        assert!(find(8, 64, "HBM-PIM") > 4.0);
    }

    #[test]
    fn fig7_power_rows_match_paper_claims() {
        let (no_reuse, reuse64, rows) = fig7_energy_power();
        let (dram1, ..) = no_reuse.fractions();
        assert!((dram1 - 0.967).abs() < 0.01);
        let (dram64, ..) = reuse64.fractions();
        assert!((dram64 - 0.33).abs() < 0.04);
        let at = |config: &str, reuse| {
            rows.iter()
                .find(|r| r.config == config && r.reuse == reuse)
                .unwrap()
        };
        assert!(!at("4P1B", 1).within_budget);
        assert!(at("4P1B", 1).power_watts > 250.0);
        assert!(at("4P1B", 4).within_budget);
        assert!(!at("1P1B", 1).within_budget);
        assert!(at("1P1B", 2).within_budget || at("1P1B", 4).within_budget);
        // 2P1B sits between the two.
        assert!(at("2P1B", 1).power_watts < at("4P1B", 1).power_watts);
        assert!(at("2P1B", 1).power_watts > at("1P1B", 1).power_watts * 0.9);
    }

    #[test]
    fn fig11_speedups_grow_with_parallelism() {
        let rows = fig11_pim_only(3);
        let papi_speedup = |spec, batch| {
            rows.iter()
                .find(|r| r.design == "PIM-only PAPI" && r.speculation == spec && r.batch == batch)
                .unwrap()
                .speedup
        };
        let low = papi_speedup(1, 4);
        let high = papi_speedup(4, 64);
        assert!(
            low > 1.0,
            "PIM-only PAPI should win even at low parallelism: {low}"
        );
        assert!(
            high > low,
            "speedup should grow with parallelism: {low} → {high}"
        );
        // Paper: 1.6× at (4, 1) rising to 2.7× at (64, 4); average 2.3×.
        let all: Vec<f64> = rows
            .iter()
            .filter(|r| r.design == "PIM-only PAPI")
            .map(|r| r.speedup)
            .collect();
        let mean = geometric_mean(&all).unwrap();
        assert!(mean > 1.5 && mean < 3.5, "mean PIM-only speedup {mean}");
    }

    #[test]
    fn parallel_grid_matches_serial_cells() {
        // The rayon fan-out must not change a single value or the row
        // order relative to running the cells one by one.
        let parallel = fig11_pim_only(3);
        let mut serial = Vec::new();
        for speculation in SPECULATION_LENGTHS {
            for batch in BATCHES {
                serial.extend(end_to_end_cell(
                    ModelPreset::Llama65B,
                    DatasetKind::CreativeWriting,
                    speculation,
                    batch,
                    &[DesignKind::AttAccOnly, DesignKind::PimOnlyPapi],
                    3,
                ));
            }
        }
        assert_eq!(parallel.len(), serial.len());
        for (p, s) in parallel.iter().zip(&serial) {
            assert_eq!(p.design, s.design);
            assert_eq!(p.batch, s.batch);
            assert_eq!(p.speculation, s.speculation);
            assert_eq!(p.latency_s, s.latency_s);
            assert_eq!(p.energy_j, s.energy_j);
        }
    }

    #[test]
    fn load_sweep_goodput_degrades_with_rate() {
        let rows = LoadSweep {
            model: ModelPreset::Llama65B,
            dataset: DatasetKind::GeneralQa,
            rates: vec![0.5, 4.0, 32.0],
            num_requests: 48,
            designs: vec![DesignKind::Papi, DesignKind::A100AttAcc],
            max_batch: 32,
            slo: SloSpec::interactive(2_000.0, 60.0),
            seed: 7,
        }
        .run();
        assert_eq!(rows.len(), 6);
        let papi_at = |rate: f64| {
            rows.iter()
                .find(|r| r.design == "PAPI" && r.rate_per_sec == rate)
                .unwrap()
        };
        // Tail latency grows with offered load; attainment falls.
        assert!(papi_at(32.0).ttft_p99_ms > papi_at(0.5).ttft_p99_ms);
        assert!(papi_at(32.0).slo_attainment <= papi_at(0.5).slo_attainment);
    }

    #[test]
    fn prefix_cache_sweep_beats_scalar_at_equal_dram() {
        let rows = PrefixCacheSweep {
            model: ModelPreset::Llama65B,
            design: DesignKind::PimOnlyPapi,
            conversations: ConversationDataset::multi_turn(DatasetKind::GeneralQa, 512, 4),
            rates: vec![4.0],
            num_requests: 48,
            max_batch: 16,
            kv_headroom: 0.05,
            block_size: 16,
            prefill_chunk: None,
            slo: SloSpec::interactive(4_000.0, 80.0),
            seed: 7,
        }
        .run();
        assert_eq!(rows.len(), 2);
        let scalar = &rows[0];
        let paged = &rows[1];
        assert_eq!(scalar.mode, "scalar");
        assert_eq!(paged.mode, "paged+prefix");
        assert_eq!(scalar.requests, 48);
        assert_eq!(paged.requests, 48);
        assert_eq!(scalar.cache_hit_rate, 0.0);
        assert!(
            paged.cache_hit_rate > 0.2,
            "conversation turns should hit: {}",
            paged.cache_hit_rate
        );
        assert!(
            paged.goodput_rps > scalar.goodput_rps,
            "prefix caching should win goodput at equal DRAM: {} vs {}",
            paged.goodput_rps,
            scalar.goodput_rps
        );
    }

    #[test]
    fn tiered_kv_sweep_rows_are_ordered_and_tier_points_spill() {
        let rows = TieredKvSweep {
            model: ModelPreset::Gpt3_175B,
            design: DesignKind::PimOnlyPapi,
            conversations: ConversationDataset::multi_turn(DatasetKind::LongContext, 4096, 3),
            rate_per_sec: 1.0,
            num_requests: 120,
            max_batch: 16,
            kv_headroom: crate::serving::DEFAULT_KV_HEADROOM,
            block_size: 16,
            tier_budgets: vec![60_000],
            pricing: TierPricing::default(),
            slo: SloSpec::interactive(600_000.0, 400.0),
            seed: 23,
        }
        .run();
        assert_eq!(rows.len(), 2);
        let evict = &rows[0];
        let tiered = &rows[1];
        assert_eq!(evict.mode, "evict");
        assert_eq!(evict.tier_budget_blocks, 0);
        assert_eq!(evict.tier_spills, 0);
        assert_eq!(tiered.mode, "tier:60000@host-dimm");
        assert!(tiered.tier_spills > 0, "the tier point should spill");
        assert!(tiered.tier_fetches > 0, "the tier point should fetch");
        assert!(tiered.tier_fetch_time_ms > 0.0);
        assert!(
            tiered.cache_hit_rate > evict.cache_hit_rate,
            "fetches should lift the hit rate: {} vs {}",
            tiered.cache_hit_rate,
            evict.cache_hit_rate
        );
    }

    #[test]
    fn cluster_sweep_exposes_the_tp_dp_trade() {
        let rows = ClusterSweep {
            model: ModelPreset::Llama65B,
            design: DesignKind::PimOnlyPapi,
            dataset: DatasetKind::GeneralQa,
            rates: vec![0.5, 24.0],
            num_requests: 48,
            shapes: vec![(4, 1), (1, 4)],
            routing: PolicySpec::JoinShortestQueue,
            tuning: SessionTuning::default().with_max_batch(16),
            slo: SloSpec::interactive(2_000.0, 60.0),
            seed: 11,
        }
        .run();
        assert_eq!(rows.len(), 4);
        let at = |shape: &str, rate: f64| {
            rows.iter()
                .find(|r| r.shape == shape && r.rate_per_sec == rate)
                .unwrap()
        };
        // TP wins single-request latency at light load…
        assert!(at("1x TP4", 0.5).tpot_p50_ms < at("4x TP1", 0.5).tpot_p50_ms);
        // …DP wins goodput once the offered load saturates one queue.
        assert!(at("4x TP1", 24.0).goodput_rps > at("1x TP4", 24.0).goodput_rps);
        assert_eq!(at("4x TP1", 24.0).requests, 48);
    }

    /// The ROADMAP headline: on a multi-turn conversation fleet at
    /// equal DRAM, prefix-affinity routing recovers the cache hits
    /// prefix-oblivious JSQ scatters away, and converts them to
    /// goodput.
    #[test]
    fn routing_sweep_prefix_affinity_beats_jsq_on_conversations() {
        let rows = RoutingSweep {
            model: ModelPreset::Llama65B,
            design: DesignKind::PimOnlyPapi,
            conversations: ConversationDataset::multi_turn(DatasetKind::GeneralQa, 512, 4),
            rates: vec![6.0],
            num_requests: 64,
            tp_degree: 1,
            dp_replicas: 4,
            policies: vec![PolicySpec::JoinShortestQueue, PolicySpec::prefix_affinity()],
            tuning: SessionTuning::default()
                .with_max_batch(16)
                .with_kv_block_size(16)
                .with_prefix_sharing(true),
            slo: SloSpec::interactive(4_000.0, 80.0),
            seed: 7,
        }
        .run();
        assert_eq!(rows.len(), 2);
        let jsq = &rows[0];
        let affinity = &rows[1];
        assert_eq!(jsq.routing, "join-shortest-queue");
        assert_eq!(affinity.routing, "prefix-affinity");
        assert_eq!(jsq.requests, 64);
        assert_eq!(affinity.requests, 64);
        assert!(
            affinity.cache_hit_rate > jsq.cache_hit_rate + 0.1,
            "affinity should recover scattered hits: {} vs {}",
            affinity.cache_hit_rate,
            jsq.cache_hit_rate
        );
        assert!(
            affinity.goodput_rps > jsq.goodput_rps,
            "recovered hits should buy goodput: {} vs {}",
            affinity.goodput_rps,
            jsq.goodput_rps
        );
    }

    /// The global-prefix sweep's grid discipline: rate-major, then
    /// shared-tier configuration, then policy, with the tier column
    /// labeled by its pricing — and the shared-tier rows actually use
    /// the fabric on the membership-skewed workload while the
    /// private-tier rows cannot.
    #[test]
    fn global_prefix_sweep_orders_rows_and_uses_the_fabric() {
        let rows = GlobalPrefixSweep {
            model: ModelPreset::Gpt3_175B,
            design: DesignKind::PimOnlyPapi,
            conversations: ConversationDataset::multi_turn(DatasetKind::LongContext, 8192, 12),
            rates: vec![0.15],
            num_requests: 120,
            tp_degree: 1,
            dp_replicas: 2,
            policies: vec![
                PolicySpec::prefix_affinity(),
                PolicySpec::shared_tier_affinity(),
            ],
            shared_tiers: vec![None, Some(SharedTierSpec::new())],
            tuning: SessionTuning::default()
                .with_max_batch(16)
                .with_kv_block_size(16)
                .with_prefix_sharing(true)
                .with_kv_tier(crate::KvTierSpec::new(60_000)),
            slo: SloSpec::interactive(8_000.0, 80.0),
            seed: 23,
        }
        .run();
        assert_eq!(rows.len(), 4);
        assert_eq!(
            rows.iter()
                .map(|r| r.shared_tier.as_str())
                .collect::<Vec<_>>(),
            ["off", "off", "InfiniBand-NDR", "InfiniBand-NDR"]
        );
        assert_eq!(rows[0].routing, "prefix-affinity");
        assert_eq!(rows[1].routing, "shared-tier-affinity");
        for row in &rows {
            assert_eq!(row.requests, 120);
            assert_eq!(row.replicas_used, 2);
        }
        // Private tiers cannot cross the fabric...
        assert_eq!(rows[0].remote_fetches, 0);
        assert_eq!(rows[1].remote_fetches, 0);
        assert_eq!(rows[0].directory_entries, 0);
        // ...and the shared tier does, with honest wire accounting and
        // a fleet-level hit-rate win for the relaxing policy.
        let shared = &rows[3];
        assert!(shared.remote_fetches > 0, "fabric unused");
        assert!(shared.remote_fetch_gb > 0.0);
        assert!(shared.remote_fetch_time_s > 0.0);
        assert!(shared.remote_fetch_energy_j > 0.0);
        assert!(shared.directory_entries > 0);
        assert!(
            shared.cache_hit_rate > rows[0].cache_hit_rate,
            "shared tier should lift the fleet hit rate: {} vs {}",
            shared.cache_hit_rate,
            rows[0].cache_hit_rate
        );
    }

    /// The ISSUE-5 acceptance headline: at equal node count and equal
    /// per-node attention-pool DRAM, splitting the fleet into a
    /// GPU-heavy prefill pool and a PIM-heavy decode pool beats the
    /// homogeneous co-located fleet on p99 TTFT under bursty
    /// long-context load — even paying real (fabric-priced) KV
    /// migration for every request.
    #[test]
    fn disaggregation_sweep_split_beats_colocated_p99_ttft() {
        let rows = DisaggregationSweep {
            model: ModelPreset::Llama65B,
            colocated_design: DesignKind::PimOnlyPapi,
            prefill_design: DesignKind::A100AttAcc,
            decode_design: DesignKind::PimOnlyPapi,
            replicas: 4,
            prefill_replicas: 2,
            dataset: DatasetKind::LongContext,
            bursts: vec![(16, 10.0)],
            num_requests: 48,
            tuning: SessionTuning::default().with_max_batch(16),
            slo: SloSpec::interactive(10_000.0, 120.0),
            seed: 7,
        }
        .run();
        assert_eq!(rows.len(), 2);
        let colocated = &rows[0];
        let split = &rows[1];
        assert!(colocated.fleet.contains("colocated"));
        assert!(split.fleet.contains("prefill"));
        assert_eq!(colocated.requests, 48);
        assert_eq!(split.requests, 48);
        // Conservation through migration: every request crossed the
        // fabric exactly once, and the payload was actually priced.
        assert_eq!(split.migrations, 48);
        assert!(split.migrated_gb > 0.0);
        assert!(split.migration_p99_ms > 0.0);
        assert_eq!(colocated.migrations, 0);
        // The headline: the split wins tail TTFT decisively (prefill
        // waves run on GPUs, decode never stalls behind them), and
        // does not give up goodput for it.
        assert!(
            split.ttft_p99_ms < 0.8 * colocated.ttft_p99_ms,
            "split p99 TTFT {} should clearly beat colocated {}",
            split.ttft_p99_ms,
            colocated.ttft_p99_ms
        );
        assert!(
            split.goodput_rps >= colocated.goodput_rps,
            "split goodput {} should not trail colocated {}",
            split.goodput_rps,
            colocated.goodput_rps
        );
    }

    #[test]
    fn fig12_breakdown_shape() {
        let rows = fig12_breakdown(1);
        assert_eq!(rows.len(), 2);
        let attacc = &rows[0];
        let papi = &rows[1];
        // FC dominates both designs; PAPI's FC is ~3× faster; attention
        // is slower on Attn-PIM (1P2B) than AttAcc (1P1B).
        assert!(attacc.fc_ms > attacc.attention_ms);
        let fc_ratio = attacc.fc_ms / papi.fc_ms;
        assert!(
            fc_ratio > 2.5 && fc_ratio < 3.5,
            "FC speedup {fc_ratio}, paper: 2.9×"
        );
        let attn_ratio = papi.attention_ms / attacc.attention_ms;
        assert!(
            attn_ratio > 1.3 && attn_ratio < 2.1,
            "attention slowdown {attn_ratio}, paper: 1.7×"
        );
        assert!(papi.total_ms() < attacc.total_ms());
    }
}
