//! System assembly: the five designs of the paper's evaluation.

use papi_gpu::{GpuEnergyModel, GpuSpec, MultiGpu};
use papi_interconnect::{LinkSpec, SystemTopology};
use papi_llm::ModelConfig;
use papi_pim::PimDevice;
use papi_sched::calibration::Calibration;
use papi_sched::{calibrate_alpha, FcScheduler, PapiScheduler, StaticScheduler};
use papi_types::Time;
use serde::{Deserialize, Serialize};

/// Which of the paper's evaluated designs a [`SystemConfig`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DesignKind {
    /// The full PAPI system (dynamic scheduling + hybrid PIM).
    Papi,
    /// 6×A100 + AttAcc attention PIM (state-of-the-art heterogeneous).
    A100AttAcc,
    /// 6×A100 + Samsung HBM-PIM attention devices.
    A100HbmPim,
    /// AttAcc PIM only (FC and attention both on 1P1B PIM).
    AttAccOnly,
    /// PAPI's PIM side only: FC-PIM + Attn-PIM, no GPU (Fig. 11/12).
    PimOnlyPapi,
}

impl DesignKind {
    /// The four designs of the Fig. 8 end-to-end comparison.
    pub const FIG8: [DesignKind; 4] = [
        DesignKind::A100AttAcc,
        DesignKind::A100HbmPim,
        DesignKind::AttAccOnly,
        DesignKind::Papi,
    ];

    /// Display label matching the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            DesignKind::Papi => "PAPI",
            DesignKind::A100AttAcc => "A100+AttAcc",
            DesignKind::A100HbmPim => "A100+HBM-PIM",
            DesignKind::AttAccOnly => "AttAcc-only",
            DesignKind::PimOnlyPapi => "PIM-only PAPI",
        }
    }
}

impl core::fmt::Display for DesignKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// Which FC-placement policy the system runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// PAPI's dynamic α-threshold policy.
    PapiDynamic {
        /// The calibrated memory-boundedness threshold.
        alpha: f64,
    },
    /// FC always on the GPU (AttAcc-style static mapping).
    FcOnGpu,
    /// FC always on PIM (IANUS / PIM-only mapping).
    FcOnPim,
}

impl SchedulerKind {
    /// Instantiates a fresh stateful scheduler for one decode.
    pub fn build(&self) -> Box<dyn FcScheduler> {
        match *self {
            SchedulerKind::PapiDynamic { alpha } => Box::new(PapiScheduler::new(alpha)),
            SchedulerKind::FcOnGpu => Box::new(StaticScheduler::attacc()),
            SchedulerKind::FcOnPim => Box::new(StaticScheduler::pim_only()),
        }
    }
}

/// Tensor-parallel sharding of one logical engine across `degree`
/// nodes joined by `fabric`.
///
/// Each node holds `1/degree` of the FC weights and `1/degree` of the
/// Attn-PIM KV capacity; the group acts as one logical
/// [`SystemConfig`] with `degree ×` every device pool, paying a
/// per-layer activation all-reduce over `fabric` each iteration (priced
/// by [`IterationPricer`](crate::pricer::IterationPricer)) plus a KV
/// shard-scatter at prefill.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TpGroup {
    /// Nodes sharing the shard.
    pub degree: usize,
    /// The inter-node fabric TP collectives cross.
    pub fabric: LinkSpec,
}

/// A fully assembled computing system ready to decode.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Which paper design this is.
    pub design: DesignKind,
    /// The model being served.
    pub model: ModelConfig,
    /// The GPU complement, if the design has one.
    pub gpus: Option<MultiGpu>,
    /// GPU energy constants.
    pub gpu_energy: GpuEnergyModel,
    /// The PIM pool holding FC weights (device preset + count), if the
    /// design can run FC kernels on PIM.
    pub fc_pim: Option<(PimDevice, usize)>,
    /// The PIM pool holding attention KV caches (device preset + count).
    pub attn_pim: (PimDevice, usize),
    /// Interconnect wiring.
    pub topology: SystemTopology,
    /// FC placement policy.
    pub scheduler: SchedulerKind,
    /// Host dispatch overhead charged per decoder layer per iteration
    /// (the "Other" sliver of Fig. 12).
    pub dispatch_per_layer: Time,
    /// Fixed host overhead per iteration (batch assembly, token
    /// gather/scan for `<|eos|>` — the §5.2.2 monitoring step).
    pub dispatch_per_iteration: Time,
    /// Tensor-parallel sharding across nodes, if this logical system is
    /// a multi-node TP group (`None` for the paper's single node).
    pub tp: Option<TpGroup>,
}

/// Devices holding FC weights (paper §7.1: 30 of the 90 HBM stacks).
pub const FC_POOL_DEVICES: usize = 30;
/// Devices holding attention KV caches (the other 60).
pub const ATTN_POOL_DEVICES: usize = 60;

impl SystemConfig {
    fn base(
        design: DesignKind,
        model: ModelConfig,
        gpus: Option<MultiGpu>,
        fc_pim: Option<(PimDevice, usize)>,
        attn_pim: (PimDevice, usize),
        scheduler: SchedulerKind,
    ) -> Self {
        Self {
            design,
            model,
            gpus,
            gpu_energy: GpuEnergyModel::a100(),
            fc_pim,
            attn_pim,
            topology: SystemTopology::papi_default(FC_POOL_DEVICES, ATTN_POOL_DEVICES)
                .expect("paper topology is valid"),
            scheduler,
            dispatch_per_layer: Time::from_micros(1.5),
            dispatch_per_iteration: Time::from_micros(100.0),
            tp: None,
        }
    }

    /// The full PAPI system: 6 GPUs (60 GB visible each), 30 FC-PIM
    /// devices, 60 Attn-PIM devices, dynamic α-threshold scheduling with
    /// α calibrated offline for `model` (paper §5.2.1).
    pub fn papi(model: ModelConfig) -> Self {
        let calibration = Self::calibrate(&model);
        Self::papi_with_alpha(model, calibration.alpha)
    }

    /// PAPI with an explicit α (for threshold-sensitivity studies).
    pub fn papi_with_alpha(model: ModelConfig, alpha: f64) -> Self {
        let mut gpus = MultiGpu::dgx6_a100();
        gpus.gpu = GpuSpec::a100_papi_60gb();
        Self::base(
            DesignKind::Papi,
            model,
            Some(gpus),
            Some((PimDevice::fc_pim(), FC_POOL_DEVICES)),
            (PimDevice::attn_pim(), ATTN_POOL_DEVICES),
            SchedulerKind::PapiDynamic { alpha },
        )
    }

    /// The A100+AttAcc baseline: FC always on 6 GPUs, attention on
    /// AttAcc 1P1B devices.
    pub fn a100_attacc(model: ModelConfig) -> Self {
        Self::base(
            DesignKind::A100AttAcc,
            model,
            Some(MultiGpu::dgx6_a100()),
            None,
            (PimDevice::attacc(), ATTN_POOL_DEVICES),
            SchedulerKind::FcOnGpu,
        )
    }

    /// The A100+HBM-PIM baseline: FC always on 6 GPUs, attention on
    /// Samsung-style 1P2B devices.
    pub fn a100_hbm_pim(model: ModelConfig) -> Self {
        Self::base(
            DesignKind::A100HbmPim,
            model,
            Some(MultiGpu::dgx6_a100()),
            None,
            (PimDevice::hbm_pim(), ATTN_POOL_DEVICES),
            SchedulerKind::FcOnGpu,
        )
    }

    /// The AttAcc-only baseline: both kernel families on 1P1B PIM.
    pub fn attacc_only(model: ModelConfig) -> Self {
        Self::base(
            DesignKind::AttAccOnly,
            model,
            None,
            Some((PimDevice::attacc(), FC_POOL_DEVICES)),
            (PimDevice::attacc(), ATTN_POOL_DEVICES),
            SchedulerKind::FcOnPim,
        )
    }

    /// PAPI's PIM side alone (Fig. 11/12): FC on FC-PIM, attention on
    /// Attn-PIM, no GPU.
    pub fn pim_only_papi(model: ModelConfig) -> Self {
        Self::base(
            DesignKind::PimOnlyPapi,
            model,
            None,
            Some((PimDevice::fc_pim(), FC_POOL_DEVICES)),
            (PimDevice::attn_pim(), ATTN_POOL_DEVICES),
            SchedulerKind::FcOnPim,
        )
    }

    /// Shards this system tensor-parallel across `degree` nodes joined
    /// by `fabric`.
    ///
    /// Every device pool (GPUs, FC-PIM, Attn-PIM) scales by `degree` —
    /// equivalently, each node holds `1/degree` of the FC weights and
    /// KV capacity — and each decoding iteration pays the per-layer
    /// activation all-reduce over `fabric`, priced through the shared
    /// [`IterationPricer`](crate::pricer::IterationPricer). A dynamic
    /// PAPI scheduler is recalibrated against the sharded pools (wider
    /// groups shift the FC memory-boundedness crossover α).
    ///
    /// `degree == 1` is the identity: the config is returned unchanged,
    /// so a TP-1 "group" reproduces the single node exactly.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is zero.
    #[track_caller]
    pub fn with_tensor_parallel(mut self, degree: usize, fabric: LinkSpec) -> Self {
        assert!(degree > 0, "a TP group needs at least one node");
        if degree == 1 {
            return self;
        }
        if let Some(gpus) = &mut self.gpus {
            gpus.count *= degree;
        }
        if let Some((_, count)) = &mut self.fc_pim {
            *count *= degree;
        }
        self.attn_pim.1 *= degree;
        // Each node owns its own intra-node links: the group's pooled
        // traffic sees `degree ×` every route's bandwidth.
        self.topology = self.topology.clone().aggregated(degree);
        self.tp = Some(TpGroup { degree, fabric });
        if let SchedulerKind::PapiDynamic { .. } = self.scheduler {
            if let (Some((fc_device, fc_count)), Some(gpus)) = (&self.fc_pim, &self.gpus) {
                let calibration = calibrate_alpha(
                    |tokens| {
                        crate::pricer::fc_latency_on_pim(&self.model, fc_device, *fc_count, tokens)
                    },
                    |tokens| {
                        crate::pricer::fc_latency_on_pu(&self.model, gpus, &self.gpu_energy, tokens)
                    },
                    512,
                );
                self.scheduler = SchedulerKind::PapiDynamic {
                    alpha: calibration.alpha,
                };
            }
        }
        self
    }

    /// Builds the design `kind` for `model`.
    pub fn build(kind: DesignKind, model: ModelConfig) -> Self {
        match kind {
            DesignKind::Papi => Self::papi(model),
            DesignKind::A100AttAcc => Self::a100_attacc(model),
            DesignKind::A100HbmPim => Self::a100_hbm_pim(model),
            DesignKind::AttAccOnly => Self::attacc_only(model),
            DesignKind::PimOnlyPapi => Self::pim_only_papi(model),
        }
    }

    /// The §5.2.1 offline calibration: sweep token counts, measure the
    /// FC latency on both FC-PIM and the PUs using the same latency
    /// models the engine runs, and return the crossover α.
    pub fn calibrate(model: &ModelConfig) -> Calibration {
        let fc_pim = PimDevice::fc_pim();
        let mut gpus = MultiGpu::dgx6_a100();
        gpus.gpu = GpuSpec::a100_papi_60gb();
        let gpu_energy = GpuEnergyModel::a100();
        calibrate_alpha(
            |tokens| crate::engine::fc_latency_on_pim(model, &fc_pim, FC_POOL_DEVICES, tokens),
            |tokens| crate::engine::fc_latency_on_pu(model, &gpus, &gpu_energy, tokens),
            512,
        )
    }

    /// Memory sanity: FC weight pool capacity versus model size, and the
    /// attention pool versus a KV demand in bytes.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// capacity.
    pub fn validate_capacity(&self, kv_demand_bytes: f64) -> Result<(), String> {
        if let Some((device, count)) = &self.fc_pim {
            let pool = device.capacity().value() * *count as f64;
            if self.model.weight_bytes().value() > pool {
                return Err(format!(
                    "{}: FC weights ({:.0} GB) exceed the {}-device FC-PIM pool ({:.0} GB)",
                    self.design,
                    self.model.weight_bytes().value() / 1e9,
                    count,
                    pool / 1e9
                ));
            }
        } else if let Some(gpus) = &self.gpus {
            let pool = gpus.memory().value();
            if self.model.weight_bytes().value() > pool {
                return Err(format!(
                    "{}: FC weights exceed GPU memory ({:.0} GB)",
                    self.design,
                    pool / 1e9
                ));
            }
        }
        let (attn_device, attn_count) = &self.attn_pim;
        let attn_pool = attn_device.capacity().value() * *attn_count as f64;
        if kv_demand_bytes > attn_pool {
            return Err(format!(
                "{}: KV cache ({:.0} GB) exceeds the {}-device Attn-PIM pool ({:.0} GB)",
                self.design,
                kv_demand_bytes / 1e9,
                attn_count,
                attn_pool / 1e9
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use papi_llm::ModelPreset;

    #[test]
    fn paper_pool_sizing_fits_gpt3_175b() {
        // §7.1: 30 × 12 GB FC-PIM = 360 GB just fits GPT-3 175B's 350 GB.
        let papi = SystemConfig::papi_with_alpha(ModelPreset::Gpt3_175B.config(), 24.0);
        papi.validate_capacity(0.0).unwrap();
        let (fc, n) = papi.fc_pim.as_ref().unwrap();
        let pool_gb = fc.capacity().value() * *n as f64 / 1e9;
        assert!(pool_gb > 350.0 && pool_gb < 400.0, "pool {pool_gb} GB");
    }

    #[test]
    fn kv_capacity_violation_detected() {
        let papi = SystemConfig::papi_with_alpha(ModelPreset::Llama65B.config(), 24.0);
        // 60 × 16 GB ≈ 1031 GB pool.
        assert!(papi.validate_capacity(1.2e12).is_err());
        assert!(papi.validate_capacity(0.9e12).is_ok());
    }

    #[test]
    fn designs_have_expected_hardware() {
        let model = ModelPreset::Llama65B.config();
        let attacc = SystemConfig::a100_attacc(model.clone());
        assert!(attacc.gpus.is_some());
        assert!(attacc.fc_pim.is_none());
        assert_eq!(attacc.attn_pim.0.config.label(), "1P1B");

        let hbm = SystemConfig::a100_hbm_pim(model.clone());
        assert_eq!(hbm.attn_pim.0.config.label(), "1P2B");

        let pim_only = SystemConfig::pim_only_papi(model.clone());
        assert!(pim_only.gpus.is_none());
        assert_eq!(pim_only.fc_pim.as_ref().unwrap().0.config.label(), "4P1B");

        let attacc_only = SystemConfig::attacc_only(model);
        assert!(attacc_only.gpus.is_none());
        assert_eq!(
            attacc_only.fc_pim.as_ref().unwrap().0.config.label(),
            "1P1B"
        );
    }

    #[test]
    fn calibrated_alpha_is_in_the_expected_band() {
        // The crossover between 30 FC-PIM devices and 6 A100s sits in the
        // tens of tokens (the Fig. 4 regime: PIM wins at batch ≤ 4–8,
        // the GPU from ~16–32 on).
        let cal = SystemConfig::calibrate(&ModelPreset::Llama65B.config());
        assert!(
            cal.alpha > 4.0 && cal.alpha < 64.0,
            "alpha {} outside plausible band",
            cal.alpha
        );
    }

    #[test]
    fn build_dispatches_all_designs() {
        let model = ModelPreset::Gpt3_66B.config();
        for kind in [
            DesignKind::A100AttAcc,
            DesignKind::A100HbmPim,
            DesignKind::AttAccOnly,
            DesignKind::PimOnlyPapi,
        ] {
            let cfg = SystemConfig::build(kind, model.clone());
            assert_eq!(cfg.design, kind);
        }
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(DesignKind::Papi.label(), "PAPI");
        assert_eq!(DesignKind::A100AttAcc.to_string(), "A100+AttAcc");
    }
}
