//! Elastic fleet autoscaling: replica lifecycle, scaling policies, and
//! cost-per-good-token accounting.
//!
//! A production fleet sized for the diurnal peak idles most of the day;
//! one sized for the trough melts at noon. This module lets a
//! [`ClusterEngine`](crate::cluster::ClusterEngine) resize itself
//! mid-episode: each replica carries a
//! [`ReplicaState`] lifecycle
//! (`Warming → Active → Draining → Retired`), and an
//! [`AutoscalePolicy`] — the sixth trait seam — is consulted at
//! control-plane barriers every
//! [`decide_interval_s`](AutoscaleSpec::decide_interval_s) simulated
//! seconds with an [`AutoscaleView`] of the fleet, answering with
//! [`ScaleAction`]s:
//!
//! - **Activate** a `Retired` replica: it flushes its prefix cache and
//!   capacity tier (a re-provisioned replica's DRAM is cold), spends
//!   [`spin_up_s`](AutoscaleSpec::spin_up_s) seconds `Warming` — during
//!   which it admits nothing — and then joins the `Active` set.
//!   Activating a `Draining` replica cancels the drain instantly (it is
//!   still warm).
//! - **Drain** an `Active` replica: it stops receiving arrivals and
//!   consistent-hash homes but finishes every request already pushed to
//!   it, then retires at a later barrier once idle. The engine never
//!   drains below [`min_replicas`](AutoscaleSpec::min_replicas).
//!
//! Provisioning cost is reported honestly in a [`FleetCostReport`]:
//! replica-hours by state (the rental-cost currency — an idle
//! provisioned replica still costs money even though the simulator
//! only accrues *energy* for work performed), energy per SLO-good
//! token, and the full scale-event log.
//!
//! Both [`StepMode`](crate::cluster::StepMode)s evaluate decisions on
//! the same tick schedule (the same latching discipline as the shared
//! tier's gossip ticks), so parallel fleets stay bit-for-bit equal to
//! sequential with autoscaling on.

use crate::metrics::{RequestRecord, ServingReport};
use crate::serving::ServingSession;
use crate::slo::SloSpec;
use papi_types::Energy;
use papi_workload::{HashRing, ReplicaRole, ReplicaSnapshot, ReplicaState};
use serde::{Deserialize, Serialize};

/// The fleet state an [`AutoscalePolicy`] decides over: one
/// lifecycle-stamped [`ReplicaSnapshot`] per replica (provisioned or
/// not) plus the completion records of the window since the previous
/// decision.
#[derive(Debug)]
pub struct AutoscaleView<'a> {
    /// The decision instant, seconds of simulated time.
    pub now_s: f64,
    /// Every replica's snapshot, lifecycle- and role-stamped, indexed
    /// by replica.
    pub replicas: &'a [ReplicaSnapshot],
    /// The floor the engine enforces on the `Active` count.
    pub min_replicas: usize,
    /// The provisioning ceiling (the fleet's `dp_replicas`).
    pub max_replicas: usize,
    /// Requests completed anywhere in the fleet since the previous
    /// decision, in replica order — the windowed signal SLO-burn
    /// policies integrate.
    pub recent: &'a [RequestRecord],
}

impl AutoscaleView<'_> {
    /// Replicas currently serving traffic.
    pub fn active_count(&self) -> usize {
        self.replicas
            .iter()
            .filter(|s| s.lifecycle.serves_traffic())
            .count()
    }

    /// Replicas currently provisioned (anything but `Retired`).
    pub fn provisioned_count(&self) -> usize {
        self.replicas
            .iter()
            .filter(|s| s.lifecycle.provisioned())
            .count()
    }

    /// Whether capacity is already on the way (any `Warming` replica) —
    /// the standard guard against scale-up thrash while a previous
    /// decision is still spinning up.
    pub fn warming_in_flight(&self) -> bool {
        self.replicas
            .iter()
            .any(|s| s.lifecycle == ReplicaState::Warming)
    }

    /// Mean queue depth per `Active` replica (0 with none active).
    pub fn mean_active_queue(&self) -> f64 {
        let active: Vec<_> = self
            .replicas
            .iter()
            .filter(|s| s.lifecycle.serves_traffic())
            .collect();
        if active.is_empty() {
            return 0.0;
        }
        active.iter().map(|s| s.queued as f64).sum::<f64>() / active.len() as f64
    }

    /// Mean KV-pool utilization across `Active` replicas, in `[0, 1]`.
    pub fn mean_active_kv_utilization(&self) -> f64 {
        let active: Vec<_> = self
            .replicas
            .iter()
            .filter(|s| s.lifecycle.serves_traffic() && s.kv_budget_blocks > 0)
            .collect();
        if active.is_empty() {
            return 0.0;
        }
        active
            .iter()
            .map(|s| s.kv_blocks_in_use as f64 / s.kv_budget_blocks as f64)
            .sum::<f64>()
            / active.len() as f64
    }
}

/// One scaling decision over a replica index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScaleAction {
    /// Provision the replica: `Retired → Warming` (cold caches, admits
    /// nothing until warm), or cancel a drain (`Draining → Active`,
    /// still warm). A no-op on `Warming`/`Active` replicas.
    Activate(usize),
    /// Stop routing to the replica and let it finish in-flight work:
    /// `Active → Draining`. Ignored when it would leave fewer than
    /// `min_replicas` active. A no-op on non-`Active` replicas.
    Drain(usize),
}

/// The autoscaling seam: consulted at control-plane barriers every
/// `decide_interval_s`, sees the whole fleet, answers with scale
/// actions. Implementations must be deterministic — both step modes
/// replay the same decision schedule.
pub trait AutoscalePolicy: std::fmt::Debug + Send {
    /// The actions to apply at this decision barrier (empty = hold).
    fn decide(&mut self, view: &AutoscaleView<'_>) -> Vec<ScaleAction>;

    /// Display label for reports and sweeps.
    fn label(&self) -> String;
}

/// Picks the cheapest replica to bring up: a `Draining` one (still
/// warm — cancelling a drain is free capacity) before a `Retired` one
/// (pays the full spin-up).
fn activation_candidate(view: &AutoscaleView<'_>) -> Option<usize> {
    view.replicas
        .iter()
        .position(|s| s.lifecycle == ReplicaState::Draining)
        .or_else(|| {
            view.replicas
                .iter()
                .position(|s| s.lifecycle == ReplicaState::Retired)
        })
}

/// Picks the replica to drain: the `Active` one with the fewest queued
/// requests (ties to the highest index, so fleets shrink from the top
/// and replica 0 — the workload-seeded one — drains last).
fn drain_candidate(view: &AutoscaleView<'_>) -> Option<usize> {
    view.replicas
        .iter()
        .enumerate()
        .filter(|(_, s)| s.lifecycle.serves_traffic())
        .min_by(|(ia, a), (ib, b)| a.queued.cmp(&b.queued).then(ib.cmp(ia)))
        .map(|(i, _)| i)
}

/// Scale on queue depth: activate a replica when the mean `Active`
/// queue exceeds `scale_up_depth`, drain one when it falls below
/// `scale_down_depth`. The gap between the two thresholds is the
/// hysteresis band that prevents flapping.
#[derive(Debug, Clone)]
pub struct QueueDepthTarget {
    /// Mean queued-per-active-replica above which capacity is added.
    pub scale_up_depth: f64,
    /// Mean queued-per-active-replica below which capacity is removed.
    pub scale_down_depth: f64,
}

impl AutoscalePolicy for QueueDepthTarget {
    fn decide(&mut self, view: &AutoscaleView<'_>) -> Vec<ScaleAction> {
        let depth = view.mean_active_queue();
        if depth > self.scale_up_depth && !view.warming_in_flight() {
            return activation_candidate(view)
                .map(ScaleAction::Activate)
                .into_iter()
                .collect();
        }
        if depth < self.scale_down_depth && view.active_count() > view.min_replicas {
            return drain_candidate(view)
                .map(ScaleAction::Drain)
                .into_iter()
                .collect();
        }
        Vec::new()
    }

    fn label(&self) -> String {
        format!(
            "queue-depth[up>{},down<{}]",
            self.scale_up_depth, self.scale_down_depth
        )
    }
}

/// Scale on KV pressure: activate when mean `Active` pool utilization
/// exceeds `scale_up_utilization`, drain below `scale_down_utilization`.
#[derive(Debug, Clone)]
pub struct KvPressureTarget {
    /// Mean KV utilization above which capacity is added.
    pub scale_up_utilization: f64,
    /// Mean KV utilization below which capacity is removed.
    pub scale_down_utilization: f64,
}

impl AutoscalePolicy for KvPressureTarget {
    fn decide(&mut self, view: &AutoscaleView<'_>) -> Vec<ScaleAction> {
        let utilization = view.mean_active_kv_utilization();
        if utilization > self.scale_up_utilization && !view.warming_in_flight() {
            return activation_candidate(view)
                .map(ScaleAction::Activate)
                .into_iter()
                .collect();
        }
        if utilization < self.scale_down_utilization && view.active_count() > view.min_replicas {
            return drain_candidate(view)
                .map(ScaleAction::Drain)
                .into_iter()
                .collect();
        }
        Vec::new()
    }

    fn label(&self) -> String {
        format!(
            "kv-pressure[up>{},down<{}]",
            self.scale_up_utilization, self.scale_down_utilization
        )
    }
}

/// Scale on SLO burn: integrate the window's completions against an
/// SLO; activate when windowed attainment drops below
/// `target_attainment` (the budget is burning), drain when attainment
/// holds above `target_attainment + headroom` *and* queues are nearly
/// empty (capacity is provably idle). Windows with no completions hold.
#[derive(Debug, Clone)]
pub struct SloBurnBudget {
    /// The objective whose attainment is tracked.
    pub slo: SloSpec,
    /// Windowed attainment below which capacity is added.
    pub target_attainment: f64,
    /// Extra attainment above target required before shrinking.
    pub headroom: f64,
}

impl AutoscalePolicy for SloBurnBudget {
    fn decide(&mut self, view: &AutoscaleView<'_>) -> Vec<ScaleAction> {
        if view.recent.is_empty() {
            return Vec::new();
        }
        let good = view.recent.iter().filter(|r| r.meets(&self.slo)).count();
        let attainment = good as f64 / view.recent.len() as f64;
        if attainment < self.target_attainment && !view.warming_in_flight() {
            return activation_candidate(view)
                .map(ScaleAction::Activate)
                .into_iter()
                .collect();
        }
        if attainment >= self.target_attainment + self.headroom
            && view.mean_active_queue() < 1.0
            && view.active_count() > view.min_replicas
        {
            return drain_candidate(view)
                .map(ScaleAction::Drain)
                .into_iter()
                .collect();
        }
        Vec::new()
    }

    fn label(&self) -> String {
        format!(
            "slo-burn[target={},headroom={}]",
            self.target_attainment, self.headroom
        )
    }
}

/// Declarative names for the built-in [`AutoscalePolicy`]s — the
/// serializable form sweeps and configs carry (custom policies drive
/// the fleet through
/// [`ClusterEngine::run_elastic`](crate::cluster::ClusterEngine::run_elastic)).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AutoscalePolicySpec {
    /// [`QueueDepthTarget`].
    QueueDepthTarget {
        /// Mean queued-per-active-replica above which capacity is added.
        scale_up_depth: f64,
        /// Mean queued-per-active-replica below which capacity is removed.
        scale_down_depth: f64,
    },
    /// [`KvPressureTarget`].
    KvPressureTarget {
        /// Mean KV utilization above which capacity is added.
        scale_up_utilization: f64,
        /// Mean KV utilization below which capacity is removed.
        scale_down_utilization: f64,
    },
    /// [`SloBurnBudget`].
    SloBurnBudget {
        /// The objective whose windowed attainment is tracked.
        slo: SloSpec,
        /// Attainment below which capacity is added.
        target_attainment: f64,
        /// Extra attainment above target required before shrinking.
        headroom: f64,
    },
}

impl AutoscalePolicySpec {
    /// Queue-depth scaling with the conventional 4-high / 1-low band.
    pub fn queue_depth() -> Self {
        AutoscalePolicySpec::QueueDepthTarget {
            scale_up_depth: 4.0,
            scale_down_depth: 1.0,
        }
    }

    /// KV-pressure scaling with an 85% / 40% utilization band.
    pub fn kv_pressure() -> Self {
        AutoscalePolicySpec::KvPressureTarget {
            scale_up_utilization: 0.85,
            scale_down_utilization: 0.40,
        }
    }

    /// SLO-burn scaling: defend 95% attainment of `slo`, shrink only
    /// above 99%.
    pub fn slo_burn(slo: SloSpec) -> Self {
        AutoscalePolicySpec::SloBurnBudget {
            slo,
            target_attainment: 0.95,
            headroom: 0.04,
        }
    }

    /// Instantiates the named policy.
    pub fn build(&self) -> Box<dyn AutoscalePolicy> {
        match *self {
            AutoscalePolicySpec::QueueDepthTarget {
                scale_up_depth,
                scale_down_depth,
            } => Box::new(QueueDepthTarget {
                scale_up_depth,
                scale_down_depth,
            }),
            AutoscalePolicySpec::KvPressureTarget {
                scale_up_utilization,
                scale_down_utilization,
            } => Box::new(KvPressureTarget {
                scale_up_utilization,
                scale_down_utilization,
            }),
            AutoscalePolicySpec::SloBurnBudget {
                slo,
                target_attainment,
                headroom,
            } => Box::new(SloBurnBudget {
                slo,
                target_attainment,
                headroom,
            }),
        }
    }

    /// Display label (matches the built policy's).
    pub fn label(&self) -> String {
        self.build().label()
    }
}

/// Declarative autoscaling configuration, attached to a fleet with
/// [`ClusterSpec::with_autoscale`](crate::cluster::ClusterSpec::with_autoscale).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AutoscaleSpec {
    /// Which built-in policy decides.
    pub policy: AutoscalePolicySpec,
    /// The objective defining a "good" token for the cost report's
    /// energy-per-SLO-good-token axis.
    pub slo: SloSpec,
    /// The engine never drains the `Active` count below this floor.
    pub min_replicas: usize,
    /// Replicas `0..initial` start `Active`, the rest `Retired`
    /// (provisioned on demand). `None` starts the whole fleet active.
    pub initial_replicas: Option<usize>,
    /// Seconds a newly provisioned replica spends `Warming` — cold
    /// caches, no admissions — before joining the active set.
    pub spin_up_s: f64,
    /// Seconds of simulated time between policy evaluations (the
    /// control-plane decision tick, latched like the shared tier's
    /// gossip tick so both step modes agree).
    pub decide_interval_s: f64,
}

impl AutoscaleSpec {
    /// Default replica spin-up delay: 30 s of simulated time — model
    /// load plus cache warm-up on real fleets.
    pub const DEFAULT_SPIN_UP_S: f64 = 30.0;

    /// Default decision interval: 10 s of simulated time.
    pub const DEFAULT_DECIDE_INTERVAL_S: f64 = 10.0;

    /// An autoscaler with the default knobs: floor of 1, whole fleet
    /// initially active, 30 s spin-up, 10 s decisions.
    pub fn new(policy: AutoscalePolicySpec, slo: SloSpec) -> Self {
        Self {
            policy,
            slo,
            min_replicas: 1,
            initial_replicas: None,
            spin_up_s: Self::DEFAULT_SPIN_UP_S,
            decide_interval_s: Self::DEFAULT_DECIDE_INTERVAL_S,
        }
    }

    /// Overrides the active-count floor.
    pub fn with_min_replicas(mut self, min_replicas: usize) -> Self {
        self.min_replicas = min_replicas;
        self
    }

    /// Starts only replicas `0..initial` active (the rest retired,
    /// provisioned on demand).
    pub fn with_initial_replicas(mut self, initial: usize) -> Self {
        self.initial_replicas = Some(initial);
        self
    }

    /// Overrides the spin-up delay (seconds).
    pub fn with_spin_up(mut self, spin_up_s: f64) -> Self {
        self.spin_up_s = spin_up_s;
        self
    }

    /// Overrides the decision interval (seconds).
    pub fn with_decide_interval(mut self, decide_interval_s: f64) -> Self {
        self.decide_interval_s = decide_interval_s;
        self
    }
}

/// One lifecycle transition, stamped with when it happened.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScaleEvent {
    /// Simulated time of the transition, seconds.
    pub at_s: f64,
    /// The replica that transitioned.
    pub replica: usize,
    /// Its previous lifecycle state.
    pub from: ReplicaState,
    /// Its new lifecycle state.
    pub to: ReplicaState,
}

/// Provisioning-cost accounting for one autoscaled episode — the
/// honest currency for comparing scaling policies. Replica-hours are
/// *rental* cost (a provisioned replica costs money whether or not it
/// iterates); energy is *work* cost (accrued per iteration, as
/// everywhere else in the simulator).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetCostReport {
    /// Label of the deciding policy.
    pub policy: String,
    /// Seconds between policy evaluations.
    pub decide_interval_s: f64,
    /// Seconds a cold replica spends warming.
    pub spin_up_s: f64,
    /// Policy evaluations over the episode.
    pub decisions: u64,
    /// Most replicas simultaneously `Active` at any decision barrier.
    pub peak_active: usize,
    /// Replica-hours spent `Warming` (provisioned, admitting nothing).
    pub warming_hours: f64,
    /// Replica-hours spent `Active`.
    pub active_hours: f64,
    /// Replica-hours spent `Draining` (finishing in-flight work).
    pub draining_hours: f64,
    /// Total provisioned replica-hours (warming + active + draining) —
    /// what the fleet *rents*.
    pub provisioned_hours: f64,
    /// What a fixed fleet of `dp_replicas` would have rented over the
    /// same episode — the savings denominator.
    pub fixed_fleet_hours: f64,
    /// Every lifecycle transition, in time order.
    pub scale_events: Vec<ScaleEvent>,
    /// Requests completing within the spec's SLO.
    pub slo_good_requests: u64,
    /// Output tokens of those requests.
    pub slo_good_tokens: u64,
    /// Fleet energy divided by SLO-good output tokens, joules per
    /// token (0 when no token met the SLO).
    pub energy_per_good_token_j: f64,
}

impl FleetCostReport {
    /// Fraction of the fixed-peak rental the autoscaled fleet spent.
    pub fn provisioned_fraction(&self) -> f64 {
        if self.fixed_fleet_hours == 0.0 {
            return 0.0;
        }
        self.provisioned_hours / self.fixed_fleet_hours
    }
}

/// The engine-side autoscale runtime: lifecycle vector, warm-up
/// timers, per-state hour accumulators, the consistent-hash ring over
/// the active membership, and the decision-tick latch. Both step-mode
/// loops drive one of these through the same call sequence, so their
/// decisions — and reports — are bit-for-bit identical.
#[derive(Debug)]
pub(crate) struct AutoscaleControl<'a> {
    policy: Box<dyn AutoscalePolicy + 'a>,
    slo: SloSpec,
    min_replicas: usize,
    spin_up_s: f64,
    decide_interval_s: f64,
    lifecycle: Vec<ReplicaState>,
    /// When each `Warming` replica becomes `Active`.
    warm_at: Vec<f64>,
    /// When each replica entered its current state.
    state_since: Vec<f64>,
    /// Accumulated seconds per replica in [warming, active, draining].
    state_seconds: Vec<[f64; 3]>,
    /// Completion records already consumed from each session.
    cursors: Vec<usize>,
    ring: HashRing,
    events: Vec<ScaleEvent>,
    decisions: u64,
    peak_active: usize,
    next_decide: f64,
}

fn seconds_bucket(state: ReplicaState) -> Option<usize> {
    match state {
        ReplicaState::Warming => Some(0),
        ReplicaState::Active => Some(1),
        ReplicaState::Draining => Some(2),
        ReplicaState::Retired => None,
    }
}

impl<'a> AutoscaleControl<'a> {
    /// Sets up the runtime for a `dp`-replica fleet, optionally with a
    /// caller-supplied policy overriding the spec's built-in.
    pub(crate) fn new(
        spec: &AutoscaleSpec,
        dp: usize,
        policy: Option<Box<dyn AutoscalePolicy + 'a>>,
    ) -> Self {
        let initial = spec.initial_replicas.unwrap_or(dp);
        let lifecycle: Vec<ReplicaState> = (0..dp)
            .map(|idx| {
                if idx < initial {
                    ReplicaState::Active
                } else {
                    ReplicaState::Retired
                }
            })
            .collect();
        let members: Vec<usize> = (0..initial).collect();
        Self {
            policy: policy.unwrap_or_else(|| spec.policy.build()),
            slo: spec.slo,
            min_replicas: spec.min_replicas,
            spin_up_s: spec.spin_up_s,
            decide_interval_s: spec.decide_interval_s,
            lifecycle,
            warm_at: vec![f64::INFINITY; dp],
            state_since: vec![0.0; dp],
            state_seconds: vec![[0.0; 3]; dp],
            cursors: vec![0; dp],
            ring: HashRing::new(&members),
            events: Vec::new(),
            decisions: 0,
            peak_active: initial,
            next_decide: spec.decide_interval_s,
        }
    }

    pub(crate) fn lifecycle(&self) -> &[ReplicaState] {
        &self.lifecycle
    }

    pub(crate) fn ring(&self) -> &HashRing {
        &self.ring
    }

    pub(crate) fn next_decide(&self) -> f64 {
        self.next_decide
    }

    fn active_count(&self) -> usize {
        self.lifecycle.iter().filter(|s| s.serves_traffic()).count()
    }

    /// Transitions `idx` to `to` at time `at`, accruing the seconds
    /// spent in the outgoing state and logging the event.
    fn set_state(&mut self, idx: usize, to: ReplicaState, at: f64) {
        let from = self.lifecycle[idx];
        if from == to {
            return;
        }
        if let Some(bucket) = seconds_bucket(from) {
            self.state_seconds[idx][bucket] += (at - self.state_since[idx]).max(0.0);
        }
        self.events.push(ScaleEvent {
            at_s: at,
            replica: idx,
            from,
            to,
        });
        self.lifecycle[idx] = to;
        self.state_since[idx] = at;
        if to != ReplicaState::Warming {
            self.warm_at[idx] = f64::INFINITY;
        }
    }

    fn rebuild_ring(&mut self) {
        let members: Vec<usize> = self
            .lifecycle
            .iter()
            .enumerate()
            .filter(|(_, s)| s.serves_traffic())
            .map(|(i, _)| i)
            .collect();
        self.ring = HashRing::new(&members);
        self.peak_active = self.peak_active.max(members.len());
    }

    /// Promotes every `Warming` replica whose spin-up has elapsed by
    /// `now` (each transition stamped at its own `warm_at`). Returns
    /// whether the active membership changed — the caller invalidates
    /// snapshot caches on `true`.
    pub(crate) fn promote_due(&mut self, now: f64) -> bool {
        let mut changed = false;
        for idx in 0..self.lifecycle.len() {
            if self.lifecycle[idx] == ReplicaState::Warming && self.warm_at[idx] <= now {
                let at = self.warm_at[idx];
                self.set_state(idx, ReplicaState::Active, at);
                changed = true;
            }
        }
        if changed {
            self.rebuild_ring();
        }
        changed
    }

    /// The decision barrier, reached when every pending session has
    /// stepped to the decide tick: promote due warm-ups, retire idle
    /// drainers, evaluate the policy over a fresh lifecycle-stamped
    /// view, apply its actions, and latch the next tick past the
    /// slowest pending session.
    pub(crate) fn barrier(&mut self, sessions: &mut [ServingSession<'_>], roles: &[ReplicaRole]) {
        let now = self.next_decide;
        self.decisions += 1;
        self.promote_due(now);
        let mut membership_changed = false;
        let retired: Vec<usize> = sessions
            .iter()
            .enumerate()
            .filter(|(idx, session)| {
                self.lifecycle[*idx] == ReplicaState::Draining && !session.has_pending_work()
            })
            .map(|(idx, _)| idx)
            .collect();
        for idx in retired {
            self.set_state(idx, ReplicaState::Retired, now);
        }
        let snapshots: Vec<ReplicaSnapshot> = sessions
            .iter()
            .enumerate()
            .map(|(idx, s)| {
                let mut snapshot = s.snapshot();
                snapshot.role = roles[idx];
                snapshot.lifecycle = self.lifecycle[idx];
                snapshot
            })
            .collect();
        let mut recent: Vec<RequestRecord> = Vec::new();
        for (idx, session) in sessions.iter().enumerate() {
            let records = session.completed_records();
            recent.extend_from_slice(&records[self.cursors[idx]..]);
            self.cursors[idx] = records.len();
        }
        let view = AutoscaleView {
            now_s: now,
            replicas: &snapshots,
            min_replicas: self.min_replicas,
            max_replicas: sessions.len(),
            recent: &recent,
        };
        let actions = self.policy.decide(&view);
        for action in actions {
            match action {
                ScaleAction::Activate(idx) => {
                    assert!(
                        idx < sessions.len(),
                        "autoscale policy {} activated replica {idx} in a {}-replica fleet",
                        self.policy.label(),
                        sessions.len()
                    );
                    match self.lifecycle[idx] {
                        ReplicaState::Retired => {
                            // Re-provisioned hardware comes up cold.
                            sessions[idx].flush_caches();
                            self.set_state(idx, ReplicaState::Warming, now);
                            self.warm_at[idx] = now + self.spin_up_s;
                        }
                        ReplicaState::Draining => {
                            // Cancelling a drain is free: still warm.
                            self.set_state(idx, ReplicaState::Active, now);
                            membership_changed = true;
                        }
                        ReplicaState::Warming | ReplicaState::Active => {}
                    }
                }
                ScaleAction::Drain(idx) => {
                    assert!(
                        idx < sessions.len(),
                        "autoscale policy {} drained replica {idx} in a {}-replica fleet",
                        self.policy.label(),
                        sessions.len()
                    );
                    if self.lifecycle[idx] == ReplicaState::Active
                        && self.active_count() > self.min_replicas
                    {
                        self.set_state(idx, ReplicaState::Draining, now);
                        membership_changed = true;
                    }
                }
            }
        }
        if membership_changed {
            self.rebuild_ring();
        }
        let min_clock = sessions
            .iter()
            .filter(|s| s.has_pending_work())
            .map(|s| s.clock())
            .fold(f64::INFINITY, f64::min);
        self.next_decide = if min_clock.is_finite() {
            crate::cluster::next_sync_tick(min_clock.max(now), self.decide_interval_s)
        } else {
            f64::INFINITY
        };
    }

    /// Closes out the episode at `end_s` (the latest session clock) and
    /// builds the cost report: remaining state-seconds accrue to every
    /// still-provisioned replica, SLO-good work is tallied from the
    /// per-replica reports, and fleet energy is divided over the good
    /// tokens.
    pub(crate) fn into_report(
        mut self,
        replicas: &[ServingReport],
        end_s: f64,
        fleet_energy: Energy,
        dp: usize,
    ) -> FleetCostReport {
        for idx in 0..self.lifecycle.len() {
            if let Some(bucket) = seconds_bucket(self.lifecycle[idx]) {
                self.state_seconds[idx][bucket] += (end_s - self.state_since[idx]).max(0.0);
            }
        }
        let sum_bucket = |bucket: usize| -> f64 {
            self.state_seconds.iter().map(|s| s[bucket]).sum::<f64>() / 3600.0
        };
        let warming_hours = sum_bucket(0);
        let active_hours = sum_bucket(1);
        let draining_hours = sum_bucket(2);
        let mut slo_good_requests = 0u64;
        let mut slo_good_tokens = 0u64;
        for report in replicas {
            for record in &report.records {
                if record.meets(&self.slo) {
                    slo_good_requests += 1;
                    slo_good_tokens += record.output_tokens;
                }
            }
        }
        let energy_per_good_token_j = if slo_good_tokens > 0 {
            fleet_energy.value() / slo_good_tokens as f64
        } else {
            0.0
        };
        FleetCostReport {
            policy: self.policy.label(),
            decide_interval_s: self.decide_interval_s,
            spin_up_s: self.spin_up_s,
            decisions: self.decisions,
            peak_active: self.peak_active,
            warming_hours,
            active_hours,
            draining_hours,
            provisioned_hours: warming_hours + active_hours + draining_hours,
            fixed_fleet_hours: dp as f64 * end_s / 3600.0,
            scale_events: self.events,
            slo_good_requests,
            slo_good_tokens,
            energy_per_good_token_j,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use papi_types::Time;

    fn snap(lifecycle: ReplicaState, queued: usize, kv_used: u64) -> ReplicaSnapshot {
        ReplicaSnapshot {
            role: ReplicaRole::Colocated,
            lifecycle,
            queued,
            live: 0,
            kv_blocks_in_use: kv_used,
            kv_evictable_blocks: 0,
            kv_budget_blocks: 1_000,
            kv_block_size: 16,
            kv_tier_blocks_in_use: 0,
            kv_tier_budget_blocks: 0,
        }
    }

    fn view<'a>(replicas: &'a [ReplicaSnapshot], recent: &'a [RequestRecord]) -> AutoscaleView<'a> {
        AutoscaleView {
            now_s: 100.0,
            replicas,
            min_replicas: 1,
            max_replicas: replicas.len(),
            recent,
        }
    }

    fn record(ttft_s: f64, tokens: u64) -> RequestRecord {
        RequestRecord {
            id: 0,
            arrival: Time::new(0.0),
            admitted: Time::new(ttft_s),
            first_token: Time::new(ttft_s),
            finished: Time::new(ttft_s + tokens as f64 * 0.01),
            prompt_tokens: 10,
            output_tokens: tokens,
            preemptions: 0,
        }
    }

    #[test]
    fn queue_depth_scales_up_on_pressure_and_down_when_idle() {
        let mut policy = QueueDepthTarget {
            scale_up_depth: 4.0,
            scale_down_depth: 1.0,
        };
        // Pressured: two active replicas averaging 6 queued, one
        // retired spare → activate the spare.
        let fleet = vec![
            snap(ReplicaState::Active, 6, 0),
            snap(ReplicaState::Active, 6, 0),
            snap(ReplicaState::Retired, 0, 0),
        ];
        assert_eq!(
            policy.decide(&view(&fleet, &[])),
            vec![ScaleAction::Activate(2)]
        );
        // A draining replica is preferred over a retired one (warm).
        let fleet = vec![
            snap(ReplicaState::Active, 6, 0),
            snap(ReplicaState::Retired, 0, 0),
            snap(ReplicaState::Draining, 0, 0),
        ];
        assert_eq!(
            policy.decide(&view(&fleet, &[])),
            vec![ScaleAction::Activate(2)]
        );
        // Capacity already warming → hold.
        let fleet = vec![
            snap(ReplicaState::Active, 6, 0),
            snap(ReplicaState::Warming, 0, 0),
            snap(ReplicaState::Retired, 0, 0),
        ];
        assert_eq!(policy.decide(&view(&fleet, &[])), vec![]);
        // Idle: drain the emptiest active replica (ties to highest
        // index).
        let fleet = vec![
            snap(ReplicaState::Active, 0, 0),
            snap(ReplicaState::Active, 0, 0),
        ];
        assert_eq!(
            policy.decide(&view(&fleet, &[])),
            vec![ScaleAction::Drain(1)]
        );
        // At the floor: hold.
        let fleet = vec![snap(ReplicaState::Active, 0, 0)];
        assert_eq!(policy.decide(&view(&fleet, &[])), vec![]);
    }

    #[test]
    fn kv_pressure_reads_pool_utilization() {
        let mut policy = KvPressureTarget {
            scale_up_utilization: 0.85,
            scale_down_utilization: 0.40,
        };
        let fleet = vec![
            snap(ReplicaState::Active, 0, 950),
            snap(ReplicaState::Retired, 0, 0),
        ];
        assert_eq!(
            policy.decide(&view(&fleet, &[])),
            vec![ScaleAction::Activate(1)]
        );
        let fleet = vec![
            snap(ReplicaState::Active, 0, 100),
            snap(ReplicaState::Active, 0, 100),
        ];
        assert_eq!(
            policy.decide(&view(&fleet, &[])),
            vec![ScaleAction::Drain(1)]
        );
    }

    #[test]
    fn slo_burn_integrates_the_window() {
        let slo = SloSpec::interactive(1_000.0, 50.0);
        let mut policy = SloBurnBudget {
            slo,
            target_attainment: 0.95,
            headroom: 0.04,
        };
        let fleet = vec![
            snap(ReplicaState::Active, 2, 0),
            snap(ReplicaState::Retired, 0, 0),
        ];
        // Burning: half the window misses → activate.
        let burning: Vec<RequestRecord> = (0..10)
            .map(|i| record(if i < 5 { 0.1 } else { 5.0 }, 20))
            .collect();
        assert_eq!(
            policy.decide(&view(&fleet, &burning)),
            vec![ScaleAction::Activate(1)]
        );
        // Comfortable and idle → drain.
        let idle_fleet = vec![
            snap(ReplicaState::Active, 0, 0),
            snap(ReplicaState::Active, 0, 0),
        ];
        let good: Vec<RequestRecord> = (0..10).map(|_| record(0.1, 20)).collect();
        assert_eq!(
            policy.decide(&view(&idle_fleet, &good)),
            vec![ScaleAction::Drain(1)]
        );
        // Empty window → hold.
        assert_eq!(policy.decide(&view(&fleet, &[])), vec![]);
    }

    #[test]
    fn policy_specs_build_and_round_trip() {
        let slo = SloSpec::interactive(1_000.0, 50.0);
        for spec in [
            AutoscalePolicySpec::queue_depth(),
            AutoscalePolicySpec::kv_pressure(),
            AutoscalePolicySpec::slo_burn(slo),
        ] {
            let policy = spec.build();
            assert_eq!(policy.label(), spec.label());
            let json = serde_json::to_string(&spec).unwrap();
            let back: AutoscalePolicySpec = serde_json::from_str(&json).unwrap();
            assert_eq!(spec, back);
        }
        let spec = AutoscaleSpec::new(AutoscalePolicySpec::queue_depth(), slo)
            .with_min_replicas(2)
            .with_initial_replicas(3)
            .with_spin_up(15.0)
            .with_decide_interval(5.0);
        let json = serde_json::to_string(&spec).unwrap();
        let back: AutoscaleSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn cost_report_provisioned_fraction() {
        let report = FleetCostReport {
            policy: "queue-depth".into(),
            decide_interval_s: 10.0,
            spin_up_s: 30.0,
            decisions: 100,
            peak_active: 4,
            warming_hours: 0.1,
            active_hours: 2.0,
            draining_hours: 0.4,
            provisioned_hours: 2.5,
            fixed_fleet_hours: 8.0,
            scale_events: vec![],
            slo_good_requests: 10,
            slo_good_tokens: 500,
            energy_per_good_token_j: 1.5,
        };
        assert!((report.provisioned_fraction() - 0.3125).abs() < 1e-12);
    }
}
