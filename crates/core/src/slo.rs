//! Service-level-objective analysis (paper §3.2(a)).
//!
//! "Under the online serving scenario, different user latency SLOs
//! dictate varying maximum batch sizes" — e.g. a DGX node that could
//! batch 854 requests must cap at 22 under a 30 ms SLO. This module
//! computes that cap for any of our systems: the largest initial RLP
//! whose *per-iteration* decoding latency meets the target.

use crate::config::SystemConfig;
use crate::pricer::IterationPricer;
use papi_types::Time;
use papi_workload::IterationRecord;
use serde::{Deserialize, Serialize};

/// A user latency objective over the serving metrics: first token
/// within [`ttft`](SloSpec::ttft) of arrival, then a steady decode pace
/// of at most [`tpot`](SloSpec::tpot) per token.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SloSpec {
    /// Time-to-first-token budget (queueing + prefill).
    pub ttft: Time,
    /// Time-per-output-token budget (per-iteration decode latency).
    pub tpot: Time,
}

impl SloSpec {
    /// An interactive-chat objective: first token within `ttft_ms`,
    /// then `tpot_ms` per token.
    pub fn interactive(ttft_ms: f64, tpot_ms: f64) -> Self {
        Self {
            ttft: Time::from_millis(ttft_ms),
            tpot: Time::from_millis(tpot_ms),
        }
    }
}

/// Per-iteration decoding latency of `config` at steady state
/// `(rlp, tlp)` with `kv_len` tokens of context per request, priced
/// directly through the shared [`IterationPricer`] (the scheduler picks
/// the FC placement exactly as it would online).
///
/// # Panics
///
/// Panics if any argument is zero, or if the KV demand exceeds the
/// attention pool.
#[track_caller]
pub fn iteration_latency(config: &SystemConfig, rlp: u64, tlp: u64, kv_len: u64) -> Time {
    assert!(
        rlp > 0 && tlp > 0 && kv_len > 0,
        "arguments must be positive"
    );
    let kv_demand = (rlp * kv_len) as f64 * config.model.kv_bytes_per_token().value();
    if let Err(msg) = config.validate_capacity(kv_demand) {
        panic!("{msg}");
    }
    let record = IterationRecord {
        rlp,
        tlp,
        total_kv_len: rlp * kv_len,
        max_kv_len: kv_len,
        new_tokens: rlp * tlp,
        finished: 0,
    };
    let mut scheduler = config.scheduler.build();
    let placement = scheduler.decide(rlp, tlp);
    IterationPricer::new(config)
        .price_iteration(placement, &record)
        .total_time()
}

/// The largest batch (initial RLP) whose per-iteration latency meets
/// `slo`, searched up to `max_batch`. Returns 0 if even a single request
/// misses the objective.
pub fn max_batch_for_slo(
    config: &SystemConfig,
    tlp: u64,
    kv_len: u64,
    slo: Time,
    max_batch: u64,
) -> u64 {
    let meets = |rlp: u64| iteration_latency(config, rlp, tlp, kv_len).value() <= slo.value();
    if !meets(1) {
        return 0;
    }
    // Latency is monotone non-decreasing in RLP: binary search the edge.
    let (mut lo, mut hi) = (1u64, max_batch.max(1));
    if meets(hi) {
        return hi;
    }
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if meets(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::DecodingSimulator;
    use papi_llm::ModelPreset;
    use papi_workload::DecodeTrace;

    /// The SLO path and the trace engine price through the same
    /// [`IterationPricer`]; a one-iteration trace must cost exactly the
    /// same through either front end.
    #[test]
    fn slo_latency_matches_engine_pricing() {
        let config = SystemConfig::papi_with_alpha(ModelPreset::Llama65B.config(), 24.0);
        for (rlp, tlp) in [(1u64, 1u64), (8, 2), (64, 4)] {
            let direct = iteration_latency(&config, rlp, tlp, 512);
            let trace = DecodeTrace {
                iterations: vec![IterationRecord {
                    rlp,
                    tlp,
                    total_kv_len: rlp * 512,
                    max_kv_len: 512,
                    new_tokens: rlp * tlp,
                    finished: rlp,
                }],
                requests: rlp,
                total_tokens: rlp * tlp,
                total_input_tokens: rlp * 512,
                sum_input_len_squared: rlp * 512 * 512,
            };
            let via_engine = DecodingSimulator::new(config.clone())
                .run_trace(&trace)
                .total_latency();
            assert_eq!(direct, via_engine, "divergence at ({rlp}, {tlp})");
        }
    }

    #[test]
    fn interactive_slo_constructor() {
        let slo = SloSpec::interactive(500.0, 30.0);
        assert_eq!(slo.ttft.as_millis(), 500.0);
        assert_eq!(slo.tpot.as_millis(), 30.0);
    }

    #[test]
    fn tighter_slo_smaller_batch() {
        let config = SystemConfig::a100_attacc(ModelPreset::Llama65B.config());
        let loose = max_batch_for_slo(&config, 1, 512, Time::from_millis(120.0), 512);
        let tight = max_batch_for_slo(&config, 1, 512, Time::from_millis(25.0), 512);
        assert!(
            loose > tight,
            "120 ms admits {loose}, 25 ms admits {tight} — should shrink"
        );
    }

    #[test]
    fn impossible_slo_admits_zero() {
        let config = SystemConfig::a100_attacc(ModelPreset::Gpt3_175B.config());
        assert_eq!(
            max_batch_for_slo(&config, 1, 512, Time::from_micros(1.0), 512),
            0
        );
    }

    #[test]
    fn papi_serves_slos_the_gpu_baseline_cannot() {
        // The GPU baseline's per-iteration floor is the memory-bound FC
        // pass (~14 ms for LLaMA-65B on 6 A100s): any tighter SLO admits
        // zero requests. PAPI's FC-PIM runs small batches far faster, so
        // it still serves the objective.
        let model = ModelPreset::Llama65B.config();
        let papi = SystemConfig::papi(model.clone());
        let base = SystemConfig::a100_attacc(model);
        let tight = Time::from_millis(10.0);
        assert_eq!(max_batch_for_slo(&base, 1, 512, tight, 256), 0);
        let b_papi = max_batch_for_slo(&papi, 1, 512, tight, 256);
        assert!(b_papi >= 1, "PAPI should serve the 10 ms SLO, got {b_papi}");
    }

    #[test]
    fn papi_admitted_batch_tracks_the_baseline_at_loose_slos() {
        // Above α both designs run FC on the GPUs; PAPI's 1P2B Attn-PIM
        // attention is slightly slower than 1P1B AttAcc, so its admitted
        // batch may trail by a few percent — but no more.
        let model = ModelPreset::Llama65B.config();
        let papi = SystemConfig::papi(model.clone());
        let base = SystemConfig::a100_attacc(model);
        for slo_ms in [20.0, 40.0] {
            let slo = Time::from_millis(slo_ms);
            let b_papi = max_batch_for_slo(&papi, 1, 512, slo, 512);
            let b_base = max_batch_for_slo(&base, 1, 512, slo, 512);
            assert!(
                b_papi as f64 >= 0.85 * b_base as f64,
                "at {slo_ms} ms: PAPI admits {b_papi} vs baseline {b_base}"
            );
        }
    }

    #[test]
    fn latency_monotone_in_rlp() {
        let config = SystemConfig::pim_only_papi(ModelPreset::Gpt3_66B.config());
        let mut last = 0.0;
        for rlp in [1u64, 2, 4, 8, 16, 32, 64] {
            let t = iteration_latency(&config, rlp, 1, 512).value();
            assert!(t >= last, "latency fell at rlp {rlp}");
            last = t;
        }
    }

    #[test]
    fn iteration_latency_in_plausible_band() {
        // LLaMA-65B, batch 22, the paper's SLO anecdote regime: tens of
        // milliseconds per decoding iteration.
        let config = SystemConfig::a100_attacc(ModelPreset::Llama65B.config());
        let t = iteration_latency(&config, 22, 1, 512);
        assert!(t.as_millis() > 5.0 && t.as_millis() < 100.0, "{t}");
    }
}
