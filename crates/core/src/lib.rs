//! `papi-core` — the PAPI heterogeneous system simulator.
//!
//! This crate assembles every substrate into the computing systems the
//! paper evaluates, and drives them over serving workloads:
//!
//! | Design | FC kernels | Attention | paper role |
//! |---|---|---|---|
//! | **PAPI** | dynamic: PU or FC-PIM (α-threshold) | Attn-PIM (1P2B) | the contribution |
//! | A100+AttAcc | always 6×A100 | AttAcc (1P1B) | SOTA heterogeneous baseline |
//! | A100+HBM-PIM | always 6×A100 | HBM-PIM (1P2B) | commercial-PIM baseline |
//! | AttAcc-only | AttAcc PIM | AttAcc PIM | SOTA PIM-only baseline |
//! | PIM-only PAPI | always FC-PIM (4P1B) | Attn-PIM | hybrid-PIM ablation (Fig. 11/12) |
//!
//! Every system exposes the same 90-HBM-device budget (30 for FC
//! weights, 60 for attention KV), per the paper's §7.1 fairness setup.
//!
//! - [`admission`] — pluggable admission control: who joins the
//!   running batch, and who yields under KV pressure.
//! - [`config`] — system assembly and α calibration (plus
//!   tensor-parallel sharding across nodes).
//! - [`cluster`] — fleet simulation: TP groups replicated
//!   data-parallel behind a request router, with fleet-wide metrics —
//!   including role-disaggregated fleets (prefill pool → priced KV
//!   migration → decode pool).
//! - [`autoscale`] — elastic fleet scaling: the replica lifecycle
//!   (`Warming → Active → Draining → Retired`), the
//!   [`AutoscalePolicy`] decision seam, and replica-hour /
//!   energy-per-SLO-good-token cost accounting.
//! - [`pricer`] — the shared hardware cost model (one implementation,
//!   used by every execution path).
//! - [`engine`] — the batch-mode decoding simulator (paper figures).
//! - [`serving`] — the online event-driven serving engine (arrivals,
//!   continuous batching, per-request latency).
//! - [`metrics`] — execution and serving reports (latency/energy
//!   breakdowns, TTFT/TPOT percentiles, SLO goodput).
//! - [`slo`] — latency objectives and admissible-batch analysis.
//! - [`experiments`] — one function per paper figure (Fig. 2–12), plus
//!   the serving load sweeps.
//!
//! # Example
//!
//! ```
//! use papi_core::{DecodingSimulator, SystemConfig};
//! use papi_llm::ModelPreset;
//! use papi_workload::{DatasetKind, WorkloadSpec};
//!
//! let model = ModelPreset::Llama65B.config();
//! let workload = WorkloadSpec::static_batching(DatasetKind::CreativeWriting, 8, 1)
//!     .with_max_iterations(32);
//! let papi = DecodingSimulator::new(SystemConfig::papi(model.clone()));
//! let baseline = DecodingSimulator::new(SystemConfig::a100_attacc(model));
//! let (r_papi, r_base) = (papi.run(&workload), baseline.run(&workload));
//! // At batch 8 the FC kernel is memory-bound: PAPI's FC-PIM wins.
//! assert!(r_papi.total_latency().value() < r_base.total_latency().value());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod admission;
pub mod autoscale;
pub mod cluster;
pub mod config;
pub mod engine;
pub mod experiments;
pub mod metrics;
pub mod prefill;
pub mod pricer;
pub mod serving;
pub mod slo;

pub use admission::{
    AdmissionCandidate, AdmissionPolicy, AdmissionSpec, AdmissionView, BlockGranular, Fcfs,
};
pub use autoscale::{
    AutoscalePolicy, AutoscalePolicySpec, AutoscaleSpec, AutoscaleView, FleetCostReport,
    KvPressureTarget, QueueDepthTarget, ScaleAction, ScaleEvent, SloBurnBudget,
};
pub use cluster::{
    ClusterEngine, ClusterReport, ClusterSpec, GlobalTierReport, MigrationReport, SharedTierSpec,
    StepMode,
};
pub use config::{DesignKind, SchedulerKind, SystemConfig, TpGroup};
pub use engine::DecodingSimulator;
pub use metrics::{
    ExecutionReport, IterationCost, LatencySummary, PhaseBreakdown, RequestRecord, ServingReport,
};
pub use papi_kv::KvCacheStats;
pub use prefill::{prefill_cost, prefill_cost_for, PrefillCost, PromptStats};
pub use pricer::IterationPricer;
pub use serving::{
    KvTierSpec, PrefillHandoff, RemoteFetchEvent, ServingEngine, ServingSession, SessionStatus,
    SessionTuning,
};
pub use slo::SloSpec;
