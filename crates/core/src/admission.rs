//! Pluggable admission control: who joins the running batch, and who
//! gets preempted under KV pressure.
//!
//! The serving engine owns the *mechanism* — block allocation, prefix
//! forking, eviction of cold cached prefixes, the recompute-preemption
//! bookkeeping — while an [`AdmissionPolicy`] makes the two *decisions*
//! the mechanism needs:
//!
//! 1. [`admit`](AdmissionPolicy::admit): may the queue-front request
//!    join the running batch right now? (Consulted only while the batch
//!    is non-empty: an empty batch always admits, so a policy can never
//!    deadlock the engine.)
//! 2. [`preempt_victim`](AdmissionPolicy::preempt_victim): when this
//!    iteration's worst-case KV growth would overflow the physical pool
//!    even after prefix eviction, which live request goes back to the
//!    queue — or `None` to stop preempting.
//!
//! [`BlockGranular`] is the default (and reproduces the pre-trait
//! engine bit for bit): it plans whole prompts against the
//! block-granular committed budget, treating cached prefixes as
//! reclaimable headroom. [`Fcfs`] is the classic token-counting
//! baseline: it ignores paging — no block rounding, no eviction
//! discount — so at block size 1 without sharing the two coincide, and
//! under a paged pool `Fcfs` over-admits exactly where fragmentation
//! bites. Declarative surfaces name built-ins through [`AdmissionSpec`]
//! (a [`SessionTuning`](crate::serving::SessionTuning) field); custom
//! implementations plug in via
//! [`ServingEngine::with_admission_policy`](crate::serving::ServingEngine::with_admission_policy).

use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The queue-front request an admission decision is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionCandidate {
    /// Request identifier.
    pub id: u64,
    /// KV tokens admission must reserve now (the prompt, plus any
    /// regenerated context after a preemption).
    pub prefill_tokens: u64,
    /// KV tokens the request will hold once complete (prefill plus the
    /// output still to generate).
    pub total_tokens: u64,
}

/// The session state an admission decision may inspect.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionView<'a> {
    /// Blocks committed to live sequences (pool occupancy minus what
    /// prefix-cache eviction could reclaim on demand).
    pub committed_blocks: u64,
    /// Blocks the admission planner may use (the headroom budget, not
    /// the raw pool).
    pub budget_blocks: u64,
    /// Tokens per block of the pool.
    pub block_size: u64,
    /// Logical KV tokens resident across live requests.
    pub kv_tokens: u64,
    /// Requests still waiting in the arrival queue.
    pub queued: usize,
    /// KV footprint (tokens) of each live request, admission order —
    /// oldest first. `preempt_victim` indexes this slice.
    pub live_kv: &'a [u64],
}

impl AdmissionView<'_> {
    /// Blocks a request needing `tokens` KV tokens would allocate.
    pub fn blocks_for(&self, tokens: u64) -> u64 {
        tokens.div_ceil(self.block_size.max(1))
    }

    /// The admission budget in tokens (block budget × block size).
    pub fn budget_tokens(&self) -> u64 {
        self.budget_blocks * self.block_size
    }
}

/// Who joins the batch, and who yields under KV pressure.
///
/// Implementations are consulted once per candidate per scheduling
/// round, and must be deterministic for reproducible episodes. They are
/// shared across cloned engines (and rayon sweep points), hence
/// `&self` and the `Send + Sync` bounds.
pub trait AdmissionPolicy: core::fmt::Debug + Send + Sync {
    /// Display label for reports.
    fn label(&self) -> String;

    /// Whether `candidate` may join the running batch given `view`.
    /// Only consulted while the batch is non-empty — the engine always
    /// admits into an empty batch so episodes cannot deadlock.
    fn admit(&self, candidate: &AdmissionCandidate, view: &AdmissionView<'_>) -> bool;

    /// Index into [`AdmissionView::live_kv`] of the request to preempt
    /// when KV growth would overflow the pool; `None` keeps the batch
    /// as is (the engine then proceeds and lets physical allocation
    /// assert). Consulted repeatedly until growth fits or it returns
    /// `None`.
    fn preempt_victim(&self, view: &AdmissionView<'_>) -> Option<usize>;
}

/// The default policy (the pre-trait engine's inlined behavior): plan
/// whole prompts against the block-granular committed budget — cached
/// prefixes count as reclaimable headroom — and preempt newest-first,
/// never below a batch of one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockGranular;

impl AdmissionPolicy for BlockGranular {
    fn label(&self) -> String {
        "block-granular".to_owned()
    }

    fn admit(&self, candidate: &AdmissionCandidate, view: &AdmissionView<'_>) -> bool {
        view.committed_blocks + view.blocks_for(candidate.prefill_tokens) <= view.budget_blocks
    }

    fn preempt_victim(&self, view: &AdmissionView<'_>) -> Option<usize> {
        (view.live_kv.len() > 1).then(|| view.live_kv.len() - 1)
    }
}

/// First-come-first-served token counting: the classic scalar baseline.
/// Plans in exact tokens — no block rounding, and no credit for
/// evictable cached prefixes — so under a paged pool it admits
/// optimistically where fragmentation bites and conservatively where
/// the prefix cache could have been reclaimed. Preempts newest-first,
/// like [`BlockGranular`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fcfs;

impl AdmissionPolicy for Fcfs {
    fn label(&self) -> String {
        "fcfs".to_owned()
    }

    fn admit(&self, candidate: &AdmissionCandidate, view: &AdmissionView<'_>) -> bool {
        view.kv_tokens + candidate.prefill_tokens <= view.budget_tokens()
    }

    fn preempt_victim(&self, view: &AdmissionView<'_>) -> Option<usize> {
        (view.live_kv.len() > 1).then(|| view.live_kv.len() - 1)
    }
}

/// Declarative name of a built-in admission policy — what
/// [`SessionTuning`](crate::serving::SessionTuning) carries, so cluster
/// specs and sweeps stay serializable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionSpec {
    /// See [`BlockGranular`] (the default).
    #[default]
    BlockGranular,
    /// See [`Fcfs`].
    Fcfs,
}

impl AdmissionSpec {
    /// Instantiates the policy this spec names.
    pub fn build(&self) -> Arc<dyn AdmissionPolicy> {
        match self {
            AdmissionSpec::BlockGranular => Arc::new(BlockGranular),
            AdmissionSpec::Fcfs => Arc::new(Fcfs),
        }
    }

    /// Display label for reports and sweeps.
    pub fn label(&self) -> String {
        self.build().label()
    }
}

impl core::fmt::Display for AdmissionSpec {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(live_kv: &[u64], committed: u64, budget: u64, block: u64) -> AdmissionView<'_> {
        AdmissionView {
            committed_blocks: committed,
            budget_blocks: budget,
            block_size: block,
            kv_tokens: live_kv.iter().sum(),
            queued: 3,
            live_kv,
        }
    }

    #[test]
    fn block_granular_plans_in_blocks() {
        let candidate = AdmissionCandidate {
            id: 1,
            prefill_tokens: 33,
            total_tokens: 80,
        };
        // 33 tokens = 3 blocks of 16; 60 committed + 3 > 62 budget.
        let v = view(&[100, 100], 60, 62, 16);
        assert!(!BlockGranular.admit(&candidate, &v));
        // A token-counting baseline would have said yes (992-token
        // budget, 200 + 33 tokens resident) — fragmentation is
        // invisible to it.
        assert!(Fcfs.admit(&candidate, &v));
        // With two free blocks and a 32-token prompt, both admit.
        let fits = AdmissionCandidate {
            id: 2,
            prefill_tokens: 32,
            total_tokens: 64,
        };
        assert!(BlockGranular.admit(&fits, &v));
    }

    #[test]
    fn fcfs_ignores_the_eviction_discount() {
        let candidate = AdmissionCandidate {
            id: 1,
            prefill_tokens: 100,
            total_tokens: 150,
        };
        // Committed is low (a big evictable prefix cache), but resident
        // tokens already exceed the budget: FCFS refuses, the paged
        // planner admits.
        let v = AdmissionView {
            committed_blocks: 200,
            budget_blocks: 1_000,
            block_size: 1,
            kv_tokens: 950,
            queued: 0,
            live_kv: &[475, 475],
        };
        assert!(!Fcfs.admit(&candidate, &v));
        assert!(BlockGranular.admit(&candidate, &v));
    }

    #[test]
    fn both_builtins_preempt_newest_and_spare_the_last() {
        for policy in [
            AdmissionSpec::BlockGranular.build(),
            AdmissionSpec::Fcfs.build(),
        ] {
            assert_eq!(
                policy.preempt_victim(&view(&[10, 20, 30], 60, 10, 1)),
                Some(2)
            );
            assert_eq!(policy.preempt_victim(&view(&[10], 10, 5, 1)), None);
            assert_eq!(policy.preempt_victim(&view(&[], 0, 5, 1)), None);
        }
    }

    #[test]
    fn spec_labels() {
        assert_eq!(AdmissionSpec::BlockGranular.to_string(), "block-granular");
        assert_eq!(AdmissionSpec::Fcfs.label(), "fcfs");
        assert_eq!(AdmissionSpec::default(), AdmissionSpec::BlockGranular);
    }
}
