//! The hardware cost model, extracted from the decoding engine.
//!
//! An [`IterationPricer`] prices one decoding iteration of a
//! [`SystemConfig`]: the FC kernels on their assigned device (GPU
//! tensor cores or FC-PIM), the attention kernels on the memory-side
//! pool holding the KV cache, the interconnect legs, and the host
//! dispatch overhead. It is the *single* pricing implementation in the
//! workspace — the batch-mode paper-figure path
//! ([`DecodingSimulator`](crate::engine::DecodingSimulator)), the
//! online serving path ([`ServingEngine`](crate::serving::ServingEngine)),
//! and the SLO analysis ([`slo`](crate::slo)) all price through it, so
//! a change to the hardware math moves every consumer at once.

use crate::config::SystemConfig;
use crate::metrics::IterationCost;
use papi_gpu::{execute_kernel, GpuEnergyModel, KernelProfile, MultiGpu};
use papi_interconnect::Route;
use papi_llm::{FcKernel, FcKernelKind, ModelConfig, Parallelism};
use papi_pim::attention::execute_attention;
use papi_pim::gemv::execute_gemv;
use papi_pim::{AttentionSpec, GemvSpec, PimDevice};
use papi_sched::Placement;
use papi_types::{Bytes, Energy, Time};
use papi_workload::IterationRecord;
use std::collections::HashMap;
use std::hash::BuildHasherDefault;
use std::sync::{Arc, Mutex};

/// Multiply-rotate hasher (Fx-style) for the pricing memos. Their keys
/// are a handful of machine words, where the default SipHash's keyed
/// setup costs more than the whole cache probe — and the memo lookup
/// sits on the per-iteration hot path of fleet simulation.
#[derive(Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x517c_c1b7_2722_0a95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl std::hash::Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.add(byte as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

type FxMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// FC-kernel latency of the whole model (all layers) on a PIM pool at
/// the given token count (`RLP × TLP`). Shared by the pricer and the
/// §5.2.1 α calibration so both see the same machine.
pub fn fc_latency_on_pim(
    model: &ModelConfig,
    device: &PimDevice,
    n_devices: usize,
    tokens: u64,
) -> Time {
    fc_cost_on_pim(model, device, n_devices, tokens).0
}

/// FC-kernel latency of the whole model on the GPU complement at the
/// given token count.
pub fn fc_latency_on_pu(
    model: &ModelConfig,
    gpus: &MultiGpu,
    energy: &GpuEnergyModel,
    tokens: u64,
) -> Time {
    fc_cost_on_pu(model, gpus, energy, tokens).0
}

/// (latency, energy) of all FC kernels on PIM.
pub fn fc_cost_on_pim(
    model: &ModelConfig,
    device: &PimDevice,
    n_devices: usize,
    tokens: u64,
) -> (Time, Energy) {
    let mut time = Time::ZERO;
    let mut energy = Energy::ZERO;
    for kernel in FcKernel::layer_kernels(model) {
        let spec = GemvSpec::new(kernel.out_features, kernel.in_features, tokens, model.dtype);
        let result = execute_gemv(device, n_devices, &spec);
        time += result.time;
        energy += result.energy.total();
    }
    (time * model.layers as f64, energy * model.layers as f64)
}

/// (latency, energy) of all FC kernels on the GPUs, Megatron-style
/// tensor parallelism: row-parallel kernels (the attention projection
/// and FFN down projection) all-reduce their `tokens × h` outputs.
pub fn fc_cost_on_pu(
    model: &ModelConfig,
    gpus: &MultiGpu,
    energy_model: &GpuEnergyModel,
    tokens: u64,
) -> (Time, Energy) {
    let p = Parallelism::new(tokens, 1);
    let mut time = Time::ZERO;
    let mut energy = Energy::ZERO;
    for kernel in FcKernel::layer_kernels(model) {
        let mut profile = KernelProfile::new(kernel.flops(p), kernel.bytes(model, p));
        if matches!(
            kernel.kind,
            FcKernelKind::Projection | FcKernelKind::FfnDown
        ) {
            profile = profile.with_allreduce((tokens * model.hidden) as f64 * model.dtype.size());
        }
        let result = execute_kernel(gpus, energy_model, &profile);
        time += result.time;
        energy += result.energy;
    }
    (time * model.layers as f64, energy * model.layers as f64)
}

/// The memo key a whole decoding iteration prices under: FC placement,
/// the batch shape `(rlp, tlp)`, and the per-request KV context length
/// the attention kernels see. [`IterationCost`] is a pure function of
/// these four (given a fixed [`SystemConfig`]) — the iteration's
/// `new_tokens` passes through to the cost verbatim and prices nothing.
pub type IterationKey = (Placement, u64, u64, u64);

/// A full-iteration cost memo shareable across sessions of identical
/// hardware — the fleet-scale analogue of the per-session FC memo.
///
/// A data-parallel fleet serves near-identical traffic on cloned
/// replicas, so the `(placement, batch shape, kv length)` tuples one
/// replica prices constantly recur on its siblings. The cluster engine
/// installs one shared cache per distinct replica design (via
/// [`crate::serving::ServingSession::install_pricer_cache`]) so each
/// distinct iteration shape is priced once fleet-wide. Hits return the
/// memoized cost bit for bit — pricing is a pure function of the key —
/// so sharing can never change a report.
/// The memo is two-level. Lookups land first in a fixed-size
/// direct-mapped lane of write-once slots — a probe there is one hash,
/// one slot read, and one key compare, with no lock — and fall back to
/// a mutex-guarded map that absorbs hash collisions. Slots are
/// [`OnceLock`](std::sync::OnceLock)s: the first session to price a
/// shape publishes it, racing writers compute the same pure function
/// and the loser's value is identical, so which write wins can never
/// change a report.
#[derive(Debug)]
pub struct SharedIterationCache {
    lane: Box<[std::sync::OnceLock<(IterationKey, IterationCost)>]>,
    overflow: Mutex<FxMap<IterationKey, IterationCost>>,
    entries: std::sync::atomic::AtomicUsize,
}

/// Direct-mapped lane size. Fleet episodes measure in the low
/// thousands of distinct iteration shapes; 2^16 slots keep the
/// collision (overflow) rate negligible at ~7 MiB per distinct design.
const LANE_SLOTS: usize = 1 << 16;

fn lane_index(key: &IterationKey) -> usize {
    use std::hash::{Hash, Hasher};
    let mut hasher = FxHasher::default();
    key.hash(&mut hasher);
    hasher.finish() as usize & (LANE_SLOTS - 1)
}

impl Default for SharedIterationCache {
    fn default() -> Self {
        Self {
            lane: (0..LANE_SLOTS)
                .map(|_| std::sync::OnceLock::new())
                .collect(),
            overflow: Mutex::new(FxMap::default()),
            entries: std::sync::atomic::AtomicUsize::new(0),
        }
    }
}

impl SharedIterationCache {
    /// An empty shared memo.
    pub fn new() -> Self {
        Self::default()
    }

    /// Distinct iteration shapes priced so far.
    pub fn len(&self) -> usize {
        self.entries.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Whether no iteration has been priced yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The memoized cost of `key`, if some session already priced it.
    fn get(&self, key: &IterationKey) -> Option<IterationCost> {
        match self.lane[lane_index(key)].get() {
            Some((slot_key, cost)) if slot_key == key => Some(*cost),
            // An occupied slot holding a different key means a hash
            // collision: the latecomer lives in the overflow map.
            Some(_) => self
                .overflow
                .lock()
                .expect("pricer cache poisoned")
                .get(key)
                .copied(),
            None => None,
        }
    }

    /// Publishes `cost` for `key`. First writer wins the direct-mapped
    /// slot; a key whose slot another shape already claimed goes to the
    /// overflow map.
    fn insert(&self, key: IterationKey, cost: IterationCost) {
        let slot = &self.lane[lane_index(&key)];
        if slot.set((key, cost)).is_err() {
            let (slot_key, _) = slot.get().expect("occupied slot holds a value");
            if *slot_key != key {
                self.overflow
                    .lock()
                    .expect("pricer cache poisoned")
                    .insert(key, cost);
            } else {
                // Lost a publish race for the same key: the winner's
                // value is bit-identical, nothing to do.
                return;
            }
        }
        self.entries
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
}

/// Stateful per-decode pricer: wraps a system configuration plus the
/// FC-cost memo (FC cost depends only on `(placement, tokens)`, so the
/// decaying-RLP iterations of a decode hit the cache constantly) and,
/// optionally, a fleet-shared full-iteration memo.
#[derive(Debug, Clone)]
pub struct IterationPricer<'a> {
    config: &'a SystemConfig,
    fc_cache: FxMap<(Placement, u64), (Time, Energy)>,
    shared: Option<Arc<SharedIterationCache>>,
}

impl<'a> IterationPricer<'a> {
    /// Creates a pricer over `config` with an empty FC memo.
    pub fn new(config: &'a SystemConfig) -> Self {
        Self {
            config,
            fc_cache: FxMap::default(),
            shared: None,
        }
    }

    /// Installs a fleet-shared full-iteration memo. The caller is
    /// responsible for sharing a cache only between pricers of
    /// identical [`SystemConfig`]s — the key does not re-encode the
    /// hardware.
    pub fn set_shared_cache(&mut self, cache: Arc<SharedIterationCache>) {
        self.shared = Some(cache);
    }

    /// The priced system.
    pub fn config(&self) -> &SystemConfig {
        self.config
    }

    /// Prices one decoding iteration with the FC kernels at `placement`.
    ///
    /// # Panics
    ///
    /// Panics if `placement` names a device pool the design does not
    /// have (a scheduler bug, not a workload condition).
    pub fn price_iteration(&mut self, placement: Placement, it: &IterationRecord) -> IterationCost {
        papi_perf::phase!("price");
        let Some(shared) = self.shared.as_deref() else {
            return self.compute_iteration(placement, it);
        };
        let kv_per_request = it.total_kv_len.div_ceil(it.rlp).max(1);
        let key: IterationKey = (placement, it.rlp, it.tlp, kv_per_request);
        if let Some(hit) = shared.get(&key) {
            return IterationCost {
                new_tokens: it.new_tokens,
                ..hit
            };
        }
        let cost = self.compute_iteration(placement, it);
        self.shared
            .as_deref()
            .expect("shared cache checked above")
            .insert(key, cost);
        cost
    }

    fn compute_iteration(&mut self, placement: Placement, it: &IterationRecord) -> IterationCost {
        let model = &self.config.model;
        let tokens = it.tokens_in_flight();

        // --- FC kernels ---
        let config = self.config;
        let (fc_time, fc_energy) =
            *self
                .fc_cache
                .entry((placement, tokens))
                .or_insert_with(|| match placement {
                    Placement::FcPim => {
                        let (device, count) = config
                            .fc_pim
                            .as_ref()
                            .expect("scheduler placed FC on PIM but the design has none");
                        fc_cost_on_pim(model, device, *count, tokens)
                    }
                    Placement::Pu => {
                        let gpus = config
                            .gpus
                            .as_ref()
                            .expect("scheduler placed FC on the PU but the design has none");
                        fc_cost_on_pu(model, gpus, &config.gpu_energy, tokens)
                    }
                });

        // --- Attention ---
        let kv_per_request = it.total_kv_len.div_ceil(it.rlp).max(1);
        let attn_spec = AttentionSpec::new(
            it.rlp,
            model.heads,
            model.head_dim(),
            kv_per_request,
            it.tlp,
            model.dtype,
        );
        let (attn_device, attn_count) = &self.config.attn_pim;
        let attn = execute_attention(attn_device, *attn_count, &attn_spec);
        let attn_time = attn.time * model.layers as f64;
        let attn_energy = attn.energy.total() * model.layers as f64;

        // --- Communication ---
        let (comm_time, comm_energy) = self.comm_cost(placement, it);

        // --- Host dispatch / monitoring ---
        let other_time = self.config.dispatch_per_layer * model.layers as f64
            + self.config.dispatch_per_iteration;

        // --- Static energy of powered PIM pools ---
        let iter_time = fc_time + attn_time + comm_time + other_time;
        let mut static_power = attn_device.hbm.energy.background * *attn_count as f64;
        if let Some((fc_device, fc_count)) = &self.config.fc_pim {
            static_power += fc_device.hbm.energy.background * *fc_count as f64;
        }
        let static_energy = static_power * iter_time;

        IterationCost {
            placement,
            fc_time,
            attn_time,
            comm_time,
            other_time,
            fc_energy,
            attn_energy,
            comm_energy,
            static_energy,
            new_tokens: it.new_tokens,
        }
    }

    /// Interconnect time/energy of one iteration.
    ///
    /// Attention traffic (Q vectors out, context vectors back) always
    /// crosses to the disaggregated Attn-PIM pool; FC activation traffic
    /// crosses NVLink only when the FC kernels run on FC-PIM. A
    /// tensor-parallel group additionally all-reduces its row-parallel
    /// FC outputs (attention projection + FFN down, `tokens × h` each)
    /// over the inter-node fabric every layer — the
    /// [`Route::TpAllReduce`] traffic class — regardless of where the
    /// FC kernels ran.
    fn comm_cost(&self, placement: Placement, it: &IterationRecord) -> (Time, Energy) {
        let model = &self.config.model;
        let topo = &self.config.topology;
        let layers = model.layers as f64;
        let tokens = it.tokens_in_flight();
        let dsize = model.dtype.size();

        let q_bytes = tokens as f64 * model.hidden as f64 * dsize.value();
        let attn_leg = topo.transfer_time(Route::PuToAttnPim, Bytes::new(q_bytes));
        let mut time = attn_leg * 2.0 * layers;
        let mut energy =
            topo.transfer_energy(Route::PuToAttnPim, Bytes::new(q_bytes)) * 2.0 * layers;

        if placement == Placement::FcPim {
            for kernel in FcKernel::layer_kernels(model) {
                let in_bytes =
                    Bytes::new(tokens as f64 * kernel.in_features as f64 * dsize.value());
                let out_bytes =
                    Bytes::new(tokens as f64 * kernel.out_features as f64 * dsize.value());
                time += (topo.transfer_time(Route::PuToFcPim, in_bytes)
                    + topo.transfer_time(Route::PuToFcPim, out_bytes))
                    * layers;
                energy += (topo.transfer_energy(Route::PuToFcPim, in_bytes)
                    + topo.transfer_energy(Route::PuToFcPim, out_bytes))
                    * layers;
            }
        }

        if let Some(tp) = &self.config.tp {
            let activation = Bytes::new(tokens as f64 * model.hidden as f64 * dsize.value());
            time += tp.fabric.all_reduce_time(activation, tp.degree) * 2.0 * layers;
            energy += tp.fabric.all_reduce_energy(activation, tp.degree) * 2.0 * layers;
        }
        (time, energy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use papi_llm::ModelPreset;

    fn record(rlp: u64, tlp: u64, kv: u64) -> IterationRecord {
        IterationRecord {
            rlp,
            tlp,
            total_kv_len: rlp * kv,
            max_kv_len: kv,
            new_tokens: rlp * tlp,
            finished: 0,
        }
    }

    #[test]
    fn memo_hit_equals_fresh_pricing() {
        let config = SystemConfig::pim_only_papi(ModelPreset::Llama65B.config());
        let mut pricer = IterationPricer::new(&config);
        let it = record(8, 2, 512);
        let first = pricer.price_iteration(Placement::FcPim, &it);
        let cached = pricer.price_iteration(Placement::FcPim, &it);
        assert_eq!(first, cached);
        let mut fresh = IterationPricer::new(&config);
        assert_eq!(fresh.price_iteration(Placement::FcPim, &it), first);
    }

    #[test]
    fn placement_changes_fc_and_comm_but_not_attention() {
        let config = SystemConfig::papi_with_alpha(ModelPreset::Llama65B.config(), 24.0);
        let mut pricer = IterationPricer::new(&config);
        let it = record(4, 1, 512);
        let on_pim = pricer.price_iteration(Placement::FcPim, &it);
        let on_pu = pricer.price_iteration(Placement::Pu, &it);
        assert_eq!(on_pim.attn_time, on_pu.attn_time);
        assert_ne!(on_pim.fc_time, on_pu.fc_time);
        // FC-PIM placement adds the PU↔FC-PIM activation legs.
        assert!(on_pim.comm_time.value() > on_pu.comm_time.value());
    }

    #[test]
    #[should_panic(expected = "design has none")]
    fn pricing_a_missing_pool_is_a_bug() {
        let config = SystemConfig::a100_attacc(ModelPreset::Llama65B.config());
        let mut pricer = IterationPricer::new(&config);
        let _ = pricer.price_iteration(Placement::FcPim, &record(4, 1, 128));
    }

    #[test]
    fn shared_cache_hit_is_bit_identical_to_cold_pricing() {
        let config = SystemConfig::pim_only_papi(ModelPreset::Llama65B.config());
        let cache = Arc::new(SharedIterationCache::new());
        // Session A warms the cache; session B must read A's entries
        // and price every shape exactly as a cache-less pricer would.
        let mut warmer = IterationPricer::new(&config);
        warmer.set_shared_cache(Arc::clone(&cache));
        let mut reader = IterationPricer::new(&config);
        reader.set_shared_cache(Arc::clone(&cache));
        let mut cold = IterationPricer::new(&config);
        for rlp in 1..=8u64 {
            for kv in [64u64, 511, 512, 700, 2048] {
                let it = record(rlp, 1, kv);
                let warmed = warmer.price_iteration(Placement::FcPim, &it);
                let hit = reader.price_iteration(Placement::FcPim, &it);
                let fresh = cold.price_iteration(Placement::FcPim, &it);
                assert_eq!(warmed, fresh, "rlp={rlp} kv={kv}: first pricing drifted");
                assert_eq!(hit, fresh, "rlp={rlp} kv={kv}: cache hit drifted");
            }
        }
        assert_eq!(cache.len(), 8 * 5, "one entry per distinct shape");
    }

    #[test]
    fn shared_cache_hit_patches_new_tokens_from_the_live_record() {
        // `new_tokens` is pass-through accounting, not a cost input: two
        // iterations with the same (placement, rlp, tlp, kv/request) key
        // but different token counts share a memo entry, and a hit must
        // report the *current* record's tokens, not the warmer's.
        let config = SystemConfig::pim_only_papi(ModelPreset::Llama65B.config());
        let cache = Arc::new(SharedIterationCache::new());
        let mut pricer = IterationPricer::new(&config);
        pricer.set_shared_cache(Arc::clone(&cache));
        let mut warm = record(4, 2, 512);
        warm.new_tokens = 8;
        let warmed = pricer.price_iteration(Placement::FcPim, &warm);
        assert_eq!(warmed.new_tokens, 8);
        let mut reuse = warm;
        reuse.new_tokens = 5;
        reuse.finished = 3;
        let hit = pricer.price_iteration(Placement::FcPim, &reuse);
        assert_eq!(cache.len(), 1, "both records share one memo entry");
        assert_eq!(hit.new_tokens, 5, "hit must carry the live record's tokens");
        assert_eq!(
            IterationCost {
                new_tokens: hit.new_tokens,
                ..warmed
            },
            hit,
            "everything but the token count comes from the memo"
        );
    }

    #[test]
    fn shared_cache_counts_distinct_shapes_once() {
        let config = SystemConfig::pim_only_papi(ModelPreset::Llama65B.config());
        let cache = Arc::new(SharedIterationCache::new());
        assert!(cache.is_empty());
        let mut pricer = IterationPricer::new(&config);
        pricer.set_shared_cache(Arc::clone(&cache));
        let it = record(2, 1, 256);
        pricer.price_iteration(Placement::FcPim, &it);
        pricer.price_iteration(Placement::FcPim, &it);
        pricer.price_iteration(Placement::FcPim, &it);
        assert_eq!(cache.len(), 1, "re-pricing a shape must not recount it");
        pricer.price_iteration(Placement::FcPim, &record(3, 1, 256));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn shared_cache_survives_lane_collisions() {
        // Find two keys that hash to the same direct-mapped slot, insert
        // both, and check each reads back its own cost: the latecomer
        // must live in (and be found via) the overflow map, never alias
        // the slot winner's value.
        let config = SystemConfig::pim_only_papi(ModelPreset::Llama65B.config());
        let cache = Arc::new(SharedIterationCache::new());
        let mut pricer = IterationPricer::new(&config);
        pricer.set_shared_cache(Arc::clone(&cache));
        let mut slots: FxMap<usize, u64> = FxMap::default();
        let (kv_a, kv_b) = (1u64..)
            .find_map(|kv| {
                let key: IterationKey = (Placement::FcPim, 1, 1, kv);
                slots.insert(lane_index(&key), kv).map(|first| (first, kv))
            })
            .expect("2^16 slots collide within a few hundred keys");
        let cost_a = pricer.price_iteration(Placement::FcPim, &record(1, 1, kv_a));
        let cost_b = pricer.price_iteration(Placement::FcPim, &record(1, 1, kv_b));
        assert_eq!(cache.len(), 2, "the collision victim still counts");
        assert_ne!(
            cost_a.attn_time, cost_b.attn_time,
            "distinct KV lengths must price differently (attention is KV-linear)"
        );
        // Hits after the collision: each key returns its own cost.
        assert_eq!(
            pricer.price_iteration(Placement::FcPim, &record(1, 1, kv_a)),
            cost_a
        );
        assert_eq!(
            pricer.price_iteration(Placement::FcPim, &record(1, 1, kv_b)),
            cost_b
        );
    }
}
