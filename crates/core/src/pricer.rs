//! The hardware cost model, extracted from the decoding engine.
//!
//! An [`IterationPricer`] prices one decoding iteration of a
//! [`SystemConfig`]: the FC kernels on their assigned device (GPU
//! tensor cores or FC-PIM), the attention kernels on the memory-side
//! pool holding the KV cache, the interconnect legs, and the host
//! dispatch overhead. It is the *single* pricing implementation in the
//! workspace — the batch-mode paper-figure path
//! ([`DecodingSimulator`](crate::engine::DecodingSimulator)), the
//! online serving path ([`ServingEngine`](crate::serving::ServingEngine)),
//! and the SLO analysis ([`slo`](crate::slo)) all price through it, so
//! a change to the hardware math moves every consumer at once.

use crate::config::SystemConfig;
use crate::metrics::IterationCost;
use papi_gpu::{execute_kernel, GpuEnergyModel, KernelProfile, MultiGpu};
use papi_interconnect::Route;
use papi_llm::{FcKernel, FcKernelKind, ModelConfig, Parallelism};
use papi_pim::attention::execute_attention;
use papi_pim::gemv::execute_gemv;
use papi_pim::{AttentionSpec, GemvSpec, PimDevice};
use papi_sched::Placement;
use papi_types::{Bytes, Energy, Time};
use papi_workload::IterationRecord;
use std::collections::HashMap;

/// FC-kernel latency of the whole model (all layers) on a PIM pool at
/// the given token count (`RLP × TLP`). Shared by the pricer and the
/// §5.2.1 α calibration so both see the same machine.
pub fn fc_latency_on_pim(
    model: &ModelConfig,
    device: &PimDevice,
    n_devices: usize,
    tokens: u64,
) -> Time {
    fc_cost_on_pim(model, device, n_devices, tokens).0
}

/// FC-kernel latency of the whole model on the GPU complement at the
/// given token count.
pub fn fc_latency_on_pu(
    model: &ModelConfig,
    gpus: &MultiGpu,
    energy: &GpuEnergyModel,
    tokens: u64,
) -> Time {
    fc_cost_on_pu(model, gpus, energy, tokens).0
}

/// (latency, energy) of all FC kernels on PIM.
pub fn fc_cost_on_pim(
    model: &ModelConfig,
    device: &PimDevice,
    n_devices: usize,
    tokens: u64,
) -> (Time, Energy) {
    let mut time = Time::ZERO;
    let mut energy = Energy::ZERO;
    for kernel in FcKernel::layer_kernels(model) {
        let spec = GemvSpec::new(kernel.out_features, kernel.in_features, tokens, model.dtype);
        let result = execute_gemv(device, n_devices, &spec);
        time += result.time;
        energy += result.energy.total();
    }
    (time * model.layers as f64, energy * model.layers as f64)
}

/// (latency, energy) of all FC kernels on the GPUs, Megatron-style
/// tensor parallelism: row-parallel kernels (the attention projection
/// and FFN down projection) all-reduce their `tokens × h` outputs.
pub fn fc_cost_on_pu(
    model: &ModelConfig,
    gpus: &MultiGpu,
    energy_model: &GpuEnergyModel,
    tokens: u64,
) -> (Time, Energy) {
    let p = Parallelism::new(tokens, 1);
    let mut time = Time::ZERO;
    let mut energy = Energy::ZERO;
    for kernel in FcKernel::layer_kernels(model) {
        let mut profile = KernelProfile::new(kernel.flops(p), kernel.bytes(model, p));
        if matches!(
            kernel.kind,
            FcKernelKind::Projection | FcKernelKind::FfnDown
        ) {
            profile = profile.with_allreduce((tokens * model.hidden) as f64 * model.dtype.size());
        }
        let result = execute_kernel(gpus, energy_model, &profile);
        time += result.time;
        energy += result.energy;
    }
    (time * model.layers as f64, energy * model.layers as f64)
}

/// Stateful per-decode pricer: wraps a system configuration plus the
/// FC-cost memo (FC cost depends only on `(placement, tokens)`, so the
/// decaying-RLP iterations of a decode hit the cache constantly).
#[derive(Debug, Clone)]
pub struct IterationPricer<'a> {
    config: &'a SystemConfig,
    fc_cache: HashMap<(Placement, u64), (Time, Energy)>,
}

impl<'a> IterationPricer<'a> {
    /// Creates a pricer over `config` with an empty FC memo.
    pub fn new(config: &'a SystemConfig) -> Self {
        Self {
            config,
            fc_cache: HashMap::new(),
        }
    }

    /// The priced system.
    pub fn config(&self) -> &SystemConfig {
        self.config
    }

    /// Prices one decoding iteration with the FC kernels at `placement`.
    ///
    /// # Panics
    ///
    /// Panics if `placement` names a device pool the design does not
    /// have (a scheduler bug, not a workload condition).
    pub fn price_iteration(&mut self, placement: Placement, it: &IterationRecord) -> IterationCost {
        let model = &self.config.model;
        let tokens = it.tokens_in_flight();

        // --- FC kernels ---
        let config = self.config;
        let (fc_time, fc_energy) =
            *self
                .fc_cache
                .entry((placement, tokens))
                .or_insert_with(|| match placement {
                    Placement::FcPim => {
                        let (device, count) = config
                            .fc_pim
                            .as_ref()
                            .expect("scheduler placed FC on PIM but the design has none");
                        fc_cost_on_pim(model, device, *count, tokens)
                    }
                    Placement::Pu => {
                        let gpus = config
                            .gpus
                            .as_ref()
                            .expect("scheduler placed FC on the PU but the design has none");
                        fc_cost_on_pu(model, gpus, &config.gpu_energy, tokens)
                    }
                });

        // --- Attention ---
        let kv_per_request = it.total_kv_len.div_ceil(it.rlp).max(1);
        let attn_spec = AttentionSpec::new(
            it.rlp,
            model.heads,
            model.head_dim(),
            kv_per_request,
            it.tlp,
            model.dtype,
        );
        let (attn_device, attn_count) = &self.config.attn_pim;
        let attn = execute_attention(attn_device, *attn_count, &attn_spec);
        let attn_time = attn.time * model.layers as f64;
        let attn_energy = attn.energy.total() * model.layers as f64;

        // --- Communication ---
        let (comm_time, comm_energy) = self.comm_cost(placement, it);

        // --- Host dispatch / monitoring ---
        let other_time = self.config.dispatch_per_layer * model.layers as f64
            + self.config.dispatch_per_iteration;

        // --- Static energy of powered PIM pools ---
        let iter_time = fc_time + attn_time + comm_time + other_time;
        let mut static_power = attn_device.hbm.energy.background * *attn_count as f64;
        if let Some((fc_device, fc_count)) = &self.config.fc_pim {
            static_power += fc_device.hbm.energy.background * *fc_count as f64;
        }
        let static_energy = static_power * iter_time;

        IterationCost {
            placement,
            fc_time,
            attn_time,
            comm_time,
            other_time,
            fc_energy,
            attn_energy,
            comm_energy,
            static_energy,
            new_tokens: it.new_tokens,
        }
    }

    /// Interconnect time/energy of one iteration.
    ///
    /// Attention traffic (Q vectors out, context vectors back) always
    /// crosses to the disaggregated Attn-PIM pool; FC activation traffic
    /// crosses NVLink only when the FC kernels run on FC-PIM. A
    /// tensor-parallel group additionally all-reduces its row-parallel
    /// FC outputs (attention projection + FFN down, `tokens × h` each)
    /// over the inter-node fabric every layer — the
    /// [`Route::TpAllReduce`] traffic class — regardless of where the
    /// FC kernels ran.
    fn comm_cost(&self, placement: Placement, it: &IterationRecord) -> (Time, Energy) {
        let model = &self.config.model;
        let topo = &self.config.topology;
        let layers = model.layers as f64;
        let tokens = it.tokens_in_flight();
        let dsize = model.dtype.size();

        let q_bytes = tokens as f64 * model.hidden as f64 * dsize.value();
        let attn_leg = topo.transfer_time(Route::PuToAttnPim, Bytes::new(q_bytes));
        let mut time = attn_leg * 2.0 * layers;
        let mut energy =
            topo.transfer_energy(Route::PuToAttnPim, Bytes::new(q_bytes)) * 2.0 * layers;

        if placement == Placement::FcPim {
            for kernel in FcKernel::layer_kernels(model) {
                let in_bytes =
                    Bytes::new(tokens as f64 * kernel.in_features as f64 * dsize.value());
                let out_bytes =
                    Bytes::new(tokens as f64 * kernel.out_features as f64 * dsize.value());
                time += (topo.transfer_time(Route::PuToFcPim, in_bytes)
                    + topo.transfer_time(Route::PuToFcPim, out_bytes))
                    * layers;
                energy += (topo.transfer_energy(Route::PuToFcPim, in_bytes)
                    + topo.transfer_energy(Route::PuToFcPim, out_bytes))
                    * layers;
            }
        }

        if let Some(tp) = &self.config.tp {
            let activation = Bytes::new(tokens as f64 * model.hidden as f64 * dsize.value());
            time += tp.fabric.all_reduce_time(activation, tp.degree) * 2.0 * layers;
            energy += tp.fabric.all_reduce_energy(activation, tp.degree) * 2.0 * layers;
        }
        (time, energy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use papi_llm::ModelPreset;

    fn record(rlp: u64, tlp: u64, kv: u64) -> IterationRecord {
        IterationRecord {
            rlp,
            tlp,
            total_kv_len: rlp * kv,
            max_kv_len: kv,
            new_tokens: rlp * tlp,
            finished: 0,
        }
    }

    #[test]
    fn memo_hit_equals_fresh_pricing() {
        let config = SystemConfig::pim_only_papi(ModelPreset::Llama65B.config());
        let mut pricer = IterationPricer::new(&config);
        let it = record(8, 2, 512);
        let first = pricer.price_iteration(Placement::FcPim, &it);
        let cached = pricer.price_iteration(Placement::FcPim, &it);
        assert_eq!(first, cached);
        let mut fresh = IterationPricer::new(&config);
        assert_eq!(fresh.price_iteration(Placement::FcPim, &it), first);
    }

    #[test]
    fn placement_changes_fc_and_comm_but_not_attention() {
        let config = SystemConfig::papi_with_alpha(ModelPreset::Llama65B.config(), 24.0);
        let mut pricer = IterationPricer::new(&config);
        let it = record(4, 1, 512);
        let on_pim = pricer.price_iteration(Placement::FcPim, &it);
        let on_pu = pricer.price_iteration(Placement::Pu, &it);
        assert_eq!(on_pim.attn_time, on_pu.attn_time);
        assert_ne!(on_pim.fc_time, on_pu.fc_time);
        // FC-PIM placement adds the PU↔FC-PIM activation legs.
        assert!(on_pim.comm_time.value() > on_pu.comm_time.value());
    }

    #[test]
    #[should_panic(expected = "design has none")]
    fn pricing_a_missing_pool_is_a_bug() {
        let config = SystemConfig::a100_attacc(ModelPreset::Llama65B.config());
        let mut pricer = IterationPricer::new(&config);
        let _ = pricer.price_iteration(Placement::FcPim, &record(4, 1, 128));
    }
}
