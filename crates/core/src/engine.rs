//! The decoding-iteration engine.
//!
//! One [`DecodingSimulator`] prices every iteration of a
//! [`DecodeTrace`]: the scheduler picks the FC placement from the
//! observed `(RLP, TLP)`, the hardware models price the FC and attention
//! kernels on their assigned devices, the interconnect models price the
//! activation movement, and the host dispatch overhead covers the
//! paper's §5.2.2 token-gather/`<|eos|>`-scan monitoring step.

use crate::config::SystemConfig;
use crate::metrics::{ExecutionReport, IterationCost, PhaseBreakdown};
use papi_gpu::{execute_kernel, GpuEnergyModel, KernelProfile, MultiGpu};
use papi_interconnect::Route;
use papi_llm::{FcKernel, FcKernelKind, ModelConfig, Parallelism};
use papi_pim::attention::execute_attention;
use papi_pim::gemv::execute_gemv;
use papi_pim::{AttentionSpec, GemvSpec, PimDevice};
use papi_sched::Placement;
use papi_types::{Bytes, Energy, Time};
use papi_workload::{DecodeTrace, IterationRecord, WorkloadSpec};
use std::collections::HashMap;

/// FC-kernel latency of the whole model (all layers) on a PIM pool at
/// the given token count (`RLP × TLP`). Shared by the engine and the
/// §5.2.1 α calibration so both see the same machine.
pub fn fc_latency_on_pim(
    model: &ModelConfig,
    device: &PimDevice,
    n_devices: usize,
    tokens: u64,
) -> Time {
    fc_cost_on_pim(model, device, n_devices, tokens).0
}

/// FC-kernel latency of the whole model on the GPU complement at the
/// given token count.
pub fn fc_latency_on_pu(
    model: &ModelConfig,
    gpus: &MultiGpu,
    energy: &GpuEnergyModel,
    tokens: u64,
) -> Time {
    fc_cost_on_pu(model, gpus, energy, tokens).0
}

/// (latency, energy) of all FC kernels on PIM.
pub fn fc_cost_on_pim(
    model: &ModelConfig,
    device: &PimDevice,
    n_devices: usize,
    tokens: u64,
) -> (Time, Energy) {
    let mut time = Time::ZERO;
    let mut energy = Energy::ZERO;
    for kernel in FcKernel::layer_kernels(model) {
        let spec = GemvSpec::new(kernel.out_features, kernel.in_features, tokens, model.dtype);
        let result = execute_gemv(device, n_devices, &spec);
        time += result.time;
        energy += result.energy.total();
    }
    (time * model.layers as f64, energy * model.layers as f64)
}

/// (latency, energy) of all FC kernels on the GPUs, Megatron-style
/// tensor parallelism: row-parallel kernels (the attention projection
/// and FFN down projection) all-reduce their `tokens × h` outputs.
pub fn fc_cost_on_pu(
    model: &ModelConfig,
    gpus: &MultiGpu,
    energy_model: &GpuEnergyModel,
    tokens: u64,
) -> (Time, Energy) {
    let p = Parallelism::new(tokens, 1);
    let mut time = Time::ZERO;
    let mut energy = Energy::ZERO;
    for kernel in FcKernel::layer_kernels(model) {
        let mut profile = KernelProfile::new(kernel.flops(p), kernel.bytes(model, p));
        if matches!(kernel.kind, FcKernelKind::Projection | FcKernelKind::FfnDown) {
            profile = profile
                .with_allreduce((tokens * model.hidden) as f64 * model.dtype.size());
        }
        let result = execute_kernel(gpus, energy_model, &profile);
        time += result.time;
        energy += result.energy;
    }
    (time * model.layers as f64, energy * model.layers as f64)
}

/// Simulates LLM decoding on one [`SystemConfig`].
#[derive(Debug, Clone)]
pub struct DecodingSimulator {
    config: SystemConfig,
}

impl DecodingSimulator {
    /// Wraps a system configuration.
    pub fn new(config: SystemConfig) -> Self {
        Self { config }
    }

    /// The wrapped configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Generates the workload's trace and decodes it.
    pub fn run(&self, workload: &WorkloadSpec) -> ExecutionReport {
        self.run_trace(&workload.trace())
    }

    /// Like [`DecodingSimulator::run`], but also prices the prefill
    /// phase (GPU where available, PIM otherwise — see
    /// [`prefill_cost`](crate::prefill::prefill_cost)). The report's
    /// [`end_to_end_latency`](ExecutionReport::end_to_end_latency)
    /// then covers the whole request lifetime.
    pub fn run_end_to_end(&self, workload: &WorkloadSpec) -> ExecutionReport {
        let trace = workload.trace();
        let mut report = self.run_trace(&trace);
        let prefill = crate::prefill::prefill_cost(&self.config, &trace);
        report.prefill_time = prefill.time;
        report.prefill_energy = prefill.energy;
        report
    }

    /// Decodes a pre-built trace.
    ///
    /// # Panics
    ///
    /// Panics if the KV-cache demand of any iteration exceeds the
    /// attention pool's capacity (the configuration is physically
    /// impossible; size the batch with
    /// [`KvCachePlanner`](papi_llm::kvcache::KvCachePlanner) first).
    pub fn run_trace(&self, trace: &DecodeTrace) -> ExecutionReport {
        let peak_kv_tokens = trace
            .iterations
            .iter()
            .map(|it| it.total_kv_len)
            .max()
            .unwrap_or(0);
        let kv_demand =
            peak_kv_tokens as f64 * self.config.model.kv_bytes_per_token().value();
        if let Err(msg) = self.config.validate_capacity(kv_demand) {
            panic!("{msg}");
        }

        let mut scheduler = self.config.scheduler.build();
        let mut phases = PhaseBreakdown::default();
        let mut energy_parts = (Energy::ZERO, Energy::ZERO, Energy::ZERO, Energy::ZERO);
        let mut placements = Vec::with_capacity(trace.len());
        // FC cost depends only on (placement, tokens): memoize across the
        // decaying-RLP iterations.
        let mut fc_cache: HashMap<(Placement, u64), (Time, Energy)> = HashMap::new();

        for it in &trace.iterations {
            let placement = scheduler.decide(it.rlp, it.tlp);
            let cost = self.iteration_cost(placement, it, &mut fc_cache);
            phases.fc += cost.fc_time;
            phases.attention += cost.attn_time;
            phases.communication += cost.comm_time;
            phases.other += cost.other_time;
            energy_parts.0 += cost.fc_energy;
            energy_parts.1 += cost.attn_energy;
            energy_parts.2 += cost.comm_energy;
            energy_parts.3 += cost.static_energy;
            placements.push(placement);
        }

        ExecutionReport {
            design: self.config.design.label().to_owned(),
            model: self.config.model.name.clone(),
            iterations: trace.len() as u64,
            tokens: trace.total_tokens,
            requests: trace.requests,
            phases,
            energy: energy_parts.0 + energy_parts.1 + energy_parts.2 + energy_parts.3,
            energy_parts,
            scheduler: scheduler.stats(),
            placements,
            prefill_time: papi_types::Time::ZERO,
            prefill_energy: papi_types::Energy::ZERO,
        }
    }

    /// Prices one iteration.
    fn iteration_cost(
        &self,
        placement: Placement,
        it: &IterationRecord,
        fc_cache: &mut HashMap<(Placement, u64), (Time, Energy)>,
    ) -> IterationCost {
        let model = &self.config.model;
        let tokens = it.tokens_in_flight();

        // --- FC kernels ---
        let (fc_time, fc_energy) =
            *fc_cache.entry((placement, tokens)).or_insert_with(|| {
                match placement {
                    Placement::FcPim => {
                        let (device, count) = self
                            .config
                            .fc_pim
                            .as_ref()
                            .expect("scheduler placed FC on PIM but the design has none");
                        fc_cost_on_pim(model, device, *count, tokens)
                    }
                    Placement::Pu => {
                        let gpus = self
                            .config
                            .gpus
                            .as_ref()
                            .expect("scheduler placed FC on the PU but the design has none");
                        fc_cost_on_pu(model, gpus, &self.config.gpu_energy, tokens)
                    }
                }
            });

        // --- Attention ---
        let kv_per_request = it.total_kv_len.div_ceil(it.rlp).max(1);
        let attn_spec = AttentionSpec::new(
            it.rlp,
            model.heads,
            model.head_dim(),
            kv_per_request,
            it.tlp,
            model.dtype,
        );
        let (attn_device, attn_count) = &self.config.attn_pim;
        let attn = execute_attention(attn_device, *attn_count, &attn_spec);
        let attn_time = attn.time * model.layers as f64;
        let attn_energy = attn.energy.total() * model.layers as f64;

        // --- Communication ---
        let (comm_time, comm_energy) = self.comm_cost(placement, it);

        // --- Host dispatch / monitoring ---
        let other_time = self.config.dispatch_per_layer * model.layers as f64
            + self.config.dispatch_per_iteration;

        // --- Static energy of powered PIM pools ---
        let iter_time = fc_time + attn_time + comm_time + other_time;
        let mut static_power = attn_device.hbm.energy.background * *attn_count as f64;
        if let Some((fc_device, fc_count)) = &self.config.fc_pim {
            static_power += fc_device.hbm.energy.background * *fc_count as f64;
        }
        let static_energy = static_power * iter_time;

        IterationCost {
            placement,
            fc_time,
            attn_time,
            comm_time,
            other_time,
            fc_energy,
            attn_energy,
            comm_energy,
            static_energy,
            new_tokens: it.new_tokens,
        }
    }

    /// Interconnect time/energy of one iteration.
    ///
    /// Attention traffic (Q vectors out, context vectors back) always
    /// crosses to the disaggregated Attn-PIM pool; FC activation traffic
    /// crosses NVLink only when the FC kernels run on FC-PIM.
    fn comm_cost(&self, placement: Placement, it: &IterationRecord) -> (Time, Energy) {
        let model = &self.config.model;
        let topo = &self.config.topology;
        let layers = model.layers as f64;
        let tokens = it.tokens_in_flight();
        let dsize = model.dtype.size();

        let q_bytes = tokens as f64 * model.hidden as f64 * dsize.value();
        let attn_leg = topo.transfer_time(Route::PuToAttnPim, Bytes::new(q_bytes));
        let mut time = attn_leg * 2.0 * layers;
        let mut energy =
            topo.transfer_energy(Route::PuToAttnPim, Bytes::new(q_bytes)) * 2.0 * layers;

        if placement == Placement::FcPim {
            for kernel in FcKernel::layer_kernels(model) {
                let in_bytes = Bytes::new(tokens as f64 * kernel.in_features as f64 * dsize.value());
                let out_bytes =
                    Bytes::new(tokens as f64 * kernel.out_features as f64 * dsize.value());
                time += (topo.transfer_time(Route::PuToFcPim, in_bytes)
                    + topo.transfer_time(Route::PuToFcPim, out_bytes))
                    * layers;
                energy += (topo.transfer_energy(Route::PuToFcPim, in_bytes)
                    + topo.transfer_energy(Route::PuToFcPim, out_bytes))
                    * layers;
            }
        }
        (time, energy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use papi_llm::ModelPreset;
    use papi_workload::{DatasetKind, IterationRecord, WorkloadSpec};

    fn llama() -> ModelConfig {
        ModelPreset::Llama65B.config()
    }

    fn short_workload(batch: u64, spec: u64) -> WorkloadSpec {
        WorkloadSpec::static_batching(DatasetKind::CreativeWriting, batch, spec)
            .with_seed(3)
            .with_max_iterations(48)
    }

    #[test]
    fn fc_pim_beats_gpu_at_low_tokens_and_loses_at_high() {
        let model = llama();
        let fc_pim = PimDevice::fc_pim();
        let gpus = MultiGpu::dgx6_a100();
        let em = GpuEnergyModel::a100();
        let pim_low = fc_latency_on_pim(&model, &fc_pim, 30, 4);
        let pu_low = fc_latency_on_pu(&model, &gpus, &em, 4);
        assert!(
            pim_low.value() < pu_low.value(),
            "at 4 tokens FC-PIM ({pim_low}) must beat the GPUs ({pu_low})"
        );
        let pim_high = fc_latency_on_pim(&model, &fc_pim, 30, 128);
        let pu_high = fc_latency_on_pu(&model, &gpus, &em, 128);
        assert!(
            pu_high.value() < pim_high.value(),
            "at 128 tokens the GPUs ({pu_high}) must beat FC-PIM ({pim_high})"
        );
    }

    #[test]
    fn gpu_fc_latency_flat_while_memory_bound() {
        // The GPU side of Fig. 4: below the roofline knee, more tokens
        // are free.
        let model = llama();
        let gpus = MultiGpu::dgx6_a100();
        let em = GpuEnergyModel::a100();
        let t4 = fc_latency_on_pu(&model, &gpus, &em, 4);
        let t64 = fc_latency_on_pu(&model, &gpus, &em, 64);
        // Only the all-reduce volume grows with tokens; the roofline leg
        // is flat below the knee.
        assert!(
            (t64.value() / t4.value() - 1.0).abs() < 0.12,
            "GPU FC should be near-flat: {t4} vs {t64}"
        );
    }

    #[test]
    fn papi_beats_a100_attacc_on_low_batch() {
        let w = short_workload(4, 1);
        let papi = DecodingSimulator::new(SystemConfig::papi(llama())).run(&w);
        let base = DecodingSimulator::new(SystemConfig::a100_attacc(llama())).run(&w);
        let speedup = papi.speedup_over(&base);
        assert!(
            speedup > 1.5,
            "PAPI speedup at batch 4 was only {speedup:.2}×"
        );
    }

    #[test]
    fn papi_matches_gpu_baseline_at_high_parallelism() {
        // With RLP × TLP far above α, PAPI schedules FC on the GPUs and
        // converges to A100+AttAcc (§7.3's TLP observation).
        let w = short_workload(64, 4);
        let papi = DecodingSimulator::new(SystemConfig::papi(llama())).run(&w);
        let base = DecodingSimulator::new(SystemConfig::a100_attacc(llama())).run(&w);
        let speedup = papi.speedup_over(&base);
        assert!(
            speedup > 0.95 && speedup < 1.3,
            "PAPI at high parallelism should track the GPU baseline: {speedup:.2}×"
        );
    }

    #[test]
    fn attacc_only_collapses_at_high_batch() {
        let w = short_workload(64, 2);
        let attacc = DecodingSimulator::new(SystemConfig::attacc_only(llama())).run(&w);
        let base = DecodingSimulator::new(SystemConfig::a100_attacc(llama())).run(&w);
        let slowdown = base.speedup_over(&attacc);
        assert!(
            slowdown > 4.0,
            "AttAcc-only at batch 64 should be many times slower: {slowdown:.2}×"
        );
    }

    #[test]
    fn papi_scheduler_switches_as_rlp_decays() {
        // A batch that starts above α and decays below it must produce
        // at least one PU → FC-PIM rescheduling event (Fig. 5(d)).
        let w = WorkloadSpec::static_batching(DatasetKind::CreativeWriting, 64, 1).with_seed(9);
        let papi = DecodingSimulator::new(SystemConfig::papi(llama()));
        let report = papi.run(&w);
        assert!(report.scheduler.switches >= 1, "no rescheduling happened");
        assert!(report.scheduler.pu_decisions > 0);
        assert!(report.scheduler.fc_pim_decisions > 0);
        // The decay direction means PU placements come first.
        assert_eq!(report.placements.first(), Some(&Placement::Pu));
        assert_eq!(report.placements.last(), Some(&Placement::FcPim));
    }

    #[test]
    fn energy_parts_sum_to_total() {
        let w = short_workload(16, 2);
        let r = DecodingSimulator::new(SystemConfig::pim_only_papi(llama())).run(&w);
        let sum = r.energy_parts.0 + r.energy_parts.1 + r.energy_parts.2 + r.energy_parts.3;
        assert!((sum.value() - r.energy.value()).abs() < 1e-12 * r.energy.value().max(1.0));
    }

    #[test]
    fn fig12_shape_fc_dominates_comm_significant() {
        // LLaMA-65B, batch 4, speculation 4, PIM-only PAPI: FC dominates,
        // communication ≈ 28 % (paper Fig. 12).
        let trace = WorkloadSpec::static_batching(DatasetKind::CreativeWriting, 4, 4)
            .with_seed(1)
            .trace();
        let r = DecodingSimulator::new(SystemConfig::pim_only_papi(llama())).run_trace(&trace);
        let (fc, attn, comm, other) = r.phases.fractions();
        assert!(fc > 0.5, "FC share {fc}");
        assert!(attn < 0.15, "attention share {attn}");
        assert!(
            comm > 0.15 && comm < 0.40,
            "communication share {comm}, paper reports 28.2 %"
        );
        assert!(other < 0.1, "other share {other}");
    }

    #[test]
    #[should_panic(expected = "KV cache")]
    fn kv_overflow_panics() {
        let sim = DecodingSimulator::new(SystemConfig::pim_only_papi(llama()));
        let trace = papi_workload::DecodeTrace {
            iterations: vec![IterationRecord {
                rlp: 1000,
                tlp: 1,
                total_kv_len: 800_000_000, // ~1 PB of KV
                max_kv_len: 800_000,
                new_tokens: 1000,
                finished: 1000,
            }],
            requests: 1000,
            total_tokens: 1000,
            total_input_tokens: 0,
            sum_input_len_squared: 0,
        };
        let _ = sim.run_trace(&trace);
    }

    #[test]
    fn deterministic_reports() {
        let w = short_workload(8, 2);
        let sim = DecodingSimulator::new(SystemConfig::pim_only_papi(llama()));
        let a = sim.run(&w);
        let b = sim.run(&w);
        assert_eq!(a.total_latency(), b.total_latency());
        assert_eq!(a.energy, b.energy);
    }
}
