//! The batch-mode decoding engine.
//!
//! One [`DecodingSimulator`] prices every iteration of a pre-generated
//! [`DecodeTrace`] — the paper-figure path, where the workload is a
//! closed batch and only the total latency/energy matter. All hardware
//! math lives in [`crate::pricer`]; this engine just walks the trace,
//! asks the scheduler for a placement, and aggregates the per-iteration
//! costs. The online serving counterpart (arrivals, queueing,
//! per-request latency) is [`crate::serving::ServingEngine`], which
//! prices through the exact same [`IterationPricer`].

use crate::config::SystemConfig;
use crate::metrics::{ExecutionReport, PhaseBreakdown};
use crate::pricer::IterationPricer;
use papi_types::Energy;
use papi_workload::{DecodeTrace, WorkloadSpec};

pub use crate::pricer::{fc_cost_on_pim, fc_cost_on_pu, fc_latency_on_pim, fc_latency_on_pu};

/// Simulates LLM decoding on one [`SystemConfig`].
#[derive(Debug, Clone)]
pub struct DecodingSimulator {
    config: SystemConfig,
}

impl DecodingSimulator {
    /// Wraps a system configuration.
    pub fn new(config: SystemConfig) -> Self {
        Self { config }
    }

    /// The wrapped configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Generates the workload's trace and decodes it.
    pub fn run(&self, workload: &WorkloadSpec) -> ExecutionReport {
        self.run_trace(&workload.trace())
    }

    /// Like [`DecodingSimulator::run`], but also prices the prefill
    /// phase (GPU where available, PIM otherwise — see
    /// [`prefill_cost`](crate::prefill::prefill_cost)). The report's
    /// [`end_to_end_latency`](ExecutionReport::end_to_end_latency)
    /// then covers the whole request lifetime.
    pub fn run_end_to_end(&self, workload: &WorkloadSpec) -> ExecutionReport {
        let trace = workload.trace();
        let mut report = self.run_trace(&trace);
        let prefill = crate::prefill::prefill_cost(&self.config, &trace);
        report.prefill_time = prefill.time;
        report.prefill_energy = prefill.energy;
        report
    }

    /// Decodes a pre-built trace.
    ///
    /// # Panics
    ///
    /// Panics if the KV-cache demand of any iteration exceeds the
    /// attention pool's capacity (the configuration is physically
    /// impossible; size the batch with
    /// [`KvCachePlanner`](papi_llm::kvcache::KvCachePlanner) first).
    pub fn run_trace(&self, trace: &DecodeTrace) -> ExecutionReport {
        let peak_kv_tokens = trace
            .iterations
            .iter()
            .map(|it| it.total_kv_len)
            .max()
            .unwrap_or(0);
        let kv_demand = peak_kv_tokens as f64 * self.config.model.kv_bytes_per_token().value();
        if let Err(msg) = self.config.validate_capacity(kv_demand) {
            panic!("{msg}");
        }

        let mut scheduler = self.config.scheduler.build();
        let mut pricer = IterationPricer::new(&self.config);
        let mut phases = PhaseBreakdown::default();
        let mut energy_parts = (Energy::ZERO, Energy::ZERO, Energy::ZERO, Energy::ZERO);
        let mut placements = Vec::with_capacity(trace.len());

        for it in &trace.iterations {
            let placement = scheduler.decide(it.rlp, it.tlp);
            let cost = pricer.price_iteration(placement, it);
            phases.fc += cost.fc_time;
            phases.attention += cost.attn_time;
            phases.communication += cost.comm_time;
            phases.other += cost.other_time;
            energy_parts.0 += cost.fc_energy;
            energy_parts.1 += cost.attn_energy;
            energy_parts.2 += cost.comm_energy;
            energy_parts.3 += cost.static_energy;
            placements.push(placement);
        }

        ExecutionReport {
            design: self.config.design.label().to_owned(),
            model: self.config.model.name.clone(),
            iterations: trace.len() as u64,
            tokens: trace.total_tokens,
            requests: trace.requests,
            phases,
            energy: energy_parts.0 + energy_parts.1 + energy_parts.2 + energy_parts.3,
            energy_parts,
            scheduler: scheduler.stats(),
            placements,
            prefill_time: papi_types::Time::ZERO,
            prefill_energy: papi_types::Energy::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use papi_gpu::{GpuEnergyModel, MultiGpu};
    use papi_llm::{ModelConfig, ModelPreset};
    use papi_pim::PimDevice;
    use papi_sched::Placement;
    use papi_workload::{DatasetKind, IterationRecord, WorkloadSpec};

    fn llama() -> ModelConfig {
        ModelPreset::Llama65B.config()
    }

    fn short_workload(batch: u64, spec: u64) -> WorkloadSpec {
        WorkloadSpec::static_batching(DatasetKind::CreativeWriting, batch, spec)
            .with_seed(3)
            .with_max_iterations(48)
    }

    #[test]
    fn fc_pim_beats_gpu_at_low_tokens_and_loses_at_high() {
        let model = llama();
        let fc_pim = PimDevice::fc_pim();
        let gpus = MultiGpu::dgx6_a100();
        let em = GpuEnergyModel::a100();
        let pim_low = fc_latency_on_pim(&model, &fc_pim, 30, 4);
        let pu_low = fc_latency_on_pu(&model, &gpus, &em, 4);
        assert!(
            pim_low.value() < pu_low.value(),
            "at 4 tokens FC-PIM ({pim_low}) must beat the GPUs ({pu_low})"
        );
        let pim_high = fc_latency_on_pim(&model, &fc_pim, 30, 128);
        let pu_high = fc_latency_on_pu(&model, &gpus, &em, 128);
        assert!(
            pu_high.value() < pim_high.value(),
            "at 128 tokens the GPUs ({pu_high}) must beat FC-PIM ({pim_high})"
        );
    }

    #[test]
    fn gpu_fc_latency_flat_while_memory_bound() {
        // The GPU side of Fig. 4: below the roofline knee, more tokens
        // are free.
        let model = llama();
        let gpus = MultiGpu::dgx6_a100();
        let em = GpuEnergyModel::a100();
        let t4 = fc_latency_on_pu(&model, &gpus, &em, 4);
        let t64 = fc_latency_on_pu(&model, &gpus, &em, 64);
        // Only the all-reduce volume grows with tokens; the roofline leg
        // is flat below the knee.
        assert!(
            (t64.value() / t4.value() - 1.0).abs() < 0.12,
            "GPU FC should be near-flat: {t4} vs {t64}"
        );
    }

    #[test]
    fn papi_beats_a100_attacc_on_low_batch() {
        let w = short_workload(4, 1);
        let papi = DecodingSimulator::new(SystemConfig::papi(llama())).run(&w);
        let base = DecodingSimulator::new(SystemConfig::a100_attacc(llama())).run(&w);
        let speedup = papi.speedup_over(&base);
        assert!(
            speedup > 1.5,
            "PAPI speedup at batch 4 was only {speedup:.2}×"
        );
    }

    #[test]
    fn papi_matches_gpu_baseline_at_high_parallelism() {
        // With RLP × TLP far above α, PAPI schedules FC on the GPUs and
        // converges to A100+AttAcc (§7.3's TLP observation).
        let w = short_workload(64, 4);
        let papi = DecodingSimulator::new(SystemConfig::papi(llama())).run(&w);
        let base = DecodingSimulator::new(SystemConfig::a100_attacc(llama())).run(&w);
        let speedup = papi.speedup_over(&base);
        assert!(
            speedup > 0.95 && speedup < 1.3,
            "PAPI at high parallelism should track the GPU baseline: {speedup:.2}×"
        );
    }

    #[test]
    fn attacc_only_collapses_at_high_batch() {
        let w = short_workload(64, 2);
        let attacc = DecodingSimulator::new(SystemConfig::attacc_only(llama())).run(&w);
        let base = DecodingSimulator::new(SystemConfig::a100_attacc(llama())).run(&w);
        let slowdown = base.speedup_over(&attacc);
        assert!(
            slowdown > 4.0,
            "AttAcc-only at batch 64 should be many times slower: {slowdown:.2}×"
        );
    }

    #[test]
    fn papi_scheduler_switches_as_rlp_decays() {
        // A batch that starts above α and decays below it must produce
        // at least one PU → FC-PIM rescheduling event (Fig. 5(d)).
        let w = WorkloadSpec::static_batching(DatasetKind::CreativeWriting, 64, 1).with_seed(9);
        let papi = DecodingSimulator::new(SystemConfig::papi(llama()));
        let report = papi.run(&w);
        assert!(report.scheduler.switches >= 1, "no rescheduling happened");
        assert!(report.scheduler.pu_decisions > 0);
        assert!(report.scheduler.fc_pim_decisions > 0);
        // The decay direction means PU placements come first.
        assert_eq!(report.placements.first(), Some(&Placement::Pu));
        assert_eq!(report.placements.last(), Some(&Placement::FcPim));
    }

    #[test]
    fn energy_parts_sum_to_total() {
        let w = short_workload(16, 2);
        let r = DecodingSimulator::new(SystemConfig::pim_only_papi(llama())).run(&w);
        let sum = r.energy_parts.0 + r.energy_parts.1 + r.energy_parts.2 + r.energy_parts.3;
        assert!((sum.value() - r.energy.value()).abs() < 1e-12 * r.energy.value().max(1.0));
    }

    #[test]
    fn fig12_shape_fc_dominates_comm_significant() {
        // LLaMA-65B, batch 4, speculation 4, PIM-only PAPI: FC dominates,
        // communication ≈ 28 % (paper Fig. 12).
        let trace = WorkloadSpec::static_batching(DatasetKind::CreativeWriting, 4, 4)
            .with_seed(1)
            .trace();
        let r = DecodingSimulator::new(SystemConfig::pim_only_papi(llama())).run_trace(&trace);
        let (fc, attn, comm, other) = r.phases.fractions();
        assert!(fc > 0.5, "FC share {fc}");
        assert!(attn < 0.15, "attention share {attn}");
        assert!(
            comm > 0.15 && comm < 0.40,
            "communication share {comm}, paper reports 28.2 %"
        );
        assert!(other < 0.1, "other share {other}");
    }

    #[test]
    #[should_panic(expected = "KV cache")]
    fn kv_overflow_panics() {
        let sim = DecodingSimulator::new(SystemConfig::pim_only_papi(llama()));
        let trace = papi_workload::DecodeTrace {
            iterations: vec![IterationRecord {
                rlp: 1000,
                tlp: 1,
                total_kv_len: 800_000_000, // ~1 PB of KV
                max_kv_len: 800_000,
                new_tokens: 1000,
                finished: 1000,
            }],
            requests: 1000,
            total_tokens: 1000,
            total_input_tokens: 0,
            sum_input_len_squared: 0,
        };
        let _ = sim.run_trace(&trace);
    }

    #[test]
    fn deterministic_reports() {
        let w = short_workload(8, 2);
        let sim = DecodingSimulator::new(SystemConfig::pim_only_papi(llama()));
        let a = sim.run(&w);
        let b = sim.run(&w);
        assert_eq!(a.total_latency(), b.total_latency());
        assert_eq!(a.energy, b.energy);
    }
}
