//! Execution reports: latency and energy, split by phase — plus the
//! per-request records and percentile aggregation the online serving
//! path produces (TTFT, TPOT, queueing delay, SLO goodput).

use crate::slo::SloSpec;
use papi_kv::KvCacheStats;
use papi_sched::policy::SchedulerStats;
use papi_sched::Placement;
use papi_types::{Energy, Time};
use serde::{Deserialize, Serialize};

/// Latency/energy of one decoding iteration, split the way Fig. 12
/// splits per-token time: attention / FC / communication / other.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationCost {
    /// Where the FC kernels ran.
    pub placement: Placement,
    /// FC-kernel time.
    pub fc_time: Time,
    /// Attention-kernel time.
    pub attn_time: Time,
    /// Interconnect time.
    pub comm_time: Time,
    /// Host dispatch/monitoring time.
    pub other_time: Time,
    /// FC energy.
    pub fc_energy: Energy,
    /// Attention energy.
    pub attn_energy: Energy,
    /// Interconnect energy.
    pub comm_energy: Energy,
    /// Background/static energy of powered device pools.
    pub static_energy: Energy,
    /// Tokens banked this iteration.
    pub new_tokens: u64,
}

impl IterationCost {
    /// Total iteration latency.
    pub fn total_time(&self) -> Time {
        self.fc_time + self.attn_time + self.comm_time + self.other_time
    }

    /// Total iteration energy.
    pub fn total_energy(&self) -> Energy {
        self.fc_energy + self.attn_energy + self.comm_energy + self.static_energy
    }
}

/// Aggregated per-phase times over a whole decode.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    /// FC-kernel time.
    pub fc: Time,
    /// Attention time.
    pub attention: Time,
    /// Communication time.
    pub communication: Time,
    /// Dispatch/monitoring time.
    pub other: Time,
}

impl PhaseBreakdown {
    /// Sum of all phases.
    pub fn total(&self) -> Time {
        self.fc + self.attention + self.communication + self.other
    }

    /// Fractions `(fc, attention, communication, other)` of the total.
    pub fn fractions(&self) -> (f64, f64, f64, f64) {
        let total = self.total().value();
        if total == 0.0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        (
            self.fc.value() / total,
            self.attention.value() / total,
            self.communication.value() / total,
            self.other.value() / total,
        )
    }
}

/// The outcome of decoding one workload on one system.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// Design label (e.g. `"PAPI"`).
    pub design: String,
    /// Model name.
    pub model: String,
    /// Decoding iterations executed.
    pub iterations: u64,
    /// Output tokens produced.
    pub tokens: u64,
    /// Requests completed.
    pub requests: u64,
    /// Per-phase latency totals.
    pub phases: PhaseBreakdown,
    /// Total energy.
    pub energy: Energy,
    /// Energy split: FC / attention / communication / static.
    pub energy_parts: (Energy, Energy, Energy, Energy),
    /// Scheduler decision statistics.
    pub scheduler: SchedulerStats,
    /// FC placement chosen at each iteration (the Fig. 5(d) series).
    pub placements: Vec<Placement>,
    /// Prefill latency (zero unless the run included the prefill phase).
    pub prefill_time: Time,
    /// Prefill energy (zero unless the run included the prefill phase).
    pub prefill_energy: Energy,
}

impl ExecutionReport {
    /// Total decode latency (prefill excluded, as in the paper's Fig. 8).
    pub fn total_latency(&self) -> Time {
        self.phases.total()
    }

    /// Total energy consumed (decode + prefill if the run included it).
    pub fn total_energy(&self) -> Energy {
        self.energy + self.prefill_energy
    }

    /// Prefill + decode latency (the true end-to-end view; the prefill
    /// part is zero unless produced by
    /// [`DecodingSimulator::run_end_to_end`](crate::DecodingSimulator::run_end_to_end)).
    pub fn end_to_end_latency(&self) -> Time {
        self.prefill_time + self.phases.total()
    }

    /// Mean latency per generated token.
    pub fn time_per_token(&self) -> Time {
        if self.tokens == 0 {
            return Time::ZERO;
        }
        self.total_latency() / self.tokens as f64
    }

    /// Generation throughput.
    pub fn tokens_per_second(&self) -> f64 {
        let t = self.total_latency().as_secs();
        if t == 0.0 {
            return 0.0;
        }
        self.tokens as f64 / t
    }

    /// Energy per generated token.
    pub fn energy_per_token(&self) -> Energy {
        if self.tokens == 0 {
            return Energy::ZERO;
        }
        self.energy / self.tokens as f64
    }

    /// This report's speedup over `baseline` (same workload assumed).
    pub fn speedup_over(&self, baseline: &ExecutionReport) -> f64 {
        baseline.total_latency().value() / self.total_latency().value()
    }

    /// This report's energy-efficiency improvement over `baseline`.
    pub fn energy_efficiency_over(&self, baseline: &ExecutionReport) -> f64 {
        baseline.total_energy().value() / self.total_energy().value()
    }
}

// ---------------------------------------------------------------------
// Online-serving metrics
// ---------------------------------------------------------------------

/// The full latency lifecycle of one served request, in simulated time
/// since the serving episode began.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestRecord {
    /// Request identifier.
    pub id: u64,
    /// When the request arrived at the system.
    pub arrival: Time,
    /// When it was first admitted into the running batch (prefill
    /// start).
    pub admitted: Time,
    /// When its first output token was emitted.
    pub first_token: Time,
    /// When it emitted `<|eos|>`.
    pub finished: Time,
    /// Prompt length in tokens.
    pub prompt_tokens: u64,
    /// Output tokens generated.
    pub output_tokens: u64,
    /// Times the request was preempted back to the queue under KV
    /// pressure.
    pub preemptions: u64,
}

impl RequestRecord {
    /// Time spent waiting in the arrival queue before first admission.
    pub fn queueing_delay(&self) -> Time {
        self.admitted - self.arrival
    }

    /// Time to first token, measured from arrival (queueing included —
    /// the user-visible definition).
    pub fn ttft(&self) -> Time {
        self.first_token - self.arrival
    }

    /// Time per output token after the first (steady-state decode
    /// pace). Zero for single-token outputs.
    pub fn tpot(&self) -> Time {
        if self.output_tokens <= 1 {
            return Time::ZERO;
        }
        (self.finished - self.first_token) / (self.output_tokens - 1) as f64
    }

    /// End-to-end latency from arrival to `<|eos|>`.
    pub fn e2e(&self) -> Time {
        self.finished - self.arrival
    }

    /// Whether the request met both halves of `slo`.
    pub fn meets(&self, slo: &SloSpec) -> bool {
        self.ttft().value() <= slo.ttft.value() && self.tpot().value() <= slo.tpot.value()
    }
}

/// Percentile summary of a latency population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Arithmetic mean.
    pub mean: Time,
    /// Median.
    pub p50: Time,
    /// 95th percentile.
    pub p95: Time,
    /// 99th percentile.
    pub p99: Time,
    /// Worst observation.
    pub max: Time,
}

impl LatencySummary {
    /// Summarizes a sample; `None` when the sample is empty.
    ///
    /// Percentiles use the nearest-rank method on the sorted sample —
    /// p99 of 100 observations is the 99th smallest, matching how
    /// serving papers report tail latency.
    pub fn from_times(times: &[Time]) -> Option<Self> {
        if times.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = times.iter().map(|t| t.value()).collect();
        sorted.sort_by(f64::total_cmp);
        let rank = |p: f64| {
            let idx = (p * sorted.len() as f64).ceil() as usize;
            sorted[idx.clamp(1, sorted.len()) - 1]
        };
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        Some(Self {
            mean: Time::new(mean),
            p50: Time::new(rank(0.50)),
            p95: Time::new(rank(0.95)),
            p99: Time::new(rank(0.99)),
            max: Time::new(sorted[sorted.len() - 1]),
        })
    }
}

/// The outcome of one online serving episode on one system: everything
/// [`ExecutionReport`] aggregates, plus wall-clock structure (makespan,
/// per-iteration RLP) and the per-request lifecycle records that
/// latency SLOs are defined over.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServingReport {
    /// Design label (e.g. `"PAPI"`).
    pub design: String,
    /// Model name.
    pub model: String,
    /// Decoding iterations executed.
    pub iterations: u64,
    /// Output tokens produced.
    pub tokens: u64,
    /// Simulated wall-clock time from first arrival to last completion.
    pub makespan: Time,
    /// Decode-phase latency totals (prefill separate, as in the paper).
    pub phases: PhaseBreakdown,
    /// Total prefill time across all admission waves.
    pub prefill_time: Time,
    /// Total energy (decode + prefill).
    pub energy: Energy,
    /// Scheduler decision statistics.
    pub scheduler: SchedulerStats,
    /// FC placement chosen at each iteration.
    pub placements: Vec<Placement>,
    /// Live RLP observed at each iteration.
    pub rlp_series: Vec<u64>,
    /// Per-request lifecycle records, in completion order.
    pub records: Vec<RequestRecord>,
    /// Requests preempted back to the queue under KV pressure (total
    /// events, not distinct requests).
    pub preemptions: u64,
    /// Largest batch (RLP) ever run.
    pub peak_rlp: u64,
    /// Largest aggregate KV footprint ever resident, in tokens.
    pub peak_kv_tokens: u64,
    /// Paged KV-cache counters: block occupancy, prefix-cache hit
    /// rate, chunked-prefill waves, fragmentation.
    pub kv: KvCacheStats,
}

impl ServingReport {
    /// TTFT percentile summary; `None` if nothing completed.
    pub fn ttft_summary(&self) -> Option<LatencySummary> {
        let times: Vec<Time> = self.records.iter().map(RequestRecord::ttft).collect();
        LatencySummary::from_times(&times)
    }

    /// TPOT percentile summary; `None` if nothing completed.
    pub fn tpot_summary(&self) -> Option<LatencySummary> {
        let times: Vec<Time> = self.records.iter().map(RequestRecord::tpot).collect();
        LatencySummary::from_times(&times)
    }

    /// Queueing-delay percentile summary; `None` if nothing completed.
    pub fn queueing_summary(&self) -> Option<LatencySummary> {
        let times: Vec<Time> = self
            .records
            .iter()
            .map(RequestRecord::queueing_delay)
            .collect();
        LatencySummary::from_times(&times)
    }

    /// Fraction of completed requests meeting `slo`.
    pub fn slo_attainment(&self, slo: &SloSpec) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| r.meets(slo)).count() as f64 / self.records.len() as f64
    }

    /// SLO goodput: requests completed *within* `slo`, per second of
    /// makespan — the serving-systems headline metric (requests that
    /// blow the SLO earn nothing).
    pub fn goodput(&self, slo: &SloSpec) -> f64 {
        let secs = self.makespan.as_secs();
        if secs == 0.0 {
            return 0.0;
        }
        self.records.iter().filter(|r| r.meets(slo)).count() as f64 / secs
    }

    /// Raw request throughput over the makespan.
    pub fn requests_per_second(&self) -> f64 {
        let secs = self.makespan.as_secs();
        if secs == 0.0 {
            return 0.0;
        }
        self.records.len() as f64 / secs
    }

    /// Output-token throughput over the makespan.
    pub fn tokens_per_second(&self) -> f64 {
        let secs = self.makespan.as_secs();
        if secs == 0.0 {
            return 0.0;
        }
        self.tokens as f64 / secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(fc_ms: f64, tokens: u64) -> IterationCost {
        IterationCost {
            placement: Placement::FcPim,
            fc_time: Time::from_millis(fc_ms),
            attn_time: Time::from_millis(0.5),
            comm_time: Time::from_millis(1.0),
            other_time: Time::from_millis(0.1),
            fc_energy: Energy::from_millijoules(10.0),
            attn_energy: Energy::from_millijoules(1.0),
            comm_energy: Energy::from_millijoules(0.5),
            static_energy: Energy::from_millijoules(0.2),
            new_tokens: tokens,
        }
    }

    #[test]
    fn iteration_cost_totals() {
        let c = cost(8.0, 16);
        assert!((c.total_time().as_millis() - 9.6).abs() < 1e-12);
        assert!((c.total_energy().as_millijoules() - 11.7).abs() < 1e-12);
    }

    #[test]
    fn phase_fractions_sum_to_one() {
        let p = PhaseBreakdown {
            fc: Time::from_millis(8.0),
            attention: Time::from_millis(1.0),
            communication: Time::from_millis(3.0),
            other: Time::from_millis(0.5),
        };
        let (a, b, c, d) = p.fractions();
        assert!((a + b + c + d - 1.0).abs() < 1e-12);
        assert!(a > b && a > c && a > d, "FC should dominate");
    }

    #[test]
    fn empty_breakdown_fractions_are_zero() {
        assert_eq!(PhaseBreakdown::default().fractions(), (0.0, 0.0, 0.0, 0.0));
    }

    fn report(latency_ms: f64, energy_mj: f64, tokens: u64) -> ExecutionReport {
        ExecutionReport {
            design: "test".into(),
            model: "m".into(),
            iterations: 1,
            tokens,
            requests: 1,
            phases: PhaseBreakdown {
                fc: Time::from_millis(latency_ms),
                ..Default::default()
            },
            energy: Energy::from_millijoules(energy_mj),
            energy_parts: (
                Energy::from_millijoules(energy_mj),
                Energy::ZERO,
                Energy::ZERO,
                Energy::ZERO,
            ),
            scheduler: SchedulerStats::default(),
            placements: vec![],
            prefill_time: Time::ZERO,
            prefill_energy: Energy::ZERO,
        }
    }

    #[test]
    fn speedup_and_efficiency_ratios() {
        let fast = report(10.0, 50.0, 100);
        let slow = report(20.0, 200.0, 100);
        assert!((fast.speedup_over(&slow) - 2.0).abs() < 1e-12);
        assert!((fast.energy_efficiency_over(&slow) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn per_token_metrics() {
        let r = report(100.0, 200.0, 50);
        assert!((r.time_per_token().as_millis() - 2.0).abs() < 1e-12);
        assert!((r.energy_per_token().as_millijoules() - 4.0).abs() < 1e-12);
        assert!((r.tokens_per_second() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn zero_token_report_is_safe() {
        let r = report(1.0, 1.0, 0);
        assert_eq!(r.time_per_token(), Time::ZERO);
        assert_eq!(r.energy_per_token(), Energy::ZERO);
    }

    fn request(
        arrival_s: f64,
        queued_s: f64,
        ttft_decode_s: f64,
        tpot_s: f64,
        out: u64,
    ) -> RequestRecord {
        let admitted = arrival_s + queued_s;
        let first_token = admitted + ttft_decode_s;
        RequestRecord {
            id: 0,
            arrival: Time::new(arrival_s),
            admitted: Time::new(admitted),
            first_token: Time::new(first_token),
            finished: Time::new(first_token + tpot_s * (out - 1) as f64),
            prompt_tokens: 64,
            output_tokens: out,
            preemptions: 0,
        }
    }

    #[test]
    fn request_record_latency_identities() {
        let r = request(10.0, 0.5, 0.1, 0.02, 11);
        assert!((r.queueing_delay().value() - 0.5).abs() < 1e-12);
        assert!((r.ttft().value() - 0.6).abs() < 1e-12);
        assert!((r.tpot().value() - 0.02).abs() < 1e-12);
        assert!((r.e2e().value() - 0.8).abs() < 1e-12);
        assert!(r.ttft().value() <= r.e2e().value());
    }

    #[test]
    fn single_token_request_has_zero_tpot() {
        let r = request(0.0, 0.0, 0.1, 0.0, 1);
        assert_eq!(r.tpot(), Time::ZERO);
    }

    #[test]
    fn latency_summary_percentiles() {
        let times: Vec<Time> = (1..=100).map(|i| Time::new(i as f64)).collect();
        let s = LatencySummary::from_times(&times).unwrap();
        assert_eq!(s.p50.value(), 50.0);
        assert_eq!(s.p95.value(), 95.0);
        assert_eq!(s.p99.value(), 99.0);
        assert_eq!(s.max.value(), 100.0);
        assert!((s.mean.value() - 50.5).abs() < 1e-12);
        assert!(LatencySummary::from_times(&[]).is_none());
        let one = LatencySummary::from_times(&[Time::new(3.0)]).unwrap();
        assert_eq!(one.p99.value(), 3.0);
    }

    #[test]
    fn slo_goodput_counts_only_meeting_requests() {
        let slo = SloSpec {
            ttft: Time::new(1.0),
            tpot: Time::new(0.05),
        };
        let fast = request(0.0, 0.1, 0.2, 0.02, 10); // meets
        let slow_ttft = request(0.0, 5.0, 0.2, 0.02, 10); // blows TTFT
        let slow_tpot = request(0.0, 0.1, 0.2, 0.5, 10); // blows TPOT
        assert!(fast.meets(&slo));
        assert!(!slow_ttft.meets(&slo));
        assert!(!slow_tpot.meets(&slo));
        let report = ServingReport {
            design: "test".into(),
            model: "m".into(),
            iterations: 30,
            tokens: 30,
            makespan: Time::new(10.0),
            phases: PhaseBreakdown::default(),
            prefill_time: Time::ZERO,
            energy: Energy::ZERO,
            scheduler: SchedulerStats::default(),
            placements: vec![],
            rlp_series: vec![],
            records: vec![fast, slow_ttft, slow_tpot],
            preemptions: 0,
            peak_rlp: 3,
            peak_kv_tokens: 0,
            kv: KvCacheStats::default(),
        };
        assert!((report.slo_attainment(&slo) - 1.0 / 3.0).abs() < 1e-12);
        assert!((report.goodput(&slo) - 0.1).abs() < 1e-12);
        assert!((report.requests_per_second() - 0.3).abs() < 1e-12);
    }
}
