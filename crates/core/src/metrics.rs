//! Execution reports: latency and energy, split by phase.

use papi_sched::policy::SchedulerStats;
use papi_sched::Placement;
use papi_types::{Energy, Time};
use serde::{Deserialize, Serialize};

/// Latency/energy of one decoding iteration, split the way Fig. 12
/// splits per-token time: attention / FC / communication / other.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationCost {
    /// Where the FC kernels ran.
    pub placement: Placement,
    /// FC-kernel time.
    pub fc_time: Time,
    /// Attention-kernel time.
    pub attn_time: Time,
    /// Interconnect time.
    pub comm_time: Time,
    /// Host dispatch/monitoring time.
    pub other_time: Time,
    /// FC energy.
    pub fc_energy: Energy,
    /// Attention energy.
    pub attn_energy: Energy,
    /// Interconnect energy.
    pub comm_energy: Energy,
    /// Background/static energy of powered device pools.
    pub static_energy: Energy,
    /// Tokens banked this iteration.
    pub new_tokens: u64,
}

impl IterationCost {
    /// Total iteration latency.
    pub fn total_time(&self) -> Time {
        self.fc_time + self.attn_time + self.comm_time + self.other_time
    }

    /// Total iteration energy.
    pub fn total_energy(&self) -> Energy {
        self.fc_energy + self.attn_energy + self.comm_energy + self.static_energy
    }
}

/// Aggregated per-phase times over a whole decode.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    /// FC-kernel time.
    pub fc: Time,
    /// Attention time.
    pub attention: Time,
    /// Communication time.
    pub communication: Time,
    /// Dispatch/monitoring time.
    pub other: Time,
}

impl PhaseBreakdown {
    /// Sum of all phases.
    pub fn total(&self) -> Time {
        self.fc + self.attention + self.communication + self.other
    }

    /// Fractions `(fc, attention, communication, other)` of the total.
    pub fn fractions(&self) -> (f64, f64, f64, f64) {
        let total = self.total().value();
        if total == 0.0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        (
            self.fc.value() / total,
            self.attention.value() / total,
            self.communication.value() / total,
            self.other.value() / total,
        )
    }
}

/// The outcome of decoding one workload on one system.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// Design label (e.g. `"PAPI"`).
    pub design: String,
    /// Model name.
    pub model: String,
    /// Decoding iterations executed.
    pub iterations: u64,
    /// Output tokens produced.
    pub tokens: u64,
    /// Requests completed.
    pub requests: u64,
    /// Per-phase latency totals.
    pub phases: PhaseBreakdown,
    /// Total energy.
    pub energy: Energy,
    /// Energy split: FC / attention / communication / static.
    pub energy_parts: (Energy, Energy, Energy, Energy),
    /// Scheduler decision statistics.
    pub scheduler: SchedulerStats,
    /// FC placement chosen at each iteration (the Fig. 5(d) series).
    pub placements: Vec<Placement>,
    /// Prefill latency (zero unless the run included the prefill phase).
    pub prefill_time: Time,
    /// Prefill energy (zero unless the run included the prefill phase).
    pub prefill_energy: Energy,
}

impl ExecutionReport {
    /// Total decode latency (prefill excluded, as in the paper's Fig. 8).
    pub fn total_latency(&self) -> Time {
        self.phases.total()
    }

    /// Total energy consumed (decode + prefill if the run included it).
    pub fn total_energy(&self) -> Energy {
        self.energy + self.prefill_energy
    }

    /// Prefill + decode latency (the true end-to-end view; the prefill
    /// part is zero unless produced by
    /// [`DecodingSimulator::run_end_to_end`](crate::DecodingSimulator::run_end_to_end)).
    pub fn end_to_end_latency(&self) -> Time {
        self.prefill_time + self.phases.total()
    }

    /// Mean latency per generated token.
    pub fn time_per_token(&self) -> Time {
        if self.tokens == 0 {
            return Time::ZERO;
        }
        self.total_latency() / self.tokens as f64
    }

    /// Generation throughput.
    pub fn tokens_per_second(&self) -> f64 {
        let t = self.total_latency().as_secs();
        if t == 0.0 {
            return 0.0;
        }
        self.tokens as f64 / t
    }

    /// Energy per generated token.
    pub fn energy_per_token(&self) -> Energy {
        if self.tokens == 0 {
            return Energy::ZERO;
        }
        self.energy / self.tokens as f64
    }

    /// This report's speedup over `baseline` (same workload assumed).
    pub fn speedup_over(&self, baseline: &ExecutionReport) -> f64 {
        baseline.total_latency().value() / self.total_latency().value()
    }

    /// This report's energy-efficiency improvement over `baseline`.
    pub fn energy_efficiency_over(&self, baseline: &ExecutionReport) -> f64 {
        baseline.total_energy().value() / self.total_energy().value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(fc_ms: f64, tokens: u64) -> IterationCost {
        IterationCost {
            placement: Placement::FcPim,
            fc_time: Time::from_millis(fc_ms),
            attn_time: Time::from_millis(0.5),
            comm_time: Time::from_millis(1.0),
            other_time: Time::from_millis(0.1),
            fc_energy: Energy::from_millijoules(10.0),
            attn_energy: Energy::from_millijoules(1.0),
            comm_energy: Energy::from_millijoules(0.5),
            static_energy: Energy::from_millijoules(0.2),
            new_tokens: tokens,
        }
    }

    #[test]
    fn iteration_cost_totals() {
        let c = cost(8.0, 16);
        assert!((c.total_time().as_millis() - 9.6).abs() < 1e-12);
        assert!((c.total_energy().as_millijoules() - 11.7).abs() < 1e-12);
    }

    #[test]
    fn phase_fractions_sum_to_one() {
        let p = PhaseBreakdown {
            fc: Time::from_millis(8.0),
            attention: Time::from_millis(1.0),
            communication: Time::from_millis(3.0),
            other: Time::from_millis(0.5),
        };
        let (a, b, c, d) = p.fractions();
        assert!((a + b + c + d - 1.0).abs() < 1e-12);
        assert!(a > b && a > c && a > d, "FC should dominate");
    }

    #[test]
    fn empty_breakdown_fractions_are_zero() {
        assert_eq!(PhaseBreakdown::default().fractions(), (0.0, 0.0, 0.0, 0.0));
    }

    fn report(latency_ms: f64, energy_mj: f64, tokens: u64) -> ExecutionReport {
        ExecutionReport {
            design: "test".into(),
            model: "m".into(),
            iterations: 1,
            tokens,
            requests: 1,
            phases: PhaseBreakdown {
                fc: Time::from_millis(latency_ms),
                ..Default::default()
            },
            energy: Energy::from_millijoules(energy_mj),
            energy_parts: (
                Energy::from_millijoules(energy_mj),
                Energy::ZERO,
                Energy::ZERO,
                Energy::ZERO,
            ),
            scheduler: SchedulerStats::default(),
            placements: vec![],
            prefill_time: Time::ZERO,
            prefill_energy: Energy::ZERO,
        }
    }

    #[test]
    fn speedup_and_efficiency_ratios() {
        let fast = report(10.0, 50.0, 100);
        let slow = report(20.0, 200.0, 100);
        assert!((fast.speedup_over(&slow) - 2.0).abs() < 1e-12);
        assert!((fast.energy_efficiency_over(&slow) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn per_token_metrics() {
        let r = report(100.0, 200.0, 50);
        assert!((r.time_per_token().as_millis() - 2.0).abs() < 1e-12);
        assert!((r.energy_per_token().as_millijoules() - 4.0).abs() < 1e-12);
        assert!((r.tokens_per_second() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn zero_token_report_is_safe() {
        let r = report(1.0, 1.0, 0);
        assert_eq!(r.time_per_token(), Time::ZERO);
        assert_eq!(r.energy_per_token(), Energy::ZERO);
    }
}
