//! Prefill-phase modeling.
//!
//! The paper evaluates the *decoding* phase (its dominant cost), noting
//! that prefill is compute-bound and "is to be executed on the GPU
//! platform" (§7.4). This module makes that explicit and optional: a
//! design with GPUs prefills there; a PIM-only design has nowhere else
//! to go and pays the full compute-bound price on its FPUs — which is
//! precisely why PIM-only systems crater on end-to-end metrics that
//! include prefill, and a big part of the paper's 11.1× AttAcc-only gap.

use crate::config::SystemConfig;
use papi_gpu::{execute_kernel, KernelProfile};
use papi_pim::gemv::execute_gemv;
use papi_pim::GemvSpec;
use papi_sched::Placement;
use papi_types::{Bytes, Energy, Flops, Time};
use papi_workload::DecodeTrace;
use serde::{Deserialize, Serialize};

/// Cost of prefilling a batch of prompts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrefillCost {
    /// Prefill latency.
    pub time: Time,
    /// Prefill energy.
    pub energy: Energy,
    /// Where the prefill FC work ran.
    pub placement: Placement,
}

/// The prompt workload a prefill prices: everything the cost model
/// consumes, independent of where the prompts came from (a whole
/// [`DecodeTrace`], or one continuous-batching admission wave in the
/// serving engine).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PromptStats {
    /// Prompt tokens across the admitted requests.
    pub tokens: u64,
    /// Sum of squared prompt lengths — the prefill attention kernel is
    /// quadratic in each request's prompt.
    pub sum_len_squared: u64,
}

impl PromptStats {
    /// Accumulates one prompt of `len` tokens.
    pub fn add_prompt(&mut self, len: u64) {
        self.add_chunk(0, len);
    }

    /// Accumulates a `chunk`-token slice of a prompt whose first
    /// `context` tokens are already resident (prefilled earlier, or
    /// served from a shared-prefix cache). Each chunk token attends the
    /// whole context before it, so the quadratic attention mass is
    /// `(context + chunk)² − context²` — chunking a prompt (or
    /// discounting its cached prefix) telescopes to exactly the
    /// monolithic cost: total FC work and total attention FLOPs are
    /// conserved.
    pub fn add_chunk(&mut self, context: u64, chunk: u64) {
        self.tokens += chunk;
        self.sum_len_squared += chunk * chunk + 2 * chunk * context;
    }

    /// The prompt population of a whole decode trace.
    pub fn from_trace(trace: &DecodeTrace) -> Self {
        Self {
            tokens: trace.total_input_tokens,
            sum_len_squared: trace.sum_input_len_squared,
        }
    }
}

/// Prices the prefill of every request admitted in `trace` on `config`.
///
/// Convenience wrapper over [`prefill_cost_for`].
pub fn prefill_cost(config: &SystemConfig, trace: &DecodeTrace) -> PrefillCost {
    prefill_cost_for(config, PromptStats::from_trace(trace))
}

/// Prices the prefill of a prompt population on `config`.
///
/// FC work is `2 × params × tokens` FLOPs with full weight reuse;
/// attention adds the prompt-quadratic term `4 h Σ input_len²` (each
/// prompt token attends its prefix). Designs with GPUs prefill there
/// (compute-bound, the right tool); PIM-only designs run it on their
/// FC/Attn pools at FPU throughput.
pub fn prefill_cost_for(config: &SystemConfig, prompts: PromptStats) -> PrefillCost {
    let model = &config.model;
    let tokens = prompts.tokens.max(1);
    let fc_flops = 2.0 * model.total_fc_weights() as f64 * tokens as f64;
    let attn_flops = 4.0
        * model.hidden as f64
        * prompts.sum_len_squared as f64
        * model.layers as f64
        // Causal mask halves the score matrix.
        / 2.0;
    // KV-cache write-out for every prompt token.
    let kv_bytes = model.kv_bytes_per_token() * tokens as f64;
    // A tensor-parallel group scatters each prompt's KV blocks to the
    // shard that owns them: (tp-1)/tp of the write-out crosses the
    // inter-node fabric (the Route::KvShard traffic class).
    let (shard_time, shard_energy) = match &config.tp {
        Some(tp) => (
            tp.fabric.scatter_time(kv_bytes, tp.degree),
            tp.fabric.scatter_energy(kv_bytes, tp.degree),
        ),
        None => (Time::ZERO, Energy::ZERO),
    };

    if let Some(gpus) = &config.gpus {
        let bytes = model.weight_bytes()
            + kv_bytes
            + Bytes::new(2.0 * tokens as f64 * model.hidden as f64 * model.dtype.size().value());
        let kernel = KernelProfile::new(Flops::new(fc_flops + attn_flops), bytes).with_allreduce(
            Bytes::new(tokens as f64 * model.hidden as f64 * model.dtype.size().value()),
        );
        let result = execute_kernel(gpus, &config.gpu_energy, &kernel);
        PrefillCost {
            time: result.time + shard_time,
            energy: result.energy + shard_energy,
            placement: Placement::Pu,
        }
    } else {
        let (device, count) = config
            .fc_pim
            .as_ref()
            .expect("a design must have either GPUs or an FC PIM pool");
        // One lumped GEMM over all layers' weights at maximal reuse.
        let spec = GemvSpec::new(
            model.fc_weights_per_layer() / model.hidden,
            model.hidden,
            tokens,
            model.dtype,
        );
        let fc = execute_gemv(device, *count, &spec);
        let fc_time = fc.time * model.layers as f64;
        let fc_energy = fc.energy.total() * model.layers as f64;
        // Attention prefill on the attention pool, compute-bound at its
        // aggregate FPU throughput.
        let (attn_device, attn_count) = &config.attn_pim;
        let attn_rate = attn_device.peak_flops().value() * *attn_count as f64;
        let attn_time = Time::new(attn_flops / attn_rate);
        let attn_energy =
            Energy::from_picojoules(
                attn_flops / 2.0 * attn_device.energy_model.non_dram_pj_per_mac(),
            ) + Energy::from_picojoules(kv_bytes.value() * attn_device.dram_access_pj_per_byte());
        PrefillCost {
            time: fc_time + attn_time + shard_time,
            energy: fc_energy + attn_energy + shard_energy,
            placement: Placement::FcPim,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use papi_llm::ModelPreset;
    use papi_workload::{DatasetKind, WorkloadSpec};

    fn trace() -> DecodeTrace {
        WorkloadSpec::static_batching(DatasetKind::CreativeWriting, 16, 1)
            .with_seed(4)
            .trace()
    }

    #[test]
    fn gpu_prefill_is_compute_bound_and_fast() {
        let config = SystemConfig::a100_attacc(ModelPreset::Llama65B.config());
        let cost = prefill_cost(&config, &trace());
        assert_eq!(cost.placement, Placement::Pu);
        // ~1500 prompt tokens × 65B params ≈ 0.2 PFLOP on 1.3 PFLOPS.
        assert!(cost.time.as_secs() > 0.01 && cost.time.as_secs() < 2.0);
    }

    #[test]
    fn pim_only_prefill_is_an_order_of_magnitude_slower() {
        let t = trace();
        let gpu = prefill_cost(
            &SystemConfig::a100_attacc(ModelPreset::Llama65B.config()),
            &t,
        );
        let pim = prefill_cost(
            &SystemConfig::attacc_only(ModelPreset::Llama65B.config()),
            &t,
        );
        assert_eq!(pim.placement, Placement::FcPim);
        let ratio = pim.time.value() / gpu.time.value();
        assert!(
            ratio > 8.0,
            "compute-bound prefill on PIM FPUs should be ≫ slower: {ratio:.1}×"
        );
    }

    #[test]
    fn chunked_stats_telescope_to_the_monolithic_prompt() {
        let mut whole = PromptStats::default();
        whole.add_prompt(1000);
        // Uneven chunks, plus a cached 192-token prefix handled as
        // "context already resident".
        let mut chunked = PromptStats::default();
        let mut context = 0;
        for chunk in [192u64, 300, 300, 208] {
            chunked.add_chunk(context, chunk);
            context += chunk;
        }
        assert_eq!(chunked, whole);
        // A cached prefix reduces both the linear and quadratic terms
        // by exactly the prefix's own cost.
        let mut cached = PromptStats::default();
        cached.add_chunk(192, 808);
        let mut prefix_only = PromptStats::default();
        prefix_only.add_prompt(192);
        assert_eq!(cached.tokens + prefix_only.tokens, whole.tokens);
        assert_eq!(
            cached.sum_len_squared + prefix_only.sum_len_squared,
            whole.sum_len_squared
        );
    }

    #[test]
    fn prefill_scales_with_prompt_tokens() {
        let config = SystemConfig::a100_attacc(ModelPreset::Gpt3_66B.config());
        let small = WorkloadSpec::static_batching(DatasetKind::GeneralQa, 4, 1)
            .with_seed(1)
            .trace();
        let large = WorkloadSpec::static_batching(DatasetKind::GeneralQa, 64, 1)
            .with_seed(1)
            .trace();
        let cs = prefill_cost(&config, &small);
        let cl = prefill_cost(&config, &large);
        assert!(cl.time.value() > 4.0 * cs.time.value());
        assert!(cl.energy.value() > cs.energy.value());
    }
}
