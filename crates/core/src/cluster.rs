//! Cluster-scale serving: tensor-parallel groups of PAPI nodes,
//! replicated data-parallel behind a request router.
//!
//! The paper evaluates one node. The ROADMAP's production fleet needs
//! *many*: a [`ClusterEngine`] owns `dp_replicas` serving engines —
//! each a TP group of `tp_degree` nodes built by
//! [`SystemConfig::with_tensor_parallel`] — and co-simulates them on a
//! shared clock. Requests arrive once, globally; at each arrival the
//! router (a [`RoutePolicy`] from `papi-workload`) inspects every
//! replica's [`ReplicaSnapshot`](papi_workload::ReplicaSnapshot) *as of
//! that simulated instant* and picks the admission target. Per-replica
//! [`ServingReport`]s aggregate into a [`ClusterReport`] with
//! fleet-wide TTFT/TPOT percentiles and SLO goodput.
//!
//! The TP/DP trade this layer exposes (and
//! `examples/cluster_serving.rs` demonstrates): TP multiplies every
//! device pool behind one batch, so each iteration is faster — lower
//! TPOT — but the fleet still runs *one* queue per group and pays
//! per-layer all-reduces; DP multiplies queues and batch slots, so at
//! high offered load it sustains more goodput.

use crate::config::{DesignKind, SystemConfig};
use crate::metrics::{LatencySummary, RequestRecord, ServingReport};
use crate::serving::{ServingEngine, SessionStatus, SessionTuning};
use crate::slo::SloSpec;
use papi_interconnect::{ClusterTopology, LinkSpec, TopologyError};
use papi_llm::ModelConfig;
use papi_types::{Energy, Time};
use papi_workload::{PolicySpec, RouteContext, RoutePolicy, Router, ServingWorkload};
use serde::{Deserialize, Serialize};

/// The shape of a PAPI fleet: one design sharded `tp_degree`-way per
/// group, `dp_replicas` groups behind the router.
///
/// Replica knobs live in one shared [`SessionTuning`] — the same struct
/// [`ServingEngine`] consumes — so the fleet and single-node layers can
/// never drift apart on what is tunable. Routing is declarative: a
/// [`PolicySpec`] names a built-in [`RoutePolicy`]; custom policies
/// drive the fleet through [`ClusterEngine::run_with_policy`].
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// The per-node design replicated across the fleet.
    pub design: DesignKind,
    /// The model served (sharded across each TP group).
    pub model: ModelConfig,
    /// Nodes per tensor-parallel group.
    pub tp_degree: usize,
    /// Data-parallel replicas (TP groups).
    pub dp_replicas: usize,
    /// The inter-node fabric TP collectives cross.
    pub inter_node: LinkSpec,
    /// How the router picks a replica per arriving request.
    pub routing: PolicySpec,
    /// The session knobs of every replica engine.
    pub tuning: SessionTuning,
}

impl ClusterSpec {
    /// A fleet of `design` nodes: `tp_degree`-way sharding, `dp_replicas`
    /// replicas, InfiniBand NDR between nodes, join-shortest-queue
    /// routing, and default session tuning.
    pub fn new(
        design: DesignKind,
        model: ModelConfig,
        tp_degree: usize,
        dp_replicas: usize,
    ) -> Self {
        Self {
            design,
            model,
            tp_degree,
            dp_replicas,
            inter_node: LinkSpec::infiniband_ndr(),
            routing: PolicySpec::JoinShortestQueue,
            tuning: SessionTuning::default(),
        }
    }

    /// Overrides the routing policy.
    pub fn with_routing(mut self, routing: PolicySpec) -> Self {
        self.routing = routing;
        self
    }

    /// Overrides the inter-node fabric.
    pub fn with_inter_node(mut self, inter_node: LinkSpec) -> Self {
        self.inter_node = inter_node;
        self
    }

    /// Replaces every replica's session tuning.
    pub fn with_tuning(mut self, tuning: SessionTuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// Overrides each replica's batch cap.
    #[deprecated(since = "0.2.0", note = "tune through `with_tuning` / `tuning`")]
    pub fn with_max_batch(mut self, max_batch: u64) -> Self {
        self.tuning = self.tuning.with_max_batch(max_batch);
        self
    }

    /// Overrides each replica's KV paging granularity.
    #[deprecated(since = "0.2.0", note = "tune through `with_tuning` / `tuning`")]
    pub fn with_kv_block_size(mut self, block_size: u64) -> Self {
        self.tuning = self.tuning.with_kv_block_size(block_size);
        self
    }

    /// Enables copy-on-write prefix sharing on every replica. Pair it
    /// with [`PolicySpec::prefix_affinity`] routing so multi-turn
    /// conversations keep hitting the (private, per-replica) caches a
    /// single node would.
    #[deprecated(since = "0.2.0", note = "tune through `with_tuning` / `tuning`")]
    pub fn with_prefix_sharing(mut self, enabled: bool) -> Self {
        self.tuning = self.tuning.with_prefix_sharing(enabled);
        self
    }

    /// Enables chunked prefill on every replica.
    #[deprecated(since = "0.2.0", note = "tune through `with_tuning` / `tuning`")]
    pub fn with_prefill_chunk(mut self, chunk_tokens: u64) -> Self {
        self.tuning = self.tuning.with_prefill_chunk(chunk_tokens);
        self
    }
}

/// The cluster simulator: N replica engines plus the router.
#[derive(Debug, Clone)]
pub struct ClusterEngine {
    spec: ClusterSpec,
    topology: ClusterTopology,
    replica: ServingEngine,
}

impl ClusterEngine {
    /// Builds the fleet `spec` describes.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] if the fleet shape is degenerate or
    /// exceeds the inter-node fabric's fan-out.
    pub fn new(spec: ClusterSpec) -> Result<Self, TopologyError> {
        let config = SystemConfig::build(spec.design, spec.model.clone());
        let topology = ClusterTopology::new(
            config.topology.clone(),
            spec.inter_node.clone(),
            spec.tp_degree,
            spec.dp_replicas,
        )?;
        let sharded = config.with_tensor_parallel(spec.tp_degree, spec.inter_node.clone());
        let replica = ServingEngine::new(sharded).with_tuning(spec.tuning.clone());
        Ok(Self {
            spec,
            topology,
            replica,
        })
    }

    /// The fleet shape.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// The fleet wiring (per-node topology + inter-node fabric).
    pub fn topology(&self) -> &ClusterTopology {
        &self.topology
    }

    /// The (shared) replica engine configuration.
    pub fn replica_config(&self) -> &SystemConfig {
        self.replica.config()
    }

    /// Serves one episode across the fleet with the spec's built-in
    /// routing policy (driven through the same [`RoutePolicy`] trait
    /// seam as custom policies).
    ///
    /// Replicas advance on a shared simulated clock: before each global
    /// arrival is routed, every replica with pending work is stepped up
    /// to the arrival instant, so the router sees the fleet as it would
    /// exist right then — not a stale or clairvoyant view.
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as [`ServingEngine::run`].
    pub fn run(&self, workload: &ServingWorkload) -> ClusterReport {
        let mut router = Router::new(self.spec.routing);
        self.run_with_policy(workload, &mut router)
    }

    /// Serves one episode with a caller-supplied [`RoutePolicy`] — the
    /// open seam for routing strategies the built-in [`PolicySpec`]s
    /// don't cover. The policy is consulted once per global arrival, in
    /// arrival order, and its label becomes the report's `routing`
    /// field.
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as [`ServingEngine::run`], or if
    /// the policy returns a replica index out of range.
    pub fn run_with_policy(
        &self,
        workload: &ServingWorkload,
        policy: &mut dyn RoutePolicy,
    ) -> ClusterReport {
        let mut sessions: Vec<_> = (0..self.spec.dp_replicas)
            .map(|idx| {
                let mut session = self.replica.open_session(workload);
                // Replica 0 keeps the workload's acceptance stream (a
                // 1-replica cluster is bit-identical to the single
                // engine); later replicas decorrelate by index.
                if idx > 0 {
                    session
                        .reseed(workload.seed ^ (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                }
                session
            })
            .collect();
        let mut decisions = 0u64;

        for request in workload.requests() {
            let arrival = request.arrival_s;
            // Advance the fleet to the arrival instant.
            while let Some(idx) = sessions
                .iter()
                .enumerate()
                .filter(|(_, s)| s.has_pending_work() && s.clock() < arrival)
                .min_by(|(_, a), (_, b)| a.clock().total_cmp(&b.clock()))
                .map(|(i, _)| i)
            {
                sessions[idx].step();
            }
            let snapshots: Vec<_> = sessions.iter().map(|s| s.snapshot()).collect();
            let target = policy.route(&RouteContext {
                request: &request,
                replicas: &snapshots,
            });
            assert!(
                target < sessions.len(),
                "routing policy {} picked replica {target} in a {}-replica fleet",
                policy.label(),
                sessions.len()
            );
            decisions += 1;
            sessions[target].push(request);
        }
        // No more arrivals: drain every replica independently.
        for session in &mut sessions {
            while session.step() == SessionStatus::Advanced {}
        }

        ClusterReport {
            design: self.replica.config().design.label().to_owned(),
            model: self.spec.model.name.clone(),
            tp_degree: self.spec.tp_degree,
            routing: policy.label(),
            routing_decisions: decisions,
            replicas: sessions.into_iter().map(|s| s.into_report()).collect(),
        }
    }
}

/// The outcome of one episode across the fleet: per-replica
/// [`ServingReport`]s plus fleet-wide aggregation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Design label of the replicated node.
    pub design: String,
    /// Model name.
    pub model: String,
    /// Nodes per TP group.
    pub tp_degree: usize,
    /// Label of the routing policy that assigned requests.
    pub routing: String,
    /// Requests the router placed.
    pub routing_decisions: u64,
    /// One report per data-parallel replica (some may be empty if the
    /// router starved them).
    pub replicas: Vec<ServingReport>,
}

impl ClusterReport {
    /// Total requests completed across the fleet.
    pub fn requests(&self) -> u64 {
        self.replicas.iter().map(|r| r.records.len() as u64).sum()
    }

    /// Total output tokens across the fleet.
    pub fn tokens(&self) -> u64 {
        self.replicas.iter().map(|r| r.tokens).sum()
    }

    /// Total energy across the fleet.
    pub fn energy(&self) -> Energy {
        self.replicas
            .iter()
            .fold(Energy::ZERO, |acc, r| acc + r.energy)
    }

    /// Every request record in the fleet, in replica order.
    pub fn records(&self) -> impl Iterator<Item = &RequestRecord> {
        self.replicas.iter().flat_map(|r| r.records.iter())
    }

    /// Fleet makespan: first arrival anywhere to last completion
    /// anywhere. Zero when nothing completed.
    pub fn makespan(&self) -> Time {
        let first = self
            .records()
            .map(|r| r.arrival.value())
            .fold(f64::INFINITY, f64::min);
        let last = self
            .records()
            .map(|r| r.finished.value())
            .fold(0.0, f64::max);
        if first.is_finite() && last > first {
            Time::new(last - first)
        } else {
            Time::ZERO
        }
    }

    /// Fleet-wide TTFT percentile summary; `None` if nothing completed.
    pub fn ttft_summary(&self) -> Option<LatencySummary> {
        let times: Vec<Time> = self.records().map(RequestRecord::ttft).collect();
        LatencySummary::from_times(&times)
    }

    /// Fleet-wide TPOT percentile summary; `None` if nothing completed.
    pub fn tpot_summary(&self) -> Option<LatencySummary> {
        let times: Vec<Time> = self.records().map(RequestRecord::tpot).collect();
        LatencySummary::from_times(&times)
    }

    /// Fleet-wide queueing-delay summary; `None` if nothing completed.
    pub fn queueing_summary(&self) -> Option<LatencySummary> {
        let times: Vec<Time> = self.records().map(RequestRecord::queueing_delay).collect();
        LatencySummary::from_times(&times)
    }

    /// Fraction of completed requests meeting `slo`.
    pub fn slo_attainment(&self, slo: &SloSpec) -> f64 {
        let total = self.requests();
        if total == 0 {
            return 0.0;
        }
        self.records().filter(|r| r.meets(slo)).count() as f64 / total as f64
    }

    /// Fleet SLO goodput: requests completed within `slo` per second of
    /// fleet makespan.
    pub fn goodput(&self, slo: &SloSpec) -> f64 {
        let secs = self.makespan().as_secs();
        if secs == 0.0 {
            return 0.0;
        }
        self.records().filter(|r| r.meets(slo)).count() as f64 / secs
    }

    /// Fleet output-token throughput over the makespan.
    pub fn tokens_per_second(&self) -> f64 {
        let secs = self.makespan().as_secs();
        if secs == 0.0 {
            return 0.0;
        }
        self.tokens() as f64 / secs
    }

    /// Fleet-wide prefix-cache hit rate: the fraction of prefill demand
    /// (cached + prefilled tokens, summed over every replica) served
    /// from the replicas' prefix caches. This is the number
    /// prefix-oblivious routing destroys — conversations scattered
    /// across replicas re-prefill contexts some other replica cached.
    pub fn cache_hit_rate(&self) -> f64 {
        let cached: u64 = self
            .replicas
            .iter()
            .map(|r| r.kv.cached_prompt_tokens)
            .sum();
        let prefilled: u64 = self.replicas.iter().map(|r| r.kv.prefilled_tokens).sum();
        if cached + prefilled == 0 {
            return 0.0;
        }
        cached as f64 / (cached + prefilled) as f64
    }

    /// Total KV-pressure preemptions across the fleet.
    pub fn preemptions(&self) -> u64 {
        self.replicas.iter().map(|r| r.preemptions).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use papi_llm::ModelPreset;
    use papi_workload::DatasetKind;

    fn workload(rate: f64, n: usize) -> ServingWorkload {
        ServingWorkload::poisson(DatasetKind::GeneralQa, rate, n).with_seed(17)
    }

    fn batch(max_batch: u64) -> SessionTuning {
        SessionTuning::default().with_max_batch(max_batch)
    }

    /// The degenerate fleet (1 group of 1 node) must reproduce the
    /// single-node engine bit for bit — the cluster layer adds no
    /// hidden cost at TP=1/DP=1 (equality-pinned like
    /// `slo_latency_matches_engine_pricing`).
    #[test]
    fn single_replica_tp1_cluster_reproduces_the_engine_exactly() {
        let model = ModelPreset::Llama65B.config();
        let w = workload(4.0, 32);
        let cluster = ClusterEngine::new(
            ClusterSpec::new(DesignKind::PimOnlyPapi, model.clone(), 1, 1).with_tuning(batch(16)),
        )
        .unwrap()
        .run(&w);
        let single = ServingEngine::new(SystemConfig::pim_only_papi(model))
            .with_max_batch(16)
            .run(&w);
        assert_eq!(cluster.replicas.len(), 1);
        let replica = &cluster.replicas[0];
        assert_eq!(replica.records, single.records);
        assert_eq!(replica.makespan, single.makespan);
        assert_eq!(replica.energy, single.energy);
        assert_eq!(replica.placements, single.placements);
        assert_eq!(replica.rlp_series, single.rlp_series);
    }

    /// Conservation: every workload request completes somewhere, and
    /// the fleet total is exactly the sum over replicas.
    #[test]
    fn request_count_equals_sum_of_replica_counts() {
        let w = workload(16.0, 60);
        for routing in [
            PolicySpec::RoundRobin,
            PolicySpec::JoinShortestQueue,
            PolicySpec::KvPressureAware,
        ] {
            let report = ClusterEngine::new(
                ClusterSpec::new(
                    DesignKind::PimOnlyPapi,
                    ModelPreset::Llama65B.config(),
                    1,
                    3,
                )
                .with_routing(routing)
                .with_tuning(batch(8)),
            )
            .unwrap()
            .run(&w);
            let per_replica: u64 = report.replicas.iter().map(|r| r.records.len() as u64).sum();
            assert_eq!(report.requests(), per_replica, "{routing}");
            assert_eq!(report.requests(), 60, "{routing}: requests lost");
            assert_eq!(report.routing_decisions, 60, "{routing}");
            let tokens: u64 = report.replicas.iter().map(|r| r.tokens).sum();
            assert_eq!(report.tokens(), tokens);
        }
    }

    /// Under sustained load, state-aware routing uses every replica.
    #[test]
    fn jsq_spreads_sustained_load_across_replicas() {
        let report = ClusterEngine::new(
            ClusterSpec::new(
                DesignKind::PimOnlyPapi,
                ModelPreset::Llama65B.config(),
                1,
                4,
            )
            .with_tuning(batch(4)),
        )
        .unwrap()
        .run(&workload(32.0, 64));
        for (i, replica) in report.replicas.iter().enumerate() {
            assert!(
                !replica.records.is_empty(),
                "replica {i} never served a request"
            );
        }
    }

    /// TP sharding buys per-iteration speed: a lone request on a TP-4
    /// group decodes faster than on a single node, even paying the
    /// all-reduce.
    #[test]
    fn tp4_lowers_single_request_tpot() {
        let model = ModelPreset::Llama65B.config();
        let w = workload(0.5, 8);
        let tp4 = ClusterEngine::new(ClusterSpec::new(
            DesignKind::PimOnlyPapi,
            model.clone(),
            4,
            1,
        ))
        .unwrap()
        .run(&w);
        let tp1 = ClusterEngine::new(ClusterSpec::new(DesignKind::PimOnlyPapi, model, 1, 1))
            .unwrap()
            .run(&w);
        let t4 = tp4.tpot_summary().unwrap().p50.value();
        let t1 = tp1.tpot_summary().unwrap().p50.value();
        assert!(t4 < t1, "TP4 p50 TPOT {t4} should beat TP1 {t1}");
    }

    /// The fleet shape validates through the cluster topology.
    #[test]
    fn degenerate_fleet_rejected() {
        let model = ModelPreset::Llama65B.config();
        assert!(ClusterEngine::new(ClusterSpec::new(
            DesignKind::PimOnlyPapi,
            model.clone(),
            0,
            1
        ))
        .is_err());
        assert!(
            ClusterEngine::new(ClusterSpec::new(DesignKind::PimOnlyPapi, model, 1, 0)).is_err()
        );
    }

    /// Empty-fleet aggregation stays well-defined.
    #[test]
    fn empty_report_aggregates_to_zero() {
        let report = ClusterReport {
            design: "PAPI".into(),
            model: "m".into(),
            tp_degree: 1,
            routing: PolicySpec::RoundRobin.label(),
            routing_decisions: 0,
            replicas: vec![],
        };
        assert_eq!(report.requests(), 0);
        assert_eq!(report.makespan(), Time::ZERO);
        assert!(report.ttft_summary().is_none());
        assert_eq!(report.cache_hit_rate(), 0.0);
        let slo = SloSpec::interactive(1_000.0, 50.0);
        assert_eq!(report.goodput(&slo), 0.0);
        assert_eq!(report.slo_attainment(&slo), 0.0);
    }

    /// The deprecated per-knob shims still forward into the shared
    /// tuning, so pre-`SessionTuning` call sites behave identically.
    #[test]
    #[allow(deprecated)]
    fn deprecated_knob_shims_forward_to_tuning() {
        let model = ModelPreset::Llama65B.config();
        let spec = ClusterSpec::new(DesignKind::PimOnlyPapi, model, 1, 2)
            .with_max_batch(12)
            .with_kv_block_size(16)
            .with_prefix_sharing(true)
            .with_prefill_chunk(256);
        assert_eq!(
            spec.tuning,
            SessionTuning::default()
                .with_max_batch(12)
                .with_kv_block_size(16)
                .with_prefix_sharing(true)
                .with_prefill_chunk(256)
        );
    }
}
