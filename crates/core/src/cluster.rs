//! Cluster-scale serving: tensor-parallel groups of PAPI nodes,
//! replicated data-parallel behind a request router.
//!
//! The paper evaluates one node. The ROADMAP's production fleet needs
//! *many*: a [`ClusterEngine`] owns `dp_replicas` serving engines —
//! each a TP group of `tp_degree` nodes built by
//! [`SystemConfig::with_tensor_parallel`] — and co-simulates them on a
//! shared clock. Requests arrive once, globally; at each arrival the
//! router (a [`RoutePolicy`] from `papi-workload`) inspects every
//! replica's [`ReplicaSnapshot`] *as of
//! that simulated instant* and picks the admission target. Per-replica
//! [`ServingReport`]s aggregate into a [`ClusterReport`] with
//! fleet-wide TTFT/TPOT percentiles and SLO goodput.
//!
//! The TP/DP trade this layer exposes (and
//! `examples/cluster_serving.rs` demonstrates): TP multiplies every
//! device pool behind one batch, so each iteration is faster — lower
//! TPOT — but the fleet still runs *one* queue per group and pays
//! per-layer all-reduces; DP multiplies queues and batch slots, so at
//! high offered load it sustains more goodput.
//!
//! Beyond identical replicas, the fleet can be **disaggregated**: each
//! replica carries a [`ReplicaRole`] (`Colocated` / `Prefill` /
//! `Decode`), optionally with a different hardware design per role —
//! a GPU-heavy pool for compute-bound prefill, a PIM-heavy pool for
//! memory-bound decode, the cluster-scale mirror of PAPI's intra-node
//! phase-affinity argument. New arrivals route only to
//! prefill-capable replicas; when a prefill-role replica finishes a
//! prompt, the sequence's KV blocks are exported and *migrated* over
//! the fabric (priced as [`Route::KvMigrate`](papi_interconnect::Route)
//! traffic by the spec's [`MigrationPricing`]) to a decode-capable
//! replica picked by a pluggable [`MigrationPolicy`] — JSQ over the
//! decode pool by default. In-flight sequences occupy *neither* pool.
//! An all-`Colocated` fleet never migrates and reproduces the
//! pre-disaggregation engine bit for bit
//! (`tests/routing_equality.rs`).

use crate::autoscale::{
    AutoscaleControl, AutoscalePolicy, AutoscaleSpec, AutoscaleView, FleetCostReport, ScaleAction,
};
use crate::config::{DesignKind, SystemConfig};
use crate::metrics::{LatencySummary, RequestRecord, ServingReport};
use crate::pricer::SharedIterationCache;
use crate::serving::{PrefillHandoff, ServingEngine, ServingSession, SessionTuning};
use crate::slo::SloSpec;
use papi_interconnect::{
    ClusterTopology, LinkSpec, MigrationCost, MigrationPricing, TierPricing, TopologyError,
};
use papi_kv::{FetchSpec, GlobalKvTier};
use papi_llm::ModelConfig;
use papi_types::{Energy, Time};
use papi_workload::{
    MigrationContext, MigrationPolicy, MigrationSpec, PolicySpec, ReplicaRole, ReplicaSnapshot,
    ReplicaState, RouteContext, RoutePolicy, Router, ServingWorkload,
};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// How [`ClusterEngine::run_with_policies`] advances replicas between
/// control-plane events.
///
/// Both modes produce **bit-for-bit identical** [`ClusterReport`]s —
/// `Parallel` is a pure wall-clock optimization, pinned against
/// `Sequential` by `tests/parallel_equality.rs` and the golden
/// fingerprints in `tests/routing_equality.rs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum StepMode {
    /// The reference event loop: one global scan per simulator step,
    /// always advancing the minimum-clock replica. Simple, obviously
    /// correct, and linearly slow in fleet size — kept as the escape
    /// hatch and as the equality oracle for `Parallel`.
    Sequential,
    /// Window-at-a-time: between consecutive global events (an arrival
    /// being routed, or a migration delivery) every replica with
    /// pending work below the event horizon steps to the horizon
    /// independently — fanned out via rayon — because replicas only
    /// interact *at* events. Prefill-role replicas still advance one
    /// step at a time under a tightening bound (each export they emit
    /// can schedule a delivery earlier than the horizon, capping how
    /// far anyone may step), which preserves the sequential path's
    /// event order exactly. Replica snapshots are dirty-tracked and
    /// iteration pricing is memoized fleet-wide per design.
    #[default]
    Parallel,
}

/// The shape of a PAPI fleet: one design sharded `tp_degree`-way per
/// group, `dp_replicas` groups behind the router.
///
/// Replica knobs live in one shared [`SessionTuning`] — the same struct
/// [`ServingEngine`] consumes — so the fleet and single-node layers can
/// never drift apart on what is tunable. Routing is declarative: a
/// [`PolicySpec`] names a built-in [`RoutePolicy`]; custom policies
/// drive the fleet through [`ClusterEngine::run_with_policy`].
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// The per-node design replicated across the fleet.
    pub design: DesignKind,
    /// The model served (sharded across each TP group).
    pub model: ModelConfig,
    /// Nodes per tensor-parallel group.
    pub tp_degree: usize,
    /// Data-parallel replicas (TP groups).
    pub dp_replicas: usize,
    /// The inter-node fabric TP collectives cross.
    pub inter_node: LinkSpec,
    /// How the router picks a replica per arriving request.
    pub routing: PolicySpec,
    /// The session knobs of every replica engine.
    pub tuning: SessionTuning,
    /// Per-replica lifecycle roles, parallel to the replica indices.
    /// Empty (the default) means every replica is [`ReplicaRole::Colocated`]
    /// — the classic, non-disaggregated fleet.
    pub roles: Vec<ReplicaRole>,
    /// Design override for [`ReplicaRole::Prefill`] replicas (`None`
    /// replicates `design`) — typically a GPU-heavy system, since
    /// prefill is compute-bound.
    pub prefill_design: Option<DesignKind>,
    /// Design override for [`ReplicaRole::Decode`] replicas (`None`
    /// replicates `design`) — typically a PIM-heavy system, since
    /// decode attention is memory-bound.
    pub decode_design: Option<DesignKind>,
    /// How migrated prefill→decode handoffs pick their decode replica.
    pub migration: MigrationSpec,
    /// What link prices the KV-migration transfers (the inter-node
    /// fabric by default; `Free` is the zero-cost ablation).
    pub migration_pricing: MigrationPricing,
    /// How replicas advance between control-plane events. Both modes
    /// produce identical reports; `Parallel` (the default) is faster.
    pub step_mode: StepMode,
    /// The fleet-shared prefix tier: one directory registering every
    /// replica's spilled records, so a conversation that re-lands on
    /// the *wrong* replica re-materializes its context from the owning
    /// replica over the fabric instead of re-prefilling from scratch.
    /// `None` (the default) keeps each replica's capacity tier
    /// private. Requires `tuning.kv_tier` — the directory registers
    /// *spilled* records.
    pub shared_tier: Option<SharedTierSpec>,
    /// Elastic autoscaling: replica lifecycle
    /// (`Warming → Active → Draining → Retired`) driven by an
    /// [`AutoscalePolicy`] evaluated at control-plane barriers every
    /// `decide_interval_s`, with consistent-hash affinity routing over
    /// the active membership and replica-hour cost accounting in the
    /// report's [`FleetCostReport`]. `None` (the default) keeps every
    /// replica `Active` forever — the fleet behaves bit-for-bit as
    /// before elasticity existed.
    pub autoscale: Option<AutoscaleSpec>,
}

impl ClusterSpec {
    /// A fleet of `design` nodes: `tp_degree`-way sharding, `dp_replicas`
    /// replicas, InfiniBand NDR between nodes, join-shortest-queue
    /// routing, and default session tuning.
    pub fn new(
        design: DesignKind,
        model: ModelConfig,
        tp_degree: usize,
        dp_replicas: usize,
    ) -> Self {
        Self {
            design,
            model,
            tp_degree,
            dp_replicas,
            inter_node: LinkSpec::infiniband_ndr(),
            routing: PolicySpec::JoinShortestQueue,
            tuning: SessionTuning::default(),
            roles: Vec::new(),
            prefill_design: None,
            decode_design: None,
            migration: MigrationSpec::default(),
            migration_pricing: MigrationPricing::default(),
            step_mode: StepMode::default(),
            shared_tier: None,
            autoscale: None,
        }
    }

    /// Enables the fleet-shared prefix tier.
    pub fn with_shared_tier(mut self, shared_tier: SharedTierSpec) -> Self {
        self.shared_tier = Some(shared_tier);
        self
    }

    /// Enables elastic autoscaling ([`ClusterEngine::new`] validates
    /// the spec's bounds against the fleet shape).
    pub fn with_autoscale(mut self, autoscale: AutoscaleSpec) -> Self {
        self.autoscale = Some(autoscale);
        self
    }

    /// Assigns per-replica roles (the disaggregation axis). The vector
    /// must be one role per replica; [`ClusterEngine::new`] validates
    /// the shape.
    pub fn with_roles(mut self, roles: Vec<ReplicaRole>) -> Self {
        self.roles = roles;
        self
    }

    /// Overrides the hardware design of `Prefill`-role replicas.
    pub fn with_prefill_design(mut self, design: DesignKind) -> Self {
        self.prefill_design = Some(design);
        self
    }

    /// Overrides the hardware design of `Decode`-role replicas.
    pub fn with_decode_design(mut self, design: DesignKind) -> Self {
        self.decode_design = Some(design);
        self
    }

    /// Selects a built-in decode-side placement policy for migrated
    /// sequences (custom policies drive the fleet through
    /// [`ClusterEngine::run_with_policies`]).
    pub fn with_migration(mut self, migration: MigrationSpec) -> Self {
        self.migration = migration;
        self
    }

    /// Overrides how KV-migration transfers are priced.
    pub fn with_migration_pricing(mut self, pricing: MigrationPricing) -> Self {
        self.migration_pricing = pricing;
        self
    }

    /// Selects how replicas advance between control-plane events
    /// ([`StepMode::Parallel`] by default).
    pub fn with_step_mode(mut self, step_mode: StepMode) -> Self {
        self.step_mode = step_mode;
        self
    }

    /// The role of replica `idx` (`Colocated` when no roles were set).
    pub fn role_of(&self, idx: usize) -> ReplicaRole {
        self.roles.get(idx).copied().unwrap_or_default()
    }

    /// The hardware design serving `role` in this fleet.
    pub fn design_for(&self, role: ReplicaRole) -> DesignKind {
        match role {
            ReplicaRole::Colocated => self.design,
            ReplicaRole::Prefill => self.prefill_design.unwrap_or(self.design),
            ReplicaRole::Decode => self.decode_design.unwrap_or(self.design),
        }
    }

    /// Overrides the routing policy.
    pub fn with_routing(mut self, routing: PolicySpec) -> Self {
        self.routing = routing;
        self
    }

    /// Overrides the inter-node fabric.
    pub fn with_inter_node(mut self, inter_node: LinkSpec) -> Self {
        self.inter_node = inter_node;
        self
    }

    /// Replaces every replica's session tuning.
    pub fn with_tuning(mut self, tuning: SessionTuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// Overrides each replica's batch cap.
    #[deprecated(since = "0.2.0", note = "tune through `with_tuning` / `tuning`")]
    pub fn with_max_batch(mut self, max_batch: u64) -> Self {
        self.tuning = self.tuning.with_max_batch(max_batch);
        self
    }

    /// Overrides each replica's KV paging granularity.
    #[deprecated(since = "0.2.0", note = "tune through `with_tuning` / `tuning`")]
    pub fn with_kv_block_size(mut self, block_size: u64) -> Self {
        self.tuning = self.tuning.with_kv_block_size(block_size);
        self
    }

    /// Enables copy-on-write prefix sharing on every replica. Pair it
    /// with [`PolicySpec::prefix_affinity`] routing so multi-turn
    /// conversations keep hitting the (private, per-replica) caches a
    /// single node would.
    #[deprecated(since = "0.2.0", note = "tune through `with_tuning` / `tuning`")]
    pub fn with_prefix_sharing(mut self, enabled: bool) -> Self {
        self.tuning = self.tuning.with_prefix_sharing(enabled);
        self
    }

    /// Enables chunked prefill on every replica.
    #[deprecated(since = "0.2.0", note = "tune through `with_tuning` / `tuning`")]
    pub fn with_prefill_chunk(mut self, chunk_tokens: u64) -> Self {
        self.tuning = self.tuning.with_prefill_chunk(chunk_tokens);
        self
    }
}

/// Declarative configuration of the fleet-shared prefix tier: one
/// directory over the inter-node fabric registering every replica's
/// spilled records ([`GlobalKvTier`]), consulted on fork-misses that
/// also miss the local capacity tier.
///
/// Coherence is free because records are immutable logical token
/// counts (first-writer-wins, extend-only, never invalidated); what
/// the fleet pays is the *fabric*: each cross-replica
/// re-materialization is priced as
/// [`Route::KvFetch`](papi_interconnect::Route) traffic — transfer
/// time lands in the fetching request's TTFT, wire energy in the
/// replica's energy, and both are attributed fleet-wide in the
/// report's [`GlobalTierReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SharedTierSpec {
    /// Which directory-resident prefixes are worth the fabric fetch.
    pub fetch: FetchSpec,
    /// What a cross-replica fetch costs. `None` (the default) prices
    /// over the cluster's inter-node fabric;
    /// `Some(TierPricing::Free)` is the zero-cost ablation isolating
    /// the sharing benefit from the wire.
    pub pricing: Option<TierPricing>,
    /// Control-plane gossip period (seconds of simulated time): the
    /// fleet merges spill registrations and refreshes every replica's
    /// directory view at each tick, in addition to every arrival and
    /// migration-delivery barrier. Both [`StepMode`]s observe the
    /// same tick schedule, so parallel stays bit-identical to
    /// sequential.
    pub sync_s: f64,
}

impl SharedTierSpec {
    /// Default control-plane gossip period: 50 ms of simulated time —
    /// far below the eviction→reuse gaps that make sharing pay, far
    /// above per-iteration granularity.
    pub const DEFAULT_SYNC_S: f64 = 0.05;

    /// The default shared tier: fetch everything, priced over the
    /// cluster's inter-node fabric, gossiping every
    /// [`DEFAULT_SYNC_S`](Self::DEFAULT_SYNC_S) simulated seconds.
    pub fn new() -> Self {
        Self {
            fetch: FetchSpec::default(),
            pricing: None,
            sync_s: Self::DEFAULT_SYNC_S,
        }
    }

    /// Selects which resident prefixes are worth fetching.
    pub fn with_fetch(mut self, fetch: FetchSpec) -> Self {
        self.fetch = fetch;
        self
    }

    /// Overrides the fabric pricing (e.g. [`TierPricing::Free`] for
    /// the ablation).
    pub fn with_pricing(mut self, pricing: TierPricing) -> Self {
        self.pricing = Some(pricing);
        self
    }

    /// Overrides the control-plane gossip period (seconds).
    pub fn with_sync_interval(mut self, sync_s: f64) -> Self {
        self.sync_s = sync_s;
        self
    }
}

impl Default for SharedTierSpec {
    fn default() -> Self {
        Self::new()
    }
}

/// The shared tier's control-plane state during one episode: the
/// authoritative fleet directory, the frozen [`Arc`] view sessions
/// read between barriers, and the fleet-level fetch accounting.
#[derive(Debug)]
struct SharedTierControl {
    directory: GlobalKvTier,
    view: Arc<GlobalKvTier>,
    pricing: String,
    sync_s: f64,
    fetches: u64,
    fetched_tokens: u64,
    bytes: f64,
    energy: Energy,
    latencies: Vec<Time>,
}

impl SharedTierControl {
    /// The control-plane barrier: drains every session's publish and
    /// fetch egress in replica-index order (the same deterministic
    /// discipline as handoff harvesting — both step modes reach each
    /// barrier with identical per-session egress, so merging in a
    /// fixed order keeps them bit-for-bit equal), merges registrations
    /// into the fleet directory, and — only if the directory changed —
    /// freezes a new view into every session.
    fn harvest(&mut self, sessions: &mut [ServingSession<'_>]) {
        let mut changed = false;
        for (idx, session) in sessions.iter_mut().enumerate() {
            for (key, tokens) in session.drain_global_publishes() {
                changed |= self.directory.publish(key, idx, tokens).changed();
            }
            for fetch in session.drain_global_fetches() {
                self.fetches += 1;
                self.fetched_tokens += fetch.tokens;
                self.bytes += fetch.cost.bytes.value();
                self.energy += fetch.cost.energy;
                self.latencies.push(fetch.cost.time);
            }
        }
        if changed {
            self.view = Arc::new(self.directory.clone());
            for session in sessions.iter_mut() {
                session.install_global_view(Arc::clone(&self.view));
            }
        }
    }

    fn into_report(self) -> GlobalTierReport {
        let stats = self.directory.stats();
        GlobalTierReport {
            pricing: self.pricing,
            entries: stats.entries,
            resident_tokens: stats.tokens,
            resident_blocks: stats.blocks,
            publishes: self.directory.publishes(),
            extensions: self.directory.extensions(),
            fetches: self.fetches,
            fetched_tokens: self.fetched_tokens,
            bytes: self.bytes,
            energy: self.energy,
            latency: LatencySummary::from_times(&self.latencies),
        }
    }
}

/// The cluster simulator: N replica engines (one per replica — roles
/// may give them heterogeneous hardware) plus the router and the
/// migration machinery.
#[derive(Debug, Clone)]
pub struct ClusterEngine {
    spec: ClusterSpec,
    topology: ClusterTopology,
    replicas: Vec<ServingEngine>,
}

impl ClusterEngine {
    /// Builds the fleet `spec` describes.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] if the fleet shape is degenerate,
    /// exceeds the inter-node fabric's fan-out, carries a role vector
    /// whose length disagrees with `dp_replicas`, disaggregates
    /// without at least one prefill-capable *and* one decode-capable
    /// replica (arrivals or migrations would have nowhere to go),
    /// enables a shared tier without a private `tuning.kv_tier` (the
    /// directory registers spilled records — nothing would ever be
    /// published), or configures autoscaling on a disaggregated or
    /// shared-tier fleet or with degenerate bounds
    /// (`1 <= min <= initial <= dp_replicas`, non-negative spin-up,
    /// positive decision interval).
    pub fn new(spec: ClusterSpec) -> Result<Self, TopologyError> {
        if !spec.roles.is_empty() && spec.roles.len() != spec.dp_replicas {
            return Err(TopologyError::new(format!(
                "{} roles assigned to a {}-replica fleet",
                spec.roles.len(),
                spec.dp_replicas
            )));
        }
        if !spec.roles.is_empty() {
            if !spec.roles.iter().any(ReplicaRole::accepts_arrivals) {
                return Err(TopologyError::new(
                    "no prefill-capable replica: every arrival would be unroutable",
                ));
            }
            if !spec.roles.iter().any(ReplicaRole::can_decode) {
                return Err(TopologyError::new(
                    "no decode-capable replica: every migration would be unplaceable",
                ));
            }
        }
        if let Some(shared) = &spec.shared_tier {
            if spec.tuning.kv_tier.is_none() {
                return Err(TopologyError::new(
                    "a fleet-shared tier registers spilled records: configure tuning.kv_tier first",
                ));
            }
            if !shared.sync_s.is_finite() || shared.sync_s <= 0.0 {
                return Err(TopologyError::new(
                    "the shared tier's control-plane sync interval must be positive and finite",
                ));
            }
        }
        if let Some(autoscale) = &spec.autoscale {
            if !spec.roles.is_empty() {
                return Err(TopologyError::new(
                    "autoscaling requires an all-Colocated fleet: draining a prefill or \
                     decode pool can strand the other role's traffic",
                ));
            }
            if spec.shared_tier.is_some() {
                return Err(TopologyError::new(
                    "autoscaling does not yet compose with the fleet-shared tier: a retired \
                     replica's flushed records would go stale in the fleet directory",
                ));
            }
            let initial = autoscale.initial_replicas.unwrap_or(spec.dp_replicas);
            if autoscale.min_replicas == 0
                || autoscale.min_replicas > initial
                || initial > spec.dp_replicas
            {
                return Err(TopologyError::new(format!(
                    "autoscale bounds must satisfy 1 <= min ({}) <= initial ({initial}) <= \
                     dp_replicas ({})",
                    autoscale.min_replicas, spec.dp_replicas
                )));
            }
            if !autoscale.spin_up_s.is_finite() || autoscale.spin_up_s < 0.0 {
                return Err(TopologyError::new(
                    "the autoscale spin-up delay must be non-negative and finite",
                ));
            }
            if !autoscale.decide_interval_s.is_finite() || autoscale.decide_interval_s <= 0.0 {
                return Err(TopologyError::new(
                    "the autoscale decision interval must be positive and finite",
                ));
            }
        }
        let base = SystemConfig::build(spec.design, spec.model.clone());
        let topology = ClusterTopology::new(
            base.topology.clone(),
            spec.inter_node.clone(),
            spec.tp_degree,
            spec.dp_replicas,
        )?;
        // One engine per replica; distinct designs built (and, for
        // PAPI, α-calibrated) exactly once each and cloned across the
        // fleet — the base design reuses the config built above, so a
        // homogeneous fleet pays one build, like before roles existed.
        let mut by_design: HashMap<DesignKind, ServingEngine> = HashMap::new();
        by_design.insert(
            spec.design,
            ServingEngine::new(base.with_tensor_parallel(spec.tp_degree, spec.inter_node.clone()))
                .with_tuning(spec.tuning.clone()),
        );
        let replicas = (0..spec.dp_replicas)
            .map(|idx| {
                let design = spec.design_for(spec.role_of(idx));
                by_design
                    .entry(design)
                    .or_insert_with(|| {
                        let config = SystemConfig::build(design, spec.model.clone())
                            .with_tensor_parallel(spec.tp_degree, spec.inter_node.clone());
                        ServingEngine::new(config).with_tuning(spec.tuning.clone())
                    })
                    .clone()
            })
            .collect();
        Ok(Self {
            spec,
            topology,
            replicas,
        })
    }

    /// The fleet shape.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// The fleet wiring (per-node topology + inter-node fabric).
    pub fn topology(&self) -> &ClusterTopology {
        &self.topology
    }

    /// The base replica engine configuration (replica 0's; roles may
    /// give other replicas different hardware — see
    /// [`replica_configs`](Self::replica_configs)).
    pub fn replica_config(&self) -> &SystemConfig {
        self.replicas[0].config()
    }

    /// Every replica's engine configuration, in replica order.
    pub fn replica_configs(&self) -> impl Iterator<Item = &SystemConfig> {
        self.replicas.iter().map(ServingEngine::config)
    }

    /// The resolved role of every replica.
    pub fn roles(&self) -> Vec<ReplicaRole> {
        (0..self.spec.dp_replicas)
            .map(|idx| self.spec.role_of(idx))
            .collect()
    }

    /// Prices one handoff's KV transfer: the source replica's block
    /// footprint × its block bytes, over the link the spec's
    /// [`MigrationPricing`] names.
    fn price_migration(&self, source: usize, handoff: &PrefillHandoff) -> MigrationCost {
        let block_size = self.replicas[source].tuning().kv_block_size;
        let block_bytes = self.spec.model.kv_bytes_per_token() * block_size as f64;
        self.spec
            .migration_pricing
            .cost(&self.spec.inter_node, handoff.kv.blocks, block_bytes)
    }

    /// Serves one episode across the fleet with the spec's built-in
    /// routing and migration policies (driven through the same trait
    /// seams as custom policies).
    ///
    /// Replicas advance on a shared simulated clock: before each
    /// global event — an arrival being routed, or a migrated sequence
    /// landing on its decode replica — every replica with pending work
    /// is stepped up to the event instant, so policies see the fleet
    /// as it would exist right then — not a stale or clairvoyant view.
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as [`ServingEngine::run`].
    pub fn run(&self, workload: &ServingWorkload) -> ClusterReport {
        let mut router = Router::new(self.spec.routing);
        let mut migration = self.spec.migration.build();
        self.run_with_policies(workload, &mut router, migration.as_mut())
    }

    /// Serves one episode with a caller-supplied [`RoutePolicy`] — the
    /// open seam for routing strategies the built-in [`PolicySpec`]s
    /// don't cover. Migrated sequences (if the fleet disaggregates)
    /// are placed by the spec's built-in [`MigrationSpec`].
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as
    /// [`run_with_policies`](Self::run_with_policies).
    pub fn run_with_policy(
        &self,
        workload: &ServingWorkload,
        policy: &mut dyn RoutePolicy,
    ) -> ClusterReport {
        let mut migration = self.spec.migration.build();
        self.run_with_policies(workload, policy, migration.as_mut())
    }

    /// Serves one episode with caller-supplied routing *and*
    /// decode-placement policies — the fully open control plane. The
    /// routing policy is consulted once per global arrival, in arrival
    /// order (and must pick a prefill-capable replica); the migration
    /// policy once per completed KV transfer, in delivery order (and
    /// must pick a decode-capable replica). Their labels become the
    /// report's `routing` and `migration.policy` fields.
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as [`ServingEngine::run`], or if
    /// either policy returns an out-of-range or role-incompatible
    /// replica index.
    pub fn run_with_policies(
        &self,
        workload: &ServingWorkload,
        policy: &mut dyn RoutePolicy,
        migration: &mut dyn MigrationPolicy,
    ) -> ClusterReport {
        let autoscale = self
            .spec
            .autoscale
            .as_ref()
            .map(|spec| AutoscaleControl::new(spec, self.spec.dp_replicas, None));
        match self.spec.step_mode {
            StepMode::Sequential => self.run_sequential(workload, policy, migration, autoscale),
            StepMode::Parallel => self.run_parallel(workload, policy, migration, autoscale),
        }
    }

    /// Serves one episode with a caller-supplied [`AutoscalePolicy`]
    /// deciding the fleet's scale — the open seam for scaling
    /// strategies the built-in [`AutoscalePolicySpec`] names don't
    /// cover (routing and migration use the spec's built-ins). The
    /// spec must carry an [`AutoscaleSpec`] — its bounds, spin-up
    /// delay, and decision interval still govern; only the decision
    /// logic is replaced.
    ///
    /// [`AutoscalePolicySpec`]: crate::autoscale::AutoscalePolicySpec
    ///
    /// # Panics
    ///
    /// Panics if the spec has no autoscale configuration, or on the
    /// same conditions as [`run_with_policies`](Self::run_with_policies)
    /// (including the autoscaler returning an out-of-range replica
    /// index).
    pub fn run_elastic(
        &self,
        workload: &ServingWorkload,
        autoscaler: &mut dyn AutoscalePolicy,
    ) -> ClusterReport {
        let spec = self
            .spec
            .autoscale
            .as_ref()
            .expect("run_elastic requires ClusterSpec::with_autoscale");
        let control = AutoscaleControl::new(
            spec,
            self.spec.dp_replicas,
            Some(Box::new(BorrowedAutoscaler(autoscaler))),
        );
        let mut router = Router::new(self.spec.routing);
        let mut migration = self.spec.migration.build();
        match self.spec.step_mode {
            StepMode::Sequential => {
                self.run_sequential(workload, &mut router, migration.as_mut(), Some(control))
            }
            StepMode::Parallel => {
                self.run_parallel(workload, &mut router, migration.as_mut(), Some(control))
            }
        }
    }

    /// Opens one session per replica: replica 0 keeps the workload's
    /// acceptance stream (a 1-replica cluster is bit-identical to the
    /// single engine), later replicas decorrelate by index, and
    /// prefill-role replicas export their completed prompts.
    fn open_sessions(
        &self,
        workload: &ServingWorkload,
        roles: &[ReplicaRole],
    ) -> Vec<ServingSession<'_>> {
        self.replicas
            .iter()
            .enumerate()
            .map(|(idx, engine)| {
                let mut session = engine.open_session(workload);
                if idx > 0 {
                    session
                        .reseed(workload.seed ^ (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                }
                if roles[idx] == ReplicaRole::Prefill {
                    session.enable_prefill_export();
                }
                session
            })
            .collect()
    }

    /// Enables the fleet-shared tier on every session (when the spec
    /// asks for one) and returns its control-plane state. Pricing
    /// resolves to [`TierPricing::Link`] over the cluster's inter-node
    /// fabric unless overridden.
    fn open_shared_tier(&self, sessions: &mut [ServingSession<'_>]) -> Option<SharedTierControl> {
        let spec = self.spec.shared_tier.as_ref()?;
        let pricing = spec
            .pricing
            .clone()
            .unwrap_or_else(|| TierPricing::Link(self.spec.inter_node.clone()));
        let directory = GlobalKvTier::new(self.spec.tuning.kv_block_size);
        let view = Arc::new(directory.clone());
        for (idx, session) in sessions.iter_mut().enumerate() {
            session.enable_global_tier(idx, &spec.fetch, pricing.clone(), Arc::clone(&view));
        }
        Some(SharedTierControl {
            directory,
            view,
            pricing: pricing.label(),
            sync_s: spec.sync_s,
            fetches: 0,
            fetched_tokens: 0,
            bytes: 0.0,
            energy: Energy::ZERO,
            latencies: Vec::new(),
        })
    }

    /// The [`StepMode::Sequential`] reference loop: one global
    /// minimum-clock scan per simulator step.
    fn run_sequential(
        &self,
        workload: &ServingWorkload,
        policy: &mut dyn RoutePolicy,
        migration: &mut dyn MigrationPolicy,
        mut autoscale: Option<AutoscaleControl<'_>>,
    ) -> ClusterReport {
        let roles = self.roles();
        let mut sessions = self.open_sessions(workload, &roles);
        let mut shared = self.open_shared_tier(&mut sessions);
        let mut next_sync = shared.as_ref().map_or(f64::INFINITY, |c| c.sync_s);
        let arrivals = workload.requests();
        let mut next_arrival = 0usize;
        let mut in_flight: Vec<InFlightMigration> = Vec::new();
        let mut decisions = 0u64;
        let mut stats = MigrationReport {
            policy: migration.label(),
            pricing: self.spec.migration_pricing.label(),
            ..MigrationReport::default()
        };
        let mut transfer_times: Vec<Time> = Vec::new();

        // Stamp each replica's snapshot with its configured role (and,
        // for an elastic fleet, its lifecycle), so policies can honor
        // the disaggregation and lifecycle contracts.
        let observe = |sessions: &[ServingSession<'_>],
                       lifecycles: Option<&[ReplicaState]>|
         -> Vec<ReplicaSnapshot> {
            papi_perf::phase!("snapshot");
            sessions
                .iter()
                .enumerate()
                .map(|(idx, s)| {
                    let mut snapshot = s.snapshot();
                    snapshot.role = roles[idx];
                    if let Some(lifecycles) = lifecycles {
                        snapshot.lifecycle = lifecycles[idx];
                    }
                    snapshot
                })
                .collect()
        };

        loop {
            // The next global event: the earliest pending arrival or
            // migration delivery (delivery first on an exact tie, so
            // the router sees the landed sequence).
            let arrival_t = arrivals.get(next_arrival).map(|r| r.arrival_s);
            let delivery = in_flight
                .iter()
                .enumerate()
                .min_by(|(ia, a), (ib, b)| a.deliver_s.total_cmp(&b.deliver_s).then(ia.cmp(ib)))
                .map(|(i, m)| (i, m.deliver_s));
            let (horizon, deliver_now) = match (arrival_t, delivery) {
                (Some(at), Some((di, dt))) => {
                    if dt <= at {
                        (Some(dt), Some(di))
                    } else {
                        (Some(at), None)
                    }
                }
                (Some(at), None) => (Some(at), None),
                (None, Some((di, dt))) => (Some(dt), Some(di)),
                (None, None) => (None, None),
            };
            // Shared-tier fleets also close the window at the next
            // control-plane gossip tick, so spill registrations become
            // fleet-visible mid-episode — not only at arrival and
            // delivery events (under load, most spills and reuses
            // happen long after the last arrival). A tick-bounded
            // window delivers nothing: its barrier exists purely to
            // merge the directory.
            let sync_window = sessions.iter().any(|s| s.has_pending_work())
                && horizon.is_none_or(|t| next_sync < t);
            let (horizon, deliver_now) = if sync_window {
                (Some(next_sync), None)
            } else {
                (horizon, deliver_now)
            };
            // Elastic fleets also close the window at the next
            // autoscale decision tick (same latch discipline as the
            // gossip tick, so both step modes decide on the same
            // schedule). A decide tick that beats a gossip tick
            // preempts it — the gossip window relatches next
            // iteration, not here.
            let decide_t = autoscale
                .as_ref()
                .map_or(f64::INFINITY, AutoscaleControl::next_decide);
            let decide_window = autoscale.is_some()
                && sessions.iter().any(|s| s.has_pending_work())
                && horizon.is_none_or(|t| decide_t < t);
            let (horizon, deliver_now) = if decide_window {
                (Some(decide_t), None)
            } else {
                (horizon, deliver_now)
            };
            let sync_window = sync_window && !decide_window;

            // Advance the fleet toward the event one step at a time,
            // harvesting any handoffs each step exports — a fresh
            // export can schedule a delivery *earlier* than the event
            // we were heading for, so re-evaluate after every step.
            if let Some(idx) = sessions
                .iter()
                .enumerate()
                .filter(|(_, s)| s.has_pending_work() && horizon.is_none_or(|t| s.clock() < t))
                .min_by(|(_, a), (_, b)| a.clock().total_cmp(&b.clock()))
                .map(|(i, _)| i)
            {
                sessions[idx].step();
                for handoff in sessions[idx].drain_egress() {
                    let cost = self.price_migration(idx, &handoff);
                    in_flight.push(InFlightMigration {
                        deliver_s: handoff.ready_s + cost.time.value(),
                        source: idx,
                        handoff,
                        cost,
                    });
                }
                continue;
            }

            // Control-plane barrier: no session can advance below the
            // horizon. Merge the fleet directory here, in replica
            // order — the parallel loop reaches the same barriers with
            // the same per-session egress.
            if let Some(control) = shared.as_mut() {
                control.harvest(&mut sessions);
                if sync_window {
                    // Everyone still running has reached the tick;
                    // latch the next one past the slowest of them.
                    let min_clock = sessions
                        .iter()
                        .filter(|s| s.has_pending_work())
                        .map(|s| s.clock())
                        .fold(f64::INFINITY, f64::min);
                    if min_clock.is_finite() {
                        next_sync = next_sync_tick(min_clock, control.sync_s);
                    }
                    continue;
                }
            }
            // Autoscale decision barrier: every pending session has
            // reached the decide tick. Promote due warm-ups, retire
            // idle drainers, consult the policy, apply its actions,
            // and latch the next tick.
            if decide_window {
                let control = autoscale.as_mut().expect("decide window without autoscale");
                control.barrier(&mut sessions, &roles);
                continue;
            }

            match deliver_now {
                Some(pos) => {
                    let migrated = in_flight.remove(pos);
                    if let Some(control) = autoscale.as_mut() {
                        control.promote_due(migrated.deliver_s);
                    }
                    let snapshots = observe(&sessions, autoscale.as_ref().map(|a| a.lifecycle()));
                    let target = {
                        papi_perf::phase!("migrate");
                        migration.place(&MigrationContext {
                            request: &migrated.handoff.request,
                            kv_tokens: migrated.handoff.kv.tokens,
                            source: migrated.source,
                            replicas: &snapshots,
                        })
                    };
                    assert!(
                        target < sessions.len(),
                        "migration policy {} picked replica {target} in a {}-replica fleet",
                        migration.label(),
                        sessions.len()
                    );
                    assert!(
                        roles[target].can_decode(),
                        "migration policy {} placed a sequence on prefill-only replica {target}",
                        migration.label()
                    );
                    stats.migrations += 1;
                    stats.bytes += migrated.cost.bytes.value();
                    stats.energy += migrated.cost.energy;
                    transfer_times.push(migrated.cost.time);
                    sessions[target].push_migrated(migrated.handoff, migrated.deliver_s);
                }
                None => match next_arrival < arrivals.len() {
                    true => {
                        let request = arrivals[next_arrival].clone();
                        next_arrival += 1;
                        if let Some(control) = autoscale.as_mut() {
                            control.promote_due(request.arrival_s);
                        }
                        let snapshots =
                            observe(&sessions, autoscale.as_ref().map(|a| a.lifecycle()));
                        let target = {
                            papi_perf::phase!("route");
                            let ctx = RouteContext::new(&request, &snapshots);
                            let ctx = match shared.as_ref() {
                                Some(control) => ctx.with_shared_prefixes(&control.directory),
                                None => ctx,
                            };
                            let ctx = match autoscale.as_ref() {
                                Some(control) => ctx.with_ring(control.ring()),
                                None => ctx,
                            };
                            policy.route(&ctx)
                        };
                        assert!(
                            target < sessions.len(),
                            "routing policy {} picked replica {target} in a {}-replica fleet",
                            policy.label(),
                            sessions.len()
                        );
                        assert!(
                            roles[target].accepts_arrivals(),
                            "routing policy {} sent an arrival to decode-only replica {target}",
                            policy.label()
                        );
                        if let Some(control) = autoscale.as_ref() {
                            let state = control.lifecycle()[target];
                            assert!(
                                state.serves_traffic(),
                                "routing policy {} sent an arrival to {} replica {target}",
                                policy.label(),
                                state.label()
                            );
                        }
                        decisions += 1;
                        sessions[target].push(request);
                    }
                    // No event, nothing steppable: the episode is done.
                    false => break,
                },
            }
        }
        debug_assert!(in_flight.is_empty(), "a migration was never delivered");
        stats.latency = LatencySummary::from_times(&transfer_times);
        let global_tier = shared.map(SharedTierControl::into_report);
        self.finish_report(
            policy.label(),
            decisions,
            roles,
            stats,
            global_tier,
            sessions,
            autoscale,
        )
    }

    /// The [`StepMode::Parallel`] window-at-a-time loop.
    ///
    /// Why this is bit-identical to [`run_sequential`](Self::run_sequential):
    /// replicas interact only *at* global events (a routed arrival, a
    /// delivered migration) — between events each session's trajectory
    /// is a function of its own state alone. The sequential loop steps
    /// the minimum-clock session and re-derives the horizon after every
    /// step because a fresh prefill export can schedule a delivery
    /// earlier than the event it was heading for; unrolling that rule,
    /// a step with pre-step clock `c` executes exactly when `c` is
    /// below `min(horizon, deliveries of exports from steps with
    /// pre-step clock < c)`. Only prefill-role sessions export, and a
    /// delivery always lands strictly after the clock of the step that
    /// exported it, so: exporters are advanced first, one step at a
    /// time under that tightening bound (exactly the sequential order
    /// among themselves — non-exporter steps never affect them); the
    /// bound is then final, and every other session can run freely to
    /// it — any interleaving gives the same per-session result, so
    /// they fan out in parallel. Exports are priced and queued in the
    /// same order the sequential loop would queue them, preserving
    /// delivery tie-breaks; snapshots at events are served from a
    /// dirty-tracked cache (a session not stepped or pushed since the
    /// last event snapshots identically), and iteration pricing is
    /// memoized fleet-wide per replica design (a pure function of the
    /// memo key — see [`SharedIterationCache`]).
    fn run_parallel(
        &self,
        workload: &ServingWorkload,
        policy: &mut dyn RoutePolicy,
        migration: &mut dyn MigrationPolicy,
        mut autoscale: Option<AutoscaleControl<'_>>,
    ) -> ClusterReport {
        let roles = self.roles();
        let mut sessions = self.open_sessions(workload, &roles);
        let mut shared = self.open_shared_tier(&mut sessions);
        let mut next_sync = shared.as_ref().map_or(f64::INFINITY, |c| c.sync_s);
        let mut caches: HashMap<DesignKind, Arc<SharedIterationCache>> = HashMap::new();
        for (idx, session) in sessions.iter_mut().enumerate() {
            let cache = caches.entry(self.spec.design_for(roles[idx])).or_default();
            session.install_pricer_cache(Arc::clone(cache));
        }
        let exporters: Vec<usize> = roles
            .iter()
            .enumerate()
            .filter(|(_, &role)| role == ReplicaRole::Prefill)
            .map(|(idx, _)| idx)
            .collect();

        let arrivals = workload.requests();
        let mut next_arrival = 0usize;
        let mut in_flight: Vec<InFlightMigration> = Vec::new();
        let mut decisions = 0u64;
        let mut stats = MigrationReport {
            policy: migration.label(),
            pricing: self.spec.migration_pricing.label(),
            ..MigrationReport::default()
        };
        let mut transfer_times: Vec<Time> = Vec::new();

        // Dirty-tracked snapshot cache: an event re-snapshots only the
        // replicas that stepped or were pushed to since the last one,
        // not the whole fleet.
        let mut snaps: Vec<ReplicaSnapshot> = sessions
            .iter()
            .enumerate()
            .map(|(idx, s)| {
                let mut snapshot = s.snapshot();
                snapshot.role = roles[idx];
                if let Some(control) = autoscale.as_ref() {
                    snapshot.lifecycle = control.lifecycle()[idx];
                }
                snapshot
            })
            .collect();
        let mut dirty = vec![false; sessions.len()];

        loop {
            // The next global event, exactly as the sequential loop
            // derives it (delivery first on an exact tie).
            let arrival_t = arrivals.get(next_arrival).map(|r| r.arrival_s);
            let delivery = in_flight
                .iter()
                .enumerate()
                .min_by(|(ia, a), (ib, b)| a.deliver_s.total_cmp(&b.deliver_s).then(ia.cmp(ib)))
                .map(|(i, m)| (i, m.deliver_s));
            let (horizon, deliver_now) = match (arrival_t, delivery) {
                (Some(at), Some((di, dt))) => {
                    if dt <= at {
                        (Some(dt), Some(di))
                    } else {
                        (Some(at), None)
                    }
                }
                (Some(at), None) => (Some(at), None),
                (None, Some((di, dt))) => (Some(dt), Some(di)),
                (None, None) => (None, None),
            };
            // Shared-tier gossip ticks bound the window exactly as in
            // the sequential loop (same latch, same schedule).
            let sync_window = sessions.iter().any(|s| s.has_pending_work())
                && horizon.is_none_or(|t| next_sync < t);
            let (horizon, deliver_now) = if sync_window {
                (Some(next_sync), None)
            } else {
                (horizon, deliver_now)
            };
            // Autoscale decision ticks bound the window exactly as in
            // the sequential loop (same latch, same schedule, same
            // preemption of a tied-or-later gossip tick).
            let decide_t = autoscale
                .as_ref()
                .map_or(f64::INFINITY, AutoscaleControl::next_decide);
            let decide_window = autoscale.is_some()
                && sessions.iter().any(|s| s.has_pending_work())
                && horizon.is_none_or(|t| decide_t < t);
            let (horizon, deliver_now) = if decide_window {
                (Some(decide_t), None)
            } else {
                (horizon, deliver_now)
            };
            let sync_window = sync_window && !decide_window;
            let h = horizon.unwrap_or(f64::INFINITY);
            let mut advanced = false;

            // Exporters advance one step at a time under the
            // tightening bound: each export can schedule a delivery
            // earlier than the window's event, capping how far anyone
            // may step afterwards.
            if !exporters.is_empty() {
                loop {
                    let bound = in_flight.iter().map(|m| m.deliver_s).fold(h, f64::min);
                    let Some(idx) = exporters
                        .iter()
                        .copied()
                        .filter(|&i| sessions[i].has_pending_work() && sessions[i].clock() < bound)
                        .min_by(|&a, &b| sessions[a].clock().total_cmp(&sessions[b].clock()))
                    else {
                        break;
                    };
                    sessions[idx].step();
                    dirty[idx] = true;
                    advanced = true;
                    for handoff in sessions[idx].drain_egress() {
                        let cost = self.price_migration(idx, &handoff);
                        in_flight.push(InFlightMigration {
                            deliver_s: handoff.ready_s + cost.time.value(),
                            source: idx,
                            handoff,
                            cost,
                        });
                    }
                }
            }

            // The bound is now final for this window: the remaining
            // sessions cannot move it, so each one steps to it
            // independently — in parallel, no per-step global scan.
            let bound = in_flight.iter().map(|m| m.deliver_s).fold(h, f64::min);
            let mut runnable: Vec<&mut ServingSession<'_>> = Vec::new();
            for (idx, session) in sessions.iter_mut().enumerate() {
                if roles[idx] != ReplicaRole::Prefill
                    && session.has_pending_work()
                    && session.clock() < bound
                {
                    dirty[idx] = true;
                    runnable.push(session);
                }
            }
            if !runnable.is_empty() {
                advanced = true;
                let _: Vec<()> = runnable
                    .into_par_iter()
                    .map(|session| session.run_until(bound))
                    .collect();
            }
            if advanced {
                // Fresh exports may have scheduled an earlier event —
                // re-derive the horizon before handling one.
                continue;
            }

            // Control-plane barrier — the same point the sequential
            // loop harvests at (no session can advance below the
            // horizon), with identical per-session egress contents.
            if let Some(control) = shared.as_mut() {
                control.harvest(&mut sessions);
                if sync_window {
                    let min_clock = sessions
                        .iter()
                        .filter(|s| s.has_pending_work())
                        .map(|s| s.clock())
                        .fold(f64::INFINITY, f64::min);
                    if min_clock.is_finite() {
                        next_sync = next_sync_tick(min_clock, control.sync_s);
                    }
                    continue;
                }
            }
            // Autoscale decision barrier — same point, same call as
            // the sequential loop. Lifecycle may have changed, so the
            // whole snapshot cache is stale.
            if decide_window {
                let control = autoscale.as_mut().expect("decide window without autoscale");
                control.barrier(&mut sessions, &roles);
                dirty.iter_mut().for_each(|flag| *flag = true);
                continue;
            }

            match deliver_now {
                Some(pos) => {
                    let migrated = in_flight.remove(pos);
                    if let Some(control) = autoscale.as_mut() {
                        if control.promote_due(migrated.deliver_s) {
                            dirty.iter_mut().for_each(|flag| *flag = true);
                        }
                    }
                    refresh_snapshots(
                        &sessions,
                        &roles,
                        autoscale.as_ref().map(|a| a.lifecycle()),
                        &mut snaps,
                        &mut dirty,
                    );
                    let target = {
                        papi_perf::phase!("migrate");
                        migration.place(&MigrationContext {
                            request: &migrated.handoff.request,
                            kv_tokens: migrated.handoff.kv.tokens,
                            source: migrated.source,
                            replicas: &snaps,
                        })
                    };
                    assert!(
                        target < sessions.len(),
                        "migration policy {} picked replica {target} in a {}-replica fleet",
                        migration.label(),
                        sessions.len()
                    );
                    assert!(
                        roles[target].can_decode(),
                        "migration policy {} placed a sequence on prefill-only replica {target}",
                        migration.label()
                    );
                    stats.migrations += 1;
                    stats.bytes += migrated.cost.bytes.value();
                    stats.energy += migrated.cost.energy;
                    transfer_times.push(migrated.cost.time);
                    sessions[target].push_migrated(migrated.handoff, migrated.deliver_s);
                    dirty[target] = true;
                }
                None => match next_arrival < arrivals.len() {
                    true => {
                        let request = arrivals[next_arrival].clone();
                        next_arrival += 1;
                        if let Some(control) = autoscale.as_mut() {
                            if control.promote_due(request.arrival_s) {
                                dirty.iter_mut().for_each(|flag| *flag = true);
                            }
                        }
                        refresh_snapshots(
                            &sessions,
                            &roles,
                            autoscale.as_ref().map(|a| a.lifecycle()),
                            &mut snaps,
                            &mut dirty,
                        );
                        let target = {
                            papi_perf::phase!("route");
                            let ctx = RouteContext::new(&request, &snaps);
                            let ctx = match shared.as_ref() {
                                Some(control) => ctx.with_shared_prefixes(&control.directory),
                                None => ctx,
                            };
                            let ctx = match autoscale.as_ref() {
                                Some(control) => ctx.with_ring(control.ring()),
                                None => ctx,
                            };
                            policy.route(&ctx)
                        };
                        assert!(
                            target < sessions.len(),
                            "routing policy {} picked replica {target} in a {}-replica fleet",
                            policy.label(),
                            sessions.len()
                        );
                        assert!(
                            roles[target].accepts_arrivals(),
                            "routing policy {} sent an arrival to decode-only replica {target}",
                            policy.label()
                        );
                        if let Some(control) = autoscale.as_ref() {
                            let state = control.lifecycle()[target];
                            assert!(
                                state.serves_traffic(),
                                "routing policy {} sent an arrival to {} replica {target}",
                                policy.label(),
                                state.label()
                            );
                        }
                        decisions += 1;
                        sessions[target].push(request);
                        dirty[target] = true;
                    }
                    // No event, nothing steppable: the episode is done.
                    false => break,
                },
            }
        }
        debug_assert!(in_flight.is_empty(), "a migration was never delivered");
        stats.latency = LatencySummary::from_times(&transfer_times);
        let global_tier = shared.map(SharedTierControl::into_report);
        self.finish_report(
            policy.label(),
            decisions,
            roles,
            stats,
            global_tier,
            sessions,
            autoscale,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn finish_report(
        &self,
        routing: String,
        decisions: u64,
        roles: Vec<ReplicaRole>,
        migration: MigrationReport,
        global_tier: Option<GlobalTierReport>,
        sessions: Vec<ServingSession<'_>>,
        autoscale: Option<AutoscaleControl<'_>>,
    ) -> ClusterReport {
        // The episode's end instant — the latest replica clock — must
        // be captured before the sessions are consumed: still-
        // provisioned replicas accrue replica-hours up to it.
        let end_s = sessions.iter().map(|s| s.clock()).fold(0.0, f64::max);
        let replicas: Vec<ServingReport> = sessions.into_iter().map(|s| s.into_report()).collect();
        let fleet_cost = autoscale.map(|control| {
            let fleet_energy = replicas
                .iter()
                .fold(migration.energy, |acc, r| acc + r.energy);
            control.into_report(&replicas, end_s, fleet_energy, self.spec.dp_replicas)
        });
        ClusterReport {
            design: self.replicas[0].config().design.label().to_owned(),
            model: self.spec.model.name.clone(),
            tp_degree: self.spec.tp_degree,
            routing,
            routing_decisions: decisions,
            roles,
            migration,
            global_tier,
            fleet_cost,
            replicas,
        }
    }
}

/// The first control-plane tick strictly after `clock` on the
/// `sync`-second grid (with a strict-progress guard against the grid
/// point rounding down onto `clock` itself). Shared by the gossip and
/// autoscale-decision schedules, so both latch identically.
pub(crate) fn next_sync_tick(clock: f64, sync: f64) -> f64 {
    let tick = (clock / sync).floor() * sync + sync;
    if tick > clock {
        tick
    } else {
        clock + sync
    }
}

/// Refreshes the dirty entries of the cluster's snapshot cache (and
/// re-stamps their roles and — for elastic fleets — lifecycles). Clean
/// entries are untouched — a session that neither stepped nor received
/// a push snapshots identically (the event loops mark the whole cache
/// dirty whenever a lifecycle changes).
fn refresh_snapshots(
    sessions: &[ServingSession<'_>],
    roles: &[ReplicaRole],
    lifecycles: Option<&[ReplicaState]>,
    snaps: &mut [ReplicaSnapshot],
    dirty: &mut [bool],
) {
    papi_perf::phase!("snapshot");
    for (idx, flag) in dirty.iter_mut().enumerate() {
        if *flag {
            let mut snapshot = sessions[idx].snapshot();
            snapshot.role = roles[idx];
            if let Some(lifecycles) = lifecycles {
                snapshot.lifecycle = lifecycles[idx];
            }
            snaps[idx] = snapshot;
            *flag = false;
        }
    }
}

/// Adapts a caller-borrowed autoscaler to the boxed policy
/// [`AutoscaleControl`] owns — [`ClusterEngine::run_elastic`]'s
/// equivalent of the router's borrowed-policy seam.
#[derive(Debug)]
struct BorrowedAutoscaler<'a>(&'a mut dyn AutoscalePolicy);

impl AutoscalePolicy for BorrowedAutoscaler<'_> {
    fn decide(&mut self, view: &AutoscaleView<'_>) -> Vec<ScaleAction> {
        self.0.decide(view)
    }

    fn label(&self) -> String {
        self.0.label()
    }
}

/// A KV sequence on the wire between its prefill and decode replicas.
#[derive(Debug, Clone)]
struct InFlightMigration {
    /// When the transfer completes and the sequence may be placed.
    deliver_s: f64,
    /// The prefill-role replica it departed from.
    source: usize,
    /// The sequence itself.
    handoff: PrefillHandoff,
    /// The priced transfer (recorded into the report at delivery).
    cost: MigrationCost,
}

/// Fleet-wide accounting of prefill→decode KV migrations — all zeros
/// (and `latency: None`) for a fleet that never migrated.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MigrationReport {
    /// Label of the decode-placement policy.
    pub policy: String,
    /// Label of the link migrations were priced over.
    pub pricing: String,
    /// Sequences migrated (each counted at delivery).
    pub migrations: u64,
    /// Total KV payload moved over the fabric, in bytes.
    pub bytes: f64,
    /// Total wire energy of the transfers.
    pub energy: Energy,
    /// Percentiles of the per-migration transfer latency; `None` when
    /// nothing migrated.
    pub latency: Option<LatencySummary>,
}

/// Fleet-wide accounting of the shared prefix tier: directory
/// occupancy at episode end plus cross-replica fetch traffic. The
/// fetch time and energy are *already inside* the fetching replicas'
/// reports (TTFT and session energy) — this report attributes the
/// fabric traffic; it is not an extra charge, and
/// [`ClusterReport::energy`] must not add `energy` again.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GlobalTierReport {
    /// Label of the pricing remote fetches crossed (the inter-node
    /// fabric unless overridden; `"free"` for the ablation).
    pub pricing: String,
    /// Prefixes registered in the directory at episode end.
    pub entries: u64,
    /// Logical tokens those entries cover.
    pub resident_tokens: u64,
    /// Blocks those tokens occupy (hot-pool block size).
    pub resident_blocks: u64,
    /// First-time registrations over the episode.
    pub publishes: u64,
    /// Records grown by a longer re-spill.
    pub extensions: u64,
    /// Cross-replica re-materializations.
    pub fetches: u64,
    /// Logical tokens restored across the fabric.
    pub fetched_tokens: u64,
    /// Total fetched payload in bytes.
    pub bytes: f64,
    /// Total wire energy of the fetches (already counted in replica
    /// energy — attribution only).
    pub energy: Energy,
    /// Per-fetch transfer-latency percentiles; `None` when nothing
    /// was fetched.
    pub latency: Option<LatencySummary>,
}

/// The outcome of one episode across the fleet: per-replica
/// [`ServingReport`]s plus fleet-wide aggregation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Design label of the replicated node.
    pub design: String,
    /// Model name.
    pub model: String,
    /// Nodes per TP group.
    pub tp_degree: usize,
    /// Label of the routing policy that assigned requests.
    pub routing: String,
    /// Requests the router placed.
    pub routing_decisions: u64,
    /// The lifecycle role of each replica, parallel to `replicas`
    /// (all `Colocated` for a non-disaggregated fleet).
    pub roles: Vec<ReplicaRole>,
    /// KV-migration accounting (zeros for a fleet that never
    /// migrated).
    pub migration: MigrationReport,
    /// Shared-tier accounting; `None` for a private-tier fleet.
    pub global_tier: Option<GlobalTierReport>,
    /// Autoscale cost accounting (replica-hours by lifecycle state,
    /// energy per SLO-good token, the scale-event log); `None` for a
    /// fixed-size fleet.
    #[serde(default)]
    pub fleet_cost: Option<FleetCostReport>,
    /// One report per data-parallel replica (some may be empty if the
    /// router starved them, and prefill-role replicas record nothing —
    /// their requests complete on the decode side).
    pub replicas: Vec<ServingReport>,
}

impl ClusterReport {
    /// Total requests completed across the fleet.
    pub fn requests(&self) -> u64 {
        self.replicas.iter().map(|r| r.records.len() as u64).sum()
    }

    /// Total output tokens across the fleet.
    pub fn tokens(&self) -> u64 {
        self.replicas.iter().map(|r| r.tokens).sum()
    }

    /// Total energy across the fleet, migration wire energy included.
    /// Shared-tier fetch energy is *not* added here: each fetch
    /// already charged its fetching replica's session energy —
    /// [`GlobalTierReport::energy`] is attribution, not a separate
    /// pool.
    pub fn energy(&self) -> Energy {
        self.replicas
            .iter()
            .fold(self.migration.energy, |acc, r| acc + r.energy)
    }

    /// Every request record in the fleet, in replica order.
    pub fn records(&self) -> impl Iterator<Item = &RequestRecord> {
        self.replicas.iter().flat_map(|r| r.records.iter())
    }

    /// Fleet makespan: first arrival anywhere to last completion
    /// anywhere. Zero when nothing completed.
    pub fn makespan(&self) -> Time {
        let first = self
            .records()
            .map(|r| r.arrival.value())
            .fold(f64::INFINITY, f64::min);
        let last = self
            .records()
            .map(|r| r.finished.value())
            .fold(0.0, f64::max);
        if first.is_finite() && last > first {
            Time::new(last - first)
        } else {
            Time::ZERO
        }
    }

    /// Fleet-wide TTFT percentile summary; `None` if nothing completed.
    pub fn ttft_summary(&self) -> Option<LatencySummary> {
        let times: Vec<Time> = self.records().map(RequestRecord::ttft).collect();
        LatencySummary::from_times(&times)
    }

    /// Fleet-wide TPOT percentile summary; `None` if nothing completed.
    pub fn tpot_summary(&self) -> Option<LatencySummary> {
        let times: Vec<Time> = self.records().map(RequestRecord::tpot).collect();
        LatencySummary::from_times(&times)
    }

    /// Fleet-wide queueing-delay summary; `None` if nothing completed.
    pub fn queueing_summary(&self) -> Option<LatencySummary> {
        let times: Vec<Time> = self.records().map(RequestRecord::queueing_delay).collect();
        LatencySummary::from_times(&times)
    }

    /// Fraction of completed requests meeting `slo`.
    pub fn slo_attainment(&self, slo: &SloSpec) -> f64 {
        let total = self.requests();
        if total == 0 {
            return 0.0;
        }
        self.records().filter(|r| r.meets(slo)).count() as f64 / total as f64
    }

    /// Fleet SLO goodput: requests completed within `slo` per second of
    /// fleet makespan.
    pub fn goodput(&self, slo: &SloSpec) -> f64 {
        let secs = self.makespan().as_secs();
        if secs == 0.0 {
            return 0.0;
        }
        self.records().filter(|r| r.meets(slo)).count() as f64 / secs
    }

    /// Fleet output-token throughput over the makespan.
    pub fn tokens_per_second(&self) -> f64 {
        let secs = self.makespan().as_secs();
        if secs == 0.0 {
            return 0.0;
        }
        self.tokens() as f64 / secs
    }

    /// Fleet-wide prefix-cache hit rate: the fraction of prefill demand
    /// (cached + prefilled tokens, summed over every replica) served
    /// from the replicas' prefix caches. This is the number
    /// prefix-oblivious routing destroys — conversations scattered
    /// across replicas re-prefill contexts some other replica cached.
    pub fn cache_hit_rate(&self) -> f64 {
        let cached: u64 = self
            .replicas
            .iter()
            .map(|r| r.kv.cached_prompt_tokens)
            .sum();
        let prefilled: u64 = self.replicas.iter().map(|r| r.kv.prefilled_tokens).sum();
        if cached + prefilled == 0 {
            return 0.0;
        }
        cached as f64 / (cached + prefilled) as f64
    }

    /// Total KV-pressure preemptions across the fleet.
    pub fn preemptions(&self) -> u64 {
        self.replicas.iter().map(|r| r.preemptions).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use papi_llm::ModelPreset;
    use papi_workload::{ConversationDataset, DatasetKind};

    fn workload(rate: f64, n: usize) -> ServingWorkload {
        ServingWorkload::poisson(DatasetKind::GeneralQa, rate, n).with_seed(17)
    }

    fn batch(max_batch: u64) -> SessionTuning {
        SessionTuning::default().with_max_batch(max_batch)
    }

    /// The degenerate fleet (1 group of 1 node) must reproduce the
    /// single-node engine bit for bit — the cluster layer adds no
    /// hidden cost at TP=1/DP=1 (equality-pinned like
    /// `slo_latency_matches_engine_pricing`).
    #[test]
    fn single_replica_tp1_cluster_reproduces_the_engine_exactly() {
        let model = ModelPreset::Llama65B.config();
        let w = workload(4.0, 32);
        let cluster = ClusterEngine::new(
            ClusterSpec::new(DesignKind::PimOnlyPapi, model.clone(), 1, 1).with_tuning(batch(16)),
        )
        .unwrap()
        .run(&w);
        let single = ServingEngine::new(SystemConfig::pim_only_papi(model))
            .with_max_batch(16)
            .run(&w);
        assert_eq!(cluster.replicas.len(), 1);
        let replica = &cluster.replicas[0];
        assert_eq!(replica.records, single.records);
        assert_eq!(replica.makespan, single.makespan);
        assert_eq!(replica.energy, single.energy);
        assert_eq!(replica.placements, single.placements);
        assert_eq!(replica.rlp_series, single.rlp_series);
    }

    /// Conservation: every workload request completes somewhere, and
    /// the fleet total is exactly the sum over replicas.
    #[test]
    fn request_count_equals_sum_of_replica_counts() {
        let w = workload(16.0, 60);
        for routing in [
            PolicySpec::RoundRobin,
            PolicySpec::JoinShortestQueue,
            PolicySpec::KvPressureAware,
        ] {
            let report = ClusterEngine::new(
                ClusterSpec::new(
                    DesignKind::PimOnlyPapi,
                    ModelPreset::Llama65B.config(),
                    1,
                    3,
                )
                .with_routing(routing)
                .with_tuning(batch(8)),
            )
            .unwrap()
            .run(&w);
            let per_replica: u64 = report.replicas.iter().map(|r| r.records.len() as u64).sum();
            assert_eq!(report.requests(), per_replica, "{routing}");
            assert_eq!(report.requests(), 60, "{routing}: requests lost");
            assert_eq!(report.routing_decisions, 60, "{routing}");
            let tokens: u64 = report.replicas.iter().map(|r| r.tokens).sum();
            assert_eq!(report.tokens(), tokens);
        }
    }

    /// Under sustained load, state-aware routing uses every replica.
    #[test]
    fn jsq_spreads_sustained_load_across_replicas() {
        let report = ClusterEngine::new(
            ClusterSpec::new(
                DesignKind::PimOnlyPapi,
                ModelPreset::Llama65B.config(),
                1,
                4,
            )
            .with_tuning(batch(4)),
        )
        .unwrap()
        .run(&workload(32.0, 64));
        for (i, replica) in report.replicas.iter().enumerate() {
            assert!(
                !replica.records.is_empty(),
                "replica {i} never served a request"
            );
        }
    }

    /// TP sharding buys per-iteration speed: a lone request on a TP-4
    /// group decodes faster than on a single node, even paying the
    /// all-reduce.
    #[test]
    fn tp4_lowers_single_request_tpot() {
        let model = ModelPreset::Llama65B.config();
        let w = workload(0.5, 8);
        let tp4 = ClusterEngine::new(ClusterSpec::new(
            DesignKind::PimOnlyPapi,
            model.clone(),
            4,
            1,
        ))
        .unwrap()
        .run(&w);
        let tp1 = ClusterEngine::new(ClusterSpec::new(DesignKind::PimOnlyPapi, model, 1, 1))
            .unwrap()
            .run(&w);
        let t4 = tp4.tpot_summary().unwrap().p50.value();
        let t1 = tp1.tpot_summary().unwrap().p50.value();
        assert!(t4 < t1, "TP4 p50 TPOT {t4} should beat TP1 {t1}");
    }

    /// The fleet shape validates through the cluster topology.
    #[test]
    fn degenerate_fleet_rejected() {
        let model = ModelPreset::Llama65B.config();
        assert!(ClusterEngine::new(ClusterSpec::new(
            DesignKind::PimOnlyPapi,
            model.clone(),
            0,
            1
        ))
        .is_err());
        assert!(
            ClusterEngine::new(ClusterSpec::new(DesignKind::PimOnlyPapi, model, 1, 0)).is_err()
        );
    }

    /// Empty-fleet aggregation stays well-defined.
    #[test]
    fn empty_report_aggregates_to_zero() {
        let report = ClusterReport {
            design: "PAPI".into(),
            model: "m".into(),
            tp_degree: 1,
            routing: PolicySpec::RoundRobin.label(),
            routing_decisions: 0,
            roles: vec![],
            migration: MigrationReport::default(),
            global_tier: None,
            fleet_cost: None,
            replicas: vec![],
        };
        assert_eq!(report.requests(), 0);
        assert_eq!(report.makespan(), Time::ZERO);
        assert!(report.ttft_summary().is_none());
        assert_eq!(report.cache_hit_rate(), 0.0);
        let slo = SloSpec::interactive(1_000.0, 50.0);
        assert_eq!(report.goodput(&slo), 0.0);
        assert_eq!(report.slo_attainment(&slo), 0.0);
    }

    /// Autoscale validation: disaggregated fleets, shared tiers, and
    /// degenerate bounds are rejected up front.
    #[test]
    fn autoscale_validation_rejects_bad_specs() {
        use crate::autoscale::AutoscalePolicySpec;
        let model = ModelPreset::Llama65B.config();
        let slo = SloSpec::interactive(1_000.0, 50.0);
        let spec = AutoscaleSpec::new(AutoscalePolicySpec::queue_depth(), slo);
        let fleet = |dp: usize| ClusterSpec::new(DesignKind::PimOnlyPapi, model.clone(), 1, dp);
        // Role disaggregation and autoscaling don't compose (v1).
        assert!(ClusterEngine::new(
            fleet(2)
                .with_roles(vec![ReplicaRole::Prefill, ReplicaRole::Decode])
                .with_autoscale(spec.clone())
        )
        .is_err());
        // min above initial.
        assert!(ClusterEngine::new(
            fleet(3).with_autoscale(spec.clone().with_min_replicas(3).with_initial_replicas(2))
        )
        .is_err());
        // initial above the fleet size.
        assert!(
            ClusterEngine::new(fleet(3).with_autoscale(spec.clone().with_initial_replicas(5)))
                .is_err()
        );
        // Degenerate knobs.
        assert!(ClusterEngine::new(
            fleet(3).with_autoscale(spec.clone().with_decide_interval(0.0))
        )
        .is_err());
        assert!(
            ClusterEngine::new(fleet(3).with_autoscale(spec.clone().with_spin_up(f64::NAN)))
                .is_err()
        );
        // A sane spec builds.
        assert!(ClusterEngine::new(
            fleet(3).with_autoscale(spec.with_min_replicas(1).with_initial_replicas(2))
        )
        .is_ok());
    }

    /// A policy that never scales leaves the episode identical to the
    /// same fleet without autoscaling — decision barriers are pure
    /// control-plane pauses — while still producing a cost report.
    #[test]
    fn hold_policy_is_bit_identical_to_a_fixed_fleet() {
        #[derive(Debug)]
        struct Hold;
        impl AutoscalePolicy for Hold {
            fn decide(&mut self, _: &AutoscaleView<'_>) -> Vec<ScaleAction> {
                Vec::new()
            }
            fn label(&self) -> String {
                "hold".into()
            }
        }
        let model = ModelPreset::Llama65B.config();
        let w = workload(8.0, 40);
        let slo = SloSpec::interactive(1_000.0, 50.0);
        let fixed = ClusterEngine::new(
            ClusterSpec::new(DesignKind::PimOnlyPapi, model.clone(), 1, 3).with_tuning(batch(8)),
        )
        .unwrap()
        .run(&w);
        let elastic = ClusterEngine::new(
            ClusterSpec::new(DesignKind::PimOnlyPapi, model, 1, 3)
                .with_tuning(batch(8))
                .with_autoscale(
                    AutoscaleSpec::new(crate::autoscale::AutoscalePolicySpec::queue_depth(), slo)
                        .with_decide_interval(0.5),
                ),
        )
        .unwrap()
        .run_elastic(&w, &mut Hold);
        for (f, e) in fixed.replicas.iter().zip(&elastic.replicas) {
            assert_eq!(f.records, e.records);
            assert_eq!(f.energy, e.energy);
            assert_eq!(f.placements, e.placements);
        }
        let cost = elastic.fleet_cost.expect("elastic fleet reports cost");
        assert_eq!(cost.policy, "hold");
        assert!(cost.scale_events.is_empty());
        assert!(cost.decisions > 0);
        assert_eq!(cost.peak_active, 3);
        assert_eq!(cost.warming_hours, 0.0);
        assert!(cost.active_hours > 0.0);
    }

    /// Draining under light load frees replica-hours without losing a
    /// single request.
    #[test]
    fn scale_down_saves_replica_hours_and_conserves_requests() {
        let model = ModelPreset::Llama65B.config();
        let w = workload(2.0, 40);
        let slo = SloSpec::interactive(10_000.0, 1_000.0);
        let report = ClusterEngine::new(
            ClusterSpec::new(DesignKind::PimOnlyPapi, model, 1, 4)
                .with_tuning(batch(8))
                .with_autoscale(
                    AutoscaleSpec::new(crate::autoscale::AutoscalePolicySpec::queue_depth(), slo)
                        .with_min_replicas(1)
                        .with_decide_interval(1.0),
                ),
        )
        .unwrap()
        .run(&w);
        assert_eq!(report.requests(), 40);
        let cost = report.fleet_cost.expect("cost report");
        assert!(
            !cost.scale_events.is_empty(),
            "light load on 4 replicas should drain capacity"
        );
        assert!(
            cost.provisioned_hours < cost.fixed_fleet_hours,
            "provisioned {} should undercut fixed {}",
            cost.provisioned_hours,
            cost.fixed_fleet_hours
        );
    }

    /// A 1-prefill + 1-decode fleet completes every request exactly
    /// once: each request is admitted and prefilled on the prefill
    /// replica, migrated, and recorded by the decode replica with
    /// ordered timestamps that include the transfer.
    #[test]
    fn disaggregated_fleet_conserves_requests_through_migration() {
        let w = workload(4.0, 24);
        let report = ClusterEngine::new(
            ClusterSpec::new(
                DesignKind::PimOnlyPapi,
                ModelPreset::Llama65B.config(),
                1,
                2,
            )
            .with_roles(vec![ReplicaRole::Prefill, ReplicaRole::Decode])
            .with_tuning(batch(8)),
        )
        .unwrap()
        .run(&w);
        assert_eq!(
            report.roles,
            vec![ReplicaRole::Prefill, ReplicaRole::Decode]
        );
        assert_eq!(report.requests(), 24, "requests lost or duplicated");
        assert_eq!(report.routing_decisions, 24);
        assert_eq!(
            report.migration.migrations, 24,
            "every request migrates once"
        );
        assert!(report.migration.bytes > 0.0);
        assert!(report.migration.energy.value() > 0.0);
        let latency = report.migration.latency.expect("migrations were priced");
        assert!(latency.p50.value() > 0.0);
        // The prefill replica records nothing (its requests complete on
        // the decode side) but did all the prefill work; the decode
        // replica records everything and paid no prefill.
        let prefill = &report.replicas[0];
        let decode = &report.replicas[1];
        assert!(prefill.records.is_empty());
        assert!(prefill.prefill_time.value() > 0.0);
        assert_eq!(decode.records.len(), 24);
        assert_eq!(decode.prefill_time.value(), 0.0);
        assert!(decode.tokens > 0);
        for r in decode.records.iter() {
            assert!(r.arrival.value() <= r.admitted.value());
            assert!(r.admitted.value() < r.first_token.value());
            assert!(r.first_token.value() <= r.finished.value());
            assert!(r.output_tokens > 0);
        }
        // No request id appears twice anywhere in the fleet.
        let mut ids: Vec<u64> = report.records().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 24);
    }

    /// Free-priced migration still migrates (counts increment) but
    /// moves zero bytes in zero time — and finishes no later than the
    /// fabric-priced fleet.
    #[test]
    fn free_migration_is_counted_but_unpriced() {
        let w = workload(6.0, 16);
        let spec = |pricing| {
            ClusterSpec::new(
                DesignKind::PimOnlyPapi,
                ModelPreset::Llama65B.config(),
                1,
                2,
            )
            .with_roles(vec![ReplicaRole::Prefill, ReplicaRole::Decode])
            .with_migration_pricing(pricing)
            .with_tuning(batch(8))
        };
        let free = ClusterEngine::new(spec(papi_interconnect::MigrationPricing::Free))
            .unwrap()
            .run(&w);
        let priced = ClusterEngine::new(spec(papi_interconnect::MigrationPricing::Fabric))
            .unwrap()
            .run(&w);
        assert_eq!(free.migration.migrations, 16);
        assert_eq!(free.migration.bytes, 0.0);
        assert_eq!(free.migration.latency.unwrap().max.value(), 0.0);
        assert_eq!(free.migration.pricing, "free");
        assert!(priced.migration.bytes > 0.0);
        assert!(
            free.makespan().value() <= priced.makespan().value() + 1e-12,
            "free migration cannot be slower: {} vs {}",
            free.makespan(),
            priced.makespan()
        );
    }

    /// Mixed fleets work too: a colocated replica both takes arrivals
    /// and absorbs migrations from the prefill replica.
    #[test]
    fn colocated_replica_absorbs_migrations_in_a_mixed_fleet() {
        let w = workload(8.0, 24);
        let report = ClusterEngine::new(
            ClusterSpec::new(
                DesignKind::PimOnlyPapi,
                ModelPreset::Llama65B.config(),
                1,
                2,
            )
            .with_roles(vec![ReplicaRole::Prefill, ReplicaRole::Colocated])
            .with_tuning(batch(8)),
        )
        .unwrap()
        .run(&w);
        assert_eq!(report.requests(), 24);
        // Everything the prefill replica admitted arrived by migration;
        // the colocated replica recorded the whole episode.
        assert_eq!(report.replicas[1].records.len(), 24);
        assert!(report.migration.migrations > 0);
    }

    /// Heterogeneous role designs: the prefill pool can run different
    /// hardware than the decode pool, visible per replica.
    #[test]
    fn role_designs_build_heterogeneous_replicas() {
        let engine = ClusterEngine::new(
            ClusterSpec::new(
                DesignKind::PimOnlyPapi,
                ModelPreset::Llama65B.config(),
                1,
                3,
            )
            .with_roles(vec![
                ReplicaRole::Prefill,
                ReplicaRole::Decode,
                ReplicaRole::Decode,
            ])
            .with_prefill_design(DesignKind::A100AttAcc),
        )
        .unwrap();
        let designs: Vec<_> = engine
            .replica_configs()
            .map(|config| config.design)
            .collect();
        assert_eq!(
            designs,
            vec![
                DesignKind::A100AttAcc,
                DesignKind::PimOnlyPapi,
                DesignKind::PimOnlyPapi,
            ]
        );
    }

    /// Malformed role vectors are rejected at construction.
    #[test]
    fn degenerate_role_fleets_rejected() {
        let model = ModelPreset::Llama65B.config();
        let base = |roles| {
            ClusterSpec::new(DesignKind::PimOnlyPapi, model.clone(), 1, 2).with_roles(roles)
        };
        // Length mismatch.
        assert!(ClusterEngine::new(base(vec![ReplicaRole::Prefill])).is_err());
        // Nowhere to decode.
        assert!(
            ClusterEngine::new(base(vec![ReplicaRole::Prefill, ReplicaRole::Prefill])).is_err()
        );
        // Nowhere to admit arrivals.
        assert!(ClusterEngine::new(base(vec![ReplicaRole::Decode, ReplicaRole::Decode])).is_err());
        // A valid split passes.
        assert!(ClusterEngine::new(base(vec![ReplicaRole::Prefill, ReplicaRole::Decode])).is_ok());
    }

    /// The deprecated per-knob shims still forward into the shared
    /// tuning, so pre-`SessionTuning` call sites behave identically.
    #[test]
    #[allow(deprecated)]
    fn deprecated_knob_shims_forward_to_tuning() {
        let model = ModelPreset::Llama65B.config();
        let spec = ClusterSpec::new(DesignKind::PimOnlyPapi, model, 1, 2)
            .with_max_batch(12)
            .with_kv_block_size(16)
            .with_prefix_sharing(true)
            .with_prefill_chunk(256);
        assert_eq!(
            spec.tuning,
            SessionTuning::default()
                .with_max_batch(12)
                .with_kv_block_size(16)
                .with_prefix_sharing(true)
                .with_prefill_chunk(256)
        );
    }

    /// A multi-turn long-context workload that thrashes each replica's
    /// hot pool (the `tiered_kv.rs` scenario scaled to a 2-replica
    /// fleet: double the rate so each replica sees the single-engine
    /// pressure).
    fn shared_tier_workload() -> ServingWorkload {
        ServingWorkload::poisson(
            ConversationDataset::multi_turn(DatasetKind::LongContext, 4096, 3),
            4.0,
            153,
        )
        .with_seed(23)
    }

    fn shared_tier_spec(shared: SharedTierSpec) -> ClusterSpec {
        ClusterSpec::new(
            DesignKind::PimOnlyPapi,
            ModelPreset::Gpt3_175B.config(),
            1,
            2,
        )
        .with_routing(PolicySpec::RoundRobin)
        .with_tuning(
            SessionTuning::default()
                .with_max_batch(16)
                .with_kv_block_size(16)
                .with_prefix_sharing(true)
                .with_kv_tier(crate::KvTierSpec::new(60_000)),
        )
        .with_shared_tier(shared)
    }

    /// The shared tier registers spilled records, so enabling it
    /// without a private capacity tier is a configuration error.
    #[test]
    fn shared_tier_requires_a_private_tier() {
        let spec = ClusterSpec::new(
            DesignKind::PimOnlyPapi,
            ModelPreset::Llama65B.config(),
            1,
            2,
        )
        .with_shared_tier(SharedTierSpec::new());
        let err = ClusterEngine::new(spec).unwrap_err();
        assert!(err.to_string().contains("kv_tier"), "{err}");
    }

    /// Round-robin scatters a conversation's turns across replicas, so
    /// a pressured fleet publishes spilled prefixes into the directory
    /// and re-materializes them across the fabric — with the wire
    /// traffic priced and attributed.
    #[test]
    fn shared_tier_publishes_and_fetches_across_replicas() {
        let report = ClusterEngine::new(shared_tier_spec(SharedTierSpec::new()))
            .unwrap()
            .run(&shared_tier_workload());
        let tier = report.global_tier.as_ref().expect("shared tier was on");
        assert!(tier.publishes > 0, "no prefixes registered: {tier:?}");
        assert!(tier.entries > 0);
        assert!(tier.resident_tokens > 0);
        assert!(tier.fetches > 0, "no cross-replica fetches: {tier:?}");
        assert!(tier.fetched_tokens > 0);
        assert!(tier.bytes > 0.0, "fetches must move priced bytes");
        assert!(tier.energy.value() > 0.0);
        let latency = tier.latency.as_ref().expect("fetches were priced");
        assert!(latency.p50.value() > 0.0);
        assert_eq!(tier.pricing, "InfiniBand-NDR", "defaults to inter-node");
        // The per-replica reports carry the same traffic: fleet
        // attribution is a sum, not a second charge.
        let remote_fetches: u64 = report.replicas.iter().map(|r| r.kv.remote_fetches).sum();
        let remote_tokens: u64 = report
            .replicas
            .iter()
            .map(|r| r.kv.remote_fetched_tokens)
            .sum();
        assert_eq!(remote_fetches, tier.fetches);
        assert_eq!(remote_tokens, tier.fetched_tokens);
    }

    /// The `TierPricing::Free` ablation: fetches still count (the
    /// sharing happens) but cross the fabric for free — zero bytes,
    /// zero wire time, zero energy.
    #[test]
    fn free_shared_tier_is_counted_but_unpriced() {
        let report = ClusterEngine::new(shared_tier_spec(
            SharedTierSpec::new().with_pricing(TierPricing::Free),
        ))
        .unwrap()
        .run(&shared_tier_workload());
        let tier = report.global_tier.as_ref().expect("shared tier was on");
        assert_eq!(tier.pricing, "free");
        assert!(tier.fetches > 0, "ablation must still share: {tier:?}");
        assert_eq!(tier.bytes, 0.0);
        assert_eq!(tier.energy, Energy::ZERO);
        assert_eq!(tier.latency.as_ref().unwrap().max.value(), 0.0);
    }
}
