//! The online, event-driven serving engine.
//!
//! Where [`DecodingSimulator`](crate::engine::DecodingSimulator) prices
//! a pre-generated closed-batch trace, the [`ServingEngine`] runs the
//! regime the paper actually targets (§3.2, §5.2): requests arrive at
//! unknown times, join a queue, are admitted into the running batch by
//! continuous batching under KV-capacity pressure, prefill interleaves
//! with decode, and the online [`FcScheduler`](papi_sched::FcScheduler)
//! re-decides the FC placement *every iteration* from the parallelism
//! it observes right then. Simulated wall-clock time advances by the
//! priced cost of each step — through the same
//! [`IterationPricer`](crate::pricer::IterationPricer) the batch path
//! uses, so the two paths can never drift apart on hardware math.
//!
//! The output is a [`ServingReport`]: per-request lifecycle records
//! (queueing delay, TTFT, TPOT, end-to-end) with percentile summaries
//! and SLO goodput — the metrics a closed batch cannot express at all.

use crate::config::SystemConfig;
use crate::metrics::{PhaseBreakdown, RequestRecord, ServingReport};
use crate::prefill::{prefill_cost_for, PromptStats};
use crate::pricer::IterationPricer;
use papi_types::{Energy, Time};
use papi_workload::{IterationRecord, RequestState, ServingRequest, ServingWorkload};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;

/// Default cap on the running batch (the scheduler window).
pub const DEFAULT_MAX_BATCH: u64 = 64;
/// Default fraction of the Attn-PIM pool admission may plan into; the
/// remainder absorbs KV growth between admission and completion.
pub const DEFAULT_KV_HEADROOM: f64 = 0.85;

/// Online continuous-batching simulator over one [`SystemConfig`].
#[derive(Debug, Clone)]
pub struct ServingEngine {
    config: SystemConfig,
    max_batch: u64,
    kv_headroom: f64,
    max_iterations: u64,
}

impl ServingEngine {
    /// Wraps a system configuration with default serving parameters.
    pub fn new(config: SystemConfig) -> Self {
        Self {
            config,
            max_batch: DEFAULT_MAX_BATCH,
            kv_headroom: DEFAULT_KV_HEADROOM,
            max_iterations: 10_000_000,
        }
    }

    /// The wrapped configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Caps the running batch (RLP never exceeds this).
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero.
    #[track_caller]
    pub fn with_max_batch(mut self, max_batch: u64) -> Self {
        assert!(max_batch > 0, "max_batch must be positive");
        self.max_batch = max_batch;
        self
    }

    /// Sets the admission-planning fraction of the KV pool.
    ///
    /// # Panics
    ///
    /// Panics if `headroom` is outside `(0, 1]`.
    #[track_caller]
    pub fn with_kv_headroom(mut self, headroom: f64) -> Self {
        assert!(
            headroom > 0.0 && headroom <= 1.0,
            "kv headroom must be in (0, 1], got {headroom}"
        );
        self.kv_headroom = headroom;
        self
    }

    /// Safety valve against runaway episodes (default: 10 M iterations).
    pub fn with_max_iterations(mut self, max_iterations: u64) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Serves one episode to completion.
    ///
    /// # Panics
    ///
    /// Panics if the model does not fit the design's weight pool, if a
    /// single request's KV cache cannot fit the attention pool, or if
    /// the episode exceeds the iteration safety valve.
    pub fn run(&self, workload: &ServingWorkload) -> ServingReport {
        if let Err(msg) = self.config.validate_capacity(0.0) {
            panic!("{msg}");
        }
        let kv_bytes_per_token = self.config.model.kv_bytes_per_token().value();
        let (attn_device, attn_count) = &self.config.attn_pim;
        let pool_bytes = attn_device.capacity().value() * *attn_count as f64;
        let admit_budget_tokens = (pool_bytes * self.kv_headroom / kv_bytes_per_token) as u64;
        let hard_budget_tokens = (pool_bytes / kv_bytes_per_token) as u64;

        let mut requests = workload.requests();
        let n = requests.len();
        let mut admitted_s: Vec<Option<f64>> = vec![None; n];
        let mut first_token_s: Vec<Option<f64>> = vec![None; n];

        let mut scheduler = self.config.scheduler.build();
        let mut pricer = IterationPricer::new(&self.config);
        let mut rng = StdRng::seed_from_u64(workload.seed.wrapping_mul(0x5851_f42d_4c95_7f2d));

        let mut clock = 0.0f64;
        let mut next_arrival = 0usize; // index into arrival-sorted `requests`
        let mut queue: VecDeque<usize> = VecDeque::new();
        let mut live: Vec<usize> = Vec::new();

        let mut phases = PhaseBreakdown::default();
        let mut energy = Energy::ZERO;
        let mut prefill_time = Time::ZERO;
        let mut placements = Vec::new();
        let mut rlp_series = Vec::new();
        let mut records = Vec::with_capacity(n);
        let mut iterations = 0u64;
        let mut tokens = 0u64;
        let mut preemptions = 0u64;
        let mut peak_rlp = 0u64;
        let mut peak_kv_tokens = 0u64;

        while records.len() < n {
            // --- ingest arrivals up to the current clock ---
            while next_arrival < n && requests[next_arrival].arrival_s <= clock {
                queue.push_back(next_arrival);
                next_arrival += 1;
            }
            // Idle system: jump to the next arrival.
            if live.is_empty() && queue.is_empty() {
                let upcoming = requests[next_arrival].arrival_s;
                clock = clock.max(upcoming);
                continue;
            }

            // --- continuous-batching admission under KV pressure ---
            let mut kv_tokens: u64 = live.iter().map(|&i| requests[i].kv_len()).sum();
            let mut wave = PromptStats::default();
            while (live.len() as u64) < self.max_batch {
                let Some(&candidate) = queue.front() else {
                    break;
                };
                let prefill_len = requests[candidate].prefill_len();
                assert!(
                    prefill_len + requests[candidate].remaining() <= hard_budget_tokens,
                    "{}: request {} alone ({} KV tokens) exceeds the attention pool",
                    self.config.design,
                    requests[candidate].request.id,
                    prefill_len + requests[candidate].remaining(),
                );
                if kv_tokens + prefill_len > admit_budget_tokens && !live.is_empty() {
                    break;
                }
                queue.pop_front();
                wave.add_prompt(prefill_len);
                kv_tokens += prefill_len;
                requests[candidate].state = RequestState::Prefilling;
                admitted_s[candidate].get_or_insert(clock);
                live.push(candidate);
            }

            // --- price the admission wave's prefill (interleaved with
            //     decode: each wave runs between decode iterations) ---
            if wave.tokens > 0 {
                let cost = prefill_cost_for(&self.config, wave);
                clock += cost.time.value();
                prefill_time += cost.time;
                energy += cost.energy;
                for &i in &live {
                    if requests[i].state == RequestState::Prefilling {
                        requests[i].state = RequestState::Decoding;
                    }
                }
            }

            // --- KV-pressure preemption: if this iteration's worst-case
            //     growth would overflow the physical pool, push the
            //     newest requests back to the queue (recompute-style).
            //     TLP is re-derived each round: an adaptive policy
            //     *raises* speculation as the batch shrinks, so the
            //     growth bound must track the post-preemption batch. ---
            loop {
                let tlp = workload
                    .tlp_policy
                    .length_at(live.len() as u64, workload.speculation.length);
                if live.len() <= 1 || kv_tokens + live.len() as u64 * tlp <= hard_budget_tokens {
                    break;
                }
                let victim = live.pop().expect("live is non-empty");
                kv_tokens -= requests[victim].kv_len();
                requests[victim].state = RequestState::Queued;
                requests[victim].preemptions += 1;
                preemptions += 1;
                queue.push_front(victim);
            }

            // --- one decoding iteration ---
            let rlp = live.len() as u64;
            let tlp = workload
                .tlp_policy
                .length_at(rlp, workload.speculation.length);
            let total_kv_len: u64 = live.iter().map(|&i| requests[i].kv_len()).sum();
            let max_kv_len = live
                .iter()
                .map(|&i| requests[i].kv_len())
                .max()
                .unwrap_or(1);
            peak_rlp = peak_rlp.max(rlp);

            let placement = scheduler.decide(rlp, tlp);

            let mut new_tokens = 0u64;
            let mut finished = 0u64;
            let mut finishers: Vec<usize> = Vec::new();
            let mut first_timers: Vec<usize> = Vec::new();
            for &i in &live {
                let banked = workload
                    .speculation
                    .acceptance
                    .sample(tlp, &mut rng)
                    .min(requests[i].remaining());
                if requests[i].generated == 0 && banked > 0 {
                    first_timers.push(i);
                }
                requests[i].generated += banked;
                new_tokens += banked;
                if requests[i].remaining() == 0 {
                    finished += 1;
                    finishers.push(i);
                }
            }

            let record = IterationRecord {
                rlp,
                tlp,
                total_kv_len,
                max_kv_len,
                new_tokens,
                finished,
            };
            let cost = pricer.price_iteration(placement, &record);
            clock += cost.total_time().value();
            phases.fc += cost.fc_time;
            phases.attention += cost.attn_time;
            phases.communication += cost.comm_time;
            phases.other += cost.other_time;
            energy += cost.total_energy();
            placements.push(placement);
            rlp_series.push(rlp);
            tokens += new_tokens;
            // The resident footprint peaks at iteration end, once this
            // iteration's banked tokens have landed in the cache.
            peak_kv_tokens = peak_kv_tokens.max(total_kv_len + new_tokens);

            // Tokens become visible when the iteration completes.
            for &i in &first_timers {
                first_token_s[i] = Some(clock);
            }
            for &i in &finishers {
                requests[i].state = RequestState::Finished;
                records.push(self.record_for(
                    &requests[i],
                    admitted_s[i].expect("finished request was admitted"),
                    first_token_s[i].expect("finished request emitted tokens"),
                    clock,
                ));
            }
            live.retain(|i| !finishers.contains(i));

            iterations += 1;
            assert!(
                iterations <= self.max_iterations,
                "serving episode exceeded {} iterations — runaway workload?",
                self.max_iterations
            );
        }

        // Makespan runs from the first arrival to the last completion —
        // leading idle before the episode's first request is not time
        // the system spent serving.
        let episode_start = requests.first().map_or(0.0, |r| r.arrival_s);
        ServingReport {
            design: self.config.design.label().to_owned(),
            model: self.config.model.name.clone(),
            iterations,
            tokens,
            makespan: Time::new((clock - episode_start).max(0.0)),
            phases,
            prefill_time,
            energy,
            scheduler: scheduler.stats(),
            placements,
            rlp_series,
            records,
            preemptions,
            peak_rlp,
            peak_kv_tokens,
        }
    }

    fn record_for(
        &self,
        request: &ServingRequest,
        admitted: f64,
        first_token: f64,
        finished: f64,
    ) -> RequestRecord {
        RequestRecord {
            id: request.request.id,
            arrival: Time::new(request.arrival_s),
            admitted: Time::new(admitted),
            first_token: Time::new(first_token),
            finished: Time::new(finished),
            prompt_tokens: request.request.input_len,
            output_tokens: request.generated,
            preemptions: request.preemptions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use papi_llm::ModelPreset;
    use papi_workload::{ArrivalProcess, DatasetKind};

    fn small_workload(rate: f64, n: usize) -> ServingWorkload {
        ServingWorkload::poisson(DatasetKind::GeneralQa, rate, n).with_seed(11)
    }

    #[test]
    fn every_request_completes_with_ordered_timestamps() {
        let engine = ServingEngine::new(SystemConfig::a100_attacc(ModelPreset::Llama65B.config()))
            .with_max_batch(16);
        let workload = small_workload(4.0, 48);
        let report = engine.run(&workload);
        assert_eq!(report.records.len(), 48);
        for r in &report.records {
            assert!(r.arrival.value() <= r.admitted.value());
            assert!(r.admitted.value() < r.first_token.value());
            assert!(r.first_token.value() <= r.finished.value());
            assert!(r.output_tokens > 0);
            assert!(r.ttft().value() <= r.e2e().value());
        }
        assert!(report.peak_rlp <= 16);
        assert_eq!(report.iterations, report.placements.len() as u64);
        assert_eq!(report.iterations, report.rlp_series.len() as u64);
    }

    #[test]
    fn serving_is_deterministic() {
        let engine =
            ServingEngine::new(SystemConfig::pim_only_papi(ModelPreset::Llama65B.config()))
                .with_max_batch(8);
        let workload = small_workload(2.0, 24);
        let a = engine.run(&workload);
        let b = engine.run(&workload);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.energy, b.energy);
        assert_eq!(a.placements, b.placements);
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn light_load_has_short_queues_heavy_load_long() {
        let engine = ServingEngine::new(SystemConfig::a100_attacc(ModelPreset::Llama65B.config()))
            .with_max_batch(8);
        let light = engine.run(&small_workload(0.2, 32));
        let heavy = engine.run(&small_workload(50.0, 32));
        let q_light = light.queueing_summary().unwrap().p99;
        let q_heavy = heavy.queueing_summary().unwrap().p99;
        assert!(
            q_heavy.value() > 5.0 * q_light.value().max(1e-9),
            "p99 queueing: light {q_light} vs heavy {q_heavy}"
        );
    }

    #[test]
    fn papi_reschedules_under_decaying_load() {
        // Arrivals stop while the batch is still above α; the live RLP
        // then decays like a closed batch and the online scheduler must
        // migrate FC from the PU to FC-PIM at least once.
        let engine = ServingEngine::new(SystemConfig::papi(ModelPreset::Llama65B.config()))
            .with_max_batch(64);
        let workload =
            ServingWorkload::new(DatasetKind::CreativeWriting, ArrivalProcess::Immediate, 64)
                .with_seed(9);
        let report = engine.run(&workload);
        assert!(report.scheduler.switches >= 1, "no rescheduling happened");
        assert!(report.scheduler.pu_decisions > 0);
        assert!(report.scheduler.fc_pim_decisions > 0);
        assert_eq!(*report.rlp_series.first().unwrap(), 64);
        assert_eq!(*report.rlp_series.last().unwrap(), 1);
    }

    #[test]
    fn continuous_refill_holds_rlp_at_cap_while_queue_lasts() {
        let engine =
            ServingEngine::new(SystemConfig::pim_only_papi(ModelPreset::Llama65B.config()))
                .with_max_batch(8);
        let workload = ServingWorkload::new(DatasetKind::GeneralQa, ArrivalProcess::Immediate, 40)
            .with_seed(5);
        let report = engine.run(&workload);
        let early = &report.rlp_series[..report.rlp_series.len() / 4];
        assert!(early.iter().all(|&r| r == 8), "early RLP should hold at 8");
        assert_eq!(report.peak_rlp, 8);
    }

    #[test]
    fn kv_pressure_limits_admission() {
        // A tiny KV headroom forces admission to stop well below the
        // batch cap; the engine must still finish every request.
        let engine =
            ServingEngine::new(SystemConfig::pim_only_papi(ModelPreset::Gpt3_175B.config()))
                .with_max_batch(64)
                .with_kv_headroom(0.002);
        let workload =
            ServingWorkload::new(DatasetKind::CreativeWriting, ArrivalProcess::Immediate, 32)
                .with_seed(3);
        let report = engine.run(&workload);
        assert_eq!(report.records.len(), 32);
        assert!(
            report.peak_rlp < 64,
            "KV pressure should cap RLP below the batch cap, got {}",
            report.peak_rlp
        );
        // Admission plans within the headroom budget (in-flight growth
        // may exceed it, never the physical pool); a roomy headroom on
        // the same workload must therefore reach a much larger peak.
        let model = ModelPreset::Gpt3_175B.config();
        let pool_tokens = 60.0 * 16e9 / model.kv_bytes_per_token().value();
        assert!(
            (report.peak_kv_tokens as f64) <= pool_tokens,
            "peak KV {} tokens overflowed the {}-token pool",
            report.peak_kv_tokens,
            pool_tokens
        );
        let roomy =
            ServingEngine::new(SystemConfig::pim_only_papi(ModelPreset::Gpt3_175B.config()))
                .with_max_batch(64)
                .run(&workload);
        assert!(
            report.peak_kv_tokens * 2 < roomy.peak_kv_tokens,
            "tight headroom peak {} should sit far below the roomy peak {}",
            report.peak_kv_tokens,
            roomy.peak_kv_tokens
        );
    }

    #[test]
    fn adaptive_tlp_growth_never_overflows_the_pool() {
        // The preemption guard must re-derive TLP as it evicts: an
        // adaptive policy raises speculation while the batch shrinks,
        // so a stale bound would let KV growth overshoot the pool.
        let engine =
            ServingEngine::new(SystemConfig::pim_only_papi(ModelPreset::Gpt3_175B.config()))
                .with_max_batch(32)
                .with_kv_headroom(0.002);
        let workload =
            ServingWorkload::new(DatasetKind::CreativeWriting, ArrivalProcess::Immediate, 32)
                .with_seed(3)
                .with_adaptive_tlp(64, 8);
        let report = engine.run(&workload);
        assert_eq!(report.records.len(), 32);
        let model = ModelPreset::Gpt3_175B.config();
        let pool_tokens = 60.0 * 16e9 / model.kv_bytes_per_token().value();
        assert!((report.peak_kv_tokens as f64) <= pool_tokens);
    }

    #[test]
    fn makespan_excludes_leading_idle() {
        // Two identical single-request episodes, one arriving at t = 0
        // and one arriving 100 s in: the service time (and therefore
        // the makespan) must match — the idle century doesn't count.
        let engine =
            ServingEngine::new(SystemConfig::pim_only_papi(ModelPreset::Llama65B.config()));
        let at_zero =
            ServingWorkload::new(DatasetKind::GeneralQa, ArrivalProcess::Immediate, 1).with_seed(2);
        let delayed = ServingWorkload::new(
            DatasetKind::GeneralQa,
            ArrivalProcess::Trace(vec![100.0]),
            1,
        )
        .with_seed(2);
        let a = engine.run(&at_zero);
        let b = engine.run(&delayed);
        assert!(
            (a.makespan.value() - b.makespan.value()).abs() < 1e-9,
            "makespan {} vs delayed {}",
            a.makespan,
            b.makespan
        );
        assert!(b.records[0].arrival.value() == 100.0);
        assert!(b.tokens_per_second() > 0.0);
    }
}
