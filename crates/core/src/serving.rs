//! The online, event-driven serving engine.
//!
//! Where [`DecodingSimulator`](crate::engine::DecodingSimulator) prices
//! a pre-generated closed-batch trace, the [`ServingEngine`] runs the
//! regime the paper actually targets (§3.2, §5.2): requests arrive at
//! unknown times, join a queue, are admitted into the running batch by
//! continuous batching under KV-capacity pressure, prefill interleaves
//! with decode, and the online [`FcScheduler`] re-decides the FC
//! placement *every iteration* from the parallelism it observes right
//! then. Simulated wall-clock time advances by the priced cost of each
//! step — through the same [`IterationPricer`] the batch path uses, so
//! the two paths can never drift apart on hardware math.
//!
//! KV capacity is managed by the paged subsystem in `papi-kv`: every
//! live request holds a [`KvSeq`] of refcounted blocks in a
//! [`KvBlockPool`], admission and preemption are block-granular, and
//! three opt-in extensions ride on the paging:
//!
//! - **prefix sharing** ([`ServingEngine::with_prefix_sharing`]):
//!   requests carrying a [`PrefixHint`] fork
//!   cached full blocks of earlier contexts (shared system prompts,
//!   conversation history) instead of re-prefilling them — saving both
//!   prefill work and physical capacity;
//! - **chunked prefill** ([`ServingEngine::with_prefill_chunk`]):
//!   prompts are prefilled in bounded-token chunks interleaved with
//!   decode iterations (shortest-remaining-first), so one giant prompt
//!   can no longer stall the whole batch for a monolithic wave;
//! - **block sizing** ([`ServingEngine::with_kv_block_size`]): the
//!   paging granularity. Block size 1 with sharing and chunking off is
//!   the scalar configuration — it reproduces the pre-paging engine's
//!   `ServingReport` bit for bit (pinned by `tests/paged_equality.rs`).
//!
//! The output is a [`ServingReport`]: per-request lifecycle records
//! (queueing delay, TTFT, TPOT, end-to-end) with percentile summaries,
//! SLO goodput, and the cache counters in [`KvCacheStats`].

use crate::admission::{AdmissionCandidate, AdmissionPolicy, AdmissionSpec, AdmissionView};
use crate::config::SystemConfig;
use crate::metrics::{PhaseBreakdown, RequestRecord, ServingReport};
use crate::prefill::{prefill_cost_for, PromptStats};
use crate::pricer::{IterationPricer, SharedIterationCache};
use papi_interconnect::{TierCost, TierPricing};
use papi_kv::{
    FetchCandidate, FetchPolicy, FetchSpec, GlobalKvTier, KvBlockPool, KvCacheStats, KvPoolStats,
    KvSeq, KvSeqExport, KvTier, PrefixHint, PrefixTree, SpillCandidate, SpillPolicy, SpillSpec,
};
use papi_sched::{FcScheduler, Placement};
use papi_types::{Bytes, Energy, Time};
use papi_workload::{
    IterationRecord, ReplicaSnapshot, RequestState, ServingRequest, ServingWorkload,
    SpeculativeConfig, TlpPolicy,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::Arc;

/// Default cap on the running batch (the scheduler window).
pub const DEFAULT_MAX_BATCH: u64 = 64;
/// Default fraction of the Attn-PIM pool admission may plan into; the
/// remainder absorbs KV growth between admission and completion.
pub const DEFAULT_KV_HEADROOM: f64 = 0.85;

/// The session knobs every serving surface shares — one struct consumed
/// by [`ServingEngine`] directly and by
/// [`ClusterSpec`](crate::cluster::ClusterSpec) for each replica, so
/// the knob set can never drift between the single-node and fleet
/// layers. The default is the scalar configuration: block size 1, no
/// prefix sharing, monolithic prefill, block-granular admission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionTuning {
    /// Cap on the running batch (RLP never exceeds this).
    pub max_batch: u64,
    /// Fraction of the Attn-PIM pool admission may plan into.
    pub kv_headroom: f64,
    /// KV paging granularity in tokens per block (1 = exact scalar
    /// token accounting).
    pub kv_block_size: u64,
    /// Whether copy-on-write prefix sharing is on.
    pub prefix_sharing: bool,
    /// Per-step chunked-prefill token budget (`None` prices each
    /// admission wave monolithically).
    pub prefill_chunk: Option<u64>,
    /// Which built-in admission policy arbitrates batch entry and
    /// preemption.
    pub admission: AdmissionSpec,
    /// KV capacity tier below the attention pool (`None` — the default
    /// — keeps plain eviction). Requires `prefix_sharing`.
    pub kv_tier: Option<KvTierSpec>,
}

impl Default for SessionTuning {
    fn default() -> Self {
        Self {
            max_batch: DEFAULT_MAX_BATCH,
            kv_headroom: DEFAULT_KV_HEADROOM,
            kv_block_size: 1,
            prefix_sharing: false,
            prefill_chunk: None,
            admission: AdmissionSpec::BlockGranular,
            kv_tier: None,
        }
    }
}

/// Declarative configuration of the KV capacity tier: the host-DRAM /
/// DIMM-PIM pool cold prefixes spill into instead of being evicted
/// outright (L3's DIMM tier, PIM-AI's DIMM devices), and are fetched
/// back from — at a priced transfer — when a request re-lands on them.
///
/// The tier shares the hot pool's block size so budgets compare
/// directly; its traffic is shaped by the [`SpillSpec`]/[`FetchSpec`]
/// policy seams and priced by [`TierPricing`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KvTierSpec {
    /// The tier's block budget (same block size as the hot pool).
    pub budget_blocks: u64,
    /// Which evicted prefixes are worth keeping.
    pub spill: SpillSpec,
    /// Which re-landed prefixes are worth the fetch transfer.
    pub fetch: FetchSpec,
    /// What crossing the tier boundary costs.
    pub pricing: TierPricing,
}

impl KvTierSpec {
    /// A tier of `budget_blocks` blocks with the default policies
    /// (spill everything, fetch everything) over the default
    /// host-DIMM pricing.
    ///
    /// # Panics
    ///
    /// Panics if `budget_blocks` is zero.
    #[track_caller]
    pub fn new(budget_blocks: u64) -> Self {
        assert!(budget_blocks > 0, "tier budget must be positive");
        Self {
            budget_blocks,
            spill: SpillSpec::default(),
            fetch: FetchSpec::default(),
            pricing: TierPricing::default(),
        }
    }

    /// Selects a built-in spill policy.
    pub fn with_spill(mut self, spill: SpillSpec) -> Self {
        self.spill = spill;
        self
    }

    /// Selects a built-in fetch policy.
    pub fn with_fetch(mut self, fetch: FetchSpec) -> Self {
        self.fetch = fetch;
        self
    }

    /// Selects the tier-boundary pricing.
    pub fn with_pricing(mut self, pricing: TierPricing) -> Self {
        self.pricing = pricing;
        self
    }

    /// Range-checks a spec that arrived through serde.
    ///
    /// # Panics
    ///
    /// Panics if `budget_blocks` is zero.
    #[track_caller]
    pub fn validate(&self) {
        assert!(self.budget_blocks > 0, "tier budget must be positive");
    }
}

impl SessionTuning {
    /// The default scalar configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the running batch.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero.
    #[track_caller]
    pub fn with_max_batch(mut self, max_batch: u64) -> Self {
        assert!(max_batch > 0, "max_batch must be positive");
        self.max_batch = max_batch;
        self
    }

    /// Sets the admission-planning fraction of the KV pool.
    ///
    /// # Panics
    ///
    /// Panics if `headroom` is outside `(0, 1]`.
    #[track_caller]
    pub fn with_kv_headroom(mut self, headroom: f64) -> Self {
        assert!(
            headroom > 0.0 && headroom <= 1.0,
            "kv headroom must be in (0, 1], got {headroom}"
        );
        self.kv_headroom = headroom;
        self
    }

    /// Sets the KV paging granularity in tokens per block.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    #[track_caller]
    pub fn with_kv_block_size(mut self, block_size: u64) -> Self {
        assert!(block_size > 0, "kv block size must be positive");
        self.kv_block_size = block_size;
        self
    }

    /// Enables copy-on-write prefix sharing.
    pub fn with_prefix_sharing(mut self, enabled: bool) -> Self {
        self.prefix_sharing = enabled;
        self
    }

    /// Enables chunked prefill with a per-step token budget.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_tokens` is zero.
    #[track_caller]
    pub fn with_prefill_chunk(mut self, chunk_tokens: u64) -> Self {
        assert!(chunk_tokens > 0, "prefill chunk must be positive");
        self.prefill_chunk = Some(chunk_tokens);
        self
    }

    /// Selects a built-in admission policy.
    pub fn with_admission(mut self, admission: AdmissionSpec) -> Self {
        self.admission = admission;
        self
    }

    /// Configures the KV capacity tier (spill-to-host offload instead
    /// of eviction). The tier rides the prefix cache, so
    /// `prefix_sharing` must also be on by the time the tuning is
    /// validated.
    pub fn with_kv_tier(mut self, tier: KvTierSpec) -> Self {
        self.kv_tier = Some(tier);
        self
    }

    /// Re-checks every range invariant the builders enforce — the
    /// guard for tunings that arrived through serde (which bypasses
    /// the builder asserts) rather than the `with_*` methods.
    /// [`ServingEngine::with_tuning`] calls this, so an out-of-range
    /// deserialized config fails immediately with a named message
    /// instead of wedging an episode later.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch`, `kv_block_size`, or `prefill_chunk` is
    /// zero, or `kv_headroom` is outside `(0, 1]`.
    #[track_caller]
    pub fn validate(&self) {
        assert!(self.max_batch > 0, "max_batch must be positive");
        assert!(
            self.kv_headroom > 0.0 && self.kv_headroom <= 1.0,
            "kv headroom must be in (0, 1], got {}",
            self.kv_headroom
        );
        assert!(self.kv_block_size > 0, "kv block size must be positive");
        if let Some(chunk) = self.prefill_chunk {
            assert!(chunk > 0, "prefill chunk must be positive");
        }
        if let Some(tier) = &self.kv_tier {
            tier.validate();
            assert!(
                self.prefix_sharing,
                "the KV capacity tier rides the prefix cache: enable prefix_sharing"
            );
        }
    }
}

/// Online continuous-batching simulator over one [`SystemConfig`].
#[derive(Debug, Clone)]
pub struct ServingEngine {
    config: SystemConfig,
    tuning: SessionTuning,
    admission: Arc<dyn AdmissionPolicy>,
    max_iterations: u64,
}

impl ServingEngine {
    /// Wraps a system configuration with default serving parameters
    /// (scalar KV accounting: block size 1, no prefix sharing,
    /// monolithic prefill, block-granular admission).
    pub fn new(config: SystemConfig) -> Self {
        let tuning = SessionTuning::default();
        Self {
            config,
            admission: tuning.admission.build(),
            tuning,
            max_iterations: 10_000_000,
        }
    }

    /// The wrapped configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The session knobs this engine runs with.
    pub fn tuning(&self) -> &SessionTuning {
        &self.tuning
    }

    /// Replaces the whole knob set (and rebuilds the admission policy
    /// from `tuning.admission`, discarding any custom policy installed
    /// via [`with_admission_policy`](Self::with_admission_policy)).
    /// The `with_*` setters below are sugar over this.
    ///
    /// # Panics
    ///
    /// Panics if the tuning fails [`SessionTuning::validate`] (e.g. it
    /// was deserialized with an out-of-range knob).
    #[track_caller]
    pub fn with_tuning(mut self, tuning: SessionTuning) -> Self {
        tuning.validate();
        self.admission = tuning.admission.build();
        self.tuning = tuning;
        self
    }

    /// Caps the running batch (RLP never exceeds this).
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero.
    #[track_caller]
    pub fn with_max_batch(mut self, max_batch: u64) -> Self {
        self.tuning = self.tuning.with_max_batch(max_batch);
        self
    }

    /// Sets the admission-planning fraction of the KV pool.
    ///
    /// # Panics
    ///
    /// Panics if `headroom` is outside `(0, 1]`.
    #[track_caller]
    pub fn with_kv_headroom(mut self, headroom: f64) -> Self {
        self.tuning = self.tuning.with_kv_headroom(headroom);
        self
    }

    /// Sets the KV paging granularity in tokens per block. Larger
    /// blocks cut bookkeeping and enable useful sharing units; block
    /// size 1 is exact scalar token accounting.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    #[track_caller]
    pub fn with_kv_block_size(mut self, block_size: u64) -> Self {
        self.tuning = self.tuning.with_kv_block_size(block_size);
        self
    }

    /// Enables copy-on-write prefix sharing: requests whose
    /// [`PrefixHint`]s name a cached context fork
    /// its full blocks instead of re-prefilling them, and completed
    /// contexts are published back into the cache.
    pub fn with_prefix_sharing(mut self, enabled: bool) -> Self {
        self.tuning = self.tuning.with_prefix_sharing(enabled);
        self
    }

    /// Enables chunked prefill: each step prefills at most
    /// `chunk_tokens` prompt tokens (shortest-remaining-first across
    /// the admitted-but-unprefilled requests), interleaved with decode
    /// iterations, instead of pricing every admission wave as one
    /// monolithic prefill.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_tokens` is zero.
    #[track_caller]
    pub fn with_prefill_chunk(mut self, chunk_tokens: u64) -> Self {
        self.tuning = self.tuning.with_prefill_chunk(chunk_tokens);
        self
    }

    /// Selects a built-in admission policy.
    pub fn with_admission(mut self, admission: AdmissionSpec) -> Self {
        self.tuning.admission = admission;
        self.admission = admission.build();
        self
    }

    /// Configures the KV capacity tier: under pool pressure cold
    /// prefixes *spill* into a host-DRAM/DIMM-PIM pool instead of
    /// being evicted, and are fetched back — at a
    /// [`TierPricing`]-priced transfer whose latency lands in TTFT —
    /// when a later request re-lands on them. Requires
    /// [`with_prefix_sharing`](Self::with_prefix_sharing) (validated
    /// at session open).
    pub fn with_kv_tier(mut self, tier: KvTierSpec) -> Self {
        self.tuning.kv_tier = Some(tier);
        self
    }

    /// Installs a custom [`AdmissionPolicy`] — the open seam the
    /// built-in [`AdmissionSpec`]s are also driven through.
    ///
    /// A custom policy has no [`AdmissionSpec`] name, so
    /// `tuning().admission` keeps reporting the last declarative spec;
    /// [`admission`](Self::admission) is the source of truth for what
    /// actually arbitrates. A later [`with_tuning`](Self::with_tuning)
    /// or [`with_admission`](Self::with_admission) replaces the custom
    /// policy with the spec it names.
    pub fn with_admission_policy(mut self, policy: impl AdmissionPolicy + 'static) -> Self {
        self.admission = Arc::new(policy);
        self
    }

    /// The admission policy arbitrating batch entry and preemption.
    pub fn admission(&self) -> &dyn AdmissionPolicy {
        self.admission.as_ref()
    }

    /// Safety valve against runaway episodes (default: 10 M iterations).
    pub fn with_max_iterations(mut self, max_iterations: u64) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Serves one episode to completion.
    ///
    /// # Panics
    ///
    /// Panics if the model does not fit the design's weight pool, if a
    /// single request's KV cache cannot fit the attention pool, or if
    /// the episode exceeds the iteration safety valve.
    pub fn run(&self, workload: &ServingWorkload) -> ServingReport {
        let mut session = self.open_session(workload);
        for request in workload.requests() {
            session.push(request);
        }
        while session.step() == SessionStatus::Advanced {}
        session.into_report()
    }

    /// Opens an incremental session: the engine's state machine without
    /// any requests ingested. The caller pushes [`ServingRequest`]s (in
    /// arrival order) and drives [`ServingSession::step`] — this is the
    /// seam the cluster layer co-simulates replicas through.
    ///
    /// # Panics
    ///
    /// Panics if the model does not fit the design's weight pool, or if
    /// the attention pool cannot hold even one KV block.
    pub fn open_session(&self, workload: &ServingWorkload) -> ServingSession<'_> {
        self.tuning.validate();
        if let Err(msg) = self.config.validate_capacity(0.0) {
            panic!("{msg}");
        }
        let kv_bytes_per_token = self.config.model.kv_bytes_per_token().value();
        let (attn_device, attn_count) = &self.config.attn_pim;
        let pool_bytes = attn_device.capacity().value() * *attn_count as f64;
        let admit_budget_tokens =
            (pool_bytes * self.tuning.kv_headroom / kv_bytes_per_token) as u64;
        let hard_budget_tokens = (pool_bytes / kv_bytes_per_token) as u64;
        let total_blocks = hard_budget_tokens / self.tuning.kv_block_size;
        assert!(
            total_blocks > 0,
            "{}: the attention pool cannot hold a single {}-token KV block",
            self.config.design,
            self.tuning.kv_block_size
        );
        let pool = KvBlockPool::new(self.tuning.kv_block_size, total_blocks);
        let tier = self.tuning.kv_tier.as_ref().map(|spec| TierState {
            tier: KvTier::new(self.tuning.kv_block_size, spec.budget_blocks),
            spill: spec.spill.build(),
            fetch: spec.fetch.build(),
            pricing: spec.pricing.clone(),
            block_bytes: self.config.model.kv_bytes_per_token() * self.tuning.kv_block_size as f64,
        });
        ServingSession {
            engine: self,
            speculation: workload.speculation,
            tlp_policy: workload.tlp_policy,
            admit_budget_blocks: admit_budget_tokens / self.tuning.kv_block_size,
            prefix_tree: self.tuning.prefix_sharing.then(PrefixTree::new),
            kv_stats: KvCacheStats {
                block_size: self.tuning.kv_block_size,
                total_blocks,
                tier_budget_blocks: tier.as_ref().map_or(0, |t| t.tier.budget_blocks()),
                ..Default::default()
            },
            tier,
            global: None,
            pool,
            scheduler: self.config.scheduler.build(),
            pricer: IterationPricer::new(&self.config),
            rng: StdRng::seed_from_u64(workload.seed.wrapping_mul(0x5851_f42d_4c95_7f2d)),
            requests: Vec::new(),
            seqs: Vec::new(),
            prefilled: Vec::new(),
            available_s: Vec::new(),
            premigrated: Vec::new(),
            admitted_s: Vec::new(),
            first_token_s: Vec::new(),
            export_prefills: false,
            egress: Vec::new(),
            exported: 0,
            kv_tokens: 0,
            prefilling_kv_tokens: 0,
            clock: 0.0,
            next_arrival: 0,
            queue: VecDeque::new(),
            live: Vec::new(),
            scratch_idx: Vec::new(),
            phases: PhaseBreakdown::default(),
            energy: Energy::ZERO,
            prefill_time: Time::ZERO,
            placements: Vec::new(),
            rlp_series: Vec::new(),
            records: Vec::new(),
            iterations: 0,
            tokens: 0,
            preemptions: 0,
            peak_rlp: 0,
            peak_kv_tokens: 0,
        }
    }
}

/// One decode-ready sequence leaving a prefill-role session: the
/// request (prefill complete, nothing generated), the KV export its
/// destination re-materializes, and the timestamps the fleet needs to
/// price and account the handoff.
///
/// Produced by sessions in [prefill-export
/// mode](ServingSession::enable_prefill_export), delivered to a
/// decode-side session via [`ServingSession::push_migrated`]. While in
/// flight the sequence occupies *neither* pool — the source released
/// its blocks at export, and the destination allocates at admission.
#[derive(Debug, Clone)]
pub struct PrefillHandoff {
    /// The request, with its prompt fully prefilled and `generated`
    /// still zero.
    pub request: ServingRequest,
    /// When the source session first admitted it (the queueing-delay
    /// endpoint carried into the final record).
    pub admitted_s: f64,
    /// The detached KV sequence: logical tokens plus the source pool's
    /// block footprint (the priced payload size).
    pub kv: KvSeqExport,
    /// Source-session clock when the export happened (the transfer
    /// departs here).
    pub ready_s: f64,
}

/// What one [`ServingSession::step`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStatus {
    /// Ran one admission + decode round (the clock advanced).
    Advanced,
    /// Nothing to do: every pushed request has finished (or none were
    /// pushed). More pushes can wake the session up again.
    Idle,
}

/// One cross-replica prefix re-materialization, for the cluster
/// engine's fleet-level accounting: which record was fetched from which
/// owning replica, how many tokens crossed the fabric, and what the
/// wire charged. The time and energy are *already* applied to the
/// fetching session (TTFT and session energy); the event exists so the
/// fleet report can attribute the traffic without double-charging.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RemoteFetchEvent {
    /// The conversation-prefix key that was re-materialized.
    pub key: u64,
    /// Replica index the fleet-wide directory names as the record's
    /// owner (the copy-out source).
    pub owner: usize,
    /// Logical tokens restored across the fabric.
    pub tokens: u64,
    /// What the transfer cost on the wire.
    pub cost: TierCost,
}

/// The fleet-shared tier's per-session runtime state: a frozen view of
/// the fleet-wide directory (re-installed only at control-plane
/// barriers, so parallel and sequential fleet stepping observe the
/// same snapshots), the fetch policy and fabric pricing for remote
/// re-materializations, and the two egress queues the cluster engine
/// drains at barriers in deterministic replica order.
#[derive(Debug)]
struct GlobalTierState {
    /// This replica's index in the fleet (its identity in the
    /// directory; a record it owns is never remote-fetched).
    replica: usize,
    /// Frozen directory snapshot.
    view: Arc<GlobalKvTier>,
    fetch: Box<dyn FetchPolicy>,
    pricing: TierPricing,
    /// Bytes one KV block carries across the fabric.
    block_bytes: Bytes,
    /// Accepted local spills awaiting registration: `(key, tokens)`.
    publish_egress: Vec<(u64, u64)>,
    /// Remote fetches performed since the last drain.
    fetch_egress: Vec<RemoteFetchEvent>,
}

/// The capacity tier's runtime state: the tier itself, the built
/// policy objects, and the pricing (with the per-block payload size
/// precomputed from the model's KV geometry).
#[derive(Debug)]
struct TierState {
    tier: KvTier,
    spill: Box<dyn SpillPolicy>,
    fetch: Box<dyn FetchPolicy>,
    pricing: TierPricing,
    /// Bytes one KV block carries across the tier boundary:
    /// `kv_bytes_per_token × block_size`.
    block_bytes: Bytes,
}

/// One serving engine's in-flight state, steppable round by round.
///
/// [`ServingEngine::run`] is `open_session` + push everything + step to
/// completion. A [`ClusterEngine`](crate::cluster::ClusterEngine)
/// instead interleaves `step()` across replicas on a shared simulated
/// clock, pushing each request to the replica its router picks *at the
/// request's arrival time*.
pub struct ServingSession<'a> {
    engine: &'a ServingEngine,
    speculation: SpeculativeConfig,
    tlp_policy: TlpPolicy,
    admit_budget_blocks: u64,
    pool: KvBlockPool,
    prefix_tree: Option<PrefixTree>,
    /// The KV capacity tier, `Some` when the tuning configures one:
    /// prefix-cache eviction spills here, admission fork-misses probe
    /// here before re-prefilling.
    tier: Option<TierState>,
    /// The fleet-shared prefix tier, `Some` once the cluster engine
    /// calls [`enable_global_tier`](Self::enable_global_tier): local
    /// tier misses consult the fleet-wide directory and re-materialize
    /// remote records at inter-node fabric cost.
    global: Option<GlobalTierState>,
    kv_stats: KvCacheStats,
    scheduler: Box<dyn FcScheduler>,
    pricer: IterationPricer<'a>,
    rng: StdRng,
    requests: Vec<ServingRequest>,
    /// One KV sequence per request index, `Some` while admitted.
    seqs: Vec<Option<KvSeq>>,
    /// Prefill progress per request index, in tokens (cached prefix
    /// tokens count as progress).
    prefilled: Vec<u64>,
    /// When this session may first see each request: the arrival time
    /// for ordinary pushes, the migration delivery time for
    /// [`push_migrated`](Self::push_migrated) entries (whose *record*
    /// keeps the original arrival for honest TTFT accounting).
    available_s: Vec<f64>,
    /// `Some` while the request's prefill is already paid: the KV
    /// export that arrived with a migrated sequence, consumed (via
    /// [`KvBlockPool::import_seq`]) at admission and cleared on
    /// preemption — recompute rebuilds the context locally.
    premigrated: Vec<Option<KvSeqExport>>,
    admitted_s: Vec<Option<f64>>,
    first_token_s: Vec<Option<f64>>,
    /// Prefill-export mode: requests leave at prefill completion as
    /// [`PrefillHandoff`]s instead of decoding here.
    export_prefills: bool,
    /// Handoffs exported since the last [`drain_egress`](Self::drain_egress).
    egress: Vec<PrefillHandoff>,
    /// Requests that left via export (they will never produce a record
    /// here; the decode-side session records them).
    exported: u64,
    /// Maintained invariant: logical KV tokens resident across live
    /// requests (the counter the scalar engine recomputed three times
    /// per step).
    kv_tokens: u64,
    /// Maintained invariant: the subset of `kv_tokens` belonging to
    /// requests still prefilling (zero unless chunked prefill is on).
    prefilling_kv_tokens: u64,
    clock: f64,
    next_arrival: usize, // index into arrival-sorted `requests`
    queue: VecDeque<usize>,
    live: Vec<usize>,
    /// Reused index scratch for the per-step decode batch: stepping is
    /// the fleet simulator's hot loop, and a fresh heap allocation per
    /// iteration is measurable at 64-replica scale.
    scratch_idx: Vec<usize>,
    phases: PhaseBreakdown,
    energy: Energy,
    prefill_time: Time,
    placements: Vec<Placement>,
    rlp_series: Vec<u64>,
    records: Vec<RequestRecord>,
    iterations: u64,
    tokens: u64,
    preemptions: u64,
    peak_rlp: u64,
    peak_kv_tokens: u64,
}

impl core::fmt::Debug for ServingSession<'_> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ServingSession")
            .field("design", &self.engine.config.design)
            .field("clock", &self.clock)
            .field("queued", &self.queue.len())
            .field("live", &self.live.len())
            .field("finished", &self.records.len())
            .field("kv", &self.pool.stats())
            .finish_non_exhaustive()
    }
}

impl ServingSession<'_> {
    /// Hands a request to this session. Requests must arrive in
    /// non-decreasing arrival order (the router processes global
    /// arrivals chronologically, so this holds by construction).
    ///
    /// # Panics
    ///
    /// Panics if `request` arrives before the previously pushed one.
    #[track_caller]
    pub fn push(&mut self, request: ServingRequest) {
        let available_s = request.arrival_s;
        self.push_at(request, available_s, None, None);
    }

    /// Admits a migrated decode-ready sequence: a request whose prompt
    /// was prefilled on another (prefill-role) session, delivered here
    /// at `delivered_s` after its KV transfer. The request joins the
    /// queue like any arrival, but its admission allocates the whole
    /// KV footprint with *no* prefill work or cost — prefill was
    /// already paid at the source — and it starts decoding the step it
    /// is admitted. Its eventual [`RequestRecord`] keeps the original
    /// arrival and the source-side admission time, so TTFT honestly
    /// spans queueing + prefill + migration + first decode.
    ///
    /// If the request is later preempted under KV pressure, the paid
    /// prefill is forfeited: recompute-style re-admission prefills the
    /// whole context locally (this session can — roles are scheduling
    /// policy, not missing hardware).
    ///
    /// # Panics
    ///
    /// Panics if the handoff was delivered out of order relative to
    /// earlier pushes, or if it has already generated tokens.
    #[track_caller]
    pub fn push_migrated(&mut self, handoff: PrefillHandoff, delivered_s: f64) {
        let PrefillHandoff {
            mut request,
            admitted_s,
            kv,
            ready_s,
        } = handoff;
        assert_eq!(
            request.generated, 0,
            "a migrated sequence must be decode-ready, not mid-decode"
        );
        assert_eq!(
            kv.tokens,
            request.kv_len(),
            "handoff KV export disagrees with the request's footprint"
        );
        assert!(
            delivered_s >= ready_s,
            "migration delivered before it departed ({delivered_s} < {ready_s})"
        );
        request.state = RequestState::Queued;
        self.push_at(request, delivered_s, Some(kv), Some(admitted_s));
    }

    #[track_caller]
    fn push_at(
        &mut self,
        request: ServingRequest,
        available_s: f64,
        premigrated: Option<KvSeqExport>,
        admitted_s: Option<f64>,
    ) {
        if let Some(&last) = self.available_s.last() {
            assert!(
                available_s >= last,
                "requests must be pushed in arrival order ({available_s} after {last})",
            );
        }
        self.requests.push(request);
        self.seqs.push(None);
        self.prefilled.push(0);
        self.available_s.push(available_s);
        self.premigrated.push(premigrated);
        self.admitted_s.push(admitted_s);
        self.first_token_s.push(None);
    }

    /// Switches this session into prefill-export mode (a prefill-role
    /// replica): the moment a request's prompt is fully resident, its
    /// KV blocks are exported from the pool and the request leaves as
    /// a [`PrefillHandoff`] (collect with
    /// [`drain_egress`](Self::drain_egress)) instead of decoding here.
    pub fn enable_prefill_export(&mut self) {
        self.export_prefills = true;
    }

    /// Takes the handoffs exported since the last drain, in export
    /// order. Empty unless
    /// [`enable_prefill_export`](Self::enable_prefill_export) was
    /// called.
    pub fn drain_egress(&mut self) -> Vec<PrefillHandoff> {
        std::mem::take(&mut self.egress)
    }

    /// Requests that left this session via prefill export (they are
    /// recorded by the decode-side session instead).
    pub fn exported(&self) -> u64 {
        self.exported
    }

    /// The session's simulated wall-clock, seconds since episode start.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Whether any pushed request has not yet finished here or left
    /// via prefill export.
    pub fn has_pending_work(&self) -> bool {
        (self.records.len() as u64 + self.exported) < self.requests.len() as u64
    }

    /// Logical KV tokens resident across live requests right now (the
    /// maintained counter; equals the sum of live `kv_len`s).
    pub fn kv_resident_tokens(&self) -> u64 {
        self.kv_tokens
    }

    /// The paged pool's occupancy right now.
    pub fn kv_pool_stats(&self) -> KvPoolStats {
        self.pool.stats()
    }

    /// The admission-relevant state the cluster router consumes. The
    /// role is reported as `Colocated`; a disaggregated cluster engine
    /// stamps each snapshot with the replica's configured role before
    /// handing it to a policy.
    pub fn snapshot(&self) -> ReplicaSnapshot {
        ReplicaSnapshot {
            role: papi_workload::ReplicaRole::Colocated,
            lifecycle: papi_workload::ReplicaState::Active,
            queued: self.queue.len() + (self.requests.len() - self.next_arrival),
            live: self.live.len(),
            kv_blocks_in_use: self.pool.blocks_in_use(),
            kv_evictable_blocks: self.evictable_blocks(),
            kv_budget_blocks: self.admit_budget_blocks,
            kv_block_size: self.pool.block_size(),
            kv_tier_blocks_in_use: self.tier.as_ref().map_or(0, |t| t.tier.blocks_in_use()),
            kv_tier_budget_blocks: self.tier.as_ref().map_or(0, |t| t.tier.budget_blocks()),
        }
    }

    /// Per-request records completed so far (in completion order) —
    /// the autoscale control plane reads these mid-run to judge SLO
    /// burn without waiting for the episode report.
    pub fn completed_records(&self) -> &[RequestRecord] {
        &self.records
    }

    /// Cold-starts this replica's caches: clears the prefix tree (and
    /// releases its block references) and drops every capacity-tier
    /// record. A retired replica's DRAM does not survive
    /// re-provisioning — the autoscaler calls this when a `Retired`
    /// replica spins back up, so its first requests re-prefill from
    /// scratch.
    pub fn flush_caches(&mut self) {
        if let Some(tree) = self.prefix_tree.as_mut() {
            tree.clear(&mut self.pool);
        }
        if let Some(tier) = self.tier.as_mut() {
            tier.tier.clear();
        }
    }

    /// Re-seeds the acceptance-sampling stream. Replica 0 of a cluster
    /// keeps the workload's stream (so a 1-replica cluster reproduces
    /// the single-engine episode bit for bit); later replicas decorrelate
    /// with their index.
    pub fn reseed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed.wrapping_mul(0x5851_f42d_4c95_7f2d));
    }

    /// Installs a fleet-shared full-iteration pricing memo (see
    /// [`SharedIterationCache`]): identical iteration shapes priced by
    /// *any* session sharing the cache are computed once. The caller
    /// must share a cache only between sessions of identical
    /// [`SystemConfig`]s — the cluster engine keeps one per distinct
    /// replica design.
    pub fn install_pricer_cache(&mut self, cache: Arc<SharedIterationCache>) {
        self.pricer.set_shared_cache(cache);
    }

    /// Joins this session to a fleet-shared prefix tier as replica
    /// `replica`: accepted local spills queue for registration in the
    /// fleet-wide directory, and admission fork-misses that also miss
    /// the private tier consult `view` and re-materialize remote
    /// records at `pricing` (the fabric) cost. The caller — the
    /// cluster engine — re-installs a fresh frozen view at every
    /// control-plane barrier via
    /// [`install_global_view`](Self::install_global_view) and drains
    /// the egress queues in deterministic replica order.
    ///
    /// # Panics
    ///
    /// Panics if no private capacity tier is configured — the shared
    /// directory registers *spilled* records, so it rides
    /// [`KvTierSpec`] the same way the tier rides the prefix cache.
    #[track_caller]
    pub fn enable_global_tier(
        &mut self,
        replica: usize,
        fetch: &FetchSpec,
        pricing: TierPricing,
        view: Arc<GlobalKvTier>,
    ) {
        assert!(
            self.tier.is_some(),
            "the fleet-shared tier registers spilled records: configure kv_tier first"
        );
        self.global = Some(GlobalTierState {
            replica,
            view,
            fetch: fetch.build(),
            pricing,
            block_bytes: self.engine.config.model.kv_bytes_per_token()
                * self.pool.block_size() as f64,
            publish_egress: Vec::new(),
            fetch_egress: Vec::new(),
        });
    }

    /// Replaces the frozen fleet-directory snapshot this session reads.
    /// No-op unless [`enable_global_tier`](Self::enable_global_tier)
    /// was called. The cluster engine calls this at control-plane
    /// barriers only — between barriers every replica reads the same
    /// frozen view, which is what keeps parallel and sequential fleet
    /// stepping bit-for-bit equal.
    pub fn install_global_view(&mut self, view: Arc<GlobalKvTier>) {
        if let Some(state) = self.global.as_mut() {
            state.view = view;
        }
    }

    /// Takes the `(key, tokens)` records this session's accepted spills
    /// queued for fleet-wide registration since the last drain. Empty
    /// unless the shared tier is enabled.
    pub fn drain_global_publishes(&mut self) -> Vec<(u64, u64)> {
        self.global
            .as_mut()
            .map_or_else(Vec::new, |s| std::mem::take(&mut s.publish_egress))
    }

    /// Takes the cross-replica fetches this session performed since the
    /// last drain (their time and energy are already charged here; the
    /// events are for fleet-level attribution). Empty unless the shared
    /// tier is enabled.
    pub fn drain_global_fetches(&mut self) -> Vec<RemoteFetchEvent> {
        self.global
            .as_mut()
            .map_or_else(Vec::new, |s| std::mem::take(&mut s.fetch_egress))
    }

    fn evictable_blocks(&self) -> u64 {
        self.prefix_tree
            .as_ref()
            .map_or(0, |tree| tree.evictable_blocks(&self.pool))
    }

    /// Evicts the coldest cached prefix — spilling it into the
    /// capacity tier (when one is configured and its policy agrees)
    /// instead of forgetting it. Returns the blocks that became free,
    /// or `None` when there is no cache or nothing left to evict.
    fn relieve_prefix_cache(&mut self) -> Option<u64> {
        let tree = self.prefix_tree.as_mut()?;
        let evicted = tree.evict_lru_entry(&mut self.pool)?;
        self.kv_stats.prefix_evictions += 1;
        if let Some(state) = self.tier.as_mut() {
            let candidate = SpillCandidate {
                key: evicted.key,
                tokens: evicted.tokens,
                blocks: evicted.blocks,
            };
            if evicted.tokens > 0 && state.spill.should_spill(&candidate) {
                let outcome = state.tier.spill(evicted.key, evicted.tokens);
                if outcome.accepted {
                    self.kv_stats.tier_spills += 1;
                    self.kv_stats.tier_spilled_tokens += evicted.tokens;
                    // Fleet-shared tier: an accepted spill queues for
                    // registration in the fleet-wide directory at the
                    // next control-plane barrier.
                    if let Some(global) = self.global.as_mut() {
                        global.publish_egress.push((evicted.key, evicted.tokens));
                    }
                }
                self.kv_stats.tier_evictions += outcome.evicted_entries;
                self.kv_stats.tier_peak_blocks = self
                    .kv_stats
                    .tier_peak_blocks
                    .max(state.tier.blocks_in_use());
            }
        }
        Some(evicted.freed)
    }

    /// On a prefix-cache fork miss, tries to restore the key's spilled
    /// context from the capacity tier: re-materializes the usable
    /// (block-aligned) overlap in the hot pool, republishes it into
    /// the prefix cache so successor turns fork it for free, and
    /// prices the transfer *on the serving critical path* — its
    /// latency lands in the admitted request's TTFT (via the session
    /// clock and prefill time), its energy in the report. Returns
    /// `None` when there is no tier, no entry, no usable overlap, the
    /// fetch policy declines, or the hot pool cannot make room — the
    /// caller then re-prefills, exactly as without a tier.
    fn try_tier_fetch(&mut self, hint: PrefixHint) -> Option<KvSeq> {
        let block_size = self.pool.block_size();
        let state = self.tier.as_mut()?;
        let tier_tokens = state.tier.peek(hint.key)?;
        let usable = tier_tokens.min(hint.reuse_tokens / block_size * block_size);
        if usable == 0 {
            return None;
        }
        let candidate = FetchCandidate {
            key: hint.key,
            tier_tokens,
            reuse_tokens: hint.reuse_tokens,
            usable_tokens: usable,
        };
        if !state.fetch.should_fetch(&candidate) {
            return None;
        }
        // Make room in the hot pool, evicting (and spilling) colder
        // prefixes; if it stays too tight, skip the fetch and
        // re-prefill instead.
        let needed = self.pool.blocks_for(usable);
        while self.pool.free_blocks() < needed {
            if self.relieve_prefix_cache().is_none() {
                break;
            }
        }
        if self.pool.free_blocks() < needed {
            return None;
        }
        // The relief above may itself have spilled into the tier and
        // LRU-dropped the very entry being fetched — re-check.
        let state = self.tier.as_mut().expect("tier presence checked above");
        let fetched = state.tier.fetch(hint.key)?;
        let usable = usable.min(fetched);
        let mut seq = self.pool.new_seq();
        assert!(
            self.pool.append(&mut seq, usable),
            "tier fetch allocation failed despite the room check"
        );
        if let Some(tree) = self.prefix_tree.as_mut() {
            if tree.publish(hint.key, seq.blocks(), usable, &mut self.pool) {
                self.kv_stats.prefix_insertions += 1;
            }
        }
        let state = self.tier.as_ref().expect("tier presence checked above");
        let cost = state
            .pricing
            .cost(self.pool.blocks_for(usable), state.block_bytes);
        self.clock += cost.time.value();
        self.prefill_time += cost.time;
        self.energy += cost.energy;
        self.kv_stats.tier_fetches += 1;
        self.kv_stats.tier_fetched_tokens += usable;
        self.kv_stats.tier_fetch_time_s += cost.time.value();
        self.kv_stats.tier_fetch_energy_j += cost.energy.value();
        Some(seq)
    }

    /// On a miss in both the prefix cache and the private capacity
    /// tier, consults the fleet-wide directory: if *another* replica
    /// owns a spilled record under the key, re-materializes the usable
    /// (block-aligned) overlap locally at inter-node fabric cost — a
    /// copy-out, so the directory entry survives untouched. The wire
    /// latency lands in the admitted request's TTFT and the energy in
    /// this session's report; a [`RemoteFetchEvent`] queues for the
    /// cluster engine's fleet-level attribution. Returns `None` when no
    /// shared tier is enabled, the key is unregistered, this replica
    /// owns the record (the local tier already ruled — it may have
    /// LRU-dropped it, and no one else holds a copy), there is no
    /// usable overlap, the fetch policy declines, or the hot pool
    /// cannot make room.
    fn try_global_fetch(&mut self, hint: PrefixHint) -> Option<KvSeq> {
        let block_size = self.pool.block_size();
        let state = self.global.as_mut()?;
        let entry = state.view.lookup(hint.key)?;
        if entry.owner == state.replica {
            return None;
        }
        let usable = entry
            .tokens
            .min(hint.reuse_tokens / block_size * block_size);
        if usable == 0 {
            return None;
        }
        let candidate = FetchCandidate {
            key: hint.key,
            tier_tokens: entry.tokens,
            reuse_tokens: hint.reuse_tokens,
            usable_tokens: usable,
        };
        if !state.fetch.should_fetch(&candidate) {
            return None;
        }
        // Make room in the hot pool exactly as a local tier fetch
        // would; if it stays too tight, re-prefill instead.
        let needed = self.pool.blocks_for(usable);
        while self.pool.free_blocks() < needed {
            if self.relieve_prefix_cache().is_none() {
                break;
            }
        }
        if self.pool.free_blocks() < needed {
            return None;
        }
        let mut seq = self.pool.new_seq();
        assert!(
            self.pool.append(&mut seq, usable),
            "global fetch allocation failed despite the room check"
        );
        // Republish locally so successor turns fork it for free — the
        // remote copy crossed the fabric once, not per turn.
        if let Some(tree) = self.prefix_tree.as_mut() {
            if tree.publish(hint.key, seq.blocks(), usable, &mut self.pool) {
                self.kv_stats.prefix_insertions += 1;
            }
        }
        let state = self.global.as_mut().expect("shared tier checked above");
        let cost = state
            .pricing
            .cost(usable.div_ceil(block_size), state.block_bytes);
        state.fetch_egress.push(RemoteFetchEvent {
            key: hint.key,
            owner: entry.owner,
            tokens: usable,
            cost,
        });
        self.clock += cost.time.value();
        self.prefill_time += cost.time;
        self.energy += cost.energy;
        self.kv_stats.remote_fetches += 1;
        self.kv_stats.remote_fetched_tokens += usable;
        self.kv_stats.remote_fetch_time_s += cost.time.value();
        self.kv_stats.remote_fetch_energy_j += cost.energy.value();
        Some(seq)
    }

    /// Blocks committed to live work: in use minus what prefix-cache
    /// eviction could reclaim on demand.
    fn committed_blocks(&self) -> u64 {
        self.pool.blocks_in_use() - self.evictable_blocks()
    }

    /// The state the admission policy sees, plus the live requests' KV
    /// footprints it indexes when naming a preemption victim.
    fn admission_view<'v>(&self, live_kv: &'v [u64]) -> AdmissionView<'v> {
        AdmissionView {
            committed_blocks: self.committed_blocks(),
            budget_blocks: self.admit_budget_blocks,
            block_size: self.pool.block_size(),
            kv_tokens: self.kv_tokens,
            queued: self.queue.len(),
            live_kv,
        }
    }

    /// Publishes request `idx`'s context (its shareable leading tokens,
    /// per its [`PrefixHint`]) into the prefix
    /// cache before the session lets go of `seq` — at completion, or at
    /// prefill export, so successor turns fork it either way.
    fn publish_context(&mut self, idx: usize, seq: &KvSeq) {
        if let (Some(tree), Some(hint)) =
            (self.prefix_tree.as_mut(), self.requests[idx].request.prefix)
        {
            if hint.publish_tokens > 0 {
                let publish = hint.publish_tokens.min(self.requests[idx].kv_len());
                if tree.publish(hint.key, seq.blocks(), publish, &mut self.pool) {
                    self.kv_stats.prefix_insertions += 1;
                }
            }
        }
    }

    fn live_kv(&self) -> Vec<u64> {
        self.live
            .iter()
            .map(|&i| self.requests[i].kv_len())
            .collect()
    }

    fn track_kv_peaks(&mut self) {
        // Resident logical tokens: every decoded context plus what
        // mid-prefill requests have actually written so far (their
        // cached prefix counts — those blocks are resident). With
        // monolithic prefill nothing is ever mid-prefill here, so this
        // reduces to the scalar engine's `total_kv_len + new_tokens`.
        let resident = if self.prefilling_kv_tokens == 0 {
            // Nothing mid-prefill (always true between monolithic
            // steps): every resident token is a decoded context's.
            self.kv_tokens
        } else {
            let written_prefilling: u64 = self
                .live
                .iter()
                .filter(|&&i| self.requests[i].state == RequestState::Prefilling)
                .map(|&i| self.prefilled[i])
                .sum();
            self.kv_tokens - self.prefilling_kv_tokens + written_prefilling
        };
        self.peak_kv_tokens = self.peak_kv_tokens.max(resident);
        let in_use = self.pool.blocks_in_use();
        self.kv_stats.peak_blocks_in_use = self.kv_stats.peak_blocks_in_use.max(in_use);
        let block_size = self.pool.block_size();
        if block_size > 1 && in_use > 0 {
            // Per-sequence slack tops out at `block_size - 1`; when even
            // that bound cannot beat the recorded peak, skip the scan.
            let bound =
                (self.live.len() as u64 * (block_size - 1)) as f64 / (in_use * block_size) as f64;
            if bound > self.kv_stats.peak_fragmentation {
                let slack: u64 = self
                    .live
                    .iter()
                    .filter_map(|&i| self.seqs[i].as_ref())
                    .map(|seq| seq.slack(block_size))
                    .sum();
                let fraction = slack as f64 / (in_use * block_size) as f64;
                if fraction > self.kv_stats.peak_fragmentation {
                    self.kv_stats.peak_fragmentation = fraction;
                }
            }
        }
    }

    /// Runs one admission + prefill + decode round, advancing the clock
    /// by its priced cost. Returns [`SessionStatus::Idle`] when every
    /// pushed request has finished.
    ///
    /// # Panics
    ///
    /// Panics if a single request's KV cache cannot fit the attention
    /// pool, or if the episode exceeds the engine's iteration safety
    /// valve.
    pub fn step(&mut self) -> SessionStatus {
        papi_perf::phase!("step");
        if !self.has_pending_work() {
            return SessionStatus::Idle;
        }
        // --- ingest arrivals up to the current clock ---
        self.ingest();
        // Idle system: jump to the next arrival (for a migrated entry,
        // its delivery instant — the original arrival is in the past).
        if self.live.is_empty() && self.queue.is_empty() {
            let upcoming = self.available_s[self.next_arrival];
            self.clock = self.clock.max(upcoming);
            self.ingest();
        }

        // --- continuous-batching admission under KV pressure: the
        //     engine owns the mechanism (allocation, forking, the
        //     single-request capacity assert), the admission policy the
        //     decision. An empty batch always admits, so no policy can
        //     stall the episode. ---
        // One footprint list per step, built lazily on the first policy
        // consult (the steady-state decode step admits nobody and must
        // not allocate) and extended as candidates join, so the
        // per-candidate policy call allocates nothing.
        let mut live_kv: Option<Vec<u64>> = None;
        while (self.live.len() as u64) < self.engine.tuning.max_batch {
            let Some(&candidate) = self.queue.front() else {
                break;
            };
            let prefill_len = self.requests[candidate].prefill_len();
            let total_need = prefill_len + self.requests[candidate].remaining();
            assert!(
                self.pool.blocks_for(total_need) <= self.pool.total_blocks(),
                "{}: request {} alone ({} KV tokens) exceeds the attention pool",
                self.engine.config.design,
                self.requests[candidate].request.id,
                total_need,
            );
            // The policy plans against the full prompt (the built-ins
            // ignore the cache discount) so the allocation below can
            // never fail even if the cached prefix turns out to be
            // pinned.
            if !self.live.is_empty() {
                if live_kv.is_none() {
                    live_kv = Some(self.live_kv());
                }
                let footprints = live_kv.as_deref().expect("footprints just materialized");
                let admission = AdmissionCandidate {
                    id: self.requests[candidate].request.id,
                    prefill_tokens: prefill_len,
                    total_tokens: total_need,
                };
                if !self
                    .engine
                    .admission
                    .admit(&admission, &self.admission_view(footprints))
                {
                    break;
                }
            }
            self.queue.pop_front();
            if let Some(kv) = live_kv.as_mut() {
                kv.push(self.requests[candidate].kv_len());
            }

            // Fork the cached prefix, if sharing is on and one exists
            // — falling back to a (priced) capacity-tier fetch on a
            // miss when a tier is configured. A migrated
            // (prefill-paid) sequence skips the cache: its context
            // arrives whole over the fabric and is re-materialized as
            // private blocks.
            let premigrated = self.premigrated[candidate];
            let hint = self.requests[candidate].request.prefix;
            let shareable = premigrated.is_none()
                && self.prefix_tree.is_some()
                && hint.is_some_and(|h| h.reuse_tokens > 0);
            let mut fork: Option<KvSeq> = None;
            if shareable {
                let h = hint.expect("shareable implies a hint");
                self.kv_stats.prefix_lookups += 1;
                fork = self
                    .prefix_tree
                    .as_mut()
                    .expect("shareable implies a tree")
                    .fork(h.key, h.reuse_tokens, &mut self.pool);
                if fork.is_none() {
                    fork = self.try_tier_fetch(h);
                }
                if fork.is_none() {
                    fork = self.try_global_fetch(h);
                }
                if let Some(forked) = &fork {
                    self.kv_stats.prefix_hits += 1;
                    self.kv_stats.cached_prompt_tokens += forked.tokens();
                }
            }
            let mut seq = fork.unwrap_or_else(|| self.pool.new_seq());
            // Reserve capacity for the whole (uncached) prompt now,
            // evicting cold prefixes if the free list runs short; the
            // prefill *work* is metered separately below.
            let suffix = prefill_len - seq.tokens();
            let growth = self.pool.growth_blocks(seq.tokens(), suffix);
            while self.pool.free_blocks() < growth {
                if self.relieve_prefix_cache().is_none() {
                    break;
                }
            }
            match premigrated {
                Some(export) => {
                    // Prefill was paid at the source: re-materialize
                    // the exported sequence at this pool's granularity;
                    // the whole context is resident the moment its
                    // blocks land and the request is decode-ready
                    // without a wave.
                    debug_assert_eq!(seq.tokens(), 0, "a migrated sequence forks no prefix");
                    let imported = self.pool.import_seq(export).unwrap_or_else(|| {
                        panic!(
                            "{}: migration import failed despite the budget check",
                            self.engine.config.design
                        )
                    });
                    self.seqs[candidate] = Some(imported);
                    self.prefilled[candidate] = prefill_len;
                    self.requests[candidate].state = RequestState::Decoding;
                }
                None => {
                    assert!(
                        self.pool.append(&mut seq, suffix),
                        "{}: admission allocation failed despite the budget check",
                        self.engine.config.design,
                    );
                    self.seqs[candidate] = Some(seq);
                    self.prefilled[candidate] = prefill_len - suffix;
                    self.prefilling_kv_tokens += prefill_len;
                    self.requests[candidate].state = RequestState::Prefilling;
                }
            }
            self.kv_tokens += prefill_len;
            self.admitted_s[candidate].get_or_insert(self.clock);
            self.live.push(candidate);
        }

        // --- prefill work: monolithic (every admitted prompt at once)
        //     or chunked (a bounded token budget per step, shortest
        //     remaining first, interleaved with decode) ---
        let mut wave = PromptStats::default();
        let mut budget = self.engine.tuning.prefill_chunk.unwrap_or(u64::MAX);
        // Steady-state decode steps have nothing mid-prefill; the scan
        // below is a handful of state reads and skips the list build.
        let any_prefilling = self
            .live
            .iter()
            .any(|&i| self.requests[i].state == RequestState::Prefilling);
        let mut pending: Vec<usize> = if any_prefilling {
            self.live
                .iter()
                .copied()
                .filter(|&i| self.requests[i].state == RequestState::Prefilling)
                .collect()
        } else {
            Vec::new()
        };
        if self.engine.tuning.prefill_chunk.is_some() {
            pending.sort_by_key(|&i| (self.requests[i].prefill_len() - self.prefilled[i], i));
        }
        for i in pending {
            let remaining = self.requests[i].prefill_len() - self.prefilled[i];
            let grant = remaining.min(budget);
            if grant > 0 {
                wave.add_chunk(self.prefilled[i], grant);
                self.prefilled[i] += grant;
                budget -= grant;
            }
            if self.prefilled[i] == self.requests[i].prefill_len() {
                self.requests[i].state = RequestState::Decoding;
                self.prefilling_kv_tokens -= self.requests[i].prefill_len();
            }
            if budget == 0 {
                break;
            }
        }
        if wave.tokens > 0 {
            let cost = prefill_cost_for(&self.engine.config, wave);
            self.clock += cost.time.value();
            self.prefill_time += cost.time;
            self.energy += cost.energy;
            self.kv_stats.prefilled_tokens += wave.tokens;
            self.kv_stats.prefill_chunks += 1;
        }

        // --- prefill export (prefill-role replicas): every request
        //     whose prompt is now fully resident leaves as a handoff —
        //     its context is published into the local prefix cache (so
        //     later turns of the same conversation still fork it at
        //     admission), its blocks are exported from the pool, and
        //     the transfer departs at the post-wave clock. ---
        let mut exported_now = 0u64;
        if self.export_prefills {
            let mut pos = 0;
            while pos < self.live.len() {
                let idx = self.live[pos];
                if self.requests[idx].state != RequestState::Decoding {
                    pos += 1;
                    continue;
                }
                let seq = self.seqs[idx]
                    .take()
                    .expect("exporting request holds a sequence");
                self.publish_context(idx, &seq);
                let kv_tokens = self.requests[idx].kv_len();
                let kv = self.pool.export_seq(seq);
                self.kv_tokens -= kv_tokens;
                self.live.remove(pos);
                self.exported += 1;
                exported_now += 1;
                self.egress.push(PrefillHandoff {
                    request: self.requests[idx].clone(),
                    admitted_s: self.admitted_s[idx].expect("exported request was admitted"),
                    kv,
                    ready_s: self.clock,
                });
            }
        }

        // --- KV-pressure relief: if this iteration's worst-case
        //     growth would overflow the physical pool, first evict cold
        //     cached prefixes, then push the newest requests back to
        //     the queue (recompute-style). TLP is re-derived each
        //     round: an adaptive policy *raises* speculation as the
        //     batch shrinks, so the growth bound must track the
        //     post-preemption batch. ---
        loop {
            let decoding = self
                .live
                .iter()
                .filter(|&&i| self.requests[i].state == RequestState::Decoding)
                .count() as u64;
            if decoding == 0 {
                break;
            }
            let tlp = self.tlp_policy.length_at(decoding, self.speculation.length);
            let growth: u64 = self
                .live
                .iter()
                .filter(|&&i| self.requests[i].state == RequestState::Decoding)
                .map(|&i| self.pool.growth_blocks(self.requests[i].kv_len(), tlp))
                .sum();
            if self.pool.blocks_in_use() + growth <= self.pool.total_blocks() {
                break;
            }
            if self.relieve_prefix_cache().is_some() {
                continue;
            }
            let live_kv = self.live_kv();
            let Some(victim_pos) = self
                .engine
                .admission
                .preempt_victim(&self.admission_view(&live_kv))
            else {
                break;
            };
            assert!(
                victim_pos < self.live.len(),
                "admission policy named preemption victim {victim_pos} in a {}-request batch",
                self.live.len()
            );
            let victim = self.live.remove(victim_pos);
            let seq = self.seqs[victim]
                .take()
                .expect("live request holds a sequence");
            self.pool.release_seq(seq);
            self.kv_tokens -= self.requests[victim].kv_len();
            if self.requests[victim].state == RequestState::Prefilling {
                self.prefilling_kv_tokens -= self.requests[victim].prefill_len();
            }
            self.prefilled[victim] = 0;
            // A preempted migrated sequence forfeits its paid prefill:
            // re-admission recomputes the context locally.
            self.premigrated[victim] = None;
            self.requests[victim].state = RequestState::Queued;
            self.requests[victim].preemptions += 1;
            self.preemptions += 1;
            self.queue.push_front(victim);
        }

        // --- one decoding iteration over the decode-ready batch ---
        let mut decoding = std::mem::take(&mut self.scratch_idx);
        decoding.clear();
        decoding.extend(
            self.live
                .iter()
                .copied()
                .filter(|&i| self.requests[i].state == RequestState::Decoding),
        );
        if decoding.is_empty() {
            // A pure prefill step (chunked prefill still working
            // through the admitted prompts, or a prefill-role step
            // whose completions all just left as handoffs). The wave
            // advanced the clock — or an export shrank the pending set
            // — so the episode always makes progress.
            debug_assert!(
                wave.tokens > 0 || exported_now > 0,
                "a step must advance prefill, export, or decode"
            );
            self.scratch_idx = decoding;
            self.track_kv_peaks();
            return SessionStatus::Advanced;
        }
        let total_kv_len = self.kv_tokens - self.prefilling_kv_tokens;
        let max_kv_len = decoding
            .iter()
            .map(|&i| self.requests[i].kv_len())
            .max()
            .unwrap_or(1);
        self.decode_round(decoding, total_kv_len, max_kv_len);
        SessionStatus::Advanced
    }

    /// Runs this session forward until its clock reaches `bound` or it
    /// runs out of work. Exactly equivalent to calling
    /// [`step`](Self::step) in a loop while
    /// [`has_pending_work`](Self::has_pending_work) holds and the clock
    /// is below `bound`, but steady-state decode steps — no pending
    /// arrivals, an empty admission queue, nothing mid-prefill — take a
    /// fast path that skips the ingest/admission/prefill machinery the
    /// full step would discover to be no-ops. The parallel cluster loop
    /// uses this to burst replicas between control-plane events.
    pub fn run_until(&mut self, bound: f64) {
        while self.has_pending_work() && self.clock < bound {
            // Anything that could feed the batch this step — an
            // un-ingested arrival, a queued request, a mid-prefill
            // prompt, or prefill-export duty — takes the full step.
            let steady = self.next_arrival == self.requests.len()
                && self.queue.is_empty()
                && self.prefilling_kv_tokens == 0
                && !self.export_prefills;
            if !steady || !self.fast_decode_step() {
                self.step();
            }
        }
    }

    /// The steady-state decode step: every live request is decoding and
    /// nothing can join the batch, so the step is guard + decode round.
    /// Returns `false` without side effects when this iteration's KV
    /// growth would overflow the pool — the caller falls back to
    /// [`step`](Self::step), which owns eviction and preemption.
    fn fast_decode_step(&mut self) -> bool {
        // `has_pending_work` plus drained arrivals/queue means the
        // remaining work is all live — and with nothing mid-prefill,
        // all decoding.
        debug_assert!(!self.live.is_empty());
        let rlp = self.live.len() as u64;
        let tlp = self.tlp_policy.length_at(rlp, self.speculation.length);
        let mut growth = 0u64;
        let mut max_kv_len = 0u64;
        for pos in 0..self.live.len() {
            let i = self.live[pos];
            let kv = self.requests[i].kv_len();
            growth += self.pool.growth_blocks(kv, tlp);
            max_kv_len = max_kv_len.max(kv);
        }
        if self.pool.blocks_in_use() + growth > self.pool.total_blocks() {
            return false;
        }
        papi_perf::phase!("step");
        let mut decoding = std::mem::take(&mut self.scratch_idx);
        decoding.clear();
        decoding.extend_from_slice(&self.live);
        let total_kv_len = self.kv_tokens;
        self.decode_round(decoding, total_kv_len, max_kv_len);
        true
    }

    /// One decoding iteration over `decoding` (which the caller
    /// guarantees fits the pool): sample acceptance, bank tokens, price
    /// the batch, advance the clock, retire finishers. Takes the scratch
    /// index buffer by value and hands it back to `self.scratch_idx`.
    fn decode_round(&mut self, decoding: Vec<usize>, total_kv_len: u64, max_kv_len: u64) {
        let rlp = decoding.len() as u64;
        let tlp = self.tlp_policy.length_at(rlp, self.speculation.length);
        self.peak_rlp = self.peak_rlp.max(rlp);

        let placement = self.scheduler.decide(rlp, tlp);

        let mut new_tokens = 0u64;
        let mut finished = 0u64;
        let mut finishers: Vec<usize> = Vec::new();
        let mut first_timers: Vec<usize> = Vec::new();
        for &i in &decoding {
            let banked = self
                .speculation
                .acceptance
                .sample(tlp, &mut self.rng)
                .min(self.requests[i].remaining());
            if self.requests[i].generated == 0 && banked > 0 {
                first_timers.push(i);
            }
            self.requests[i].generated += banked;
            let seq = self.seqs[i]
                .as_mut()
                .expect("decoding request holds a sequence");
            assert!(
                self.pool.append(seq, banked),
                "decode KV growth failed despite the preemption guard"
            );
            self.kv_tokens += banked;
            new_tokens += banked;
            if self.requests[i].remaining() == 0 {
                finished += 1;
                finishers.push(i);
            }
        }

        let record = IterationRecord {
            rlp,
            tlp,
            total_kv_len,
            max_kv_len,
            new_tokens,
            finished,
        };
        let cost = self.pricer.price_iteration(placement, &record);
        self.clock += cost.total_time().value();
        self.phases.fc += cost.fc_time;
        self.phases.attention += cost.attn_time;
        self.phases.communication += cost.comm_time;
        self.phases.other += cost.other_time;
        self.energy += cost.total_energy();
        self.placements.push(placement);
        self.rlp_series.push(rlp);
        self.tokens += new_tokens;
        // The resident footprint peaks at iteration end, once this
        // iteration's banked tokens have landed in the cache.
        self.track_kv_peaks();

        // Tokens become visible when the iteration completes.
        for &i in &first_timers {
            self.first_token_s[i] = Some(self.clock);
        }
        for &i in &finishers {
            self.requests[i].state = RequestState::Finished;
            let seq = self.seqs[i]
                .take()
                .expect("finished request holds a sequence");
            self.publish_context(i, &seq);
            self.pool.release_seq(seq);
            self.kv_tokens -= self.requests[i].kv_len();
            let request = &self.requests[i];
            self.records.push(RequestRecord {
                id: request.request.id,
                arrival: Time::new(request.arrival_s),
                admitted: Time::new(self.admitted_s[i].expect("finished request was admitted")),
                first_token: Time::new(
                    self.first_token_s[i].expect("finished request emitted tokens"),
                ),
                finished: Time::new(self.clock),
                prompt_tokens: request.request.input_len,
                output_tokens: request.generated,
                preemptions: request.preemptions,
            });
        }
        self.live.retain(|i| !finishers.contains(i));
        self.scratch_idx = decoding;

        self.iterations += 1;
        assert!(
            self.iterations <= self.engine.max_iterations,
            "serving episode exceeded {} iterations — runaway workload?",
            self.engine.max_iterations
        );
    }

    fn ingest(&mut self) {
        while self.next_arrival < self.requests.len()
            && self.available_s[self.next_arrival] <= self.clock
        {
            self.queue.push_back(self.next_arrival);
            self.next_arrival += 1;
        }
    }

    /// Closes the session into its report.
    ///
    /// Makespan runs from the first arrival to the last completion —
    /// leading idle before the episode's first request is not time the
    /// system spent serving.
    pub fn into_report(self) -> ServingReport {
        let episode_start = self.requests.first().map_or(0.0, |r| r.arrival_s);
        ServingReport {
            design: self.engine.config.design.label().to_owned(),
            model: self.engine.config.model.name.clone(),
            iterations: self.iterations,
            tokens: self.tokens,
            makespan: Time::new((self.clock - episode_start).max(0.0)),
            phases: self.phases,
            prefill_time: self.prefill_time,
            energy: self.energy,
            scheduler: self.scheduler.stats(),
            placements: self.placements,
            rlp_series: self.rlp_series,
            records: self.records,
            preemptions: self.preemptions,
            peak_rlp: self.peak_rlp,
            peak_kv_tokens: self.peak_kv_tokens,
            kv: self.kv_stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use papi_llm::ModelPreset;
    use papi_workload::{ArrivalProcess, ConversationDataset, DatasetKind};

    fn small_workload(rate: f64, n: usize) -> ServingWorkload {
        ServingWorkload::poisson(DatasetKind::GeneralQa, rate, n).with_seed(11)
    }

    #[test]
    fn every_request_completes_with_ordered_timestamps() {
        let engine = ServingEngine::new(SystemConfig::a100_attacc(ModelPreset::Llama65B.config()))
            .with_max_batch(16);
        let workload = small_workload(4.0, 48);
        let report = engine.run(&workload);
        assert_eq!(report.records.len(), 48);
        for r in &report.records {
            assert!(r.arrival.value() <= r.admitted.value());
            assert!(r.admitted.value() < r.first_token.value());
            assert!(r.first_token.value() <= r.finished.value());
            assert!(r.output_tokens > 0);
            assert!(r.ttft().value() <= r.e2e().value());
        }
        assert!(report.peak_rlp <= 16);
        assert_eq!(report.iterations, report.placements.len() as u64);
        assert_eq!(report.iterations, report.rlp_series.len() as u64);
    }

    #[test]
    fn serving_is_deterministic() {
        let engine =
            ServingEngine::new(SystemConfig::pim_only_papi(ModelPreset::Llama65B.config()))
                .with_max_batch(8);
        let workload = small_workload(2.0, 24);
        let a = engine.run(&workload);
        let b = engine.run(&workload);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.energy, b.energy);
        assert_eq!(a.placements, b.placements);
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn light_load_has_short_queues_heavy_load_long() {
        let engine = ServingEngine::new(SystemConfig::a100_attacc(ModelPreset::Llama65B.config()))
            .with_max_batch(8);
        let light = engine.run(&small_workload(0.2, 32));
        let heavy = engine.run(&small_workload(50.0, 32));
        let q_light = light.queueing_summary().unwrap().p99;
        let q_heavy = heavy.queueing_summary().unwrap().p99;
        assert!(
            q_heavy.value() > 5.0 * q_light.value().max(1e-9),
            "p99 queueing: light {q_light} vs heavy {q_heavy}"
        );
    }

    #[test]
    fn papi_reschedules_under_decaying_load() {
        // Arrivals stop while the batch is still above α; the live RLP
        // then decays like a closed batch and the online scheduler must
        // migrate FC from the PU to FC-PIM at least once.
        let engine = ServingEngine::new(SystemConfig::papi(ModelPreset::Llama65B.config()))
            .with_max_batch(64);
        let workload =
            ServingWorkload::new(DatasetKind::CreativeWriting, ArrivalProcess::Immediate, 64)
                .with_seed(9);
        let report = engine.run(&workload);
        assert!(report.scheduler.switches >= 1, "no rescheduling happened");
        assert!(report.scheduler.pu_decisions > 0);
        assert!(report.scheduler.fc_pim_decisions > 0);
        assert_eq!(*report.rlp_series.first().unwrap(), 64);
        assert_eq!(*report.rlp_series.last().unwrap(), 1);
    }

    #[test]
    fn continuous_refill_holds_rlp_at_cap_while_queue_lasts() {
        let engine =
            ServingEngine::new(SystemConfig::pim_only_papi(ModelPreset::Llama65B.config()))
                .with_max_batch(8);
        let workload = ServingWorkload::new(DatasetKind::GeneralQa, ArrivalProcess::Immediate, 40)
            .with_seed(5);
        let report = engine.run(&workload);
        let early = &report.rlp_series[..report.rlp_series.len() / 4];
        assert!(early.iter().all(|&r| r == 8), "early RLP should hold at 8");
        assert_eq!(report.peak_rlp, 8);
    }

    #[test]
    fn kv_pressure_limits_admission() {
        // A tiny KV headroom forces admission to stop well below the
        // batch cap; the engine must still finish every request.
        let engine =
            ServingEngine::new(SystemConfig::pim_only_papi(ModelPreset::Gpt3_175B.config()))
                .with_max_batch(64)
                .with_kv_headroom(0.002);
        let workload =
            ServingWorkload::new(DatasetKind::CreativeWriting, ArrivalProcess::Immediate, 32)
                .with_seed(3);
        let report = engine.run(&workload);
        assert_eq!(report.records.len(), 32);
        assert!(
            report.peak_rlp < 64,
            "KV pressure should cap RLP below the batch cap, got {}",
            report.peak_rlp
        );
        // Admission plans within the headroom budget (in-flight growth
        // may exceed it, never the physical pool); a roomy headroom on
        // the same workload must therefore reach a much larger peak.
        let model = ModelPreset::Gpt3_175B.config();
        let pool_tokens = 60.0 * 16e9 / model.kv_bytes_per_token().value();
        assert!(
            (report.peak_kv_tokens as f64) <= pool_tokens,
            "peak KV {} tokens overflowed the {}-token pool",
            report.peak_kv_tokens,
            pool_tokens
        );
        let roomy =
            ServingEngine::new(SystemConfig::pim_only_papi(ModelPreset::Gpt3_175B.config()))
                .with_max_batch(64)
                .run(&workload);
        assert!(
            report.peak_kv_tokens * 2 < roomy.peak_kv_tokens,
            "tight headroom peak {} should sit far below the roomy peak {}",
            report.peak_kv_tokens,
            roomy.peak_kv_tokens
        );
    }

    #[test]
    fn adaptive_tlp_growth_never_overflows_the_pool() {
        // The preemption guard must re-derive TLP as it evicts: an
        // adaptive policy raises speculation while the batch shrinks,
        // so a stale bound would let KV growth overshoot the pool.
        let engine =
            ServingEngine::new(SystemConfig::pim_only_papi(ModelPreset::Gpt3_175B.config()))
                .with_max_batch(32)
                .with_kv_headroom(0.002);
        let workload =
            ServingWorkload::new(DatasetKind::CreativeWriting, ArrivalProcess::Immediate, 32)
                .with_seed(3)
                .with_adaptive_tlp(64, 8);
        let report = engine.run(&workload);
        assert_eq!(report.records.len(), 32);
        let model = ModelPreset::Gpt3_175B.config();
        let pool_tokens = 60.0 * 16e9 / model.kv_bytes_per_token().value();
        assert!((report.peak_kv_tokens as f64) <= pool_tokens);
    }

    #[test]
    fn makespan_excludes_leading_idle() {
        // Two identical single-request episodes, one arriving at t = 0
        // and one arriving 100 s in: the service time (and therefore
        // the makespan) must match — the idle century doesn't count.
        let engine =
            ServingEngine::new(SystemConfig::pim_only_papi(ModelPreset::Llama65B.config()));
        let at_zero =
            ServingWorkload::new(DatasetKind::GeneralQa, ArrivalProcess::Immediate, 1).with_seed(2);
        let delayed = ServingWorkload::new(
            DatasetKind::GeneralQa,
            ArrivalProcess::Trace(vec![100.0]),
            1,
        )
        .with_seed(2);
        let a = engine.run(&at_zero);
        let b = engine.run(&delayed);
        assert!(
            (a.makespan.value() - b.makespan.value()).abs() < 1e-9,
            "makespan {} vs delayed {}",
            a.makespan,
            b.makespan
        );
        assert!(b.records[0].arrival.value() == 100.0);
        assert!(b.tokens_per_second() > 0.0);
    }

    /// The maintained KV counters (the satellite dedupe of the triple
    /// per-step recomputation) never drift from first-principles sums
    /// over the live set — stepped manually, across paging
    /// configurations, including one with sharing and chunking on.
    #[test]
    fn maintained_kv_counters_match_recomputation_every_step() {
        let workload = ServingWorkload::poisson(
            ConversationDataset::multi_turn(DatasetKind::GeneralQa, 256, 3),
            8.0,
            36,
        )
        .with_seed(7);
        let scalar = ServingEngine::new(SystemConfig::papi(ModelPreset::Llama65B.config()))
            .with_max_batch(8);
        let paged = ServingEngine::new(SystemConfig::papi(ModelPreset::Llama65B.config()))
            .with_max_batch(8)
            .with_kv_block_size(16)
            .with_prefix_sharing(true)
            .with_prefill_chunk(256);
        for engine in [scalar, paged] {
            let mut session = engine.open_session(&workload);
            for request in workload.requests() {
                session.push(request);
            }
            while session.step() == SessionStatus::Advanced {
                let live_kv: u64 = session
                    .live
                    .iter()
                    .map(|&i| session.requests[i].kv_len())
                    .sum();
                assert_eq!(session.kv_resident_tokens(), live_kv, "kv_tokens drifted");
                let prefilling_kv: u64 = session
                    .live
                    .iter()
                    .filter(|&&i| session.requests[i].state == RequestState::Prefilling)
                    .map(|&i| session.requests[i].kv_len())
                    .sum();
                assert_eq!(
                    session.prefilling_kv_tokens, prefilling_kv,
                    "prefilling_kv_tokens drifted"
                );
                // Pool-side view: live sequences plus the prefix cache
                // account for every held block (shared counted once).
                let seq_blocks: std::collections::BTreeSet<u32> = session
                    .live
                    .iter()
                    .filter_map(|&i| session.seqs[i].as_ref())
                    .flat_map(|s| s.blocks().iter().copied())
                    .collect();
                assert!(session.pool.blocks_in_use() >= seq_blocks.len() as u64);
            }
            let report = session.into_report();
            assert_eq!(report.records.len(), 36);
        }
    }

    /// Prefix sharing on a conversation workload: real hits, less
    /// prefill work, and every request still completes correctly.
    #[test]
    fn prefix_sharing_cuts_prefill_on_conversations() {
        let workload = ServingWorkload::poisson(
            ConversationDataset::multi_turn(DatasetKind::GeneralQa, 512, 4),
            2.0,
            48,
        )
        .with_seed(13);
        let scalar =
            ServingEngine::new(SystemConfig::pim_only_papi(ModelPreset::Llama65B.config()))
                .with_max_batch(16)
                .run(&workload);
        let shared =
            ServingEngine::new(SystemConfig::pim_only_papi(ModelPreset::Llama65B.config()))
                .with_max_batch(16)
                .with_kv_block_size(16)
                .with_prefix_sharing(true)
                .run(&workload);
        assert_eq!(scalar.records.len(), 48);
        assert_eq!(shared.records.len(), 48);
        assert_eq!(scalar.kv.prefix_hits, 0);
        assert!(
            shared.kv.prefix_hits > 0,
            "conversation turns should hit the prefix cache"
        );
        assert!(
            shared.kv.hit_rate() > 0.2,
            "hit rate {}",
            shared.kv.hit_rate()
        );
        assert!(
            shared.kv.prefilled_tokens < scalar.kv.prefilled_tokens,
            "sharing should cut prefilled tokens: {} vs {}",
            shared.kv.prefilled_tokens,
            scalar.kv.prefilled_tokens
        );
        assert!(
            shared.prefill_time.value() < scalar.prefill_time.value(),
            "sharing should cut prefill time"
        );
    }

    /// Chunked prefill conserves the totals: on an uncontended engine a
    /// prompt far larger than the chunk still completes, with the same
    /// generated tokens and the same number of decode iterations as
    /// monolithic prefill — and the same total prefill time (the chunk
    /// costs telescope).
    #[test]
    fn chunked_prefill_conserves_tokens_and_iterations() {
        let workload = ServingWorkload::new(DatasetKind::LongContext, ArrivalProcess::Immediate, 1)
            .with_seed(21);
        let prompt = workload.requests()[0].request.input_len;
        let chunk = 64;
        assert!(prompt > 3 * chunk, "prompt {prompt} must dwarf the chunk");
        let engine =
            || ServingEngine::new(SystemConfig::pim_only_papi(ModelPreset::Llama65B.config()));
        let monolithic = engine().run(&workload);
        let chunked = engine().with_prefill_chunk(chunk).run(&workload);
        assert_eq!(chunked.tokens, monolithic.tokens);
        assert_eq!(chunked.iterations, monolithic.iterations);
        assert_eq!(chunked.records.len(), 1);
        assert_eq!(
            chunked.records[0].output_tokens,
            monolithic.records[0].output_tokens
        );
        assert_eq!(chunked.kv.prefilled_tokens, monolithic.kv.prefilled_tokens);
        assert!(chunked.kv.prefill_chunks >= prompt / chunk);
        assert_eq!(monolithic.kv.prefill_chunks, 1);
        // Attention/FC prefill math telescopes exactly; only per-wave
        // fixed overheads may differ, so the totals stay within a
        // fraction of a percent.
        let drift = (chunked.prefill_time.value() - monolithic.prefill_time.value()).abs()
            / monolithic.prefill_time.value();
        assert!(drift < 0.05, "prefill time drifted {drift}");
    }

    /// Block-granular admission really is coarser: at block size 16
    /// the pool fills in 16-token units (peak blocks × 16 ≥ peak
    /// tokens) and fragmentation becomes visible.
    #[test]
    fn paged_accounting_exposes_fragmentation() {
        let workload = small_workload(8.0, 32);
        let report = ServingEngine::new(SystemConfig::papi(ModelPreset::Llama65B.config()))
            .with_max_batch(8)
            .with_kv_block_size(16)
            .run(&workload);
        assert_eq!(report.records.len(), 32);
        assert_eq!(report.kv.block_size, 16);
        assert!(report.kv.peak_blocks_in_use * 16 >= report.peak_kv_tokens);
        assert!(
            report.kv.peak_fragmentation > 0.0,
            "ragged tails must show up as internal fragmentation"
        );
        assert!(report.kv.peak_fragmentation < 0.5);
    }
}
