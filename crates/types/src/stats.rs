//! Small statistics helpers used by the experiment harness.

use serde::{Deserialize, Serialize};

/// Geometric mean of a slice of positive values.
///
/// Used for averaging speedups across benchmark configurations, exactly as
/// architecture papers (including PAPI) report cross-workload means.
///
/// Returns `None` for an empty slice or if any value is non-positive.
///
/// # Example
///
/// ```
/// use papi_types::geometric_mean;
/// let g = geometric_mean(&[1.0, 4.0]).unwrap();
/// assert!((g - 2.0).abs() < 1e-12);
/// ```
pub fn geometric_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0 || !v.is_finite()) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

/// Harmonic mean of a slice of positive values.
///
/// The right mean for averaging rates (e.g. tokens/second across requests).
/// Returns `None` for an empty slice or if any value is non-positive.
pub fn harmonic_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0 || !v.is_finite()) {
        return None;
    }
    let recip_sum: f64 = values.iter().map(|v| 1.0 / v).sum();
    Some(values.len() as f64 / recip_sum)
}

/// Single-pass running mean / min / max / variance accumulator
/// (Welford's algorithm).
///
/// # Example
///
/// ```
/// use papi_types::RunningStats;
/// let mut s = RunningStats::new();
/// for v in [1.0, 2.0, 3.0] {
///     s.push(v);
/// }
/// assert_eq!(s.count(), 3);
/// assert!((s.mean() - 2.0).abs() < 1e-12);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 3.0);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    #[track_caller]
    pub fn push(&mut self, value: f64) {
        assert!(!value.is_nan(), "RunningStats observation must not be NaN");
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0.0 when fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (+inf when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (-inf when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean * self.count as f64
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn geometric_mean_of_speedups() {
        let g = geometric_mean(&[2.0, 8.0]).unwrap();
        assert!((g - 4.0).abs() < 1e-12);
        assert!(geometric_mean(&[]).is_none());
        assert!(geometric_mean(&[1.0, 0.0]).is_none());
        assert!(geometric_mean(&[1.0, -2.0]).is_none());
    }

    #[test]
    fn harmonic_mean_of_rates() {
        let h = harmonic_mean(&[1.0, 1.0]).unwrap();
        assert!((h - 1.0).abs() < 1e-12);
        let h = harmonic_mean(&[40.0, 60.0]).unwrap();
        assert!((h - 48.0).abs() < 1e-12);
        assert!(harmonic_mean(&[]).is_none());
    }

    #[test]
    fn running_stats_basic() {
        let mut s = RunningStats::new();
        assert_eq!(s.count(), 0);
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(v);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let data = [1.0, 5.5, -2.0, 8.0, 3.25, 0.0, 9.5];
        let mut all = RunningStats::new();
        for v in data {
            all.push(v);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for v in &data[..3] {
            a.push(*v);
        }
        for v in &data[3..] {
            b.push(*v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.push(3.0);
        let before = a.clone();
        a.merge(&RunningStats::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());

        let mut empty = RunningStats::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 1);
        assert_eq!(empty.mean(), 3.0);
    }

    proptest! {
        #[test]
        fn geo_mean_between_min_and_max(values in proptest::collection::vec(0.001..1e6f64, 1..32)) {
            let g = geometric_mean(&values).unwrap();
            let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(g >= min * 0.999999 && g <= max * 1.000001);
        }

        #[test]
        fn harmonic_le_geometric(values in proptest::collection::vec(0.001..1e6f64, 1..32)) {
            let h = harmonic_mean(&values).unwrap();
            let g = geometric_mean(&values).unwrap();
            prop_assert!(h <= g * 1.000001);
        }

        #[test]
        fn running_stats_mean_matches_naive(values in proptest::collection::vec(-1e6..1e6f64, 1..64)) {
            let mut s = RunningStats::new();
            for &v in &values {
                s.push(v);
            }
            let naive = values.iter().sum::<f64>() / values.len() as f64;
            prop_assert!((s.mean() - naive).abs() < 1e-6 * naive.abs().max(1.0));
        }
    }
}
