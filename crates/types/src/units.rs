//! Physical and computational quantity newtypes.
//!
//! Every quantity is a thin wrapper over `f64` with:
//! - a checked [`new`](Time::new) constructor (panics on NaN / negative),
//!   because an architecture model that produces a negative latency has a
//!   bug that must not propagate silently;
//! - `value()` accessor returning the raw magnitude in base SI-ish units
//!   (seconds, bytes, joules, watts, hertz, FLOPs, mm²);
//! - addition/subtraction within the same quantity, scaling by `f64`, and
//!   the physically meaningful cross-type operations.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};
use serde::{Deserialize, Serialize};

macro_rules! quantity {
    (
        $(#[$meta:meta])*
        $name:ident, $unit:expr, $allow_negative:expr
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Creates a new quantity from a raw value in base units.
            ///
            /// # Panics
            ///
            /// Panics if `value` is NaN, or negative for quantities where a
            /// negative magnitude is physically meaningless.
            #[track_caller]
            pub fn new(value: f64) -> Self {
                assert!(!value.is_nan(), concat!(stringify!($name), " must not be NaN"));
                if !$allow_negative {
                    assert!(
                        value >= 0.0,
                        concat!(stringify!($name), " must be non-negative, got {}"),
                        value
                    );
                }
                Self(value)
            }

            /// Fallible constructor; returns an error instead of panicking.
            pub fn try_new(value: f64) -> Result<Self, crate::InvalidQuantityError> {
                if value.is_nan() {
                    return Err(crate::InvalidQuantityError::new(stringify!($name), "NaN"));
                }
                if !$allow_negative && value < 0.0 {
                    return Err(crate::InvalidQuantityError::new(
                        stringify!($name),
                        "negative",
                    ));
                }
                Ok(Self(value))
            }

            /// Raw magnitude in base units.
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns `true` when the magnitude is exactly zero.
            pub fn is_zero(self) -> bool {
                self.0 == 0.0
            }

            /// Returns the larger of `self` and `other`.
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:.6e} {}", self.0, $unit)
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[track_caller]
            fn sub(self, rhs: Self) -> Self {
                Self::new(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[track_caller]
            fn sub_assign(&mut self, rhs: Self) {
                *self = *self - rhs;
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[track_caller]
            fn mul(self, rhs: f64) -> Self {
                Self::new(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[track_caller]
            fn mul(self, rhs: $name) -> $name {
                $name::new(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[track_caller]
            fn div(self, rhs: f64) -> Self {
                Self::new(self.0 / rhs)
            }
        }

        impl Div for $name {
            /// Dividing two like quantities yields a dimensionless ratio.
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                iter.fold(Self::ZERO, Add::add)
            }
        }
    };
}

quantity!(
    /// A duration, stored in seconds.
    Time, "s", false
);
quantity!(
    /// A data volume, stored in bytes.
    Bytes, "B", false
);
quantity!(
    /// An energy amount, stored in joules.
    Energy, "J", false
);
quantity!(
    /// A power draw, stored in watts.
    Power, "W", false
);
quantity!(
    /// A silicon area, stored in mm².
    Area, "mm^2", false
);
quantity!(
    /// A number of floating-point operations.
    Flops, "FLOP", false
);
quantity!(
    /// A clock or signalling frequency, stored in hertz.
    Frequency, "Hz", false
);
quantity!(
    /// A data rate, stored in bytes per second.
    Bandwidth, "B/s", false
);
quantity!(
    /// A compute rate, stored in FLOP per second.
    FlopsRate, "FLOP/s", false
);
quantity!(
    /// Arithmetic intensity, stored in FLOP per byte.
    ArithmeticIntensity, "FLOP/B", false
);

impl Neg for Time {
    type Output = Time;
    /// Negation exists only so that generic code using `-x` compiles; it
    /// panics at runtime on non-zero values because negative time is a bug.
    #[track_caller]
    fn neg(self) -> Time {
        Time::new(-self.0)
    }
}

// ---------------------------------------------------------------------------
// Convenience constructors / accessors
// ---------------------------------------------------------------------------

impl Time {
    /// From nanoseconds.
    pub fn from_nanos(ns: f64) -> Self {
        Self::new(ns * 1e-9)
    }
    /// From microseconds.
    pub fn from_micros(us: f64) -> Self {
        Self::new(us * 1e-6)
    }
    /// From milliseconds.
    pub fn from_millis(ms: f64) -> Self {
        Self::new(ms * 1e-3)
    }
    /// From seconds.
    pub fn from_secs(s: f64) -> Self {
        Self::new(s)
    }
    /// In nanoseconds.
    pub fn as_nanos(self) -> f64 {
        self.0 * 1e9
    }
    /// In microseconds.
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }
    /// In milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }
    /// In seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }
}

impl Bytes {
    /// From a whole number of bytes.
    pub fn from_u64(bytes: u64) -> Self {
        Self::new(bytes as f64)
    }
    /// From kibibytes (2^10 bytes).
    pub fn from_kib(kib: f64) -> Self {
        Self::new(kib * 1024.0)
    }
    /// From mebibytes (2^20 bytes).
    pub fn from_mib(mib: f64) -> Self {
        Self::new(mib * 1024.0 * 1024.0)
    }
    /// From gibibytes (2^30 bytes).
    pub fn from_gib(gib: f64) -> Self {
        Self::new(gib * 1024.0 * 1024.0 * 1024.0)
    }
    /// In kibibytes.
    pub fn as_kib(self) -> f64 {
        self.0 / 1024.0
    }
    /// In mebibytes.
    pub fn as_mib(self) -> f64 {
        self.0 / (1024.0 * 1024.0)
    }
    /// In gibibytes.
    pub fn as_gib(self) -> f64 {
        self.0 / (1024.0 * 1024.0 * 1024.0)
    }
    /// Number of bits (8 × bytes).
    pub fn bits(self) -> f64 {
        self.0 * 8.0
    }
}

impl Energy {
    /// From picojoules.
    pub fn from_picojoules(pj: f64) -> Self {
        Self::new(pj * 1e-12)
    }
    /// From nanojoules.
    pub fn from_nanojoules(nj: f64) -> Self {
        Self::new(nj * 1e-9)
    }
    /// From millijoules.
    pub fn from_millijoules(mj: f64) -> Self {
        Self::new(mj * 1e-3)
    }
    /// In picojoules.
    pub fn as_picojoules(self) -> f64 {
        self.0 * 1e12
    }
    /// In millijoules.
    pub fn as_millijoules(self) -> f64 {
        self.0 * 1e3
    }
    /// In joules.
    pub fn as_joules(self) -> f64 {
        self.0
    }
}

impl Power {
    /// From milliwatts.
    pub fn from_milliwatts(mw: f64) -> Self {
        Self::new(mw * 1e-3)
    }
    /// From watts.
    pub fn from_watts(w: f64) -> Self {
        Self::new(w)
    }
    /// In watts.
    pub fn as_watts(self) -> f64 {
        self.0
    }
    /// In milliwatts.
    pub fn as_milliwatts(self) -> f64 {
        self.0 * 1e3
    }
}

impl Area {
    /// From square millimetres.
    pub fn from_mm2(mm2: f64) -> Self {
        Self::new(mm2)
    }
    /// In square millimetres.
    pub fn as_mm2(self) -> f64 {
        self.0
    }
}

impl Flops {
    /// From giga-FLOPs.
    pub fn from_gflops(g: f64) -> Self {
        Self::new(g * 1e9)
    }
    /// From tera-FLOPs.
    pub fn from_tflops(t: f64) -> Self {
        Self::new(t * 1e12)
    }
    /// In giga-FLOPs.
    pub fn as_gflops(self) -> f64 {
        self.0 / 1e9
    }
    /// In tera-FLOPs.
    pub fn as_tflops(self) -> f64 {
        self.0 / 1e12
    }
}

impl Frequency {
    /// From megahertz.
    pub fn from_mhz(mhz: f64) -> Self {
        Self::new(mhz * 1e6)
    }
    /// From gigahertz.
    pub fn from_ghz(ghz: f64) -> Self {
        Self::new(ghz * 1e9)
    }
    /// In megahertz.
    pub fn as_mhz(self) -> f64 {
        self.0 / 1e6
    }
    /// In gigahertz.
    pub fn as_ghz(self) -> f64 {
        self.0 / 1e9
    }
    /// The period of one cycle at this frequency.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero.
    #[track_caller]
    pub fn period(self) -> Time {
        assert!(self.0 > 0.0, "cannot take the period of a 0 Hz clock");
        Time::new(1.0 / self.0)
    }
}

impl Bandwidth {
    /// From GB/s (10^9 bytes per second; vendor-sheet convention).
    pub fn from_gb_per_sec(gb: f64) -> Self {
        Self::new(gb * 1e9)
    }
    /// From GiB/s (2^30 bytes per second).
    pub fn from_gib_per_sec(gib: f64) -> Self {
        Self::new(gib * 1024.0 * 1024.0 * 1024.0)
    }
    /// In GB/s (10^9 bytes per second).
    pub fn as_gb_per_sec(self) -> f64 {
        self.0 / 1e9
    }
    /// In GiB/s.
    pub fn as_gib_per_sec(self) -> f64 {
        self.0 / (1024.0 * 1024.0 * 1024.0)
    }
    /// In TB/s (10^12 bytes per second).
    pub fn as_tb_per_sec(self) -> f64 {
        self.0 / 1e12
    }
}

impl FlopsRate {
    /// From GFLOPS.
    pub fn from_gflops(g: f64) -> Self {
        Self::new(g * 1e9)
    }
    /// From TFLOPS.
    pub fn from_tflops(t: f64) -> Self {
        Self::new(t * 1e12)
    }
    /// In GFLOPS.
    pub fn as_gflops(self) -> f64 {
        self.0 / 1e9
    }
    /// In TFLOPS.
    pub fn as_tflops(self) -> f64 {
        self.0 / 1e12
    }
}

impl ArithmeticIntensity {
    /// From FLOPs per byte.
    pub fn from_flops_per_byte(ai: f64) -> Self {
        Self::new(ai)
    }
}

// ---------------------------------------------------------------------------
// Cross-quantity arithmetic
// ---------------------------------------------------------------------------

impl Div<Time> for Bytes {
    type Output = Bandwidth;
    #[track_caller]
    fn div(self, rhs: Time) -> Bandwidth {
        Bandwidth::new(self.0 / rhs.0)
    }
}

impl Div<Bandwidth> for Bytes {
    type Output = Time;
    #[track_caller]
    fn div(self, rhs: Bandwidth) -> Time {
        Time::new(self.0 / rhs.0)
    }
}

impl Mul<Time> for Bandwidth {
    type Output = Bytes;
    #[track_caller]
    fn mul(self, rhs: Time) -> Bytes {
        Bytes::new(self.0 * rhs.0)
    }
}

impl Div<Time> for Flops {
    type Output = FlopsRate;
    #[track_caller]
    fn div(self, rhs: Time) -> FlopsRate {
        FlopsRate::new(self.0 / rhs.0)
    }
}

impl Div<FlopsRate> for Flops {
    type Output = Time;
    #[track_caller]
    fn div(self, rhs: FlopsRate) -> Time {
        Time::new(self.0 / rhs.0)
    }
}

impl Mul<Time> for FlopsRate {
    type Output = Flops;
    #[track_caller]
    fn mul(self, rhs: Time) -> Flops {
        Flops::new(self.0 * rhs.0)
    }
}

impl Div<Bytes> for Flops {
    type Output = ArithmeticIntensity;
    #[track_caller]
    fn div(self, rhs: Bytes) -> ArithmeticIntensity {
        ArithmeticIntensity::new(self.0 / rhs.0)
    }
}

impl Mul<Bytes> for ArithmeticIntensity {
    type Output = Flops;
    #[track_caller]
    fn mul(self, rhs: Bytes) -> Flops {
        Flops::new(self.0 * rhs.0)
    }
}

impl Mul<Bandwidth> for ArithmeticIntensity {
    /// `AI × bandwidth` is the attainable compute rate on the memory-bound
    /// side of a roofline.
    type Output = FlopsRate;
    #[track_caller]
    fn mul(self, rhs: Bandwidth) -> FlopsRate {
        FlopsRate::new(self.0 * rhs.0)
    }
}

impl Div<Time> for Energy {
    type Output = Power;
    #[track_caller]
    fn div(self, rhs: Time) -> Power {
        Power::new(self.0 / rhs.0)
    }
}

impl Mul<Time> for Power {
    type Output = Energy;
    #[track_caller]
    fn mul(self, rhs: Time) -> Energy {
        Energy::new(self.0 * rhs.0)
    }
}

impl Div<Power> for Energy {
    type Output = Time;
    #[track_caller]
    fn div(self, rhs: Power) -> Time {
        Time::new(self.0 / rhs.0)
    }
}

impl Div<FlopsRate> for Bandwidth {
    /// The roofline "machine balance" inverse: bytes per FLOP. Rarely used
    /// directly; the knee of a roofline is `FlopsRate / Bandwidth`.
    type Output = f64;
    fn div(self, rhs: FlopsRate) -> f64 {
        self.0 / rhs.0
    }
}

impl Div<Bandwidth> for FlopsRate {
    /// Roofline knee: the arithmetic intensity at which a machine moves from
    /// memory-bound to compute-bound.
    type Output = ArithmeticIntensity;
    #[track_caller]
    fn div(self, rhs: Bandwidth) -> ArithmeticIntensity {
        ArithmeticIntensity::new(self.0 / rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn time_constructors_roundtrip() {
        assert!((Time::from_nanos(1.5).as_nanos() - 1.5).abs() < 1e-12);
        assert!((Time::from_micros(2.0).as_millis() - 0.002).abs() < 1e-12);
        assert!((Time::from_millis(3.0).as_secs() - 0.003).abs() < 1e-12);
    }

    #[test]
    fn bytes_constructors_roundtrip() {
        assert_eq!(Bytes::from_kib(1.0).value(), 1024.0);
        assert_eq!(Bytes::from_mib(1.0).as_kib(), 1024.0);
        assert_eq!(Bytes::from_gib(2.0).as_mib(), 2048.0);
        assert_eq!(Bytes::from_u64(4).bits(), 32.0);
    }

    #[test]
    fn bandwidth_units() {
        let bw = Bandwidth::from_gb_per_sec(1935.0);
        assert!((bw.as_tb_per_sec() - 1.935).abs() < 1e-12);
    }

    #[test]
    fn cross_ops_dimensional_identities() {
        let t = Bytes::from_gib(1.0) / Bandwidth::from_gib_per_sec(2.0);
        assert!((t.as_secs() - 0.5).abs() < 1e-12);

        let e = Power::from_watts(100.0) * Time::from_secs(2.0);
        assert_eq!(e.as_joules(), 200.0);

        let p = Energy::new(10.0) / Time::from_secs(5.0);
        assert_eq!(p.as_watts(), 2.0);

        let knee = FlopsRate::from_tflops(312.0) / Bandwidth::from_gb_per_sec(1935.0);
        assert!((knee.value() - 161.24).abs() < 0.01);
    }

    #[test]
    fn frequency_period() {
        let f = Frequency::from_mhz(666.0);
        assert!((f.period().as_nanos() - 1.5015).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_time_panics() {
        let _ = Time::new(-1.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_energy_panics() {
        let _ = Energy::new(f64::NAN);
    }

    #[test]
    fn try_new_reports_errors() {
        assert!(Time::try_new(1.0).is_ok());
        let err = Time::try_new(-1.0).unwrap_err();
        assert_eq!(err.kind(), "Time");
        assert!(Bytes::try_new(f64::NAN).is_err());
    }

    #[test]
    fn sum_over_iterator() {
        let total: Time = (1..=4).map(|i| Time::from_secs(i as f64)).sum();
        assert_eq!(total.as_secs(), 10.0);
    }

    #[test]
    fn display_contains_unit() {
        assert!(format!("{}", Time::from_secs(1.0)).contains('s'));
        assert!(format!("{}", Power::from_watts(116.0)).contains('W'));
        assert!(!format!("{:?}", Bytes::ZERO).is_empty());
    }

    proptest! {
        #[test]
        fn add_commutes(a in 0.0..1e12f64, b in 0.0..1e12f64) {
            let x = Time::new(a) + Time::new(b);
            let y = Time::new(b) + Time::new(a);
            prop_assert_eq!(x.value(), y.value());
        }

        #[test]
        fn ratio_of_like_quantities_is_dimensionless(a in 1e-6..1e12f64, b in 1e-6..1e12f64) {
            let r = Bytes::new(a) / Bytes::new(b);
            prop_assert!((r - a / b).abs() <= 1e-9 * r.abs().max(1.0));
        }

        #[test]
        fn bandwidth_time_roundtrip(bytes in 1.0..1e15f64, bw in 1.0..1e13f64) {
            let t = Bytes::new(bytes) / Bandwidth::new(bw);
            let back = Bandwidth::new(bw) * t;
            prop_assert!((back.value() - bytes).abs() <= 1e-6 * bytes);
        }

        #[test]
        fn max_min_ordering(a in 0.0..1e9f64, b in 0.0..1e9f64) {
            let x = Energy::new(a);
            let y = Energy::new(b);
            prop_assert!(x.max(y).value() >= x.min(y).value());
        }
    }
}
