//! `papi-types` — foundational quantity types shared by every PAPI crate.
//!
//! The PAPI simulator manipulates physical quantities (time, energy, power,
//! bandwidth, silicon area) and computational quantities (FLOPs, bytes,
//! arithmetic intensity). Mixing those up as bare `f64`s is the classic way
//! an architecture simulator silently produces garbage, so this crate wraps
//! each quantity in a newtype with checked constructors, the arithmetic that
//! is physically meaningful (`Energy / Time = Power`,
//! `Bytes / Time = Bandwidth`, `Flops / Bytes = ArithmeticIntensity`, …),
//! and human-readable `Display` implementations.
//!
//! # Example
//!
//! ```
//! use papi_types::{Bytes, Flops, Time};
//!
//! let flops = Flops::new(2.0e12);
//! let bytes = Bytes::from_gib(128.0);
//! let ai = flops / bytes; // FLOPs/byte
//! assert!(ai.value() > 14.0 && ai.value() < 15.0);
//!
//! let bw = Bytes::from_gib(1.0) / Time::from_millis(1.0);
//! assert!(bw.as_gib_per_sec() > 999.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod dtype;
mod stats;
mod units;

pub use dtype::DataType;
pub use stats::{geometric_mean, harmonic_mean, RunningStats};
pub use units::{
    Area, ArithmeticIntensity, Bandwidth, Bytes, Energy, Flops, FlopsRate, Frequency, Power, Time,
};

/// Error produced when constructing a quantity from an invalid raw value.
///
/// All quantity constructors reject NaN; most also reject negative values
/// because negative time/energy/area has no physical meaning in the
/// simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidQuantityError {
    kind: &'static str,
    reason: &'static str,
}

impl InvalidQuantityError {
    pub(crate) fn new(kind: &'static str, reason: &'static str) -> Self {
        Self { kind, reason }
    }

    /// The quantity type that rejected the value (e.g. `"Time"`).
    pub fn kind(&self) -> &'static str {
        self.kind
    }
}

impl core::fmt::Display for InvalidQuantityError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invalid {} value: {}", self.kind, self.reason)
    }
}

impl std::error::Error for InvalidQuantityError {}
