//! Numeric element types used by LLM inference.

use crate::Bytes;
use serde::{Deserialize, Serialize};

/// The element data type used for weights, activations and KV-cache entries.
///
/// The PAPI paper evaluates everything in FP16; the other variants exist so
/// the kernel byte-count math can be exercised at different precisions (an
/// extension the paper mentions only in passing).
///
/// # Example
///
/// ```
/// use papi_types::DataType;
///
/// assert_eq!(DataType::Fp16.size_bytes(), 2);
/// assert_eq!(DataType::Fp16.size().value(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum DataType {
    /// IEEE 754 binary32.
    Fp32,
    /// IEEE 754 binary16 (the paper's evaluation precision).
    #[default]
    Fp16,
    /// bfloat16.
    Bf16,
    /// 8-bit integer (weight-only quantization extension).
    Int8,
    /// 4-bit integer (weight-only quantization extension).
    Int4,
}

impl DataType {
    /// Size of one element in whole bytes (INT4 rounds up to 1 for
    /// addressing purposes; use [`DataType::size`] for exact arithmetic).
    pub const fn size_bytes(self) -> u64 {
        match self {
            DataType::Fp32 => 4,
            DataType::Fp16 | DataType::Bf16 => 2,
            DataType::Int8 => 1,
            DataType::Int4 => 1,
        }
    }

    /// Exact size of one element as a [`Bytes`] quantity (INT4 = 0.5 B).
    pub fn size(self) -> Bytes {
        match self {
            DataType::Int4 => Bytes::new(0.5),
            other => Bytes::from_u64(other.size_bytes()),
        }
    }

    /// Bits per element.
    pub fn bits(self) -> u32 {
        match self {
            DataType::Fp32 => 32,
            DataType::Fp16 | DataType::Bf16 => 16,
            DataType::Int8 => 8,
            DataType::Int4 => 4,
        }
    }
}

impl core::fmt::Display for DataType {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            DataType::Fp32 => "fp32",
            DataType::Fp16 => "fp16",
            DataType::Bf16 => "bf16",
            DataType::Int8 => "int8",
            DataType::Int4 => "int4",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_consistent_with_bits() {
        for dt in [
            DataType::Fp32,
            DataType::Fp16,
            DataType::Bf16,
            DataType::Int8,
            DataType::Int4,
        ] {
            assert!((dt.size().bits() - dt.bits() as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn default_is_fp16() {
        assert_eq!(DataType::default(), DataType::Fp16);
    }

    #[test]
    fn display_is_lowercase() {
        assert_eq!(DataType::Fp16.to_string(), "fp16");
        assert_eq!(DataType::Int4.to_string(), "int4");
    }
}
