//! FC-kernel placement policies.

use crate::estimator::AiEstimator;
use papi_types::Time;
use serde::{Deserialize, Serialize};

/// Where an FC kernel executes this iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Placement {
    /// The high-performance processor's processing units (GPU tensor
    /// cores).
    Pu,
    /// The FC-PIM devices.
    FcPim,
}

impl core::fmt::Display for Placement {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Placement::Pu => f.write_str("PU"),
            Placement::FcPim => f.write_str("FC-PIM"),
        }
    }
}

/// Decision statistics a scheduler accumulates over a decode.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedulerStats {
    /// Placement decisions made.
    pub decisions: u64,
    /// Times the placement changed from the previous iteration — each
    /// one is a runtime rescheduling event (paper Fig. 5(d)).
    pub switches: u64,
    /// Decisions that chose the PU.
    pub pu_decisions: u64,
    /// Decisions that chose FC-PIM.
    pub fc_pim_decisions: u64,
}

/// A policy deciding FC-kernel placement from the observed parallelism.
///
/// Attention placement is not part of the trait: in every system the
/// paper evaluates, attention runs on whatever memory-side device holds
/// the KV cache.
///
/// `Send` is a supertrait so boxed schedulers can live inside serving
/// sessions that fan out across threads (the cluster engine's parallel
/// step mode).
pub trait FcScheduler: Send {
    /// Decides the placement for an iteration at `(rlp, tlp)`.
    fn decide(&mut self, rlp: u64, tlp: u64) -> Placement;

    /// Human-readable policy name.
    fn name(&self) -> &str;

    /// Statistics so far.
    fn stats(&self) -> SchedulerStats;
}

/// PAPI's dynamic parallelism-aware scheduler (paper §5.2): estimate
/// `AI ≈ RLP × TLP`, compare with the calibrated threshold `α`, place on
/// the PU when compute-bound.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PapiScheduler {
    alpha: f64,
    last: Option<Placement>,
    stats: SchedulerStats,
}

impl PapiScheduler {
    /// Creates the scheduler with threshold `alpha` (from
    /// [`calibrate_alpha`](crate::calibrate_alpha)).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not positive and finite.
    #[track_caller]
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha.is_finite() && alpha > 0.0,
            "alpha must be positive and finite"
        );
        Self {
            alpha,
            last: None,
            stats: SchedulerStats::default(),
        }
    }

    /// The memory-boundedness threshold.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl FcScheduler for PapiScheduler {
    fn decide(&mut self, rlp: u64, tlp: u64) -> Placement {
        let placement = if AiEstimator::estimate(rlp, tlp) > self.alpha {
            Placement::Pu
        } else {
            Placement::FcPim
        };
        self.stats.decisions += 1;
        match placement {
            Placement::Pu => self.stats.pu_decisions += 1,
            Placement::FcPim => self.stats.fc_pim_decisions += 1,
        }
        if let Some(last) = self.last {
            if last != placement {
                self.stats.switches += 1;
            }
        }
        self.last = Some(placement);
        placement
    }

    fn name(&self) -> &str {
        "papi-dynamic"
    }

    fn stats(&self) -> SchedulerStats {
        self.stats
    }
}

/// A static policy: the same placement forever, as in AttAcc (FC always
/// on the GPU), IANUS (FC always on PIM), or a PIM-only system.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StaticScheduler {
    placement: Placement,
    label: String,
    stats: SchedulerStats,
}

impl StaticScheduler {
    /// AttAcc's mapping: FC kernels always on the GPU.
    pub fn attacc() -> Self {
        Self {
            placement: Placement::Pu,
            label: "static-fc-on-gpu (AttAcc)".to_owned(),
            stats: SchedulerStats::default(),
        }
    }

    /// IANUS / PIM-only mapping: FC kernels always on PIM.
    pub fn pim_only() -> Self {
        Self {
            placement: Placement::FcPim,
            label: "static-fc-on-pim (IANUS/PIM-only)".to_owned(),
            stats: SchedulerStats::default(),
        }
    }

    /// An arbitrary fixed placement.
    pub fn fixed(placement: Placement) -> Self {
        Self {
            placement,
            label: format!("static-{placement}"),
            stats: SchedulerStats::default(),
        }
    }
}

impl FcScheduler for StaticScheduler {
    fn decide(&mut self, _rlp: u64, _tlp: u64) -> Placement {
        self.stats.decisions += 1;
        match self.placement {
            Placement::Pu => self.stats.pu_decisions += 1,
            Placement::FcPim => self.stats.fc_pim_decisions += 1,
        }
        self.placement
    }

    fn name(&self) -> &str {
        &self.label
    }

    fn stats(&self) -> SchedulerStats {
        self.stats
    }
}

/// The oracle: given the *true* latency of both targets, always picks
/// the faster one. An upper bound no online policy can beat — used to
/// measure how much of the oracle's win the α-threshold captures.
pub struct OracleScheduler<F, G>
where
    F: FnMut(u64) -> Time + Send,
    G: FnMut(u64) -> Time + Send,
{
    pim_latency: F,
    pu_latency: G,
    last: Option<Placement>,
    stats: SchedulerStats,
}

impl<F, G> OracleScheduler<F, G>
where
    F: FnMut(u64) -> Time + Send,
    G: FnMut(u64) -> Time + Send,
{
    /// Creates the oracle from latency callbacks taking the token count
    /// `RLP × TLP`.
    pub fn new(pim_latency: F, pu_latency: G) -> Self {
        Self {
            pim_latency,
            pu_latency,
            last: None,
            stats: SchedulerStats::default(),
        }
    }
}

impl<F, G> core::fmt::Debug for OracleScheduler<F, G>
where
    F: FnMut(u64) -> Time + Send,
    G: FnMut(u64) -> Time + Send,
{
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("OracleScheduler")
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl<F, G> FcScheduler for OracleScheduler<F, G>
where
    F: FnMut(u64) -> Time + Send,
    G: FnMut(u64) -> Time + Send,
{
    fn decide(&mut self, rlp: u64, tlp: u64) -> Placement {
        let tokens = rlp * tlp;
        let pim = (self.pim_latency)(tokens);
        let pu = (self.pu_latency)(tokens);
        let placement = if pu.value() < pim.value() {
            Placement::Pu
        } else {
            Placement::FcPim
        };
        self.stats.decisions += 1;
        match placement {
            Placement::Pu => self.stats.pu_decisions += 1,
            Placement::FcPim => self.stats.fc_pim_decisions += 1,
        }
        if let Some(last) = self.last {
            if last != placement {
                self.stats.switches += 1;
            }
        }
        self.last = Some(placement);
        placement
    }

    fn name(&self) -> &str {
        "oracle"
    }

    fn stats(&self) -> SchedulerStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn papi_scheduler_thresholds_on_tokens() {
        let mut s = PapiScheduler::new(24.0);
        assert_eq!(s.decide(4, 1), Placement::FcPim); // 4 ≤ 24
        assert_eq!(s.decide(16, 1), Placement::FcPim); // 16 ≤ 24
        assert_eq!(s.decide(16, 2), Placement::Pu); // 32 > 24
        assert_eq!(s.decide(64, 4), Placement::Pu);
        let stats = s.stats();
        assert_eq!(stats.decisions, 4);
        assert_eq!(stats.pu_decisions, 2);
        assert_eq!(stats.fc_pim_decisions, 2);
        assert_eq!(stats.switches, 1);
    }

    #[test]
    fn papi_scheduler_reproduces_fig5d_rescheduling() {
        // Fig. 5(d): as requests finish, RLP decays 5→4→4→3→2 and the FC
        // kernel migrates PU → PIM once RLP×TLP crosses α.
        let mut s = PapiScheduler::new(3.5);
        let placements: Vec<Placement> = [5u64, 4, 4, 3, 2]
            .iter()
            .map(|&rlp| s.decide(rlp, 1))
            .collect();
        assert_eq!(
            placements,
            [
                Placement::Pu,
                Placement::Pu,
                Placement::Pu,
                Placement::FcPim,
                Placement::FcPim
            ]
        );
        assert_eq!(s.stats().switches, 1);
    }

    #[test]
    fn static_schedulers_never_switch() {
        let mut attacc = StaticScheduler::attacc();
        let mut pim = StaticScheduler::pim_only();
        for rlp in [1u64, 128, 2, 64] {
            assert_eq!(attacc.decide(rlp, 8), Placement::Pu);
            assert_eq!(pim.decide(rlp, 8), Placement::FcPim);
        }
        assert_eq!(attacc.stats().switches, 0);
        assert_eq!(pim.stats().switches, 0);
        assert!(attacc.name().contains("AttAcc"));
    }

    #[test]
    fn oracle_picks_argmin() {
        // PIM latency grows with tokens; PU latency flat: oracle flips at
        // the crossover.
        let mut oracle = OracleScheduler::new(
            |tokens| Time::from_micros(tokens as f64),
            |_| Time::from_micros(10.0),
        );
        assert_eq!(oracle.decide(4, 1), Placement::FcPim);
        assert_eq!(oracle.decide(16, 1), Placement::Pu);
        assert_eq!(oracle.stats().switches, 1);
        assert_eq!(oracle.name(), "oracle");
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bad_alpha_rejected() {
        PapiScheduler::new(0.0);
    }
}
