//! Arithmetic-intensity estimation (paper §5.1, Eq. (1)/(2), Fig. 6).

use papi_llm::{FcKernel, ModelConfig, Parallelism};
use serde::{Deserialize, Serialize};

/// The FC-kernel arithmetic-intensity estimator the PAPI hardware
/// scheduler implements.
///
/// # Example
///
/// ```
/// use papi_sched::AiEstimator;
///
/// // Eq. (2): the estimate is simply RLP × TLP.
/// assert_eq!(AiEstimator::estimate(16, 4), 64.0);
/// // Eq. (1) for GPT-3 175B's hidden dimension is close below it:
/// let exact = AiEstimator::exact(12288, 16, 4);
/// assert!(exact < 64.0 && exact > 60.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AiEstimator;

impl AiEstimator {
    /// Eq. (1): the exact arithmetic intensity of a square `(h × h)` FC
    /// kernel at `(RLP, TLP)`:
    ///
    /// ```text
    /// AI = RLP·TLP·h²·2 / ((2·RLP·TLP·h + h²)·2)
    /// ```
    pub fn exact(h: u64, rlp: u64, tlp: u64) -> f64 {
        let b = (rlp * tlp) as f64;
        let h = h as f64;
        (b * h * h * 2.0) / ((2.0 * b * h + h * h) * 2.0)
    }

    /// Eq. (2): the runtime estimate `RLP × TLP` — two register reads
    /// and one multiply, the whole cost of the hardware predictor.
    pub fn estimate(rlp: u64, tlp: u64) -> f64 {
        (rlp * tlp) as f64
    }

    /// Relative error of the estimate versus Eq. (1).
    pub fn relative_error(h: u64, rlp: u64, tlp: u64) -> f64 {
        let exact = Self::exact(h, rlp, tlp);
        (Self::estimate(rlp, tlp) - exact) / exact
    }
}

/// One row of the Fig. 6 comparison: the measured (per-kernel,
/// byte-accurate) arithmetic intensity of a model's FC kernels versus
/// the `RLP × TLP` estimate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AiComparison {
    /// Request-level parallelism.
    pub rlp: u64,
    /// Token-level parallelism.
    pub tlp: u64,
    /// FLOP/byte of the aggregated FC kernels (the "measured" series).
    pub measured: f64,
    /// The Eq. (2) estimate.
    pub estimated: f64,
}

impl AiComparison {
    /// Builds the comparison for `model` at one parallelism point,
    /// aggregating all FC kernels of a layer (as the profiler the paper
    /// measures with would).
    pub fn for_model(model: &ModelConfig, rlp: u64, tlp: u64) -> Self {
        let p = Parallelism::new(rlp, tlp);
        let kernels = FcKernel::layer_kernels(model);
        let flops: f64 = kernels.iter().map(|k| k.flops(p).value()).sum();
        let bytes: f64 = kernels.iter().map(|k| k.bytes(model, p).value()).sum();
        Self {
            rlp,
            tlp,
            measured: flops / bytes,
            estimated: AiEstimator::estimate(rlp, tlp),
        }
    }

    /// The Fig. 6 grid: RLP ∈ {4, 8, 16, 32, 64, 128} × TLP ∈ {2, 4, 6, 8}.
    pub fn fig6_grid(model: &ModelConfig) -> Vec<AiComparison> {
        let mut rows = Vec::new();
        for tlp in [8u64, 6, 4, 2] {
            for rlp in [128u64, 64, 32, 16, 8, 4] {
                rows.push(Self::for_model(model, rlp, tlp));
            }
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use papi_llm::ModelPreset;
    use proptest::prelude::*;

    #[test]
    fn estimate_tracks_exact_for_large_h() {
        // §5.1: for GPT-3-scale hidden dims the estimate is within a few
        // percent until parallelism gets very large.
        for (rlp, tlp) in [(4u64, 2u64), (16, 4), (32, 8)] {
            let err = AiEstimator::relative_error(12288, rlp, tlp);
            assert!(
                err.abs() < 0.05,
                "rlp={rlp} tlp={tlp}: relative error {err}"
            );
        }
    }

    #[test]
    fn estimate_overshoots_at_extreme_parallelism() {
        // Fig. 6's caveat: at RLP = 128 the estimate is slightly larger
        // than the measured AI — harmless because both sides of the
        // comparison are deep in compute-bound territory.
        let err = AiEstimator::relative_error(9216, 128, 8);
        assert!(
            err > 0.05 && err < 0.40,
            "error at extreme parallelism {err}"
        );
    }

    #[test]
    fn fig6_grid_matches_paper_shape() {
        let model = ModelPreset::Gpt3_66B.config();
        let rows = AiComparison::fig6_grid(&model);
        assert_eq!(rows.len(), 24);
        for row in &rows {
            // Estimate is always an over-approximation of measured AI…
            assert!(row.estimated >= row.measured, "{row:?}");
            // …but a close one for moderate parallelism.
            if row.rlp * row.tlp <= 128 {
                let rel = (row.estimated - row.measured) / row.measured;
                assert!(rel < 0.06, "{row:?} rel err {rel}");
            }
        }
    }

    #[test]
    fn exact_matches_eq1_formula() {
        let h = 12288u64;
        let ai = AiEstimator::exact(h, 4, 2);
        let b = 8.0;
        let hf = h as f64;
        let manual = b * hf * hf * 2.0 / ((2.0 * b * hf + hf * hf) * 2.0);
        assert!((ai - manual).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn exact_below_estimate(h in 1024u64..20_000, rlp in 1u64..256, tlp in 1u64..8) {
            prop_assert!(AiEstimator::exact(h, rlp, tlp) < AiEstimator::estimate(rlp, tlp));
        }

        #[test]
        fn error_shrinks_with_h(rlp in 1u64..128, tlp in 1u64..8) {
            let small = AiEstimator::relative_error(2048, rlp, tlp);
            let large = AiEstimator::relative_error(16384, rlp, tlp);
            prop_assert!(large <= small + 1e-12);
        }
    }
}
