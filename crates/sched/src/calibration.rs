//! Offline α calibration (paper §5.2.1).
//!
//! "The threshold α is determined through offline iterative evaluation,
//! where we run the FC kernel on both PIM and PU units under varying
//! parallelization levels, using the observed execution times to
//! establish the best α to choose."
//!
//! [`calibrate_alpha`] does exactly that: sweep the token count
//! `B = RLP × TLP`, measure both latencies, and return the crossover.

use papi_types::Time;

/// Result of an α calibration sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// The chosen threshold: FC kernels with `RLP × TLP > α` go to the
    /// PU.
    pub alpha: f64,
    /// The sweep's `(tokens, pim_latency, pu_latency)` samples, for
    /// reporting.
    pub samples: Vec<(u64, Time, Time)>,
}

/// Sweeps token counts `1..=max_tokens` and returns the crossover
/// threshold: the midpoint between the last token count where PIM wins
/// and the first where the PU wins.
///
/// If the PU never wins within the sweep, α is `max_tokens` (everything
/// stays on PIM); if the PU always wins, α is 0.5 (everything goes to
/// the PU).
///
/// # Panics
///
/// Panics if `max_tokens` is zero.
#[track_caller]
pub fn calibrate_alpha(
    mut pim_latency: impl FnMut(u64) -> Time,
    mut pu_latency: impl FnMut(u64) -> Time,
    max_tokens: u64,
) -> Calibration {
    assert!(max_tokens > 0, "sweep needs at least one point");
    let mut samples = Vec::new();
    let mut last_pim_win: Option<u64> = None;
    let mut first_pu_win: Option<u64> = None;
    for tokens in 1..=max_tokens {
        let pim = pim_latency(tokens);
        let pu = pu_latency(tokens);
        samples.push((tokens, pim, pu));
        if pu.value() < pim.value() {
            if first_pu_win.is_none() {
                first_pu_win = Some(tokens);
            }
        } else if first_pu_win.is_none() {
            last_pim_win = Some(tokens);
        }
    }
    let alpha = match (last_pim_win, first_pu_win) {
        (Some(pim), Some(pu)) => (pim as f64 + pu as f64) / 2.0,
        (Some(_), None) => max_tokens as f64,
        (None, Some(_)) => 0.5,
        (None, None) => unreachable!("sweep covered at least one point"),
    };
    Calibration { alpha, samples }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn finds_crossover_of_linear_vs_flat() {
        // PIM: 1 µs per token. PU: flat 10 µs. Crossover between 10 and 11.
        let cal = calibrate_alpha(
            |t| Time::from_micros(t as f64),
            |_| Time::from_micros(10.0),
            64,
        );
        assert!((cal.alpha - 10.5).abs() < 1e-9, "alpha {}", cal.alpha);
        assert_eq!(cal.samples.len(), 64);
    }

    #[test]
    fn pim_always_wins_gives_max() {
        let cal = calibrate_alpha(|_| Time::from_micros(1.0), |_| Time::from_micros(100.0), 32);
        assert_eq!(cal.alpha, 32.0);
    }

    #[test]
    fn pu_always_wins_gives_half() {
        let cal = calibrate_alpha(|_| Time::from_micros(100.0), |_| Time::from_micros(1.0), 32);
        assert_eq!(cal.alpha, 0.5);
    }

    #[test]
    fn ties_go_to_pim() {
        // Equal latency is "PIM wins" (cheaper energy); crossover sits
        // past the tie point.
        let cal = calibrate_alpha(|_| Time::from_micros(5.0), |_| Time::from_micros(5.0), 8);
        assert_eq!(cal.alpha, 8.0);
    }

    proptest! {
        #[test]
        fn alpha_separates_the_two_regimes(crossover in 2u64..100) {
            // A synthetic pair with a known crossover.
            let cal = calibrate_alpha(
                move |t| Time::from_micros(t as f64),
                move |_| Time::from_micros(crossover as f64 + 0.5),
                128,
            );
            // PIM wins up to `crossover`, PU wins after.
            prop_assert!(cal.alpha > crossover as f64);
            prop_assert!(cal.alpha < crossover as f64 + 1.0);
        }
    }
}
