//! `papi-sched` — PAPI's dynamic parallelism-aware scheduling.
//!
//! The paper's central mechanism (§5): a lightweight runtime predictor
//! estimates the FC kernel's arithmetic intensity as `RLP × TLP`
//! (Eq. (2), a provably tight approximation of Eq. (1) for large hidden
//! dimensions), compares it against an offline-calibrated threshold `α`,
//! and places the FC kernel on the GPU's processing units when
//! compute-bound or on the FC-PIM devices when memory-bound. Attention
//! always runs on Attn-PIM.
//!
//! - [`estimator`] — Eq. (1) exact arithmetic intensity, the Eq. (2)
//!   estimate, and the Fig. 6 accuracy comparison.
//! - [`policy`] — the `FcScheduler` trait with the PAPI dynamic policy
//!   and the paper's static baselines (AttAcc, IANUS, PIM-only), plus an
//!   oracle upper bound.
//! - [`calibration`] — the §5.2.1 offline iterative evaluation that
//!   picks `α` from measured PU/PIM latencies.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod calibration;
pub mod estimator;
pub mod policy;

pub use calibration::calibrate_alpha;
pub use estimator::AiEstimator;
pub use policy::{FcScheduler, OracleScheduler, PapiScheduler, Placement, StaticScheduler};
