//! Model-based property test for [`KvBlockPool`]: arbitrary
//! alloc / append / fork / release sequences never leak blocks, never
//! double-free, and every block's refcount always equals the number of
//! live holders.
//!
//! The model is the set of live [`KvSeq`]s itself: after every
//! operation the pool's counters are re-derived from the sequences'
//! block lists and compared against the pool's own bookkeeping.

use papi_kv::{BlockId, KvBlockPool, KvSeq, KvTier};
use proptest::prelude::*;
use std::collections::HashMap;

fn check_against_model(pool: &KvBlockPool, seqs: &[KvSeq]) {
    // Re-derive per-block holder counts from the live sequences.
    let mut holders: HashMap<BlockId, u32> = HashMap::new();
    for seq in seqs {
        for &b in seq.blocks() {
            *holders.entry(b).or_insert(0) += 1;
        }
    }
    // No leaks, no phantom blocks: in-use is exactly the held set, and
    // the free list is its complement.
    assert_eq!(pool.blocks_in_use(), holders.len() as u64);
    assert_eq!(
        pool.free_blocks() + pool.blocks_in_use(),
        pool.total_blocks()
    );
    // Refcounts match live holders, block by block.
    for b in 0..pool.total_blocks() as BlockId {
        assert_eq!(
            pool.refcount(b),
            holders.get(&b).copied().unwrap_or(0),
            "block {b}: pool refcount disagrees with live holders"
        );
    }
    // Every sequence keeps the capacity invariant.
    for seq in seqs {
        assert_eq!(seq.blocks().len() as u64, pool.blocks_for(seq.tokens()));
    }
}

fn run_ops(block_size: u64, total_blocks: u64, ops: &[(u8, u64)]) {
    let mut pool = KvBlockPool::new(block_size, total_blocks);
    let mut seqs: Vec<KvSeq> = Vec::new();
    for &(op, arg) in ops {
        match op {
            // Open a fresh sequence and append up to `arg` tokens.
            0 => {
                let mut seq = pool.new_seq();
                let before = pool.stats();
                if !pool.append(&mut seq, arg) {
                    // A failed allocation must leave the pool untouched.
                    assert_eq!(pool.stats(), before);
                    assert_eq!(seq.tokens(), 0);
                }
                seqs.push(seq);
            }
            // Append to an existing sequence (may trigger copy-on-write
            // when its partial tail is shared with a fork).
            1 if !seqs.is_empty() => {
                let idx = arg as usize % seqs.len();
                let mut seq = seqs.swap_remove(idx);
                let tokens_before = seq.tokens();
                if !pool.append(&mut seq, 1 + arg % 37) {
                    assert_eq!(seq.tokens(), tokens_before);
                }
                seqs.push(seq);
            }
            // Fork the full-block prefix of an existing sequence.
            2 if !seqs.is_empty() => {
                let idx = arg as usize % seqs.len();
                let full = (seqs[idx].tokens() / block_size) as usize;
                let prefix: Vec<BlockId> = seqs[idx].blocks()[..full].to_vec();
                let forked = pool.fork_prefix(&prefix);
                assert_eq!(forked.tokens(), full as u64 * block_size);
                seqs.push(forked);
            }
            // Release a sequence.
            3 if !seqs.is_empty() => {
                let idx = arg as usize % seqs.len();
                let seq = seqs.swap_remove(idx);
                pool.release_seq(seq);
            }
            // Export a sequence (migration detach) and immediately
            // re-import it. Import allocates private blocks, so it can
            // fail when the exported sequence shared blocks with forks
            // (export freed fewer blocks than the import needs); a
            // failed import drops the sequence, which the model treats
            // as a release.
            4 if !seqs.is_empty() => {
                let idx = arg as usize % seqs.len();
                let seq = seqs.swap_remove(idx);
                let tokens = seq.tokens();
                let export = pool.export_seq(seq);
                assert_eq!(export.tokens, tokens);
                assert_eq!(export.blocks, pool.blocks_for(tokens));
                check_against_model(&pool, &seqs); // in flight: holds nothing
                if let Some(imported) = pool.import_seq(export) {
                    assert_eq!(imported.tokens(), tokens);
                    seqs.push(imported);
                }
            }
            _ => {}
        }
        check_against_model(&pool, &seqs);
    }
    // Draining everything returns the pool to pristine.
    for seq in seqs.drain(..) {
        pool.release_seq(seq);
    }
    assert_eq!(pool.blocks_in_use(), 0);
    assert_eq!(pool.free_blocks(), pool.total_blocks());
}

/// Mirrors the tier against a model map, tolerating the tier's own LRU
/// drops (whose victims the model discovers by peeking): every
/// surviving entry matches the model's token count, occupancy is
/// exactly the sum over survivors, and nothing lives in both tiers —
/// a spilled context holds zero pool blocks by construction (spill
/// crosses through an export), which `check_against_model` already
/// proves for the pool side.
fn sync_tier_model(tier: &KvTier, model: &mut HashMap<u64, u64>) {
    model.retain(|&key, &mut tokens| match tier.peek(key) {
        Some(held) => {
            assert_eq!(held, tokens, "tier entry {key} drifted from the model");
            true
        }
        None => false, // LRU-dropped under tier budget pressure
    });
    assert_eq!(tier.len(), model.len(), "tier holds entries the model lost");
    let expected: u64 = model.values().map(|&t| tier.blocks_for(t)).sum();
    assert_eq!(tier.blocks_in_use(), expected, "tier occupancy drifted");
    assert!(tier.blocks_in_use() <= tier.budget_blocks());
}

/// Arbitrary spill/fetch traffic between a hot pool and a capacity
/// tier: pool invariants hold throughout (re-derived from live
/// sequences), tier occupancy always equals the modeled survivor set,
/// and a context is never resident in both tiers at once.
fn run_tier_ops(block_size: u64, total_blocks: u64, budget_blocks: u64, ops: &[(u8, u64)]) {
    let mut pool = KvBlockPool::new(block_size, total_blocks);
    let mut tier = KvTier::new(block_size, budget_blocks);
    let mut seqs: Vec<KvSeq> = Vec::new();
    let mut model: HashMap<u64, u64> = HashMap::new();
    for &(op, arg) in ops {
        match op {
            // Open a fresh sequence and append up to `arg` tokens (a
            // full pool refuses and leaves the sequence empty).
            0 => {
                let mut seq = pool.new_seq();
                let _ = pool.append(&mut seq, arg % 100);
                seqs.push(seq);
            }
            // Release a sequence.
            1 if !seqs.is_empty() => {
                let idx = arg as usize % seqs.len();
                pool.release_seq(seqs.swap_remove(idx));
            }
            // Spill a live sequence: export it (the pool frees its
            // blocks — the context now holds *nothing* hot) and record
            // it in the tier under a small key space so re-spills and
            // extend-in-place both happen.
            2 if !seqs.is_empty() => {
                let idx = arg as usize % seqs.len();
                let seq = seqs.swap_remove(idx);
                let tokens = seq.tokens();
                let export = pool.export_seq(seq);
                assert_eq!(export.tokens, tokens);
                let key = arg % 6;
                let prior = model.get(&key).copied().unwrap_or(0);
                let outcome = tier.spill(key, tokens);
                if outcome.accepted {
                    model.insert(key, tokens.max(prior));
                } else {
                    // Rejected: the whole record exceeds the budget,
                    // and the tier must be untouched.
                    assert!(tier.blocks_for(tokens.max(prior)) > tier.budget_blocks());
                    assert_eq!(outcome.evicted_entries, 0);
                }
            }
            // Fetch a spilled context back: the tier frees its record
            // first (one tier at a time), then the pool
            // re-materializes it if there is room — the serving layer
            // guarantees room before fetching; here a failed append
            // just drops the context.
            3 => {
                let key = arg % 6;
                if let Some(tokens) = tier.fetch(key) {
                    assert_eq!(model.remove(&key), Some(tokens));
                    let mut seq = pool.new_seq();
                    if pool.append(&mut seq, tokens) {
                        seqs.push(seq);
                    } else {
                        pool.release_seq(seq);
                    }
                }
            }
            _ => {}
        }
        check_against_model(&pool, &seqs);
        sync_tier_model(&tier, &mut model);
    }
    // Draining both tiers returns everything to pristine.
    for seq in seqs.drain(..) {
        pool.release_seq(seq);
    }
    let keys: Vec<u64> = model.keys().copied().collect();
    for key in keys {
        assert!(tier.fetch(key).is_some());
    }
    assert_eq!(pool.blocks_in_use(), 0);
    assert_eq!(tier.blocks_in_use(), 0);
    assert!(tier.is_empty());
}

proptest! {
    #[test]
    fn paged_pool_never_leaks_or_double_frees(
        ops in proptest::collection::vec((0u8..5, 0u64..64), 1..120),
    ) {
        run_ops(16, 48, &ops);
    }

    /// Spill/fetch traffic across the hot pool and the capacity tier
    /// conserves occupancy on both sides: tier blocks always equal the
    /// surviving records' footprint, pool refcounts stay derived from
    /// live holders, and no context is ever resident in both at once.
    #[test]
    fn tier_spill_fetch_conserves_occupancy_across_tiers(
        ops in proptest::collection::vec((0u8..4, 0u64..64), 1..120),
    ) {
        // Tier budget of 24 blocks at block 16 — small enough that
        // LRU drops and whole-record rejections both fire.
        run_tier_ops(16, 48, 24, &ops);
    }

    #[test]
    fn scalar_pool_never_leaks_or_double_frees(
        ops in proptest::collection::vec((0u8..5, 0u64..64), 1..120),
    ) {
        // Block size 1 — the scalar-equivalence configuration — obeys
        // the same invariants with one block per token.
        run_ops(1, 160, &ops);
    }

    /// The migration round trip: exporting every live sequence empties
    /// the pool (in-flight sequences occupy nothing), and importing
    /// them back restores occupancy and refcounts exactly — no leaks,
    /// no phantom blocks, at any block granularity.
    #[test]
    fn export_import_round_trip_restores_the_pool(
        granularity in 0u8..3,
        lengths in proptest::collection::vec(1u64..200, 1..12),
    ) {
        let block_size = [1u64, 4, 16][granularity as usize];
        let total: u64 = lengths.iter().map(|&t| t.div_ceil(block_size)).sum();
        let mut pool = KvBlockPool::new(block_size, total);
        let mut seqs: Vec<KvSeq> = Vec::new();
        for &tokens in &lengths {
            let mut seq = pool.new_seq();
            prop_assert!(pool.append(&mut seq, tokens));
            seqs.push(seq);
        }
        let before = pool.stats();
        check_against_model(&pool, &seqs);

        let exports: Vec<_> = seqs.drain(..).map(|s| pool.export_seq(s)).collect();
        prop_assert_eq!(pool.blocks_in_use(), 0);
        prop_assert_eq!(pool.free_blocks(), pool.total_blocks());

        for export in exports {
            let imported = pool.import_seq(export).expect("round trip fits");
            prop_assert_eq!(imported.tokens(), export.tokens);
            seqs.push(imported);
        }
        prop_assert_eq!(pool.stats(), before);
        check_against_model(&pool, &seqs);

        for seq in seqs {
            pool.release_seq(seq);
        }
        prop_assert_eq!(pool.free_blocks(), pool.total_blocks());
    }
}
