//! The refcounted KV block pool and per-request sequences.

use serde::{Deserialize, Serialize};

/// Identifier of one physical KV-cache block in a pool.
pub type BlockId = u32;

/// One request's view of its KV cache: the blocks it holds (possibly
/// shared with other holders) and the logical tokens written so far.
///
/// Invariant maintained by every pool operation: `blocks.len()` is
/// exactly `ceil(tokens / block_size)` — capacity never strays more
/// than one partial block ahead of the logical length.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KvSeq {
    blocks: Vec<BlockId>,
    tokens: u64,
}

impl KvSeq {
    /// The block ids this sequence holds, in token order.
    pub fn blocks(&self) -> &[BlockId] {
        &self.blocks
    }

    /// Logical tokens resident in this sequence.
    pub fn tokens(&self) -> u64 {
        self.tokens
    }

    /// Token slots allocated (blocks × block size).
    pub fn capacity(&self, block_size: u64) -> u64 {
        self.blocks.len() as u64 * block_size
    }

    /// Allocated-but-unwritten token slots (internal fragmentation of
    /// this sequence's tail block).
    pub fn slack(&self, block_size: u64) -> u64 {
        self.capacity(block_size) - self.tokens
    }
}

/// A sequence detached from its pool for migration: the logical state
/// another pool needs to re-materialize it, with no block identity.
///
/// Produced by [`KvBlockPool::export_seq`], consumed by
/// [`KvBlockPool::import_seq`]. The physical blocks were released at
/// export (shared blocks keep their other holders), so an exported
/// sequence occupies *no* pool while in flight — exactly the
/// wire-transit state of a prefill→decode KV migration. `blocks`
/// records the source pool's footprint so the transfer can be priced
/// in source-granularity block units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KvSeqExport {
    /// Logical tokens the sequence held.
    pub tokens: u64,
    /// Blocks the sequence occupied in the *source* pool (its priced
    /// payload size, in source block units).
    pub blocks: u64,
}

/// Aggregate pool occupancy at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KvPoolStats {
    /// Tokens per block.
    pub block_size: u64,
    /// Physical blocks in the pool.
    pub total_blocks: u64,
    /// Blocks with at least one holder.
    pub blocks_in_use: u64,
    /// Blocks on the free list.
    pub free_blocks: u64,
}

impl KvPoolStats {
    /// Fraction of the pool with at least one holder.
    pub fn utilization(&self) -> f64 {
        if self.total_blocks == 0 {
            return 1.0;
        }
        self.blocks_in_use as f64 / self.total_blocks as f64
    }
}

/// A fixed pool of KV-cache blocks with per-block reference counts.
///
/// The pool tracks *which* blocks are held and by *how many* holders —
/// enough to model paged allocation, prefix sharing, fragmentation,
/// and capacity pressure — without storing any cache contents.
///
/// Per-block state is materialized lazily: a pool sized for millions
/// of blocks (a whole Attn-PIM pool at block size 1) costs nothing
/// until blocks are actually allocated — ids beyond the high-water
/// mark are implicitly free.
#[derive(Debug, Clone)]
pub struct KvBlockPool {
    block_size: u64,
    total_blocks: u64,
    /// Per-block holder counts for every id ever allocated
    /// (`0..refcounts.len()` is the high-water mark).
    refcounts: Vec<u32>,
    /// Whether a prefix cache tracks the block (parallel to
    /// `refcounts`); see [`KvBlockPool::track`].
    tracked: Vec<bool>,
    /// Previously-allocated ids available for reuse (LIFO).
    recycled: Vec<BlockId>,
    blocks_in_use: u64,
    /// Tracked blocks whose only holder is the cache — maintained
    /// incrementally so "how much could eviction reclaim right now"
    /// is O(1) in the serving engine's admission loop.
    tracked_exclusive: u64,
}

impl KvBlockPool {
    /// A pool of `total_blocks` blocks, each holding `block_size`
    /// token slots.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    #[track_caller]
    pub fn new(block_size: u64, total_blocks: u64) -> Self {
        assert!(block_size > 0, "block size must be positive");
        assert!(
            total_blocks <= u32::MAX as u64,
            "pool of {total_blocks} blocks exceeds the id space"
        );
        Self {
            block_size,
            total_blocks,
            refcounts: Vec::new(),
            tracked: Vec::new(),
            recycled: Vec::new(),
            blocks_in_use: 0,
            tracked_exclusive: 0,
        }
    }

    /// Tokens per block.
    pub fn block_size(&self) -> u64 {
        self.block_size
    }

    /// Physical blocks in the pool.
    pub fn total_blocks(&self) -> u64 {
        self.total_blocks
    }

    /// Blocks currently held by at least one sequence or cache entry.
    pub fn blocks_in_use(&self) -> u64 {
        self.blocks_in_use
    }

    /// Blocks available for allocation (recycled plus never touched).
    pub fn free_blocks(&self) -> u64 {
        self.recycled.len() as u64 + (self.total_blocks - self.refcounts.len() as u64)
    }

    /// Holders of `block` right now.
    pub fn refcount(&self, block: BlockId) -> u32 {
        self.refcounts.get(block as usize).copied().unwrap_or(0)
    }

    /// Blocks needed to hold `tokens` logical tokens.
    pub fn blocks_for(&self, tokens: u64) -> u64 {
        tokens.div_ceil(self.block_size)
    }

    /// Extra blocks a sequence of `tokens` logical tokens needs to
    /// grow by `extra` more.
    pub fn growth_blocks(&self, tokens: u64, extra: u64) -> u64 {
        self.blocks_for(tokens + extra) - self.blocks_for(tokens)
    }

    /// Occupancy snapshot.
    pub fn stats(&self) -> KvPoolStats {
        KvPoolStats {
            block_size: self.block_size,
            total_blocks: self.total_blocks,
            blocks_in_use: self.blocks_in_use,
            free_blocks: self.free_blocks(),
        }
    }

    /// An empty sequence (holds no blocks until tokens are appended).
    pub fn new_seq(&self) -> KvSeq {
        KvSeq::default()
    }

    /// Forks `blocks` (a cached prefix of *full* blocks) into a new
    /// sequence without copying: every block gains a holder and the
    /// sequence starts at `blocks.len() × block_size` logical tokens.
    ///
    /// # Panics
    ///
    /// Panics if any block is free (forking unheld blocks is a bug).
    #[track_caller]
    pub fn fork_prefix(&mut self, blocks: &[BlockId]) -> KvSeq {
        for &b in blocks {
            self.retain(b);
        }
        KvSeq {
            blocks: blocks.to_vec(),
            tokens: blocks.len() as u64 * self.block_size,
        }
    }

    /// Appends `tokens` logical tokens to `seq`, allocating blocks as
    /// needed. If the partially-filled tail block is shared with
    /// another holder, it is copied on write: a fresh block replaces it
    /// in this sequence and the shared original loses one holder.
    ///
    /// Returns `false` (leaving `seq` untouched) if the free list
    /// cannot cover the allocation.
    #[must_use = "allocation can fail when the pool is exhausted"]
    pub fn append(&mut self, seq: &mut KvSeq, tokens: u64) -> bool {
        if tokens == 0 {
            return true;
        }
        let tail_is_partial = !seq.tokens.is_multiple_of(self.block_size);
        let tail_shared = tail_is_partial
            && self.refcounts[*seq.blocks.last().expect("partial tail") as usize] > 1;
        let new_blocks = self.growth_blocks(seq.tokens, tokens) + u64::from(tail_shared);
        if self.free_blocks() < new_blocks {
            return false;
        }
        if tail_shared {
            // Copy-on-write: the divergent tail moves to a private
            // block; the shared original keeps its other holders.
            let old = seq.blocks.pop().expect("partial tail");
            let fresh = self.pop_free();
            seq.blocks.push(fresh);
            self.release_one(old);
        }
        for _ in 0..self.growth_blocks(seq.tokens, tokens) {
            let fresh = self.pop_free();
            seq.blocks.push(fresh);
        }
        seq.tokens += tokens;
        debug_assert_eq!(seq.blocks.len() as u64, self.blocks_for(seq.tokens));
        true
    }

    /// Releases every block `seq` holds. Blocks shared with other
    /// holders stay allocated; exclusively-held blocks return to the
    /// free list. Returns how many blocks became free.
    pub fn release_seq(&mut self, seq: KvSeq) -> u64 {
        self.release_blocks(&seq.blocks)
    }

    /// Detaches `seq` from this pool for migration: every block loses
    /// this sequence's hold (shared blocks keep their other holders,
    /// exactly like [`release_seq`](Self::release_seq)), and the
    /// returned [`KvSeqExport`] carries the logical state a destination
    /// pool re-materializes with [`import_seq`](Self::import_seq).
    pub fn export_seq(&mut self, seq: KvSeq) -> KvSeqExport {
        let export = KvSeqExport {
            tokens: seq.tokens,
            blocks: seq.blocks.len() as u64,
        };
        self.release_seq(seq);
        export
    }

    /// Re-materializes an exported sequence in this pool: allocates
    /// fresh blocks for its logical tokens (at *this* pool's block
    /// granularity, which may differ from the source's) and returns the
    /// live sequence. Returns `None`, allocating nothing, if the free
    /// list cannot cover it — the caller keeps the export and retries
    /// after eviction or preemption frees capacity.
    #[must_use = "allocation can fail when the pool is exhausted"]
    pub fn import_seq(&mut self, export: KvSeqExport) -> Option<KvSeq> {
        let mut seq = self.new_seq();
        self.append(&mut seq, export.tokens).then_some(seq)
    }

    /// Drops one holder from each block in `blocks`; returns how many
    /// became free.
    ///
    /// # Panics
    ///
    /// Panics if any block is already free (a double release is a
    /// bookkeeping bug, not a workload condition).
    #[track_caller]
    pub fn release_blocks(&mut self, blocks: &[BlockId]) -> u64 {
        let mut freed = 0;
        for &b in blocks {
            freed += u64::from(self.release_one(b));
        }
        freed
    }

    /// Adds one holder to `block`.
    ///
    /// # Panics
    ///
    /// Panics if the block is free.
    #[track_caller]
    pub fn retain(&mut self, block: BlockId) {
        let rc = &mut self.refcounts[block as usize];
        assert!(*rc > 0, "retained free block {block}");
        *rc += 1;
        if self.tracked[block as usize] && *rc == 2 {
            // A live holder joined a cache-only block: no longer
            // reclaimable by eviction alone.
            self.tracked_exclusive -= 1;
        }
    }

    /// Marks `block` as held by a prefix cache, so the pool can answer
    /// "how many blocks could cache eviction reclaim right now"
    /// ([`KvBlockPool::tracked_exclusive_blocks`]) in O(1).
    ///
    /// # Panics
    ///
    /// Panics if the block is free.
    #[track_caller]
    pub fn track(&mut self, block: BlockId) {
        let rc = self.refcounts[block as usize];
        assert!(rc > 0, "tracked free block {block}");
        if !self.tracked[block as usize] {
            self.tracked[block as usize] = true;
            if rc == 1 {
                self.tracked_exclusive += 1;
            }
        }
    }

    /// Clears cache tracking on `block` (called by eviction before the
    /// cache releases its hold).
    pub fn untrack(&mut self, block: BlockId) {
        if self.tracked[block as usize] {
            self.tracked[block as usize] = false;
            if self.refcounts[block as usize] == 1 {
                self.tracked_exclusive -= 1;
            }
        }
    }

    /// Tracked (cache-held) blocks whose only holder is the cache —
    /// exactly what eviction could return to the free list right now.
    pub fn tracked_exclusive_blocks(&self) -> u64 {
        self.tracked_exclusive
    }

    fn pop_free(&mut self) -> BlockId {
        if let Some(b) = self.recycled.pop() {
            debug_assert_eq!(self.refcounts[b as usize], 0);
            debug_assert!(!self.tracked[b as usize]);
            self.refcounts[b as usize] = 1;
            self.blocks_in_use += 1;
            return b;
        }
        // Cross the high-water mark: materialize a fresh id.
        let b = self.refcounts.len() as BlockId;
        debug_assert!(
            (b as u64) < self.total_blocks,
            "free list checked by caller"
        );
        self.refcounts.push(1);
        self.tracked.push(false);
        self.blocks_in_use += 1;
        b
    }

    #[track_caller]
    fn release_one(&mut self, block: BlockId) -> bool {
        let rc = &mut self.refcounts[block as usize];
        assert!(*rc > 0, "double-released block {block}");
        *rc -= 1;
        if self.tracked[block as usize] {
            match *rc {
                // Back to cache-only: reclaimable again.
                1 => self.tracked_exclusive += 1,
                // The cache itself let go without untracking first.
                0 => {
                    self.tracked[block as usize] = false;
                    self.tracked_exclusive -= 1;
                }
                _ => {}
            }
        }
        if *rc == 0 {
            self.recycled.push(block);
            self.blocks_in_use -= 1;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_roundtrip_conserves_blocks() {
        let mut pool = KvBlockPool::new(16, 8);
        let mut seq = pool.new_seq();
        assert!(pool.append(&mut seq, 40)); // 3 blocks (ceil 40/16)
        assert_eq!(seq.blocks().len(), 3);
        assert_eq!(seq.tokens(), 40);
        assert_eq!(seq.slack(16), 8);
        assert_eq!(pool.blocks_in_use(), 3);
        assert_eq!(pool.free_blocks(), 5);
        assert_eq!(pool.release_seq(seq), 3);
        assert_eq!(pool.blocks_in_use(), 0);
        assert_eq!(pool.free_blocks(), 8);
    }

    #[test]
    fn block_size_one_counts_tokens_exactly() {
        let mut pool = KvBlockPool::new(1, 100);
        let mut seq = pool.new_seq();
        assert!(pool.append(&mut seq, 37));
        assert_eq!(pool.blocks_in_use(), 37);
        assert_eq!(seq.slack(1), 0);
        assert!(pool.append(&mut seq, 5));
        assert_eq!(pool.blocks_in_use(), 42);
    }

    #[test]
    fn construction_is_lazy_for_huge_pools() {
        // A pool sized like a whole attention pool at block size 1
        // materializes nothing up front.
        let mut pool = KvBlockPool::new(1, 3_000_000_000);
        assert_eq!(pool.free_blocks(), 3_000_000_000);
        let mut seq = pool.new_seq();
        assert!(pool.append(&mut seq, 3));
        assert_eq!(pool.blocks_in_use(), 3);
        assert_eq!(pool.free_blocks(), 3_000_000_000 - 3);
        assert_eq!(pool.refcount(2_999_999_999), 0); // implicitly free
        pool.release_seq(seq);
    }

    #[test]
    fn exhaustion_fails_cleanly_without_partial_allocation() {
        let mut pool = KvBlockPool::new(4, 2);
        let mut seq = pool.new_seq();
        assert!(!pool.append(&mut seq, 9)); // needs 3 blocks, has 2
        assert_eq!(seq.tokens(), 0);
        assert_eq!(pool.blocks_in_use(), 0);
        assert!(pool.append(&mut seq, 8));
        assert!(!pool.append(&mut seq, 1));
        assert_eq!(seq.tokens(), 8);
    }

    #[test]
    fn fork_shares_until_release() {
        let mut pool = KvBlockPool::new(8, 10);
        let mut a = pool.new_seq();
        assert!(pool.append(&mut a, 16)); // 2 full blocks
        let b = pool.fork_prefix(a.blocks());
        assert_eq!(b.tokens(), 16);
        assert_eq!(pool.blocks_in_use(), 2); // shared, not duplicated
        assert_eq!(pool.refcount(a.blocks()[0]), 2);
        assert_eq!(pool.release_seq(a), 0); // b still holds both
        assert_eq!(pool.blocks_in_use(), 2);
        assert_eq!(pool.release_seq(b), 2);
        assert_eq!(pool.free_blocks(), 10);
    }

    #[test]
    fn append_to_shared_partial_tail_copies_on_write() {
        let mut pool = KvBlockPool::new(8, 10);
        let mut a = pool.new_seq();
        assert!(pool.append(&mut a, 12)); // blocks [0,1], tail half full
        let mut b = pool.fork_prefix(a.blocks());
        // b believes the fork holds 16 token slots; rewind to the true
        // logical length by treating it as a 12-token sequence is not
        // modelled — instead share the *partial* tail deliberately and
        // append, which must trigger the copy.
        assert_eq!(pool.refcount(a.blocks()[1]), 2);
        let tail_before = *a.blocks().last().unwrap();
        assert!(pool.append(&mut a, 2));
        let tail_after = *a.blocks().last().unwrap();
        assert_ne!(tail_before, tail_after, "divergent tail was not copied");
        assert_eq!(pool.refcount(tail_before), 1); // b keeps the original
        assert_eq!(a.tokens(), 14);
        assert!(pool.append(&mut b, 0));
        // Three distinct blocks live: the shared head, b's original
        // tail, and a's private copy.
        assert_eq!(pool.blocks_in_use(), 3);
        assert_eq!(pool.release_seq(a) + pool.release_seq(b), 3);
    }

    #[test]
    fn tracked_exclusive_follows_holder_transitions() {
        let mut pool = KvBlockPool::new(8, 8);
        let mut seq = pool.new_seq();
        assert!(pool.append(&mut seq, 16));
        let blocks = seq.blocks().to_vec();
        // Cache takes its own hold and marks the blocks tracked.
        for &b in &blocks {
            pool.retain(b);
            pool.track(b);
        }
        assert_eq!(pool.tracked_exclusive_blocks(), 0); // seq still holds
        pool.release_seq(seq);
        assert_eq!(pool.tracked_exclusive_blocks(), 2); // cache-only now
                                                        // A fork pins them again…
        let fork = pool.fork_prefix(&blocks);
        assert_eq!(pool.tracked_exclusive_blocks(), 0);
        pool.release_seq(fork);
        assert_eq!(pool.tracked_exclusive_blocks(), 2);
        // …and eviction untracks before releasing.
        for &b in &blocks {
            pool.untrack(b);
        }
        assert_eq!(pool.tracked_exclusive_blocks(), 0);
        assert_eq!(pool.release_blocks(&blocks), 2);
        assert_eq!(pool.free_blocks(), 8);
    }

    #[test]
    #[should_panic(expected = "double-released")]
    fn double_release_is_a_bug() {
        let mut pool = KvBlockPool::new(4, 4);
        let mut seq = pool.new_seq();
        assert!(pool.append(&mut seq, 4));
        let blocks = seq.blocks().to_vec();
        pool.release_seq(seq);
        pool.release_blocks(&blocks);
    }

    #[test]
    fn growth_blocks_matches_ceil_arithmetic() {
        let pool = KvBlockPool::new(16, 4);
        assert_eq!(pool.growth_blocks(0, 1), 1);
        assert_eq!(pool.growth_blocks(15, 1), 0);
        assert_eq!(pool.growth_blocks(16, 1), 1);
        assert_eq!(pool.growth_blocks(30, 40), 3);
        let unit = KvBlockPool::new(1, 4);
        assert_eq!(unit.growth_blocks(7, 3), 3);
    }

    #[test]
    fn export_import_round_trip_restores_occupancy() {
        let mut pool = KvBlockPool::new(16, 8);
        let mut seq = pool.new_seq();
        assert!(pool.append(&mut seq, 40)); // 3 blocks
        let export = pool.export_seq(seq);
        assert_eq!(
            export,
            KvSeqExport {
                tokens: 40,
                blocks: 3
            }
        );
        // In flight: the sequence occupies nothing.
        assert_eq!(pool.blocks_in_use(), 0);
        assert_eq!(pool.free_blocks(), 8);
        let imported = pool.import_seq(export).expect("room for the import");
        assert_eq!(imported.tokens(), 40);
        assert_eq!(imported.blocks().len(), 3);
        assert_eq!(pool.blocks_in_use(), 3);
        assert_eq!(pool.release_seq(imported), 3);
        assert_eq!(pool.free_blocks(), 8);
    }

    #[test]
    fn export_keeps_shared_blocks_alive() {
        let mut pool = KvBlockPool::new(8, 10);
        let mut a = pool.new_seq();
        assert!(pool.append(&mut a, 16)); // 2 full blocks
        let b = pool.fork_prefix(a.blocks());
        let shared = a.blocks().to_vec();
        let export = pool.export_seq(a);
        assert_eq!(export.blocks, 2);
        // b still holds both blocks: exporting dropped only a's holds.
        assert_eq!(pool.blocks_in_use(), 2);
        for &blk in &shared {
            assert_eq!(pool.refcount(blk), 1);
        }
        assert_eq!(pool.release_seq(b), 2);
    }

    #[test]
    fn import_into_a_different_granularity_reblocks() {
        let mut coarse = KvBlockPool::new(16, 8);
        let mut fine = KvBlockPool::new(4, 32);
        let mut seq = coarse.new_seq();
        assert!(coarse.append(&mut seq, 40));
        let export = coarse.export_seq(seq);
        assert_eq!(export.blocks, 3); // source-granularity payload
        let imported = fine.import_seq(export).expect("room");
        assert_eq!(imported.tokens(), 40);
        assert_eq!(imported.blocks().len(), 10); // ceil(40 / 4)
        fine.release_seq(imported);
    }

    #[test]
    fn import_fails_cleanly_when_the_destination_is_full() {
        let mut pool = KvBlockPool::new(4, 2);
        let export = KvSeqExport {
            tokens: 12,
            blocks: 3,
        };
        assert!(pool.import_seq(export).is_none());
        assert_eq!(pool.blocks_in_use(), 0);
        // The export is Copy: the caller can retry once room appears.
        let mut pool = KvBlockPool::new(4, 3);
        assert!(pool.import_seq(export).is_some());
    }

    #[test]
    fn stats_and_utilization() {
        let mut pool = KvBlockPool::new(2, 4);
        let mut seq = pool.new_seq();
        assert!(pool.append(&mut seq, 3));
        let stats = pool.stats();
        assert_eq!(stats.blocks_in_use, 2);
        assert_eq!(stats.free_blocks, 2);
        assert!((stats.utilization() - 0.5).abs() < 1e-12);
    }
}
