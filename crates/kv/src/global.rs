//! The fleet-wide prefix directory: every replica's spilled records,
//! shared over the inter-node fabric.
//!
//! A [`KvTier`](crate::KvTier) is private: a conversation that re-lands
//! on the *wrong* replica re-prefills its context from scratch even
//! though that context sits, spilled, one fabric hop away. A
//! [`GlobalKvTier`] closes the gap — one directory, keyed by
//! conversation prefix, registering which replica owns each spilled
//! record and how many reusable tokens it holds. A fork-miss that also
//! misses the local tier can consult the directory and re-materialize
//! the prefix from its owner at inter-node fabric cost.
//!
//! Coherence is trivial because the records are immutable *logical*
//! token counts: a prefix only ever grows, so registration is
//! first-writer-wins on the owner and extend-only on the length, and
//! nothing is ever invalidated. Reading an entry never removes it — the
//! owner keeps its copy, and a remote fetch is a copy-out, not a
//! transfer of ownership. That append-only discipline is also what
//! makes deterministic fleet co-simulation cheap: the serving engine
//! merges each replica's registrations at control-plane barriers in
//! replica order, and between barriers every replica reads a frozen
//! view.
//!
//! Like everything in this crate, the directory is pure bookkeeping:
//! the fabric transfer a remote fetch pays is priced by the serving
//! layer (`TierPricing` over the cluster's inter-node `LinkSpec`, in
//! `papi-interconnect`).

use std::collections::HashMap;

/// One spilled prefix's fleet-wide registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalEntry {
    /// Replica index whose tier spilled the record first
    /// (first-writer-wins; never reassigned).
    pub owner: usize,
    /// Reusable logical tokens under the key (extend-only: re-spills
    /// keep the longer record).
    pub tokens: u64,
}

/// Occupancy snapshot of a [`GlobalKvTier`] at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalTierStats {
    /// Tokens per block (the hot pools' granularity, so footprints
    /// compare directly).
    pub block_size: u64,
    /// Registered prefixes.
    pub entries: u64,
    /// Logical tokens registered across all entries.
    pub tokens: u64,
    /// Blocks those tokens occupy.
    pub blocks: u64,
}

/// What a [`GlobalKvTier::publish`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PublishOutcome {
    /// A new key: the caller became the record's owner.
    Registered,
    /// The key existed and the record grew to the published length
    /// (the owner is unchanged).
    Extended,
    /// The key existed with an equal or longer record: no change.
    Unchanged,
}

impl PublishOutcome {
    /// Whether the publish changed the directory at all.
    pub fn changed(&self) -> bool {
        !matches!(self, PublishOutcome::Unchanged)
    }
}

/// The fleet-wide directory of spilled prefixes.
///
/// Append-only within a serving episode: entries register and extend,
/// never shrink or vanish — [`retire`](Self::retire) exists for
/// conservation tests and episode teardown, not for the serving path.
#[derive(Debug, Clone, Default)]
pub struct GlobalKvTier {
    block_size: u64,
    entries: HashMap<u64, GlobalEntry>,
    publishes: u64,
    extensions: u64,
}

impl GlobalKvTier {
    /// A directory accounting in `block_size`-token blocks (use the hot
    /// pools' block size so footprints compare).
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    #[track_caller]
    pub fn new(block_size: u64) -> Self {
        assert!(block_size > 0, "global tier block size must be positive");
        Self {
            block_size,
            entries: HashMap::new(),
            publishes: 0,
            extensions: 0,
        }
    }

    /// Tokens per block.
    pub fn block_size(&self) -> u64 {
        self.block_size
    }

    /// Registered prefixes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Blocks needed to hold `tokens` logical tokens.
    pub fn blocks_for(&self, tokens: u64) -> u64 {
        tokens.div_ceil(self.block_size)
    }

    /// New keys registered so far (owner assignments).
    pub fn publishes(&self) -> u64 {
        self.publishes
    }

    /// Existing records grown by a longer re-spill.
    pub fn extensions(&self) -> u64 {
        self.extensions
    }

    /// Registers `owner`'s spilled record of `tokens` logical tokens
    /// under `key`. First writer wins the owner slot; the token count
    /// is extend-only. Returns what changed.
    pub fn publish(&mut self, key: u64, owner: usize, tokens: u64) -> PublishOutcome {
        match self.entries.get_mut(&key) {
            None => {
                self.entries.insert(key, GlobalEntry { owner, tokens });
                self.publishes += 1;
                PublishOutcome::Registered
            }
            Some(entry) if tokens > entry.tokens => {
                entry.tokens = tokens;
                self.extensions += 1;
                PublishOutcome::Extended
            }
            Some(_) => PublishOutcome::Unchanged,
        }
    }

    /// The registration under `key`, if any. A lookup never removes the
    /// entry: the owner keeps its record, and a remote fetch copies it
    /// out.
    pub fn lookup(&self, key: u64) -> Option<GlobalEntry> {
        self.entries.get(&key).copied()
    }

    /// Whether `key` is registered anywhere in the fleet.
    pub fn resident(&self, key: u64) -> bool {
        self.entries.contains_key(&key)
    }

    /// Removes the registration under `key` and returns it — episode
    /// teardown and conservation tests only; the serving path never
    /// retires an entry (records are immutable, no invalidation).
    pub fn retire(&mut self, key: u64) -> Option<GlobalEntry> {
        self.entries.remove(&key)
    }

    /// Occupancy snapshot (sums over entries — order-independent).
    pub fn stats(&self) -> GlobalTierStats {
        let tokens: u64 = self.entries.values().map(|e| e.tokens).sum();
        let blocks: u64 = self
            .entries
            .values()
            .map(|e| self.blocks_for(e.tokens))
            .sum();
        GlobalTierStats {
            block_size: self.block_size,
            entries: self.entries.len() as u64,
            tokens,
            blocks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_writer_wins_the_owner_slot() {
        let mut dir = GlobalKvTier::new(16);
        assert_eq!(dir.publish(7, 2, 64), PublishOutcome::Registered);
        // A later replica spilling the same key cannot steal ownership.
        assert_eq!(dir.publish(7, 5, 64), PublishOutcome::Unchanged);
        assert_eq!(
            dir.lookup(7),
            Some(GlobalEntry {
                owner: 2,
                tokens: 64
            })
        );
        assert_eq!(dir.publishes(), 1);
    }

    #[test]
    fn records_are_extend_only() {
        let mut dir = GlobalKvTier::new(16);
        assert_eq!(dir.publish(7, 0, 64), PublishOutcome::Registered);
        assert_eq!(dir.publish(7, 3, 96), PublishOutcome::Extended);
        assert_eq!(dir.publish(7, 1, 32), PublishOutcome::Unchanged);
        let entry = dir.lookup(7).expect("registered");
        assert_eq!(entry.owner, 0, "extension must not reassign the owner");
        assert_eq!(entry.tokens, 96, "a prefix only ever grows");
        assert_eq!(dir.extensions(), 1);
    }

    #[test]
    fn lookup_never_removes() {
        let mut dir = GlobalKvTier::new(16);
        dir.publish(3, 1, 40);
        assert!(dir.resident(3));
        assert_eq!(dir.lookup(3).map(|e| e.tokens), Some(40));
        assert_eq!(dir.lookup(3).map(|e| e.tokens), Some(40));
        assert_eq!(dir.len(), 1);
    }

    #[test]
    fn retire_drains_occupancy() {
        let mut dir = GlobalKvTier::new(16);
        dir.publish(1, 0, 40);
        dir.publish(2, 1, 16);
        assert_eq!(dir.stats().blocks, 3 + 1);
        assert_eq!(dir.retire(1).map(|e| e.tokens), Some(40));
        assert_eq!(dir.retire(1), None);
        assert_eq!(dir.retire(2).map(|e| e.owner), Some(1));
        assert!(dir.is_empty());
        assert_eq!(dir.stats().blocks, 0);
    }

    #[test]
    fn stats_account_in_hot_pool_blocks() {
        let mut dir = GlobalKvTier::new(8);
        dir.publish(1, 0, 20); // 3 blocks
        dir.publish(2, 2, 8); // 1 block
        let stats = dir.stats();
        assert_eq!(stats.block_size, 8);
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.tokens, 28);
        assert_eq!(stats.blocks, 4);
        assert_eq!(dir.blocks_for(20), 3);
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn zero_block_size_is_rejected() {
        GlobalKvTier::new(0);
    }
}
