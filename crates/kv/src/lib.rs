//! `papi-kv` — the paged KV-cache subsystem.
//!
//! PAPI prices decode attention off each request's resident KV
//! footprint, so *how* that footprint is managed is a first-class
//! scaling axis (L3 and PIM-AI both make KV capacity the central
//! resource of PIM serving). This crate models the management layer the
//! serving engine allocates through, vLLM-style:
//!
//! - [`KvBlockPool`] — a fixed-size pool of KV-cache *blocks* (each
//!   holding `block_size` token slots), with per-block reference counts
//!   so blocks can be shared between sequences. Allocation and release
//!   are O(1) off a free list; the pool is pure bookkeeping — no tensor
//!   data exists in the simulator, only occupancy.
//! - [`KvSeq`] — one request's block list plus its logical token
//!   count. Sequences grow by appending tokens ([`KvBlockPool::append`],
//!   which allocates blocks on demand and transparently copies a shared
//!   tail block on write), and can be forked from cached prefix blocks
//!   without copying ([`KvBlockPool::fork_prefix`]).
//! - [`PrefixTree`] — a prefix cache keyed by workload-level prefix
//!   ids (a shared system prompt, a multi-turn conversation's context).
//!   Entries hold references on *full* blocks of a completed context;
//!   later requests carrying the same key fork those blocks instead of
//!   re-prefilling, and an LRU eviction path returns cold prefixes to
//!   the pool under pressure.
//!
//! Degenerate configuration — `block_size == 1` with no prefix tree —
//! reproduces scalar token counting exactly (one block per token, no
//! internal fragmentation, no sharing), which is how the serving
//! engine's pre-paging behaviour stays equality-pinned.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod pool;
pub mod prefix;

pub use pool::{BlockId, KvBlockPool, KvPoolStats, KvSeq, KvSeqExport};
pub use prefix::{KvCacheStats, PrefixHint, PrefixTree};
