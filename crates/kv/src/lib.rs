//! `papi-kv` — the paged KV-cache subsystem.
//!
//! PAPI prices decode attention off each request's resident KV
//! footprint, so *how* that footprint is managed is a first-class
//! scaling axis (L3 and PIM-AI both make KV capacity the central
//! resource of PIM serving). This crate models the management layer the
//! serving engine allocates through, vLLM-style:
//!
//! - [`KvBlockPool`] — a fixed-size pool of KV-cache *blocks* (each
//!   holding `block_size` token slots), with per-block reference counts
//!   so blocks can be shared between sequences. Allocation and release
//!   are O(1) off a free list; the pool is pure bookkeeping — no tensor
//!   data exists in the simulator, only occupancy.
//! - [`KvSeq`] — one request's block list plus its logical token
//!   count. Sequences grow by appending tokens ([`KvBlockPool::append`],
//!   which allocates blocks on demand and transparently copies a shared
//!   tail block on write), and can be forked from cached prefix blocks
//!   without copying ([`KvBlockPool::fork_prefix`]).
//! - [`PrefixTree`] — a prefix cache keyed by workload-level prefix
//!   ids (a shared system prompt, a multi-turn conversation's context).
//!   Entries hold references on *full* blocks of a completed context;
//!   later requests carrying the same key fork those blocks instead of
//!   re-prefilling, and an LRU eviction path returns cold prefixes to
//!   the pool under pressure.
//! - [`KvTier`] — a host-DRAM / DIMM-PIM *capacity tier* below the
//!   pool. When configured, eviction becomes a spill: the cold prefix's
//!   hot blocks are freed but the tier remembers its logical length, so
//!   a request that re-lands on the key can fetch it back (at a
//!   transfer cost the serving layer prices) instead of re-prefilling.
//!   The [`SpillPolicy`]/[`FetchPolicy`] seams decide the traffic.
//! - [`GlobalKvTier`] — the *fleet-wide* directory over those private
//!   tiers: every replica's spilled records registered under one
//!   conversation-prefix key space (first-writer-wins owner,
//!   extend-only length, no invalidation), so a request that re-lands
//!   on the wrong replica can re-materialize its context from the
//!   owner across the inter-node fabric instead of re-prefilling.
//!
//! Degenerate configuration — `block_size == 1` with no prefix tree —
//! reproduces scalar token counting exactly (one block per token, no
//! internal fragmentation, no sharing), which is how the serving
//! engine's pre-paging behaviour stays equality-pinned.
//!
//! # Example: pool → sequence → export/import round-trip
//!
//! The [`KvSeqExport`] seam is how KV state crosses boundaries —
//! prefill→decode migration, and the capacity tier's spill/fetch path.
//! An export releases the source blocks and keeps only the logical
//! record; an import re-materializes it at the destination's block
//! granularity:
//!
//! ```
//! use papi_kv::KvBlockPool;
//!
//! let mut prefill = KvBlockPool::new(16, 64);
//! let mut seq = prefill.new_seq();
//! assert!(prefill.append(&mut seq, 40)); // 3 blocks at size 16
//! assert_eq!(prefill.blocks_in_use(), 3);
//!
//! let export = prefill.export_seq(seq); // frees the source blocks
//! assert_eq!(prefill.blocks_in_use(), 0);
//! assert_eq!(export.tokens, 40);
//!
//! let mut decode = KvBlockPool::new(8, 64); // different granularity
//! let imported = decode.import_seq(export).expect("room at the dest");
//! assert_eq!(imported.tokens(), 40);
//! assert_eq!(decode.blocks_in_use(), 5); // reblocked at size 8
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod global;
pub mod pool;
pub mod prefix;
pub mod tier;

pub use global::{GlobalEntry, GlobalKvTier, GlobalTierStats, PublishOutcome};
pub use pool::{BlockId, KvBlockPool, KvPoolStats, KvSeq, KvSeqExport};
pub use prefix::{EvictedPrefix, KvCacheStats, PrefixHint, PrefixTree};
pub use tier::{
    FetchAll, FetchCandidate, FetchMinTokens, FetchPolicy, FetchSpec, KvTier, SpillAll,
    SpillCandidate, SpillMinBlocks, SpillOutcome, SpillPolicy, SpillSpec, TierStats,
};
