//! Copy-on-write prefix sharing across requests.
//!
//! Requests that share a prompt prefix — a fleet-wide system prompt,
//! or the accumulated context of a multi-turn conversation — should
//! not each hold (nor each re-prefill) a private copy of it. The
//! [`PrefixTree`] caches the *full blocks* of completed contexts under
//! a workload-level key; an arriving request carrying the same key
//! forks those blocks (refcount sharing, no copy) and prefills only
//! its unshared suffix.
//!
//! Structurally this is a radix tree specialized to the linear chains
//! the workload generates: each conversation extends one path, so every
//! path is kept path-compressed as a single growable entry per key
//! (turn *k + 1* extends the entry turn *k* published). Divergent
//! writes never touch shared blocks: only full blocks are cached, so a
//! forked sequence's appends land in fresh tail blocks (the pool's
//! copy-on-write guard covers the remaining corner).

use crate::pool::{BlockId, KvBlockPool, KvSeq};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The workload's description of a request's shareable prompt prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PrefixHint {
    /// Cache key the prefix lives under (conversation id, or a
    /// fleet-wide id for a shared system prompt).
    pub key: u64,
    /// Leading prompt tokens shared with earlier requests under `key`
    /// (how much of *this* prompt may be served from cache).
    pub reuse_tokens: u64,
    /// Leading tokens of this request's *final* context (prompt +
    /// response) that later requests under `key` may share — what to
    /// publish into the cache when the request completes. Zero opts
    /// out (e.g. the last turn of a conversation, which nothing will
    /// ever extend).
    pub publish_tokens: u64,
}

#[derive(Debug, Clone)]
struct PrefixNode {
    blocks: Vec<BlockId>,
    last_use: u64,
    hits: u64,
}

/// What [`PrefixTree::evict_lru_entry`] removed — enough identity for
/// the caller to spill the prefix to a capacity tier instead of losing
/// it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedPrefix {
    /// The evicted entry's cache key.
    pub key: u64,
    /// Logical tokens the entry cached (full blocks × block size).
    pub tokens: u64,
    /// Blocks the entry held references on.
    pub blocks: u64,
    /// Blocks that actually became free (blocks still held by live
    /// sequences stay allocated).
    pub freed: u64,
}

/// Serving-visible prefix-cache and paging counters, accumulated by the
/// engine and embedded in its report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct KvCacheStats {
    /// Tokens per block.
    pub block_size: u64,
    /// Physical blocks in the pool.
    pub total_blocks: u64,
    /// Largest number of blocks ever simultaneously held.
    pub peak_blocks_in_use: u64,
    /// Prefix-cache lookups (one per admission carrying a hint).
    pub prefix_lookups: u64,
    /// Lookups that forked at least one cached block.
    pub prefix_hits: u64,
    /// Prompt tokens served from cached prefixes instead of prefill.
    pub cached_prompt_tokens: u64,
    /// Tokens actually prefilled (admission waves and chunks, including
    /// recompute after preemption).
    pub prefilled_tokens: u64,
    /// Contexts published into the prefix cache (inserts + extensions).
    pub prefix_insertions: u64,
    /// Cold prefixes evicted under pool pressure.
    pub prefix_evictions: u64,
    /// Prefill waves priced (equals admission waves when monolithic;
    /// counts every chunk when chunked prefill is on).
    pub prefill_chunks: u64,
    /// Worst observed internal fragmentation: allocated-but-unwritten
    /// token slots as a fraction of allocated slots.
    pub peak_fragmentation: f64,
    /// Capacity-tier block budget (zero: no tier configured).
    pub tier_budget_blocks: u64,
    /// Largest number of tier blocks ever simultaneously occupied.
    pub tier_peak_blocks: u64,
    /// Evicted prefixes recorded into the capacity tier instead of
    /// discarded.
    pub tier_spills: u64,
    /// Tokens those spills preserved.
    pub tier_spilled_tokens: u64,
    /// Spilled prefixes fetched back into the hot pool on reuse.
    pub tier_fetches: u64,
    /// Tokens those fetches restored (served from the tier instead of
    /// re-prefilled).
    pub tier_fetched_tokens: u64,
    /// Spilled prefixes the tier itself dropped (LRU) under its own
    /// budget pressure — true data loss.
    pub tier_evictions: u64,
    /// Total fetch transfer time, in seconds (each fetch's latency also
    /// lands in the admitted request's TTFT).
    pub tier_fetch_time_s: f64,
    /// Total fetch transfer energy, in joules.
    pub tier_fetch_energy_j: f64,
    /// Prefixes re-materialized from *another* replica's spilled record
    /// via the fleet-wide directory (zero: no shared tier, or every hit
    /// was local).
    pub remote_fetches: u64,
    /// Tokens those remote fetches restored across the fabric.
    pub remote_fetched_tokens: u64,
    /// Total remote-fetch wire time, in seconds (each fetch's latency
    /// also lands in the admitted request's TTFT).
    pub remote_fetch_time_s: f64,
    /// Total remote-fetch wire energy, in joules.
    pub remote_fetch_energy_j: f64,
}

impl KvCacheStats {
    /// Fraction of prefill demand served from the prefix cache.
    pub fn hit_rate(&self) -> f64 {
        let demand = self.cached_prompt_tokens + self.prefilled_tokens;
        if demand == 0 {
            return 0.0;
        }
        self.cached_prompt_tokens as f64 / demand as f64
    }
}

/// The prefix cache: completed contexts' full blocks, keyed by
/// workload prefix id, with LRU eviction under pool pressure.
#[derive(Debug, Clone, Default)]
pub struct PrefixTree {
    nodes: HashMap<u64, PrefixNode>,
    tick: u64,
}

impl PrefixTree {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cached entries.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Blocks the cache holds references on (shared blocks included).
    pub fn cached_blocks(&self) -> u64 {
        self.nodes.values().map(|n| n.blocks.len() as u64).sum()
    }

    /// Blocks only the cache holds (refcount 1) — what eviction could
    /// return to the free list right now. O(1): the pool maintains the
    /// count incrementally for the blocks this tree
    /// [`track`](KvBlockPool::track)s (one tree per pool).
    pub fn evictable_blocks(&self, pool: &KvBlockPool) -> u64 {
        let evictable = pool.tracked_exclusive_blocks();
        debug_assert_eq!(
            evictable,
            self.nodes
                .values()
                .flat_map(|n| n.blocks.iter())
                .filter(|&&b| pool.refcount(b) == 1)
                .count() as u64,
            "incremental evictable counter drifted from the node scan"
        );
        evictable
    }

    /// Cached tokens usable by a request that shares `want_tokens`
    /// leading tokens under `key` — full blocks only, without touching
    /// recency or stats (the admission planner peeks before it
    /// commits).
    pub fn peek(&self, key: u64, want_tokens: u64, pool: &KvBlockPool) -> u64 {
        self.nodes.get(&key).map_or(0, |node| {
            (node.blocks.len() as u64).min(want_tokens / pool.block_size()) * pool.block_size()
        })
    }

    /// Forks the cached prefix under `key` into a new sequence, up to
    /// `want_tokens` (rounded down to full blocks). Returns `None` on
    /// a miss (no entry, or nothing usable at this length). Refreshes
    /// the entry's recency on a hit.
    pub fn fork(&mut self, key: u64, want_tokens: u64, pool: &mut KvBlockPool) -> Option<KvSeq> {
        self.tick += 1;
        let tick = self.tick;
        let node = self.nodes.get_mut(&key)?;
        let usable = (node.blocks.len() as u64).min(want_tokens / pool.block_size()) as usize;
        if usable == 0 {
            return None;
        }
        node.last_use = tick;
        node.hits += 1;
        let blocks: Vec<BlockId> = node.blocks[..usable].to_vec();
        Some(pool.fork_prefix(&blocks))
    }

    /// Publishes the first `tokens` of a completed context under `key`:
    /// caches its full blocks, extending an existing entry if the new
    /// context is longer. Returns `true` if anything was inserted or
    /// extended.
    ///
    /// `blocks` must cover at least `tokens` token slots; only the
    /// leading full blocks are cached.
    pub fn publish(
        &mut self,
        key: u64,
        blocks: &[BlockId],
        tokens: u64,
        pool: &mut KvBlockPool,
    ) -> bool {
        let full = (tokens / pool.block_size()) as usize;
        debug_assert!(blocks.len() >= full, "publish beyond the held blocks");
        self.tick += 1;
        let node = self.nodes.entry(key).or_insert_with(|| PrefixNode {
            blocks: Vec::new(),
            last_use: 0,
            hits: 0,
        });
        node.last_use = self.tick;
        if full <= node.blocks.len() {
            return false;
        }
        for &b in &blocks[node.blocks.len()..full] {
            pool.retain(b);
            pool.track(b);
            node.blocks.push(b);
        }
        true
    }

    /// Evicts the least-recently-used entry, releasing its block
    /// references. Returns how many blocks actually became free (blocks
    /// still held by live sequences stay allocated), or `None` when the
    /// cache is empty.
    pub fn evict_lru(&mut self, pool: &mut KvBlockPool) -> Option<u64> {
        self.evict_lru_entry(pool).map(|e| e.freed)
    }

    /// Like [`evict_lru`](Self::evict_lru), but also reports *what* was
    /// evicted — the identity a capacity tier needs to remember the
    /// prefix instead of forgetting it.
    pub fn evict_lru_entry(&mut self, pool: &mut KvBlockPool) -> Option<EvictedPrefix> {
        // Ties break on the key so eviction order is deterministic.
        let victim = self
            .nodes
            .iter()
            .min_by_key(|(key, node)| (node.last_use, **key))
            .map(|(key, _)| *key)?;
        let node = self.nodes.remove(&victim).expect("victim exists");
        for &b in &node.blocks {
            pool.untrack(b);
        }
        let blocks = node.blocks.len() as u64;
        Some(EvictedPrefix {
            key: victim,
            tokens: blocks * pool.block_size(),
            blocks,
            freed: pool.release_blocks(&node.blocks),
        })
    }

    /// Releases every cached entry back to the pool.
    pub fn clear(&mut self, pool: &mut KvBlockPool) {
        while self.evict_lru(pool).is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_of(pool: &mut KvBlockPool, tokens: u64) -> KvSeq {
        let mut seq = pool.new_seq();
        assert!(pool.append(&mut seq, tokens));
        seq
    }

    #[test]
    fn publish_then_fork_shares_full_blocks_only() {
        let mut pool = KvBlockPool::new(16, 32);
        let mut tree = PrefixTree::new();
        let seq = seq_of(&mut pool, 50); // 4 blocks, 3 full
        assert!(tree.publish(7, seq.blocks(), 50, &mut pool));
        assert_eq!(tree.cached_blocks(), 3);
        pool.release_seq(seq);
        assert_eq!(pool.blocks_in_use(), 3); // cache keeps the full blocks

        assert_eq!(tree.peek(7, 200, &pool), 48);
        assert_eq!(tree.peek(7, 20, &pool), 16); // capped by the request's share
        assert_eq!(tree.peek(8, 200, &pool), 0);
        let forked = tree.fork(7, 200, &mut pool).expect("hit");
        assert_eq!(forked.tokens(), 48);
        assert_eq!(pool.blocks_in_use(), 3); // shared, not copied
        pool.release_seq(forked);
    }

    #[test]
    fn fork_miss_on_unknown_key_or_tiny_share() {
        let mut pool = KvBlockPool::new(16, 8);
        let mut tree = PrefixTree::new();
        assert!(tree.fork(1, 64, &mut pool).is_none());
        let seq = seq_of(&mut pool, 32);
        tree.publish(1, seq.blocks(), 32, &mut pool);
        assert!(tree.fork(1, 15, &mut pool).is_none()); // under one block
        pool.release_seq(seq);
    }

    #[test]
    fn publish_extends_but_never_shrinks() {
        let mut pool = KvBlockPool::new(8, 32);
        let mut tree = PrefixTree::new();
        let short = seq_of(&mut pool, 16);
        assert!(tree.publish(3, short.blocks(), 16, &mut pool));
        // A longer context under the same key extends the entry…
        let long = seq_of(&mut pool, 40);
        assert!(tree.publish(3, long.blocks(), 40, &mut pool));
        assert_eq!(tree.cached_blocks(), 2 + 3);
        // …while a shorter republish is a no-op.
        assert!(!tree.publish(3, short.blocks(), 16, &mut pool));
        pool.release_seq(short);
        pool.release_seq(long);
        assert_eq!(tree.evictable_blocks(&pool), 5);
    }

    #[test]
    fn lru_eviction_frees_cold_entries_first() {
        let mut pool = KvBlockPool::new(8, 32);
        let mut tree = PrefixTree::new();
        for key in [1u64, 2, 3] {
            let seq = seq_of(&mut pool, 16);
            tree.publish(key, seq.blocks(), 16, &mut pool);
            pool.release_seq(seq);
        }
        // Touch 1 so 2 becomes the coldest.
        assert!(tree.fork(1, 64, &mut pool).is_some_and(|s| {
            pool.release_seq(s);
            true
        }));
        assert_eq!(tree.evict_lru(&mut pool), Some(2));
        assert_eq!(tree.peek(2, 64, &pool), 0);
        assert!(tree.peek(1, 64, &pool) > 0 && tree.peek(3, 64, &pool) > 0);
        tree.clear(&mut pool);
        assert_eq!(pool.blocks_in_use(), 0);
        assert!(tree.is_empty());
    }

    #[test]
    fn eviction_of_a_live_shared_prefix_frees_nothing_yet() {
        let mut pool = KvBlockPool::new(8, 16);
        let mut tree = PrefixTree::new();
        let seq = seq_of(&mut pool, 16);
        tree.publish(9, seq.blocks(), 16, &mut pool);
        let live = tree.fork(9, 64, &mut pool).expect("hit");
        pool.release_seq(seq);
        assert_eq!(tree.evictable_blocks(&pool), 0); // live fork holds them
        assert_eq!(tree.evict_lru(&mut pool), Some(0));
        assert_eq!(pool.blocks_in_use(), 2);
        assert_eq!(pool.release_seq(live), 2);
    }

    #[test]
    fn hit_rate_arithmetic() {
        let stats = KvCacheStats {
            cached_prompt_tokens: 300,
            prefilled_tokens: 700,
            ..Default::default()
        };
        assert!((stats.hit_rate() - 0.3).abs() < 1e-12);
        assert_eq!(KvCacheStats::default().hit_rate(), 0.0);
    }
}
