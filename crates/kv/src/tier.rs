//! The KV capacity tier: spill-to-host offload instead of eviction.
//!
//! Under pool pressure the serving engine's only relief used to be
//! discarding cold cached prefixes
//! ([`PrefixTree::evict_lru`](crate::PrefixTree::evict_lru)) or
//! preempting live requests — both
//! throw away paid prefill. A [`KvTier`] is the L3-style alternative: a
//! second, larger block budget (host DRAM / DIMM-PIM) that *remembers*
//! evicted prefixes as logical records, so a request that re-lands on
//! one can fetch it back — at a priced transfer, but far below the cost
//! of re-prefilling the context.
//!
//! Like the hot [`KvBlockPool`](crate::KvBlockPool), the tier stores no
//! tensor data and no block identities — crossing the tier boundary is
//! an export (the hot blocks are freed; the tier records only the
//! logical token count), mirroring the
//! [`KvSeqExport`](crate::KvSeqExport) migration seam. A prefix
//! therefore never occupies both tiers at once: it is hot, spilled, or
//! gone.
//!
//! Two policy seams decide the traffic, mirroring the serving control
//! plane's `RoutePolicy`/`AdmissionPolicy` style: [`SpillPolicy`] (is
//! this evicted prefix worth keeping?) and [`FetchPolicy`] (is this
//! re-landed prefix worth the transfer, or should the engine just
//! re-prefill?). Built-ins are named declaratively by the serde-able
//! [`SpillSpec`]/[`FetchSpec`].

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One spilled prefix: the logical record the tier keeps in place of
/// the freed hot blocks.
#[derive(Debug, Clone, Copy)]
struct TierEntry {
    /// Logical tokens the prefix held (always whole hot-pool blocks —
    /// the prefix cache only ever holds full blocks).
    tokens: u64,
    /// Recency tick for the tier's own LRU.
    last_use: u64,
}

/// Occupancy snapshot of a [`KvTier`] at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TierStats {
    /// Tokens per block (the hot pool's granularity; the tier accounts
    /// in the same units so budgets compare directly).
    pub block_size: u64,
    /// The tier's block budget.
    pub budget_blocks: u64,
    /// Blocks the spilled entries occupy right now.
    pub blocks_in_use: u64,
    /// Spilled prefixes resident.
    pub entries: u64,
}

/// What a spill attempt did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpillOutcome {
    /// Whether the prefix landed in the tier (`false`: it exceeded the
    /// whole budget, or the policy of the caller declined upstream).
    pub accepted: bool,
    /// Tier-resident prefixes dropped (LRU) to make room — true data
    /// loss, unlike the spill itself.
    pub evicted_entries: u64,
    /// Blocks those dropped prefixes freed.
    pub evicted_blocks: u64,
}

/// A host-DRAM / DIMM-PIM capacity pool for cold KV prefixes.
///
/// Pure bookkeeping, like everything in this crate: the tier tracks
/// *which* prefixes are spilled and how many blocks they occupy, not
/// any cache contents. Transfer cost is priced by the serving layer
/// (`TierPricing` in `papi-interconnect`) — the tier itself is
/// price-free so it can be unit-tested as a data structure.
#[derive(Debug, Clone)]
pub struct KvTier {
    block_size: u64,
    budget_blocks: u64,
    entries: HashMap<u64, TierEntry>,
    blocks_in_use: u64,
    tick: u64,
}

impl KvTier {
    /// A tier of `budget_blocks` blocks, each holding `block_size`
    /// token slots (use the hot pool's block size so budgets compare).
    ///
    /// # Panics
    ///
    /// Panics if `block_size` or `budget_blocks` is zero.
    #[track_caller]
    pub fn new(block_size: u64, budget_blocks: u64) -> Self {
        assert!(block_size > 0, "tier block size must be positive");
        assert!(budget_blocks > 0, "tier budget must be positive");
        Self {
            block_size,
            budget_blocks,
            entries: HashMap::new(),
            blocks_in_use: 0,
            tick: 0,
        }
    }

    /// Tokens per block.
    pub fn block_size(&self) -> u64 {
        self.block_size
    }

    /// The tier's block budget.
    pub fn budget_blocks(&self) -> u64 {
        self.budget_blocks
    }

    /// Blocks the spilled entries occupy right now.
    pub fn blocks_in_use(&self) -> u64 {
        self.blocks_in_use
    }

    /// Blocks still unoccupied.
    pub fn free_blocks(&self) -> u64 {
        self.budget_blocks - self.blocks_in_use
    }

    /// Spilled prefixes resident.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is spilled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Blocks needed to hold `tokens` logical tokens.
    pub fn blocks_for(&self, tokens: u64) -> u64 {
        tokens.div_ceil(self.block_size)
    }

    /// Tokens the tier holds under `key`, without touching recency.
    pub fn peek(&self, key: u64) -> Option<u64> {
        self.entries.get(&key).map(|e| e.tokens)
    }

    /// Occupancy snapshot.
    pub fn stats(&self) -> TierStats {
        TierStats {
            block_size: self.block_size,
            budget_blocks: self.budget_blocks,
            blocks_in_use: self.blocks_in_use,
            entries: self.entries.len() as u64,
        }
    }

    /// Records a prefix of `tokens` logical tokens under `key`,
    /// dropping the tier's own least-recently-used entries if the
    /// budget runs short. A re-spill under an existing key keeps the
    /// longer record (a prefix only ever grows) and refreshes recency.
    ///
    /// Returns what happened; on `accepted == false` (the prefix alone
    /// exceeds the whole budget) the tier is left untouched.
    pub fn spill(&mut self, key: u64, tokens: u64) -> SpillOutcome {
        let mut outcome = SpillOutcome {
            accepted: false,
            evicted_entries: 0,
            evicted_blocks: 0,
        };
        let have = self.entries.get(&key).map_or(0, |e| e.tokens);
        let need = self.blocks_for(tokens.max(have)) - self.blocks_for(have);
        if self.blocks_for(tokens.max(have)) > self.budget_blocks {
            return outcome;
        }
        while self.free_blocks() < need {
            // The incoming key must not be its own victim: skip it when
            // extending an existing record.
            let victim = self
                .entries
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(k, e)| (e.last_use, **k))
                .map(|(k, _)| *k)
                .expect("budget check guarantees a victim exists");
            let dropped = self.entries.remove(&victim).expect("victim exists");
            let freed = self.blocks_for(dropped.tokens);
            self.blocks_in_use -= freed;
            outcome.evicted_entries += 1;
            outcome.evicted_blocks += freed;
        }
        self.tick += 1;
        let entry = self.entries.entry(key).or_insert(TierEntry {
            tokens: 0,
            last_use: 0,
        });
        entry.tokens = entry.tokens.max(tokens);
        entry.last_use = self.tick;
        self.blocks_in_use += need;
        outcome.accepted = true;
        outcome
    }

    /// Removes the prefix under `key` and returns its token count —
    /// the record the caller re-materializes in the hot pool. The
    /// tier's blocks are freed immediately: the prefix lives in exactly
    /// one tier at a time.
    pub fn fetch(&mut self, key: u64) -> Option<u64> {
        let entry = self.entries.remove(&key)?;
        self.blocks_in_use -= self.blocks_for(entry.tokens);
        Some(entry.tokens)
    }

    /// Drops every tier-resident prefix (a cold restart: the capacity
    /// tier's memory does not survive a replica retiring and
    /// re-provisioning).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.blocks_in_use = 0;
        self.tick = 0;
    }
}

/// An evicted hot prefix a [`SpillPolicy`] rules on.
#[derive(Debug, Clone, Copy)]
pub struct SpillCandidate {
    /// The prefix-cache key.
    pub key: u64,
    /// Logical tokens the prefix held.
    pub tokens: u64,
    /// Hot-pool blocks it occupied.
    pub blocks: u64,
}

/// Decides whether an evicted prefix is worth keeping in the tier.
///
/// Consulted once per hot-cache eviction when a tier is configured;
/// `false` means plain eviction (the pre-tier behaviour, and the right
/// call for prefixes too small to ever repay a fetch).
pub trait SpillPolicy: std::fmt::Debug + Send {
    /// Whether to record `candidate` in the tier.
    fn should_spill(&mut self, candidate: &SpillCandidate) -> bool;

    /// Display label for reports and sweeps.
    fn label(&self) -> String;
}

/// A tier-resident prefix a [`FetchPolicy`] rules on, at the moment a
/// request re-lands on its key.
#[derive(Debug, Clone, Copy)]
pub struct FetchCandidate {
    /// The prefix-cache key.
    pub key: u64,
    /// Tokens the tier holds under the key.
    pub tier_tokens: u64,
    /// Leading tokens the arriving request could reuse.
    pub reuse_tokens: u64,
    /// Tokens a fetch would actually restore (the overlap, in whole
    /// blocks).
    pub usable_tokens: u64,
}

/// Decides whether a re-landed prefix is worth fetching back from the
/// tier, or whether the engine should just re-prefill.
pub trait FetchPolicy: std::fmt::Debug + Send {
    /// Whether to fetch `candidate` back into the hot pool.
    fn should_fetch(&mut self, candidate: &FetchCandidate) -> bool;

    /// Display label for reports and sweeps.
    fn label(&self) -> String;
}

/// Spills every evicted prefix (the default).
#[derive(Debug, Clone, Copy, Default)]
pub struct SpillAll;

impl SpillPolicy for SpillAll {
    fn should_spill(&mut self, _candidate: &SpillCandidate) -> bool {
        true
    }

    fn label(&self) -> String {
        "spill-all".to_owned()
    }
}

/// Spills only prefixes of at least `min_blocks` hot blocks — tiny
/// prefixes are cheap to re-prefill and not worth tier churn.
#[derive(Debug, Clone, Copy)]
pub struct SpillMinBlocks {
    /// Smallest prefix (in hot-pool blocks) worth spilling.
    pub min_blocks: u64,
}

impl SpillPolicy for SpillMinBlocks {
    fn should_spill(&mut self, candidate: &SpillCandidate) -> bool {
        candidate.blocks >= self.min_blocks
    }

    fn label(&self) -> String {
        format!("spill-min-blocks:{}", self.min_blocks)
    }
}

/// Fetches every re-landed prefix (the default).
#[derive(Debug, Clone, Copy, Default)]
pub struct FetchAll;

impl FetchPolicy for FetchAll {
    fn should_fetch(&mut self, _candidate: &FetchCandidate) -> bool {
        true
    }

    fn label(&self) -> String {
        "fetch-all".to_owned()
    }
}

/// Fetches only when the request would reuse at least `min_tokens`
/// restored tokens; below that, re-prefill beats the transfer.
#[derive(Debug, Clone, Copy)]
pub struct FetchMinTokens {
    /// Smallest usable overlap (tokens) worth a fetch.
    pub min_tokens: u64,
}

impl FetchPolicy for FetchMinTokens {
    fn should_fetch(&mut self, candidate: &FetchCandidate) -> bool {
        candidate.usable_tokens >= self.min_tokens
    }

    fn label(&self) -> String {
        format!("fetch-min-tokens:{}", self.min_tokens)
    }
}

/// Declarative, serde-able name for a built-in [`SpillPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SpillSpec {
    /// [`SpillAll`] — the default.
    #[default]
    Always,
    /// [`SpillMinBlocks`] with the given floor.
    MinBlocks(u64),
}

impl SpillSpec {
    /// Builds the named policy.
    pub fn build(&self) -> Box<dyn SpillPolicy> {
        match *self {
            SpillSpec::Always => Box::new(SpillAll),
            SpillSpec::MinBlocks(min_blocks) => Box::new(SpillMinBlocks { min_blocks }),
        }
    }
}

/// Declarative, serde-able name for a built-in [`FetchPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum FetchSpec {
    /// [`FetchAll`] — the default.
    #[default]
    Always,
    /// [`FetchMinTokens`] with the given floor.
    MinTokens(u64),
}

impl FetchSpec {
    /// Builds the named policy.
    pub fn build(&self) -> Box<dyn FetchPolicy> {
        match *self {
            FetchSpec::Always => Box::new(FetchAll),
            FetchSpec::MinTokens(min_tokens) => Box::new(FetchMinTokens { min_tokens }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spill_fetch_round_trip_conserves_blocks() {
        let mut tier = KvTier::new(16, 8);
        let outcome = tier.spill(7, 40); // 3 blocks
        assert!(outcome.accepted);
        assert_eq!(outcome.evicted_entries, 0);
        assert_eq!(tier.blocks_in_use(), 3);
        assert_eq!(tier.peek(7), Some(40));
        assert_eq!(tier.fetch(7), Some(40));
        assert_eq!(tier.blocks_in_use(), 0);
        assert_eq!(tier.fetch(7), None);
    }

    #[test]
    fn clear_cold_starts_the_tier() {
        let mut tier = KvTier::new(16, 8);
        assert!(tier.spill(7, 40).accepted);
        assert!(tier.spill(9, 16).accepted);
        tier.clear();
        assert!(tier.is_empty());
        assert_eq!(tier.blocks_in_use(), 0);
        assert_eq!(tier.peek(7), None);
        assert_eq!(tier.fetch(9), None);
        // The tier still works after a cold start.
        assert!(tier.spill(7, 40).accepted);
        assert_eq!(tier.blocks_in_use(), 3);
    }

    #[test]
    fn respill_keeps_the_longer_record() {
        let mut tier = KvTier::new(16, 8);
        assert!(tier.spill(7, 64).accepted); // 4 blocks
        assert!(tier.spill(7, 32).accepted); // shorter: no-op on length
        assert_eq!(tier.peek(7), Some(64));
        assert_eq!(tier.blocks_in_use(), 4);
        assert!(tier.spill(7, 96).accepted); // longer: extends in place
        assert_eq!(tier.peek(7), Some(96));
        assert_eq!(tier.blocks_in_use(), 6);
    }

    #[test]
    fn budget_pressure_drops_the_coldest_entry() {
        let mut tier = KvTier::new(16, 6);
        assert!(tier.spill(1, 48).accepted); // 3 blocks
        assert!(tier.spill(2, 48).accepted); // 3 blocks, tier full
                                             // Touch 1 so 2 becomes the coldest.
        assert!(tier.spill(1, 48).accepted);
        let outcome = tier.spill(3, 32); // needs 2: must drop 2's 3 blocks
        assert!(outcome.accepted);
        assert_eq!(outcome.evicted_entries, 1);
        assert_eq!(outcome.evicted_blocks, 3);
        assert_eq!(tier.peek(2), None);
        assert!(tier.peek(1).is_some() && tier.peek(3).is_some());
        assert_eq!(tier.blocks_in_use(), 5);
    }

    #[test]
    fn an_oversized_prefix_is_rejected_without_eviction() {
        let mut tier = KvTier::new(16, 4);
        assert!(tier.spill(1, 32).accepted);
        let outcome = tier.spill(2, 1_000); // 63 blocks > whole budget
        assert!(!outcome.accepted);
        assert_eq!(outcome.evicted_entries, 0);
        assert_eq!(tier.peek(1), Some(32)); // untouched
        assert_eq!(tier.blocks_in_use(), 2);
    }

    #[test]
    fn extending_a_record_never_evicts_itself() {
        let mut tier = KvTier::new(16, 4);
        assert!(tier.spill(9, 32).accepted); // 2 blocks
        let outcome = tier.spill(9, 64); // grow to the whole budget
        assert!(outcome.accepted);
        assert_eq!(outcome.evicted_entries, 0);
        assert_eq!(tier.peek(9), Some(64));
        assert_eq!(tier.free_blocks(), 0);
    }

    #[test]
    fn stats_snapshot() {
        let mut tier = KvTier::new(8, 10);
        assert!(tier.spill(3, 20).accepted);
        let stats = tier.stats();
        assert_eq!(stats.block_size, 8);
        assert_eq!(stats.budget_blocks, 10);
        assert_eq!(stats.blocks_in_use, 3);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn policy_built_ins_and_labels() {
        let mut spill_all = SpillSpec::Always.build();
        let mut spill_min = SpillSpec::MinBlocks(4).build();
        let c = SpillCandidate {
            key: 1,
            tokens: 48,
            blocks: 3,
        };
        assert!(spill_all.should_spill(&c));
        assert!(!spill_min.should_spill(&c));
        assert_eq!(spill_all.label(), "spill-all");
        assert_eq!(spill_min.label(), "spill-min-blocks:4");

        let mut fetch_all = FetchSpec::Always.build();
        let mut fetch_min = FetchSpec::MinTokens(64).build();
        let f = FetchCandidate {
            key: 1,
            tier_tokens: 48,
            reuse_tokens: 100,
            usable_tokens: 48,
        };
        assert!(fetch_all.should_fetch(&f));
        assert!(!fetch_min.should_fetch(&f));
        assert_eq!(fetch_all.label(), "fetch-all");
        assert_eq!(fetch_min.label(), "fetch-min-tokens:64");
    }
}
