//! Phase-scoped wall-clock profiling for the simulator itself.
//!
//! The serving and cluster engines are instrumented with lightweight
//! named phases ([`phase!`]`("route")`, `phase!("step")`,
//! `phase!("price")`, `phase!("snapshot")`, …). Profiling is **off by
//! default**: a disabled phase costs one relaxed atomic load and
//! constructs no timer, so instrumented hot paths stay hot. Enable it
//! programmatically with [`enable`] or by exporting `PAPI_PROFILE=1`,
//! run the workload, then collect a [`Profile`]:
//!
//! ```
//! papi_perf::enable();
//! {
//!     papi_perf::phase!("outer");
//!     {
//!         papi_perf::phase!("inner");
//!     }
//! }
//! let profile = papi_perf::report();
//! assert_eq!(profile.phase("outer").unwrap().count, 1);
//! println!("{}", profile.table());
//! papi_perf::disable();
//! papi_perf::reset();
//! ```
//!
//! A profile offers three consumers:
//!
//! - **terminal table** ([`Profile::table`]): per-phase count and
//!   inclusive/self wall time with min/median/mean/stddev/max;
//! - **JSON baselines** ([`Profile::to_json`] /
//!   [`Profile::compare`]): save a run's profile, diff a later run
//!   against it with a configurable regression threshold
//!   ([`ProfileDiff`]);
//! - **folded stacks** ([`Profile::folded`]): `outer;inner 1234`
//!   lines (self-time microseconds) consumable by standard flamegraph
//!   tooling (`flamegraph.pl`, inferno, speedscope).
//!
//! Phases nest: samples are recorded per leaf name for the breakdown
//! table and per full stack path for the folded output. Every thread
//! that enters a phase registers itself; [`report`] merges all
//! threads, so rayon fan-outs profile transparently.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// JSON schema tag of a serialized [`Profile`].
pub const PROFILE_SCHEMA: &str = "papi-perf-profile/1";

// ---------------------------------------------------------------------
// Global enable state
// ---------------------------------------------------------------------

/// 0 = undetermined (consult `PAPI_PROFILE`), 1 = off, 2 = on.
static STATE: AtomicU8 = AtomicU8::new(0);

/// Whether phase timing is currently on. The first call (per process)
/// consults the `PAPI_PROFILE` environment variable (`1` / `true` /
/// `on` enable); afterwards this is one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => {
            let on = std::env::var("PAPI_PROFILE")
                .map(|v| matches!(v.as_str(), "1" | "true" | "on"))
                .unwrap_or(false);
            STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
    }
}

/// Turns phase timing on for the whole process.
pub fn enable() {
    STATE.store(2, Ordering::Relaxed);
}

/// Turns phase timing off (already-open guards still record on drop).
pub fn disable() {
    STATE.store(1, Ordering::Relaxed);
}

// ---------------------------------------------------------------------
// Per-thread collection
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct ThreadData {
    /// Inclusive-duration samples per leaf phase name, in seconds.
    samples: HashMap<&'static str, Vec<f64>>,
    /// Self time per full stack path (`outer;inner`), in seconds.
    folded: HashMap<String, f64>,
}

struct Frame {
    name: &'static str,
    path: String,
    start: Instant,
    /// Inclusive time of already-closed children, subtracted from this
    /// frame's inclusive time to get its self time.
    child_s: f64,
}

#[derive(Default)]
struct ThreadState {
    stack: Vec<Frame>,
    data: Arc<Mutex<ThreadData>>,
    registered: bool,
}

fn registry() -> &'static Mutex<Vec<Arc<Mutex<ThreadData>>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Mutex<ThreadData>>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static THREAD: std::cell::RefCell<ThreadState> =
        std::cell::RefCell::new(ThreadState::default());
}

/// RAII timer for one phase. Construct through [`phase!`] (or
/// [`PhaseGuard::enter`] directly); the sample is recorded when the
/// guard drops. A guard created while profiling is disabled records
/// nothing.
#[must_use = "a phase guard times the scope it is bound to"]
#[derive(Debug)]
pub struct PhaseGuard {
    active: bool,
}

impl PhaseGuard {
    /// Opens a phase named `name` (a no-op unless [`enabled`]).
    #[inline]
    pub fn enter(name: &'static str) -> Self {
        if !enabled() {
            return Self { active: false };
        }
        THREAD.with(|cell| {
            let mut state = cell.borrow_mut();
            if !state.registered {
                registry().lock().unwrap().push(Arc::clone(&state.data));
                state.registered = true;
            }
            let path = match state.stack.last() {
                Some(parent) => format!("{};{}", parent.path, name),
                None => name.to_owned(),
            };
            state.stack.push(Frame {
                name,
                path,
                start: Instant::now(),
                child_s: 0.0,
            });
        });
        Self { active: true }
    }
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        THREAD.with(|cell| {
            let mut state = cell.borrow_mut();
            let Some(frame) = state.stack.pop() else {
                return;
            };
            let inclusive = frame.start.elapsed().as_secs_f64();
            let self_s = (inclusive - frame.child_s).max(0.0);
            if let Some(parent) = state.stack.last_mut() {
                parent.child_s += inclusive;
            }
            let mut data = state.data.lock().unwrap();
            data.samples.entry(frame.name).or_default().push(inclusive);
            *data.folded.entry(frame.path).or_default() += self_s;
        });
    }
}

/// Times the lexical scope it is invoked in under `name`:
///
/// ```
/// papi_perf::enable();
/// {
///     papi_perf::phase!("route");
///     // ... the timed work ...
/// }
/// papi_perf::disable();
/// ```
///
/// Expands to a [`PhaseGuard`] binding, so nothing is measured (and no
/// timer is constructed) unless profiling is enabled.
#[macro_export]
macro_rules! phase {
    ($name:expr) => {
        let _papi_perf_phase = $crate::PhaseGuard::enter($name);
    };
}

/// Clears every thread's recorded samples (open guards keep timing and
/// will record into the cleared store on drop).
pub fn reset() {
    for data in registry().lock().unwrap().iter() {
        let mut data = data.lock().unwrap();
        data.samples.clear();
        data.folded.clear();
    }
}

/// Aggregates every thread's samples into a [`Profile`] snapshot.
pub fn report() -> Profile {
    let mut samples: HashMap<&'static str, Vec<f64>> = HashMap::new();
    let mut folded: HashMap<String, f64> = HashMap::new();
    for data in registry().lock().unwrap().iter() {
        let data = data.lock().unwrap();
        for (&name, s) in &data.samples {
            samples.entry(name).or_default().extend_from_slice(s);
        }
        for (path, s) in &data.folded {
            *folded.entry(path.clone()).or_default() += s;
        }
    }
    let mut phases: Vec<PhaseStats> = samples
        .into_iter()
        .map(|(name, mut s)| {
            let self_s = folded
                .iter()
                .filter(|(path, _)| path.rsplit(';').next() == Some(name))
                .map(|(_, v)| v)
                .sum();
            PhaseStats::from_samples(name.to_owned(), &mut s, self_s)
        })
        .collect();
    phases.sort_by(|a, b| b.total_s.total_cmp(&a.total_s).then(a.name.cmp(&b.name)));
    let mut folded: Vec<(String, f64)> = folded.into_iter().collect();
    folded.sort_by(|a, b| a.0.cmp(&b.0));
    Profile {
        schema: PROFILE_SCHEMA.to_owned(),
        phases,
        folded,
    }
}

// ---------------------------------------------------------------------
// Profile
// ---------------------------------------------------------------------

/// Wall-time statistics of one phase (all samples with its leaf name,
/// summed across threads and call paths). Times in seconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseStats {
    /// The phase name (`phase!("name")`).
    pub name: String,
    /// Samples recorded.
    pub count: u64,
    /// Total inclusive wall time.
    pub total_s: f64,
    /// Total self wall time (inclusive minus nested phases).
    pub self_s: f64,
    /// Smallest sample.
    pub min_s: f64,
    /// Median sample.
    pub median_s: f64,
    /// Mean sample.
    pub mean_s: f64,
    /// Population standard deviation of the samples.
    pub stddev_s: f64,
    /// Largest sample.
    pub max_s: f64,
}

impl PhaseStats {
    fn from_samples(name: String, samples: &mut [f64], self_s: f64) -> Self {
        samples.sort_by(f64::total_cmp);
        let count = samples.len() as u64;
        let total: f64 = samples.iter().sum();
        let mean = if count == 0 {
            0.0
        } else {
            total / count as f64
        };
        let variance = if count == 0 {
            0.0
        } else {
            samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / count as f64
        };
        let median = match count as usize {
            0 => 0.0,
            n if n % 2 == 1 => samples[n / 2],
            n => (samples[n / 2 - 1] + samples[n / 2]) / 2.0,
        };
        Self {
            name,
            count,
            total_s: total,
            self_s,
            min_s: samples.first().copied().unwrap_or(0.0),
            median_s: median,
            mean_s: mean,
            stddev_s: variance.sqrt(),
            max_s: samples.last().copied().unwrap_or(0.0),
        }
    }
}

/// A snapshot of every phase's statistics plus the folded call paths —
/// what [`report`] returns and what the JSON baseline stores.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    /// Always [`PROFILE_SCHEMA`].
    pub schema: String,
    /// Per-phase statistics, sorted by descending total time.
    pub phases: Vec<PhaseStats>,
    /// `(stack path, self seconds)` pairs, sorted by path.
    pub folded: Vec<(String, f64)>,
}

impl Profile {
    /// The stats of phase `name`, if it was ever entered.
    pub fn phase(&self, name: &str) -> Option<&PhaseStats> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// Total inclusive seconds across top-level phases (each folded
    /// root path's self time plus its descendants' — i.e. the sum of
    /// root-phase totals).
    pub fn total_s(&self) -> f64 {
        self.folded.iter().map(|(_, s)| s).sum()
    }

    /// The formatted per-phase breakdown table.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<12} {:>9} {:>10} {:>10} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
            "phase",
            "count",
            "total ms",
            "self ms",
            "min µs",
            "median µs",
            "mean µs",
            "std µs",
            "max µs"
        ));
        let total = self.total_s().max(f64::MIN_POSITIVE);
        for p in &self.phases {
            out.push_str(&format!(
                "{:<12} {:>9} {:>10.2} {:>10.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2}  {:>5.1}%\n",
                p.name,
                p.count,
                p.total_s * 1e3,
                p.self_s * 1e3,
                p.min_s * 1e6,
                p.median_s * 1e6,
                p.mean_s * 1e6,
                p.stddev_s * 1e6,
                p.max_s * 1e6,
                p.self_s / total * 100.0,
            ));
        }
        out
    }

    /// Folded-stack lines (`outer;inner 1234`, self-time microseconds
    /// as the sample weight) for flamegraph tooling.
    pub fn folded_stacks(&self) -> String {
        let mut out = String::new();
        for (path, self_s) in &self.folded {
            let micros = (self_s * 1e6).round() as u64;
            if micros > 0 {
                out.push_str(&format!("{path} {micros}\n"));
            }
        }
        out
    }

    /// Serializes the profile as one JSON document.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("profile serializes")
    }

    /// Parses a profile saved by [`to_json`](Self::to_json).
    ///
    /// # Errors
    ///
    /// Returns a message when the text is not valid profile JSON or
    /// carries a different schema tag.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let profile: Profile =
            serde_json::from_str(text.trim()).map_err(|e| format!("invalid profile: {e:?}"))?;
        if profile.schema != PROFILE_SCHEMA {
            return Err(format!("unsupported profile schema {}", profile.schema));
        }
        Ok(profile)
    }

    /// Diffs `self` (the current run) against `baseline` with the given
    /// fractional regression `threshold` (0.25 = a phase may grow 25 %
    /// over baseline before it is flagged). Phase totals below
    /// [`ProfileDiff::NOISE_FLOOR_S`] never flag.
    pub fn compare(&self, baseline: &Profile, threshold: f64) -> ProfileDiff {
        let mut rows = Vec::new();
        for base in &baseline.phases {
            let cur = self.phase(&base.name);
            let cur_total = cur.map_or(0.0, |c| c.total_s);
            let ratio = cur_total / base.total_s.max(f64::MIN_POSITIVE);
            rows.push(PhaseDiff {
                name: base.name.clone(),
                baseline_s: base.total_s,
                current_s: cur_total,
                ratio,
                regressed: ratio > 1.0 + threshold && cur_total > ProfileDiff::NOISE_FLOOR_S,
            });
        }
        for cur in &self.phases {
            if baseline.phase(&cur.name).is_none() {
                rows.push(PhaseDiff {
                    name: cur.name.clone(),
                    baseline_s: 0.0,
                    current_s: cur.total_s,
                    ratio: f64::INFINITY,
                    regressed: false, // new phases inform, never gate
                });
            }
        }
        ProfileDiff { threshold, rows }
    }
}

/// One phase's baseline-vs-current comparison row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseDiff {
    /// The phase name.
    pub name: String,
    /// Baseline total seconds.
    pub baseline_s: f64,
    /// Current total seconds.
    pub current_s: f64,
    /// `current / baseline` (∞ for a phase new in the current run).
    pub ratio: f64,
    /// Whether the phase exceeded the diff's threshold.
    pub regressed: bool,
}

/// The result of [`Profile::compare`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileDiff {
    /// The fractional growth allowed before a phase flags.
    pub threshold: f64,
    /// One row per phase in either profile.
    pub rows: Vec<PhaseDiff>,
}

impl ProfileDiff {
    /// Phases totalling less than this never flag: micro-phase wall
    /// times are scheduler noise, not signal.
    pub const NOISE_FLOOR_S: f64 = 1e-3;

    /// The phases that regressed past the threshold.
    pub fn regressions(&self) -> impl Iterator<Item = &PhaseDiff> {
        self.rows.iter().filter(|r| r.regressed)
    }

    /// Whether no phase regressed.
    pub fn passed(&self) -> bool {
        self.regressions().next().is_none()
    }

    /// The formatted comparison table.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<12} {:>12} {:>12} {:>8}  verdict (threshold {:.0}%)\n",
            "phase",
            "base ms",
            "cur ms",
            "ratio",
            self.threshold * 100.0
        ));
        for row in &self.rows {
            out.push_str(&format!(
                "{:<12} {:>12.2} {:>12.2} {:>8.3}  {}\n",
                row.name,
                row.baseline_s * 1e3,
                row.current_s * 1e3,
                row.ratio,
                if row.regressed {
                    "REGRESSED"
                } else if row.baseline_s == 0.0 {
                    "new"
                } else {
                    "ok"
                }
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The profiler is process-global, so every assertion about
    /// recorded state lives in this one test (Rust runs tests in
    /// parallel threads; separate tests would race on enable/reset).
    #[test]
    fn phases_record_nest_serialize_and_compare() {
        enable();
        reset();
        {
            phase!("outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            for _ in 0..3 {
                phase!("inner");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        let profile = report();
        disable();

        let outer = profile.phase("outer").expect("outer recorded");
        let inner = profile.phase("inner").expect("inner recorded");
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 3);
        assert!(outer.total_s >= inner.total_s, "outer includes inner");
        assert!(inner.min_s <= inner.median_s && inner.median_s <= inner.max_s);
        assert!(inner.mean_s > 0.0);
        // Self time excludes children: outer self < outer inclusive.
        assert!(outer.self_s < outer.total_s);
        // Folded paths carry the nesting.
        let folded = profile.folded_stacks();
        assert!(folded.contains("outer;inner "), "folded: {folded}");
        // Table renders every phase.
        let table = profile.table();
        assert!(table.contains("outer") && table.contains("inner"));

        // JSON round trip.
        let parsed = Profile::from_json(&profile.to_json()).expect("round trips");
        assert_eq!(parsed, profile);
        assert!(Profile::from_json("{}").is_err());

        // Comparison: identical profiles pass, a 10× slower phase
        // flags, and the noise floor suppresses micro-phases.
        let diff = profile.compare(&profile, 0.25);
        assert!(diff.passed(), "{}", diff.table());
        let mut slower = profile.clone();
        slower.phases[0].total_s *= 10.0;
        for p in &mut slower.phases {
            p.total_s *= 10.0;
        }
        let diff = slower.compare(&profile, 0.25);
        assert!(!diff.passed());
        assert!(diff.regressions().next().is_some());
        assert!(diff.table().contains("REGRESSED"));

        // A disabled phase records nothing.
        reset();
        {
            phase!("dark");
        }
        assert!(report().phase("dark").is_none());
    }

    /// Samples from rayon-style helper threads merge into the report.
    #[test]
    fn cross_thread_samples_merge() {
        enable();
        let handles: Vec<_> = (0..2)
            .map(|_| {
                std::thread::spawn(|| {
                    phase!("worker");
                    std::thread::sleep(std::time::Duration::from_millis(1));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let profile = report();
        disable();
        let worker = profile.phase("worker").expect("worker threads recorded");
        assert!(worker.count >= 2);
    }
}
