//! Fully-connected (GEMV / skinny-GEMM) kernel execution on PIM devices.
//!
//! A decoding-phase FC kernel multiplies an `(out × in)` weight matrix by
//! `tokens = RLP × TLP` activation vectors. On PIM the weights stream
//! from the banks into the near-bank FPUs; the token count is the
//! data-reuse level, which sets both the achievable MAC rate (see
//! [`PimDevice::mac_rate`]) and the energy split.

use crate::device::PimDevice;
use crate::energy::PimEnergyBreakdown;
use crate::partition::plan_weight_partition;
use papi_types::{Bytes, DataType, Flops, Time};
use serde::{Deserialize, Serialize};

/// Shape of one FC kernel invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GemvSpec {
    /// Output features (weight rows).
    pub out_features: u64,
    /// Input features (weight columns).
    pub in_features: u64,
    /// Activation vectors processed together (`RLP × TLP`), i.e. the
    /// DRAM data-reuse level.
    pub tokens: u64,
    /// Element type.
    pub dtype: DataType,
}

impl GemvSpec {
    /// Creates a spec.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[track_caller]
    pub fn new(out_features: u64, in_features: u64, tokens: u64, dtype: DataType) -> Self {
        assert!(
            out_features > 0 && in_features > 0 && tokens > 0,
            "GEMV dimensions must be positive"
        );
        Self {
            out_features,
            in_features,
            tokens,
            dtype,
        }
    }

    /// Number of weights.
    pub fn weights(&self) -> u64 {
        self.out_features * self.in_features
    }

    /// Bytes of weights.
    pub fn weight_bytes(&self) -> Bytes {
        self.weights() as f64 * self.dtype.size()
    }

    /// Multiply-accumulates performed.
    pub fn macs(&self) -> f64 {
        self.weights() as f64 * self.tokens as f64
    }

    /// FLOPs performed (2 per MAC).
    pub fn flops(&self) -> Flops {
        Flops::new(2.0 * self.macs())
    }

    /// Activation bytes entering the kernel.
    pub fn input_bytes(&self) -> Bytes {
        (self.tokens * self.in_features) as f64 * self.dtype.size()
    }

    /// Result bytes leaving the kernel.
    pub fn output_bytes(&self) -> Bytes {
        (self.tokens * self.out_features) as f64 * self.dtype.size()
    }
}

/// What limited a PIM kernel's execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bottleneck {
    /// Weight streaming out of the DRAM banks.
    WeightStream,
    /// FPU throughput.
    Compute,
}

/// Outcome of executing a kernel on a PIM array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PimKernelResult {
    /// Kernel latency.
    pub time: Time,
    /// Energy split (DRAM access / transfer / compute).
    pub energy: PimEnergyBreakdown,
    /// Weight bytes fetched from DRAM.
    pub fetch_bytes: Bytes,
    /// Multiply-accumulates executed.
    pub macs: f64,
    /// What limited execution.
    pub bottleneck: Bottleneck,
}

impl PimKernelResult {
    /// Combines two kernel results executed back-to-back (times add,
    /// energies add; the bottleneck of the longer phase wins).
    pub fn then(&self, next: &PimKernelResult) -> PimKernelResult {
        PimKernelResult {
            time: self.time + next.time,
            energy: self.energy.merged(&next.energy),
            fetch_bytes: self.fetch_bytes + next.fetch_bytes,
            macs: self.macs + next.macs,
            bottleneck: if self.time.value() >= next.time.value() {
                self.bottleneck
            } else {
                next.bottleneck
            },
        }
    }
}

/// Executes one FC kernel spread over `n_devices` identical PIM devices.
///
/// Latency is the busiest device's streaming/compute time (including
/// partition imbalance); energy covers all devices.
///
/// # Panics
///
/// Panics if `n_devices` is zero.
#[track_caller]
pub fn execute_gemv(device: &PimDevice, n_devices: usize, spec: &GemvSpec) -> PimKernelResult {
    assert!(n_devices > 0, "need at least one PIM device");
    let plan = plan_weight_partition(
        spec.out_features,
        spec.in_features,
        n_devices,
        device.banks(),
    );
    let reuse = spec.tokens;
    let mac_rate = device.mac_rate(reuse, spec.dtype); // per device

    // Busiest device's share of the MACs, inflated by bank imbalance.
    let macs_busiest = plan.rows_per_device as f64
        * spec.in_features as f64
        * spec.tokens as f64
        * plan.bank_imbalance;
    let time = Time::new(macs_busiest / mac_rate);
    let fetch_bytes = spec.weight_bytes();
    let energy =
        device
            .energy_model
            .breakdown(fetch_bytes, device.dram_access_pj_per_byte(), spec.macs());
    // Compute-bound iff the FPUs are saturated: the achieved MAC rate
    // reaches the device's peak.
    let compute_peak = device.total_fpus() as f64 * device.fpu.mac_rate();
    let bottleneck = if mac_rate >= 0.999 * compute_peak {
        Bottleneck::Compute
    } else {
        Bottleneck::WeightStream
    };
    PimKernelResult {
        time,
        energy,
        fetch_bytes,
        macs: spec.macs(),
        bottleneck,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn llama_fc_spec(tokens: u64) -> GemvSpec {
        // One LLaMA-65B layer's worth of FC weights lumped together:
        // 12 h² with h = 8192.
        GemvSpec::new(12 * 8192, 8192, tokens, DataType::Fp16)
    }

    #[test]
    fn spec_arithmetic() {
        let s = GemvSpec::new(100, 200, 4, DataType::Fp16);
        assert_eq!(s.weights(), 20_000);
        assert_eq!(s.weight_bytes().value(), 40_000.0);
        assert_eq!(s.macs(), 80_000.0);
        assert_eq!(s.flops().value(), 160_000.0);
        assert_eq!(s.input_bytes().value(), 1600.0);
        assert_eq!(s.output_bytes().value(), 800.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dims_rejected() {
        GemvSpec::new(0, 10, 1, DataType::Fp16);
    }

    #[test]
    fn latency_scales_inverse_with_devices() {
        let fc = PimDevice::fc_pim();
        let spec = llama_fc_spec(16);
        let t1 = execute_gemv(&fc, 1, &spec).time;
        let t30 = execute_gemv(&fc, 30, &spec).time;
        let speedup = t1.value() / t30.value();
        assert!(
            speedup > 25.0 && speedup <= 30.5,
            "30 devices gave {speedup}× over 1"
        );
    }

    #[test]
    fn fc_pim_beats_attacc_at_high_tokens() {
        // The core Fig. 12 effect: at reuse 16 (batch 4 × spec 4) the
        // 4P1B FC-PIM should be ~3× faster than 1P1B AttAcc.
        let spec = llama_fc_spec(16);
        let fc = execute_gemv(&PimDevice::fc_pim(), 30, &spec);
        let attacc = execute_gemv(&PimDevice::attacc(), 30, &spec);
        let ratio = attacc.time.value() / fc.time.value();
        assert!(
            ratio > 2.5 && ratio < 3.5,
            "FC-PIM speedup {ratio}, want ~3"
        );
    }

    #[test]
    fn low_tokens_stream_bound_high_tokens_compute_bound() {
        let fc = PimDevice::fc_pim();
        let low = execute_gemv(&fc, 30, &llama_fc_spec(1));
        let high = execute_gemv(&fc, 30, &llama_fc_spec(64));
        assert_eq!(low.bottleneck, Bottleneck::WeightStream);
        assert_eq!(high.bottleneck, Bottleneck::Compute);
    }

    #[test]
    fn latency_grows_linearly_once_compute_bound() {
        let fc = PimDevice::fc_pim();
        let t16 = execute_gemv(&fc, 30, &llama_fc_spec(16)).time;
        let t64 = execute_gemv(&fc, 30, &llama_fc_spec(64)).time;
        let ratio = t64.value() / t16.value();
        assert!(
            (ratio - 4.0).abs() < 0.3,
            "64/16 token ratio {ratio}, want ~4"
        );
    }

    #[test]
    fn stream_bound_region_has_constant_mac_rate() {
        // From reuse 1 to 4, FC-PIM trades parallel weight streams for
        // broadcast: the MAC rate is unchanged, so latency grows exactly
        // with the token count.
        let fc = PimDevice::fc_pim();
        let t1 = execute_gemv(&fc, 30, &llama_fc_spec(1)).time;
        let t4 = execute_gemv(&fc, 30, &llama_fc_spec(4)).time;
        assert!(
            (t4.value() / t1.value() - 4.0).abs() < 0.1,
            "stream-bound latency should scale with tokens: {} vs {}",
            t1,
            t4
        );
    }

    #[test]
    fn energy_dram_share_falls_with_tokens() {
        let fc = PimDevice::fc_pim();
        let (d1, ..) = execute_gemv(&fc, 30, &llama_fc_spec(1)).energy.fractions();
        let (d64, ..) = execute_gemv(&fc, 30, &llama_fc_spec(64)).energy.fractions();
        assert!(d1 > 0.9, "no-reuse dram share {d1}");
        assert!(d64 < 0.4, "reuse-64 dram share {d64}");
    }

    #[test]
    fn then_combines_results() {
        let fc = PimDevice::fc_pim();
        let a = execute_gemv(&fc, 30, &llama_fc_spec(4));
        let b = execute_gemv(&fc, 30, &llama_fc_spec(64));
        let c = a.then(&b);
        assert!((c.time.value() - (a.time.value() + b.time.value())).abs() < 1e-18);
        assert_eq!(c.bottleneck, b.bottleneck);
        assert!((c.macs - (a.macs + b.macs)).abs() < 1.0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// Latency is monotone in token count for every device.
            #[test]
            fn latency_monotone_in_tokens(a in 1u64..256, b in 1u64..256) {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                for device in [PimDevice::fc_pim(), PimDevice::attacc(), PimDevice::attn_pim()] {
                    let t_lo = execute_gemv(&device, 8, &llama_fc_spec(lo)).time;
                    let t_hi = execute_gemv(&device, 8, &llama_fc_spec(hi)).time;
                    prop_assert!(t_lo.value() <= t_hi.value() * (1.0 + 1e-9));
                }
            }

            /// More devices never hurt.
            #[test]
            fn latency_monotone_in_devices(n in 1usize..30, tokens in 1u64..64) {
                let fc = PimDevice::fc_pim();
                let few = execute_gemv(&fc, n, &llama_fc_spec(tokens)).time;
                let more = execute_gemv(&fc, n + 1, &llama_fc_spec(tokens)).time;
                prop_assert!(more.value() <= few.value() * (1.0 + 1e-9));
            }

            /// Energy's DRAM share is non-increasing in tokens (reuse only
            /// helps), and the implied power never exceeds the no-reuse
            /// draw.
            #[test]
            fn dram_share_monotone_in_reuse(a in 1u64..64, b in 1u64..64) {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                let fc = PimDevice::fc_pim();
                let (d_lo, ..) = execute_gemv(&fc, 8, &llama_fc_spec(lo)).energy.fractions();
                let (d_hi, ..) = execute_gemv(&fc, 8, &llama_fc_spec(hi)).energy.fractions();
                prop_assert!(d_hi <= d_lo + 1e-9);
            }

            /// MACs and fetch bytes are exact bookkeeping, independent of
            /// the hardware.
            #[test]
            fn accounting_is_exact(tokens in 1u64..128, out in 1u64..4096, inp in 1u64..4096) {
                let spec = GemvSpec::new(out, inp, tokens, DataType::Fp16);
                let r = execute_gemv(&PimDevice::attacc(), 4, &spec);
                prop_assert_eq!(r.macs, (out * inp * tokens) as f64);
                prop_assert_eq!(r.fetch_bytes.value(), (out * inp * 2) as f64);
            }
        }
    }
}
