//! The PIM energy split of the paper's Fig. 7(a)/(b): **DRAM access** /
//! **Transfer** / **Computation**.
//!
//! Calibration targets (paper §6.1):
//!
//! - with no data reuse, DRAM access is **96.7 %** of PIM energy;
//! - at data-reuse 64, DRAM access falls to ≈ **33 %**.
//!
//! With the DRAM side fixed at ≈ 62.15 pJ/byte (7.77 pJ/bit, from
//! `papi-dram`'s HBM3 energy parameters) the split pins transfer +
//! compute at ≈ 4.24 pJ/MAC, which we apportion 2.6 pJ to operand
//! transfer (buffer die → TSV → bank-group controller → FPU) and 1.64 pJ
//! to the FP16 MAC itself.

use papi_types::{Bytes, Energy};
use serde::{Deserialize, Serialize};

/// Transfer/compute energy constants for near-bank execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PimEnergyModel {
    /// Energy to move one MAC's operands through the on-die network
    /// (buffer die, TSV, controllers), in picojoules.
    pub transfer_pj_per_mac: f64,
    /// Energy of one FP16 multiply-accumulate, in picojoules.
    pub compute_pj_per_mac: f64,
}

impl PimEnergyModel {
    /// The calibration described in the module docs.
    pub fn paper() -> Self {
        Self {
            transfer_pj_per_mac: 2.6,
            compute_pj_per_mac: 1.64,
        }
    }

    /// Transfer + compute energy per MAC.
    pub fn non_dram_pj_per_mac(&self) -> f64 {
        self.transfer_pj_per_mac + self.compute_pj_per_mac
    }

    /// Builds the three-way energy breakdown for a kernel that fetched
    /// `fetch_bytes` of weights at `dram_pj_per_byte` and executed `macs`
    /// multiply-accumulates.
    pub fn breakdown(
        &self,
        fetch_bytes: Bytes,
        dram_pj_per_byte: f64,
        macs: f64,
    ) -> PimEnergyBreakdown {
        PimEnergyBreakdown {
            dram_access: Energy::from_picojoules(fetch_bytes.value() * dram_pj_per_byte),
            transfer: Energy::from_picojoules(macs * self.transfer_pj_per_mac),
            compute: Energy::from_picojoules(macs * self.compute_pj_per_mac),
        }
    }
}

impl Default for PimEnergyModel {
    fn default() -> Self {
        Self::paper()
    }
}

/// PIM execution energy split by source (Fig. 7(a)/(b)).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PimEnergyBreakdown {
    /// Activating/precharging rows and reading columns.
    pub dram_access: Energy,
    /// Moving operands through the on-die network.
    pub transfer: Energy,
    /// The FPU MACs themselves.
    pub compute: Energy,
}

impl PimEnergyBreakdown {
    /// Total energy.
    pub fn total(&self) -> Energy {
        self.dram_access + self.transfer + self.compute
    }

    /// Fractions `(dram_access, transfer, compute)` of the total, for
    /// regenerating Fig. 7(a)/(b). Returns zeros for an empty breakdown.
    pub fn fractions(&self) -> (f64, f64, f64) {
        let total = self.total().value();
        if total == 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.dram_access.value() / total,
            self.transfer.value() / total,
            self.compute.value() / total,
        )
    }

    /// Component-wise sum.
    pub fn merged(&self, other: &PimEnergyBreakdown) -> PimEnergyBreakdown {
        PimEnergyBreakdown {
            dram_access: self.dram_access + other.dram_access,
            transfer: self.transfer + other.transfer,
            compute: self.compute + other.compute,
        }
    }

    /// Scales every component (e.g. to replicate one layer's kernel
    /// across all decoder layers).
    pub fn scaled(&self, factor: f64) -> PimEnergyBreakdown {
        PimEnergyBreakdown {
            dram_access: self.dram_access * factor,
            transfer: self.transfer * factor,
            compute: self.compute * factor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DRAM_PJ_PER_BYTE: f64 = 62.15;

    /// Fig. 7(a): no data reuse → DRAM access ≈ 96.7 % of energy.
    #[test]
    fn fig7a_no_reuse_dram_share() {
        let m = PimEnergyModel::paper();
        let macs = 1e9;
        let fetch = Bytes::new(macs * 2.0); // every FP16 weight fetched once
        let b = m.breakdown(fetch, DRAM_PJ_PER_BYTE, macs);
        let (dram, transfer, compute) = b.fractions();
        assert!((dram - 0.967).abs() < 0.005, "dram share {dram}");
        assert!(transfer > compute, "transfer should dominate compute");
    }

    /// Fig. 7(b): data reuse 64 → DRAM access ≈ 33 % of energy.
    #[test]
    fn fig7b_reuse64_dram_share() {
        let m = PimEnergyModel::paper();
        let macs = 64e9;
        let fetch = Bytes::new(1e9 * 2.0); // weights fetched once, used 64×
        let b = m.breakdown(fetch, DRAM_PJ_PER_BYTE, macs);
        let (dram, _, _) = b.fractions();
        assert!(
            (dram - 0.331).abs() < 0.03,
            "dram share {dram}, paper reports 33.1 %"
        );
    }

    #[test]
    fn fractions_sum_to_one() {
        let m = PimEnergyModel::paper();
        let b = m.breakdown(Bytes::new(1e6), DRAM_PJ_PER_BYTE, 3e6);
        let (a, t, c) = b.fractions();
        assert!((a + t + c - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_has_zero_fractions() {
        let b = PimEnergyBreakdown::default();
        assert_eq!(b.fractions(), (0.0, 0.0, 0.0));
        assert_eq!(b.total(), Energy::ZERO);
    }

    #[test]
    fn merge_and_scale() {
        let m = PimEnergyModel::paper();
        let b = m.breakdown(Bytes::new(100.0), DRAM_PJ_PER_BYTE, 50.0);
        let doubled = b.merged(&b);
        let scaled = b.scaled(2.0);
        assert!((doubled.total().value() - scaled.total().value()).abs() < 1e-24);
    }
}
