//! The near-bank floating-point unit.

use papi_types::{Area, Bandwidth, DataType, FlopsRate, Frequency};
use serde::{Deserialize, Serialize};

/// One near-bank FPU: a SIMD multiply-accumulate unit fed directly from
/// the bank's column read-out, as in AttAcc.
///
/// The preset matches the paper: 16 FP16 lanes at 666 MHz, 0.1025 mm²
/// (§6.1), consuming one 32-byte column access per cycle when streaming.
///
/// # Example
///
/// ```
/// use papi_pim::FpuSpec;
/// use papi_types::DataType;
///
/// let fpu = FpuSpec::attacc();
/// assert!((fpu.mac_rate() / 1e9 - 10.67).abs() < 0.05);
/// assert!((fpu.stream_bandwidth(DataType::Fp16).as_gb_per_sec() - 21.3).abs() < 0.1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FpuSpec {
    /// SIMD lanes (MACs per cycle).
    pub lanes: u32,
    /// Operating frequency.
    pub clock: Frequency,
    /// Die area of one FPU.
    pub area: Area,
    /// Computation energy per multiply-accumulate, in picojoules.
    pub compute_pj_per_mac: f64,
}

impl FpuSpec {
    /// The AttAcc/PAPI FPU: 16 lanes × 666 MHz, 0.1025 mm².
    ///
    /// The per-MAC compute energy (together with the transfer energy in
    /// [`PimEnergyModel`](crate::PimEnergyModel)) is calibrated so the
    /// Fig. 7(a) energy split holds: DRAM access is 96.7 % of PIM energy
    /// at data-reuse 1.
    pub fn attacc() -> Self {
        Self {
            lanes: 16,
            clock: Frequency::from_mhz(666.67),
            area: Area::from_mm2(0.1025),
            compute_pj_per_mac: 1.64,
        }
    }

    /// Multiply-accumulates per second (lanes × clock).
    pub fn mac_rate(&self) -> f64 {
        self.lanes as f64 * self.clock.value()
    }

    /// FLOPs per second (2 FLOPs per MAC).
    pub fn flops_rate(&self) -> FlopsRate {
        FlopsRate::new(2.0 * self.mac_rate())
    }

    /// Weight-stream consumption rate when every lane reads a fresh
    /// element each cycle.
    pub fn stream_bandwidth(&self, dtype: DataType) -> Bandwidth {
        Bandwidth::new(self.mac_rate() * dtype.size().value())
    }
}

impl Default for FpuSpec {
    fn default() -> Self {
        Self::attacc()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attacc_fpu_rates() {
        let f = FpuSpec::attacc();
        // 16 lanes × 666.67 MHz = 10.67 GMAC/s = 21.3 GFLOPS.
        assert!((f.flops_rate().as_gflops() - 21.33).abs() < 0.1);
    }

    #[test]
    fn stream_bandwidth_scales_with_dtype() {
        let f = FpuSpec::attacc();
        let fp16 = f.stream_bandwidth(DataType::Fp16);
        let fp32 = f.stream_bandwidth(DataType::Fp32);
        assert!((fp32.value() / fp16.value() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn area_matches_paper() {
        assert!((FpuSpec::attacc().area.as_mm2() - 0.1025).abs() < 1e-12);
    }
}
