//! Multi-head attention kernel execution on PIM devices.
//!
//! Per request and head, the kernel reads the KV cache (`2 × kv_len ×
//! head_dim` elements) and performs the score (`Q·Kᵀ`) and context
//! (`P·V`) GEMVs plus a softmax over the scores. Batching gives the
//! attention kernel **no** weight reuse — every request owns its KV cache
//! — but speculative decoding does: the `queries = TLP` tokens of one
//! request share K and V, so the data-reuse level is `TLP` (this is why
//! the paper's Fig. 2 shows attention arithmetic intensity tracking
//! speculation length and ignoring batch size).

use crate::device::PimDevice;
use crate::gemv::{Bottleneck, PimKernelResult};
use crate::partition::plan_attention_heads;
use papi_types::{Bytes, DataType, Flops, Time};
use serde::{Deserialize, Serialize};

/// Shape of one multi-head attention kernel invocation (one decoder
/// layer, all requests of the batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttentionSpec {
    /// Requests in the batch (RLP).
    pub requests: u64,
    /// Attention heads.
    pub heads: u64,
    /// Per-head dimension.
    pub head_dim: u64,
    /// KV-cache length each request attends over.
    pub kv_len: u64,
    /// Tokens decoded per request this iteration (TLP).
    pub queries: u64,
    /// Element type.
    pub dtype: DataType,
}

impl AttentionSpec {
    /// Creates a spec.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[track_caller]
    pub fn new(
        requests: u64,
        heads: u64,
        head_dim: u64,
        kv_len: u64,
        queries: u64,
        dtype: DataType,
    ) -> Self {
        assert!(
            requests > 0 && heads > 0 && head_dim > 0 && kv_len > 0 && queries > 0,
            "attention dimensions must be positive"
        );
        Self {
            requests,
            heads,
            head_dim,
            kv_len,
            queries,
            dtype,
        }
    }

    /// KV-cache bytes read (K and V, every request and head).
    pub fn kv_bytes(&self) -> Bytes {
        (2 * self.requests * self.heads * self.kv_len * self.head_dim) as f64 * self.dtype.size()
    }

    /// Multiply-accumulates of the score + context GEMVs.
    pub fn macs(&self) -> f64 {
        // Q·Kᵀ: kv_len × head_dim per query; P·V: the same.
        (2 * self.requests * self.heads * self.queries * self.kv_len * self.head_dim) as f64
    }

    /// FLOPs (2 per MAC) of the GEMV portions.
    pub fn flops(&self) -> Flops {
        Flops::new(2.0 * self.macs())
    }

    /// Softmax scalar operations (exp, running max/sum, scale ≈ 5 ops per
    /// score element).
    pub fn softmax_ops(&self) -> f64 {
        (self.requests * self.heads * self.queries * self.kv_len) as f64 * 5.0
    }

    /// The kernel's data-reuse level: TLP (K/V shared across a request's
    /// speculative queries only).
    pub fn reuse(&self) -> u64 {
        self.queries
    }
}

/// Executes one attention kernel over `n_devices` Attn-PIM (or AttAcc /
/// HBM-PIM) devices, heads distributed per the §6.4 mapping.
///
/// # Panics
///
/// Panics if `n_devices` is zero.
#[track_caller]
pub fn execute_attention(
    device: &PimDevice,
    n_devices: usize,
    spec: &AttentionSpec,
) -> PimKernelResult {
    assert!(n_devices > 0, "need at least one PIM device");
    let plan = plan_attention_heads(spec.requests, spec.heads, n_devices);
    let mac_rate = device.mac_rate(spec.reuse(), spec.dtype);
    // GEMV phase: busiest device streams its share of KV.
    let macs_per_unit = (2 * spec.queries * spec.kv_len * spec.head_dim) as f64;
    let gemv_time = Time::new(plan.units_per_device as f64 * macs_per_unit / mac_rate);
    // Softmax phase: runs on the same FPUs, so halved FPU counts (1P2B)
    // pay double here too.
    let softmax_per_unit = (spec.queries * spec.kv_len) as f64 * 5.0;
    let softmax_time =
        Time::new(plan.units_per_device as f64 * softmax_per_unit / device.vector_op_rate());
    let fetch_bytes = spec.kv_bytes();
    let mut energy =
        device
            .energy_model
            .breakdown(fetch_bytes, device.dram_access_pj_per_byte(), spec.macs());
    // Softmax ops cost compute energy like MACs.
    energy.compute += papi_types::Energy::from_picojoules(
        spec.softmax_ops() * device.energy_model.compute_pj_per_mac,
    );
    PimKernelResult {
        time: gemv_time + softmax_time,
        energy,
        fetch_bytes,
        macs: spec.macs(),
        bottleneck: Bottleneck::WeightStream,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn llama_attention(requests: u64, queries: u64, kv_len: u64) -> AttentionSpec {
        // LLaMA-65B: 64 heads × 128 head_dim.
        AttentionSpec::new(requests, 64, 128, kv_len, queries, DataType::Fp16)
    }

    #[test]
    fn spec_arithmetic() {
        let s = AttentionSpec::new(2, 4, 8, 100, 3, DataType::Fp16);
        assert_eq!(s.kv_bytes().value(), (2 * 2 * 4 * 100 * 8) as f64 * 2.0);
        assert_eq!(s.macs(), (2 * 2 * 4 * 3 * 100 * 8) as f64);
        assert_eq!(s.softmax_ops(), (2 * 4 * 3 * 100) as f64 * 5.0);
        assert_eq!(s.reuse(), 3);
    }

    #[test]
    fn arithmetic_intensity_tracks_queries_not_batch() {
        // The paper's key attention observation (Fig. 2): AI ≈ TLP,
        // independent of batch size.
        let ai = |requests, queries| {
            let s = llama_attention(requests, queries, 512);
            s.flops().value() / s.kv_bytes().value()
        };
        assert!((ai(4, 1) - ai(64, 1)).abs() < 1e-9);
        let ratio = ai(4, 8) / ai(4, 1);
        assert!((ratio - 8.0).abs() < 1e-9);
        // Absolute scale: AI(TLP=8) ≈ 8 FLOPs/byte at FP16 (paper: ~7).
        assert!((ai(4, 8) - 8.0).abs() < 0.5);
    }

    #[test]
    fn attacc_faster_than_attn_pim_by_1_5_to_2x() {
        // Fig. 12: attention runs ~1.7× slower on Attn-PIM (1P2B) than on
        // AttAcc (1P1B).
        let spec = llama_attention(4, 4, 512);
        let attacc = execute_attention(&PimDevice::attacc(), 60, &spec);
        let attn = execute_attention(&PimDevice::attn_pim(), 60, &spec);
        let ratio = attn.time.value() / attacc.time.value();
        // Our model gives 2.0 at reuse 4 (both configs compute-bound, half
        // the FPUs) and 1.47 at reuse 1 (1P1B row-turnaround-limited);
        // the paper measures 1.7 — inside that band.
        assert!(
            ratio > 1.3 && ratio < 2.05,
            "1P2B/1P1B attention slowdown {ratio}, paper reports 1.7"
        );
    }

    #[test]
    fn attention_time_scales_with_kv_len() {
        let short = execute_attention(&PimDevice::attn_pim(), 60, &llama_attention(4, 1, 128));
        let long = execute_attention(&PimDevice::attn_pim(), 60, &llama_attention(4, 1, 1024));
        let ratio = long.time.value() / short.time.value();
        assert!((ratio - 8.0).abs() < 0.5, "kv 8× should cost ~8×: {ratio}");
    }

    #[test]
    fn attention_time_scales_with_batch_once_devices_saturated() {
        // 64 devices, 64 heads: one request puts one head on every
        // device, so batch 4 → exactly 4× the time.
        let b1 = execute_attention(&PimDevice::attn_pim(), 64, &llama_attention(1, 1, 512));
        let b4 = execute_attention(&PimDevice::attn_pim(), 64, &llama_attention(4, 1, 512));
        let ratio = b4.time.value() / b1.time.value();
        assert!((ratio - 4.0).abs() < 0.1, "batch scaling {ratio}");
    }

    #[test]
    fn head_imbalance_penalizes_odd_device_counts() {
        // 64 heads over 60 devices: the busiest device carries two heads
        // for a single request — the §6.4 mapping's granularity cost.
        let spec = llama_attention(1, 1, 512);
        let d60 = execute_attention(&PimDevice::attn_pim(), 60, &spec);
        let d64 = execute_attention(&PimDevice::attn_pim(), 64, &spec);
        let ratio = d60.time.value() / d64.time.value();
        assert!((ratio - 2.0).abs() < 0.1, "imbalance ratio {ratio}");
    }

    #[test]
    fn energy_includes_softmax_compute() {
        let spec = llama_attention(4, 2, 512);
        let r = execute_attention(&PimDevice::attn_pim(), 60, &spec);
        let gemv_only = PimDevice::attn_pim().energy_model.breakdown(
            spec.kv_bytes(),
            PimDevice::attn_pim().dram_access_pj_per_byte(),
            spec.macs(),
        );
        assert!(r.energy.compute.value() > gemv_only.compute.value());
        assert_eq!(r.energy.dram_access, gemv_only.dram_access);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_kv_len_rejected() {
        AttentionSpec::new(1, 1, 1, 0, 1, DataType::Fp16);
    }
}
