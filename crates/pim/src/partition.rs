//! The AttAcc data-partitioning scheme (paper §6.4).
//!
//! - **FC weights / Kᵀ matrices**: partitioned column-wise at the
//!   pseudo-channel and bank-group levels, row-wise at the bank level.
//! - **V matrices**: the transpose — row-wise at pseudo-channel /
//!   bank-group, column-wise at banks.
//! - **Attention heads**: each (request, head) unit is assigned to one
//!   Attn-PIM device.
//!
//! The planner's job in the simulator is to quantify *imbalance*: when a
//! dimension does not divide evenly, the slowest device/bank determines
//! kernel latency, so execution time scales by `ceil(work / units) /
//! (work / units)`.

use serde::{Deserialize, Serialize};

/// How a weight matrix spreads over devices and banks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TilePlan {
    /// Devices sharing the matrix.
    pub devices: usize,
    /// Output rows handled by the busiest device.
    pub rows_per_device: u64,
    /// Weight elements held by the busiest bank within that device (the
    /// per-device tile splits two-dimensionally across banks, per §6.4:
    /// column-wise at pseudo-channel/bank-group level, row-wise at bank
    /// level).
    pub elems_per_bank: u64,
    /// Latency multiplier from device-level imbalance (≥ 1).
    pub device_imbalance: f64,
    /// Latency multiplier from bank-level imbalance (≥ 1).
    pub bank_imbalance: f64,
}

impl TilePlan {
    /// Combined latency multiplier of both imbalance levels.
    pub fn imbalance(&self) -> f64 {
        self.device_imbalance * self.bank_imbalance
    }
}

/// Plans the distribution of an `out_rows × in_cols` weight matrix over
/// `devices` dies with `banks_per_device` banks each. Rows split across
/// devices; each device's `rows × in_cols` tile then splits 2D across
/// its banks (the §6.4 pseudo-channel/bank-group column split and bank
/// row split), so bank-level granularity is in *elements*.
///
/// # Panics
///
/// Panics if any argument is zero.
#[track_caller]
pub fn plan_weight_partition(
    out_rows: u64,
    in_cols: u64,
    devices: usize,
    banks_per_device: usize,
) -> TilePlan {
    assert!(out_rows > 0 && in_cols > 0, "matrix must be non-empty");
    assert!(
        devices > 0 && banks_per_device > 0,
        "need hardware to plan on"
    );
    let per_device = out_rows.div_ceil(devices as u64);
    let tile_elems = per_device * in_cols;
    let per_bank = tile_elems.div_ceil(banks_per_device as u64);
    let ideal_device = out_rows as f64 / devices as f64;
    let ideal_bank = tile_elems as f64 / banks_per_device as f64;
    TilePlan {
        devices,
        rows_per_device: per_device,
        elems_per_bank: per_bank,
        device_imbalance: per_device as f64 / ideal_device,
        bank_imbalance: if ideal_bank > 0.0 {
            per_bank as f64 / ideal_bank
        } else {
            1.0
        },
    }
}

/// Assignment of `(request, head)` attention units over devices.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeadPlan {
    /// Total (request, head) units.
    pub units: u64,
    /// Units on the busiest device.
    pub units_per_device: u64,
    /// Latency multiplier versus a perfectly even spread (≥ 1).
    pub imbalance: f64,
}

/// Plans attention-head placement: every (request, head) pair becomes one
/// unit, spread round-robin over `devices`.
///
/// # Panics
///
/// Panics if any argument is zero.
#[track_caller]
pub fn plan_attention_heads(requests: u64, heads: u64, devices: usize) -> HeadPlan {
    assert!(requests > 0 && heads > 0, "attention needs work");
    assert!(devices > 0, "attention needs devices");
    let units = requests * heads;
    let per_device = units.div_ceil(devices as u64);
    let ideal = units as f64 / devices as f64;
    HeadPlan {
        units,
        units_per_device: per_device,
        imbalance: per_device as f64 / ideal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn even_split_has_no_imbalance() {
        let plan = plan_weight_partition(12288, 12288, 32, 96);
        assert_eq!(plan.rows_per_device, 384);
        assert_eq!(plan.elems_per_bank, 384 * 12288 / 96);
        assert!((plan.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uneven_split_penalizes_latency() {
        // 100 rows over 3 devices: 34 on the busiest.
        let plan = plan_weight_partition(100, 64, 3, 10);
        assert_eq!(plan.rows_per_device, 34);
        assert!(plan.device_imbalance > 1.0);
        assert!(plan.imbalance() >= plan.device_imbalance);
    }

    #[test]
    fn bank_imbalance_negligible_for_real_kernels() {
        // A GPT-3 66B FFN-down kernel over the paper's pools: 2D bank
        // tiling keeps bank imbalance within rounding.
        let plan = plan_weight_partition(9216, 4 * 9216, 30, 128);
        assert!(
            plan.bank_imbalance < 1.001,
            "bank imbalance {}",
            plan.bank_imbalance
        );
    }

    #[test]
    fn head_plan_even_and_uneven() {
        let even = plan_attention_heads(4, 60, 60);
        assert_eq!(even.units_per_device, 4);
        assert!((even.imbalance - 1.0).abs() < 1e-12);

        let uneven = plan_attention_heads(1, 7, 60);
        assert_eq!(uneven.units_per_device, 1);
        // 7 units on 60 devices: busiest has 1, ideal is 7/60.
        assert!(uneven.imbalance > 8.0);
    }

    #[test]
    #[should_panic(expected = "hardware")]
    fn zero_devices_rejected() {
        plan_weight_partition(10, 10, 0, 10);
    }

    proptest! {
        #[test]
        fn imbalance_at_least_one(rows in 1u64..100_000, cols in 1u64..8192, devices in 1usize..64, banks in 1usize..256) {
            let plan = plan_weight_partition(rows, cols, devices, banks);
            prop_assert!(plan.device_imbalance >= 1.0 - 1e-12);
            prop_assert!(plan.bank_imbalance >= 1.0 - 1e-12);
        }

        #[test]
        fn busiest_device_covers_all_rows(rows in 1u64..100_000, devices in 1usize..64) {
            let plan = plan_weight_partition(rows, 128, devices, 8);
            prop_assert!(plan.rows_per_device * devices as u64 >= rows);
        }

        #[test]
        fn head_units_covered(requests in 1u64..128, heads in 1u64..128, devices in 1usize..64) {
            let plan = plan_attention_heads(requests, heads, devices);
            prop_assert!(plan.units_per_device * devices as u64 >= plan.units);
            prop_assert!(plan.imbalance >= 1.0 - 1e-12);
        }
    }
}
