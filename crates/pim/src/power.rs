//! Power draw versus data-reuse level — the model behind Fig. 7(c).
//!
//! Power is energy rate: the DRAM side draws `fetch_bandwidth ×
//! pJ/byte`, the FPU side draws `mac_rate × (transfer + compute) pJ`,
//! plus the stack's background power. Because the number of parallel
//! weight streams per bank falls as data reuse rises (see
//! [`PimDevice::streams_per_bank`]), power falls steeply with reuse:
//! 4P1B drops from ~390 W at reuse 1 to under the 116 W HBM3 budget at
//! reuse ≥ 4, which is exactly the paper's argument for why batching and
//! speculative decoding *enable* compute-dense PIM.

use crate::device::PimDevice;
use papi_types::{DataType, Power};
use serde::{Deserialize, Serialize};

/// The JEDEC IDD7-style power budget of one HBM3 cube.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerBudget {
    /// Maximum sustained power for one stack.
    pub limit: Power,
}

impl PowerBudget {
    /// The paper's 116 W budget for an 8-high 16 GB HBM3 cube.
    pub fn hbm3_cube() -> Self {
        Self {
            limit: Power::from_watts(116.0),
        }
    }

    /// Whether `power` fits within the budget.
    pub fn admits(&self, power: Power) -> bool {
        power.value() <= self.limit.value()
    }
}

impl Default for PowerBudget {
    fn default() -> Self {
        Self::hbm3_cube()
    }
}

/// Sustained power draw of `device` executing a streaming kernel at
/// data-reuse level `reuse` with full FPU-side utilization.
pub fn power_draw(device: &PimDevice, reuse: u64, dtype: DataType) -> Power {
    let fetch = device.weight_fetch_bandwidth(reuse, dtype);
    let macs_per_sec = device.mac_rate(reuse, dtype);
    let dram = fetch.value() * device.dram_access_pj_per_byte() * 1e-12;
    let fpu = macs_per_sec * device.energy_model.non_dram_pj_per_mac() * 1e-12;
    Power::new(dram + fpu) + device.hbm.energy.background
}

#[cfg(test)]
mod tests {
    use super::*;
    use papi_types::DataType;

    fn fc_pim_with_reuse(reuse: u64) -> Power {
        power_draw(&PimDevice::fc_pim(), reuse, DataType::Fp16)
    }

    /// Fig. 7(c): 4P1B with no reuse blows far past the budget.
    #[test]
    fn fc_pim_no_reuse_is_far_over_budget() {
        let p = fc_pim_with_reuse(1);
        assert!(
            p.as_watts() > 300.0 && p.as_watts() < 500.0,
            "4P1B @ reuse 1 = {p}, paper shows ~400 W"
        );
    }

    /// Fig. 7(c): 4P1B meets the 116 W budget exactly from reuse 4 on.
    #[test]
    fn fc_pim_meets_budget_at_reuse_4() {
        let budget = PowerBudget::hbm3_cube();
        assert!(!budget.admits(fc_pim_with_reuse(2)));
        assert!(budget.admits(fc_pim_with_reuse(4)));
        assert!(budget.admits(fc_pim_with_reuse(64)));
    }

    /// §6.2: 1P1B without reuse slightly exceeds the budget — the reason
    /// Attn-PIM is 1P2B.
    #[test]
    fn attacc_1p1b_no_reuse_slightly_over_budget() {
        let p = power_draw(&PimDevice::attacc(), 1, DataType::Fp16);
        let budget = PowerBudget::hbm3_cube();
        assert!(
            !budget.admits(p),
            "1P1B @ reuse 1 = {p} should exceed 116 W"
        );
        assert!(p.as_watts() < 150.0, "but only slightly: {p}");
    }

    /// §6.2: 1P2B at reuse 1 (attention with speculation length 1) fits.
    #[test]
    fn attn_pim_1p2b_no_reuse_fits_budget() {
        let p = power_draw(&PimDevice::attn_pim(), 1, DataType::Fp16);
        assert!(
            PowerBudget::hbm3_cube().admits(p),
            "1P2B @ reuse 1 = {p} should fit 116 W"
        );
    }

    /// Power is monotonically non-increasing in reuse for every config.
    #[test]
    fn power_monotone_in_reuse() {
        for device in [
            PimDevice::fc_pim(),
            PimDevice::attacc(),
            PimDevice::attn_pim(),
        ] {
            let mut last = f64::INFINITY;
            for reuse in [1u64, 2, 4, 8, 16, 32, 64] {
                let p = power_draw(&device, reuse, DataType::Fp16).as_watts();
                assert!(
                    p <= last + 1e-9,
                    "{} power rose from {last} to {p} at reuse {reuse}",
                    device.name
                );
                last = p;
            }
        }
    }

    /// Higher-FPU configs draw more power at the same (low) reuse.
    #[test]
    fn more_fpus_more_power_at_low_reuse() {
        let p1 = power_draw(&PimDevice::attacc(), 1, DataType::Fp16);
        let p4 = power_draw(&PimDevice::fc_pim(), 1, DataType::Fp16);
        assert!(p4.value() > 2.0 * p1.value());
    }
}
