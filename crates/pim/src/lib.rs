//! `papi-pim` — near-bank processing-in-memory compute units.
//!
//! This crate models the PIM side of the PAPI system: AttAcc-style FPUs
//! placed next to HBM banks, in the four configurations the paper
//! evaluates:
//!
//! | Device | Config | Banks | Capacity | Role |
//! |---|---|---|---|---|
//! | AttAcc      | 1P1B | 128 | 16 GB | baseline PIM (attention + FC in AttAcc-only) |
//! | HBM-PIM     | 1P2B | 128 | 16 GB | Samsung-style commercial PIM baseline |
//! | FC-PIM      | 4P1B |  96 | 12 GB | PAPI's compute-dense PIM for FC kernels |
//! | Attn-PIM    | 1P2B | 128 | 16 GB | PAPI's capacity-dense PIM for attention |
//!
//! ## Execution model
//!
//! Weight streaming follows the batched-broadcast dataflow of AttAcc: one
//! column access (16 FP16 weights) is broadcast to FPU groups that each
//! apply it to a different token's activation vector. With data-reuse
//! level `r` (the number of tokens, `RLP × TLP`), a bank with `n` FPUs
//! needs `ceil(n / r)` parallel weight streams to keep every FPU busy;
//! each stream sustains the row-turnaround-limited bandwidth *derived
//! from the cycle-level DRAM model* (`papi-dram::derive`). This single
//! rule reproduces the paper's Fig. 7(c): 4P1B draws ~390 W with no reuse
//! and drops under the 116 W HBM3 budget exactly at reuse ≥ 4, while 1P1B
//! sits just above budget without reuse and 1P2B just below it.
//!
//! ## Modules
//!
//! - [`fpu`] — the 16-lane FP16 MAC unit (666 MHz, 0.1025 mm²).
//! - [`config`] — `xPyB` processing-unit-per-bank configurations.
//! - [`area`] — the CACTI-derived die-area model and the paper's Eq. (3)
//!   bank-count solver (4P1B ⇒ 96 banks).
//! - [`device`] — assembled PIM devices with derived bandwidths.
//! - [`energy`] — the DRAM-access / transfer / computation energy split
//!   of Fig. 7(a)/(b).
//! - [`power`] — power draw versus data-reuse level and the 116 W budget
//!   check of Fig. 7(c).
//! - [`partition`] — the AttAcc data-partitioning scheme (§6.4) across
//!   pseudo-channels, bank groups and banks.
//! - [`gemv`] — fully-connected (GEMV/GEMM) kernel execution.
//! - [`attention`] — multi-head attention kernel execution over the KV
//!   cache.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod area;
pub mod attention;
pub mod config;
pub mod device;
pub mod energy;
pub mod fpu;
pub mod gemv;
pub mod partition;
pub mod power;

pub use area::AreaParams;
pub use attention::AttentionSpec;
pub use config::PimConfig;
pub use device::PimDevice;
pub use energy::{PimEnergyBreakdown, PimEnergyModel};
pub use fpu::FpuSpec;
pub use gemv::{Bottleneck, GemvSpec, PimKernelResult};
pub use power::{power_draw, PowerBudget};
