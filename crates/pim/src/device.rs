//! Assembled PIM devices: an HBM stack plus near-bank FPUs.

use crate::area::AreaParams;
use crate::config::PimConfig;
use crate::energy::PimEnergyModel;
use crate::fpu::FpuSpec;
use papi_dram::{derive, HbmDevice};
use papi_types::{Bandwidth, Bytes, DataType, FlopsRate};
use serde::{Deserialize, Serialize};

/// One PIM-enabled HBM device.
///
/// Construction derives the sustainable per-bank streaming bandwidth from
/// the cycle-level DRAM model, so every latency this device reports is
/// grounded in the timing simulation rather than in datasheet peaks.
///
/// # Example
///
/// ```
/// use papi_pim::PimDevice;
///
/// let attacc = PimDevice::attacc();
/// let fc = PimDevice::fc_pim();
/// // FC-PIM trades capacity for compute: fewer banks, 3× the FLOPS.
/// assert!(fc.capacity().value() < attacc.capacity().value());
/// assert!(fc.peak_flops().value() > 2.5 * attacc.peak_flops().value());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PimDevice {
    /// Device name (e.g. `"Attn-PIM"`).
    pub name: String,
    /// The underlying HBM stack.
    pub hbm: HbmDevice,
    /// FPU-per-bank configuration.
    pub config: PimConfig,
    /// The FPU design.
    pub fpu: FpuSpec,
    /// Transfer/compute energy constants.
    pub energy_model: PimEnergyModel,
    banks: usize,
    per_bank_stream: Bandwidth,
}

impl PimDevice {
    /// Builds a device, deriving sustained bandwidth from the DRAM model
    /// and the bank count from the Eq. (3) area solver.
    ///
    /// # Panics
    ///
    /// Panics if the area solver's bank count does not tile under
    /// `config` or does not match the HBM topology.
    #[track_caller]
    pub fn new(
        name: impl Into<String>,
        hbm: HbmDevice,
        config: PimConfig,
        fpu: FpuSpec,
        energy_model: PimEnergyModel,
    ) -> Self {
        let banks = hbm.topology.total_banks();
        let area_banks = AreaParams::paper().bank_count(config);
        assert_eq!(
            banks, area_banks,
            "topology has {banks} banks but Eq. (3) allows {area_banks} for {config}"
        );
        let derived =
            derive::pim_streaming_bandwidth(&hbm, hbm.topology.banks_per_pseudo_channel(), 32);
        Self {
            name: name.into(),
            hbm,
            config,
            fpu,
            energy_model,
            banks,
            per_bank_stream: derived.per_bank,
        }
    }

    /// The AttAcc baseline device: 1P1B on a 16 GB stack.
    pub fn attacc() -> Self {
        Self::new(
            "AttAcc",
            HbmDevice::hbm3_16gb(),
            PimConfig::ATTACC_1P1B,
            FpuSpec::attacc(),
            PimEnergyModel::paper(),
        )
    }

    /// The Samsung HBM-PIM baseline device: 1P2B on a 16 GB stack.
    pub fn hbm_pim() -> Self {
        Self::new(
            "HBM-PIM",
            HbmDevice::hbm3_16gb(),
            PimConfig::ATTN_PIM_1P2B,
            FpuSpec::attacc(),
            PimEnergyModel::paper(),
        )
    }

    /// PAPI's Attn-PIM device: 1P2B on a 16 GB stack (capacity-dense,
    /// power-safe at data-reuse 1).
    pub fn attn_pim() -> Self {
        Self::new(
            "Attn-PIM",
            HbmDevice::hbm3_16gb(),
            PimConfig::ATTN_PIM_1P2B,
            FpuSpec::attacc(),
            PimEnergyModel::paper(),
        )
    }

    /// PAPI's FC-PIM device: 4P1B on the 12 GB / 96-bank die of Eq. (4).
    pub fn fc_pim() -> Self {
        Self::new(
            "FC-PIM",
            HbmDevice::fc_pim_12gb(),
            PimConfig::FC_PIM_4P1B,
            FpuSpec::attacc(),
            PimEnergyModel::paper(),
        )
    }

    /// Banks on this die.
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// Total FPUs on this die.
    pub fn total_fpus(&self) -> usize {
        self.config.total_fpus(self.banks)
    }

    /// Memory capacity.
    pub fn capacity(&self) -> Bytes {
        self.hbm.capacity()
    }

    /// Peak compute throughput (all FPUs busy).
    pub fn peak_flops(&self) -> FlopsRate {
        FlopsRate::new(self.total_fpus() as f64 * self.fpu.flops_rate().value())
    }

    /// Sustained streaming bandwidth of one bank, derived from the DRAM
    /// timing model (~15–16 GB/s against a 21.3 GB/s peak).
    pub fn per_bank_stream(&self) -> Bandwidth {
        self.per_bank_stream
    }

    /// Number of parallel weight streams one bank runs at data-reuse
    /// level `reuse` under the batched-broadcast dataflow: enough streams
    /// to keep all `n` FPU groups fed, `ceil(n / reuse)`, capped to `n`.
    /// Devices with shared FPUs (1P2B) always run one stream per FPU.
    pub fn streams_per_bank(&self, reuse: u64) -> f64 {
        let n = self.config.fpus_per_bank();
        if n <= 1.0 {
            return n; // one stream per FPU, shared across its banks
        }
        (n / reuse.max(1) as f64).ceil().clamp(1.0, n)
    }

    /// Achievable multiply-accumulate rate (MAC/s) of the whole device at
    /// data-reuse level `reuse` for `dtype` weights.
    ///
    /// For `n ≥ 1` FPUs per bank this is
    /// `banks × min(n × f_mac, streams × s_w × reuse)` where `s_w` is the
    /// derived per-stream weight rate; for shared FPUs (1 FPU per `m`
    /// banks) ping-ponging across its banks hides row turnaround, so the
    /// FPU sustains `min(f_mac, m × s_w) ` weights/s and reuse never
    /// starves it.
    pub fn mac_rate(&self, reuse: u64, dtype: DataType) -> f64 {
        let reuse = reuse.max(1) as f64;
        let f_mac = self.fpu.mac_rate();
        let s_w = self.per_bank_stream.value() / dtype.size().value(); // weights/s per stream
        let n = self.config.fpus_per_bank();
        if n >= 1.0 {
            let streams = self.streams_per_bank(reuse as u64);
            self.banks as f64 * (n * f_mac).min(streams * s_w * reuse)
        } else {
            let m = self.config.banks_per_fpu();
            let port = f_mac.min(m * s_w); // weights/s delivered to one FPU
            self.total_fpus() as f64 * f_mac.min(reuse * port)
        }
    }

    /// Achievable FLOPs rate at `reuse` (2 FLOPs per MAC).
    pub fn flops_rate(&self, reuse: u64, dtype: DataType) -> FlopsRate {
        FlopsRate::new(2.0 * self.mac_rate(reuse, dtype))
    }

    /// Weight bytes fetched from DRAM per second at `reuse` (each weight
    /// is fetched once and used `reuse` times).
    pub fn weight_fetch_bandwidth(&self, reuse: u64, dtype: DataType) -> Bandwidth {
        let reuse_f = reuse.max(1) as f64;
        Bandwidth::new(self.mac_rate(reuse, dtype) / reuse_f * dtype.size().value())
    }

    /// Vector-operation rate for softmax/normalization work (one op per
    /// FPU lane per cycle).
    pub fn vector_op_rate(&self) -> f64 {
        self.total_fpus() as f64 * self.fpu.mac_rate()
    }

    /// Effective DRAM access energy per fetched byte (column read plus
    /// amortized row activation), in picojoules.
    pub fn dram_access_pj_per_byte(&self) -> f64 {
        self.hbm.energy.read_pj_per_byte
            + self.hbm.energy.activate_pj / self.hbm.topology.row_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_fpu_counts_match_paper() {
        assert_eq!(PimDevice::attacc().total_fpus(), 128);
        assert_eq!(PimDevice::hbm_pim().total_fpus(), 64);
        assert_eq!(PimDevice::attn_pim().total_fpus(), 64);
        assert_eq!(PimDevice::fc_pim().total_fpus(), 384);
    }

    #[test]
    fn fc_pim_mac_rate_saturates_with_reuse() {
        let fc = PimDevice::fc_pim();
        let r1 = fc.mac_rate(1, DataType::Fp16);
        let r4 = fc.mac_rate(4, DataType::Fp16);
        let r64 = fc.mac_rate(64, DataType::Fp16);
        // Reuse 1 runs 4 parallel streams; reuse ≥ 4 broadcasts one stream
        // to all four FPU groups — same MAC rate, a quarter the fetch.
        assert!((r1 - r4).abs() / r4 < 0.05, "r1={r1} r4={r4}");
        assert!(r64 >= r4);
        // 96 banks × ~31 GMAC/s ≈ 3 TMAC/s.
        assert!(r4 > 2.5e12 && r4 < 4.5e12);
    }

    #[test]
    fn fetch_bandwidth_drops_with_reuse() {
        let fc = PimDevice::fc_pim();
        let f1 = fc.weight_fetch_bandwidth(1, DataType::Fp16);
        let f4 = fc.weight_fetch_bandwidth(4, DataType::Fp16);
        let f16 = fc.weight_fetch_bandwidth(16, DataType::Fp16);
        assert!(f1.value() > 3.0 * f4.value());
        assert!(f4.value() > f16.value());
    }

    #[test]
    fn fc_pim_vs_attacc_throughput_ratio_is_about_3x() {
        // The Fig. 12 claim: PAPI's FC execution is ~2.9× faster than
        // AttAcc's at batch 4 × speculation 4 (reuse 16).
        let fc = PimDevice::fc_pim();
        let attacc = PimDevice::attacc();
        let ratio = fc.mac_rate(16, DataType::Fp16) / attacc.mac_rate(16, DataType::Fp16);
        assert!(
            ratio > 2.5 && ratio < 3.5,
            "FC-PIM/AttAcc MAC ratio {ratio}, want ~3"
        );
    }

    #[test]
    fn attacc_vs_attn_pim_stream_ratio() {
        // Fig. 12: attention runs slower on Attn-PIM (1P2B) than AttAcc
        // (1P1B) because it has half the FPUs; ping-pong across two banks
        // partially compensates.
        let attacc = PimDevice::attacc();
        let attn = PimDevice::attn_pim();
        let ratio = attacc.mac_rate(1, DataType::Fp16) / attn.mac_rate(1, DataType::Fp16);
        assert!(
            ratio > 1.3 && ratio < 2.0,
            "1P1B/1P2B attention ratio {ratio}, want in (1.3, 2.0)"
        );
    }

    #[test]
    fn streams_follow_broadcast_rule() {
        let fc = PimDevice::fc_pim();
        assert_eq!(fc.streams_per_bank(1), 4.0);
        assert_eq!(fc.streams_per_bank(2), 2.0);
        assert_eq!(fc.streams_per_bank(4), 1.0);
        assert_eq!(fc.streams_per_bank(64), 1.0);
        let attn = PimDevice::attn_pim();
        assert_eq!(attn.streams_per_bank(1), 0.5);
    }

    #[test]
    fn dram_access_energy_matches_calibration() {
        let d = PimDevice::attacc();
        // ~62 pJ/byte ⇒ 7.77 pJ/bit; the Fig. 7(a) calibration target.
        let pj = d.dram_access_pj_per_byte();
        assert!((pj - 62.1).abs() < 0.5, "got {pj} pJ/B");
    }

    #[test]
    fn capacity_presets() {
        assert!((PimDevice::attn_pim().capacity().as_gib() - 16.0).abs() < 1e-9);
        assert!((PimDevice::fc_pim().capacity().as_gib() - 12.0).abs() < 1e-9);
    }
}
