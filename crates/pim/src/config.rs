//! `xPyB` PIM configurations: *x* FPUs for every *y* banks.

use serde::{Deserialize, Serialize};

/// How many FPUs serve how many banks (the paper's `xPyB` notation).
///
/// # Example
///
/// ```
/// use papi_pim::PimConfig;
///
/// let fc = PimConfig::FC_PIM_4P1B;
/// assert_eq!(fc.label(), "4P1B");
/// assert!((fc.fpus_per_bank() - 4.0).abs() < 1e-12);
/// let attn = PimConfig::ATTN_PIM_1P2B;
/// assert!((attn.fpus_per_bank() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PimConfig {
    fpus: u32,
    banks: u32,
}

impl PimConfig {
    /// PAPI's FC-PIM: 4 FPUs per bank (compute-dense).
    pub const FC_PIM_4P1B: Self = Self { fpus: 4, banks: 1 };
    /// Intermediate configuration evaluated in Fig. 7(c).
    pub const PIM_2P1B: Self = Self { fpus: 2, banks: 1 };
    /// AttAcc: 1 FPU per bank.
    pub const ATTACC_1P1B: Self = Self { fpus: 1, banks: 1 };
    /// Samsung HBM-PIM and PAPI's Attn-PIM: 1 FPU per 2 banks.
    pub const ATTN_PIM_1P2B: Self = Self { fpus: 1, banks: 2 };

    /// Creates an arbitrary `xPyB` configuration.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    #[track_caller]
    pub fn new(fpus: u32, banks: u32) -> Self {
        assert!(fpus > 0 && banks > 0, "xPyB counts must be positive");
        Self { fpus, banks }
    }

    /// FPUs in the ratio (the `x` of `xPyB`).
    pub fn fpus(&self) -> u32 {
        self.fpus
    }

    /// Banks in the ratio (the `y` of `xPyB`).
    pub fn banks(&self) -> u32 {
        self.banks
    }

    /// FPUs per bank as a ratio (0.5 for 1P2B, 4.0 for 4P1B).
    pub fn fpus_per_bank(&self) -> f64 {
        self.fpus as f64 / self.banks as f64
    }

    /// Banks served by one FPU (2.0 for 1P2B, 0.25 for 4P1B).
    pub fn banks_per_fpu(&self) -> f64 {
        self.banks as f64 / self.fpus as f64
    }

    /// Total FPUs on a die with `total_banks` banks.
    ///
    /// # Panics
    ///
    /// Panics if `total_banks` is not a multiple of the bank group size
    /// `y` (the configuration could not tile the die).
    #[track_caller]
    pub fn total_fpus(&self, total_banks: usize) -> usize {
        assert!(
            total_banks.is_multiple_of(self.banks as usize),
            "{total_banks} banks do not tile under {self}"
        );
        total_banks / self.banks as usize * self.fpus as usize
    }

    /// The paper's label, e.g. `"4P1B"`.
    pub fn label(&self) -> String {
        format!("{}P{}B", self.fpus, self.banks)
    }
}

impl core::fmt::Display for PimConfig {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}P{}B", self.fpus, self.banks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(PimConfig::FC_PIM_4P1B.label(), "4P1B");
        assert_eq!(PimConfig::ATTACC_1P1B.label(), "1P1B");
        assert_eq!(PimConfig::ATTN_PIM_1P2B.label(), "1P2B");
        assert_eq!(PimConfig::PIM_2P1B.to_string(), "2P1B");
    }

    #[test]
    fn fpu_counts_on_dies() {
        assert_eq!(PimConfig::FC_PIM_4P1B.total_fpus(96), 384);
        assert_eq!(PimConfig::ATTACC_1P1B.total_fpus(128), 128);
        assert_eq!(PimConfig::ATTN_PIM_1P2B.total_fpus(128), 64);
    }

    #[test]
    #[should_panic(expected = "do not tile")]
    fn odd_banks_do_not_tile_1p2b() {
        PimConfig::ATTN_PIM_1P2B.total_fpus(97);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_fpus_rejected() {
        PimConfig::new(0, 1);
    }

    #[test]
    fn ratios_are_inverses() {
        for cfg in [
            PimConfig::FC_PIM_4P1B,
            PimConfig::PIM_2P1B,
            PimConfig::ATTACC_1P1B,
            PimConfig::ATTN_PIM_1P2B,
        ] {
            assert!((cfg.fpus_per_bank() * cfg.banks_per_fpu() - 1.0).abs() < 1e-12);
        }
    }
}
