//! Die-area model and the paper's Eq. (3) bank-count solver.
//!
//! Section 6.1 of the paper derives how many banks fit on a PIM-enabled
//! HBM die once FPUs claim their share of silicon:
//!
//! ```text
//! m (n × A_FPU + A_bank) ≤ A_max          (Eq. 3)
//! ```
//!
//! with `A_FPU = 0.1025 mm²` (CACTI-3DD, 22 nm), `A_bank = 0.83 mm²` and
//! `A_max = 121 mm²`. For the 4P1B FC-PIM configuration this caps the die
//! at 97 banks; the paper rounds down to 96 (three bank groups per
//! pseudo-channel), giving the 12 GB FC-PIM device.

use crate::config::PimConfig;
use papi_types::Area;
use serde::{Deserialize, Serialize};

/// Area constants of Eq. (3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AreaParams {
    /// Area of one bank, including its slice of peripheral circuits.
    pub bank: Area,
    /// Area of one FPU.
    pub fpu: Area,
    /// Maximum die area available.
    pub die_limit: Area,
    /// Bank-count granularity: banks are added/removed a bank group at a
    /// time across all pseudo-channels (32 banks for the 4-channel ×
    /// 4-pseudo-channel × 2-banks-per-group HBM3 floorplan).
    pub bank_granularity: usize,
    /// The unmodified die's bank count (and the cap for PIM dies).
    pub baseline_banks: usize,
}

impl AreaParams {
    /// The paper's constants: 0.83 mm² per bank, 0.1025 mm² per FPU,
    /// 121 mm² die, 32-bank granularity, 128-bank baseline.
    pub fn paper() -> Self {
        Self {
            bank: Area::from_mm2(0.83),
            fpu: Area::from_mm2(0.1025),
            die_limit: Area::from_mm2(121.0),
            bank_granularity: 32,
            baseline_banks: 128,
        }
    }

    /// The raw Eq. (3) bound: the largest `m` with
    /// `m (n × A_FPU + A_bank) ≤ A_max`.
    pub fn max_banks_unrounded(&self, config: PimConfig) -> usize {
        let per_bank = config.fpus_per_bank() * self.fpu.as_mm2() + self.bank.as_mm2();
        (self.die_limit.as_mm2() / per_bank).floor() as usize
    }

    /// The implementable bank count: Eq. (3) rounded down to the bank
    /// granularity and capped at the baseline die's bank count.
    ///
    /// Reproduces the paper's §6.1: 4P1B → 96 banks.
    pub fn bank_count(&self, config: PimConfig) -> usize {
        let max = self.max_banks_unrounded(config).min(self.baseline_banks);
        max - max % self.bank_granularity
    }

    /// Total die area consumed by `banks` banks under `config`.
    pub fn die_area(&self, config: PimConfig, banks: usize) -> Area {
        let per_bank = config.fpus_per_bank() * self.fpu.as_mm2() + self.bank.as_mm2();
        Area::from_mm2(per_bank * banks as f64)
    }

    /// Whether a `(config, banks)` pair fits the die.
    pub fn fits(&self, config: PimConfig, banks: usize) -> bool {
        self.die_area(config, banks).value() <= self.die_limit.value() + 1e-9
    }
}

impl Default for AreaParams {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn eq4_reproduces_96_banks_for_4p1b() {
        let a = AreaParams::paper();
        // Eq. (4): m(0.1025 × 4 + 0.83) ≤ 121  ⇒  m ≤ 97.
        assert_eq!(a.max_banks_unrounded(PimConfig::FC_PIM_4P1B), 97);
        assert_eq!(a.bank_count(PimConfig::FC_PIM_4P1B), 96);
    }

    #[test]
    fn single_fpu_configs_keep_full_die() {
        let a = AreaParams::paper();
        // 1P1B: m ≤ 121 / 0.9325 = 129.7 → capped at the 128-bank baseline.
        assert_eq!(a.bank_count(PimConfig::ATTACC_1P1B), 128);
        // 1P2B needs even less area per bank.
        assert_eq!(a.bank_count(PimConfig::ATTN_PIM_1P2B), 128);
    }

    #[test]
    fn two_fpu_config_loses_a_bank_group() {
        let a = AreaParams::paper();
        // 2P1B: m ≤ 121 / 1.035 = 116.9 → 96 after 32-bank rounding.
        assert_eq!(a.max_banks_unrounded(PimConfig::PIM_2P1B), 116);
        assert_eq!(a.bank_count(PimConfig::PIM_2P1B), 96);
    }

    #[test]
    fn chosen_counts_always_fit() {
        let a = AreaParams::paper();
        for cfg in [
            PimConfig::FC_PIM_4P1B,
            PimConfig::PIM_2P1B,
            PimConfig::ATTACC_1P1B,
            PimConfig::ATTN_PIM_1P2B,
        ] {
            let banks = a.bank_count(cfg);
            assert!(a.fits(cfg, banks), "{cfg} with {banks} banks overflows");
            assert!(
                !a.fits(cfg, a.max_banks_unrounded(cfg) + 1),
                "{cfg} bound is not tight"
            );
        }
    }

    proptest! {
        #[test]
        fn more_fpus_never_more_banks(x in 1u32..16) {
            let a = AreaParams::paper();
            let fewer = a.bank_count(PimConfig::new(x, 1));
            let more = a.bank_count(PimConfig::new(x + 1, 1));
            prop_assert!(more <= fewer);
        }

        #[test]
        fn bank_count_respects_granularity(x in 1u32..16, y in 1u32..4) {
            let a = AreaParams::paper();
            let banks = a.bank_count(PimConfig::new(x, y));
            prop_assert_eq!(banks % a.bank_granularity, 0);
            prop_assert!(banks <= a.baseline_banks);
        }
    }
}
