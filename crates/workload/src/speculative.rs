//! Speculative decoding: token-level parallelism and acceptance.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// How many draft tokens survive verification each iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AcceptanceModel {
    /// Every speculated token is accepted — the parallelism-accounting
    /// mode the paper's timing experiments use (TLP is an exogenous
    /// knob).
    Full,
    /// Each draft token is accepted independently with probability `p`;
    /// generation stops at the first rejection, which is replaced by the
    /// verifier's own token (so at least one token always lands). An
    /// extension beyond the paper's evaluation.
    Geometric {
        /// Per-token acceptance probability in `(0, 1]`.
        p: f64,
    },
}

impl AcceptanceModel {
    /// Samples accepted tokens for one request at a given speculation
    /// `length` (at least 1, at most `length`).
    ///
    /// # Panics
    ///
    /// Panics if `length` is zero.
    #[track_caller]
    pub fn sample(&self, length: u64, rng: &mut impl Rng) -> u64 {
        assert!(length > 0, "speculation length must be at least 1");
        match *self {
            AcceptanceModel::Full => length,
            AcceptanceModel::Geometric { p } => {
                let mut accepted = 0;
                while accepted < length - 1 && rng.gen_bool(p) {
                    accepted += 1;
                }
                accepted + 1 // the verifier always contributes one token
            }
        }
    }
}

/// How the serving system picks the speculation length each iteration.
///
/// The paper's §3.2 observes that TLP "can also be dynamically adjusted
/// at runtime" — citing dynamic speculation-length optimization (its
/// ref. 28) and batching/speculation co-optimization (ref. 38): "when
/// the batch size is small, the speculation length can be increased to
/// maximize resource utilization."
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TlpPolicy {
    /// Keep the configured speculation length (the paper's evaluation
    /// setting).
    Fixed,
    /// Co-optimize with the live batch: pick the speculation length that
    /// keeps `RLP × TLP` near `target_tokens`, clamped to
    /// `[1, max_length]`.
    Adaptive {
        /// Tokens-in-flight the controller aims for.
        target_tokens: u64,
        /// Hard ceiling on speculation length (draft-model quality
        /// limit).
        max_length: u64,
    },
}

impl TlpPolicy {
    /// The speculation length to use at the observed `rlp`, given the
    /// configured base `length`.
    pub fn length_at(&self, rlp: u64, base_length: u64) -> u64 {
        match *self {
            TlpPolicy::Fixed => base_length,
            TlpPolicy::Adaptive {
                target_tokens,
                max_length,
            } => (target_tokens / rlp.max(1)).clamp(1, max_length.max(1)),
        }
    }
}

/// Speculative-decoding configuration.
///
/// # Example
///
/// ```
/// use papi_workload::SpeculativeConfig;
///
/// let spec = SpeculativeConfig::fixed(4);
/// assert_eq!(spec.tlp(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeculativeConfig {
    /// Speculation length: tokens verified in parallel per request per
    /// iteration (TLP). 1 = plain serial decoding.
    pub length: u64,
    /// Acceptance behaviour.
    pub acceptance: AcceptanceModel,
}

impl SpeculativeConfig {
    /// Fixed speculation length with full acceptance (the paper's
    /// evaluation setting; `length = 1` disables speculation).
    ///
    /// # Panics
    ///
    /// Panics if `length` is zero.
    #[track_caller]
    pub fn fixed(length: u64) -> Self {
        assert!(length > 0, "speculation length must be at least 1");
        Self {
            length,
            acceptance: AcceptanceModel::Full,
        }
    }

    /// Probabilistic acceptance with per-token probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `length` is zero or `p` is outside `(0, 1]`.
    #[track_caller]
    pub fn geometric(length: u64, p: f64) -> Self {
        assert!(length > 0, "speculation length must be at least 1");
        assert!(
            p > 0.0 && p <= 1.0,
            "acceptance probability must be in (0,1]"
        );
        Self {
            length,
            acceptance: AcceptanceModel::Geometric { p },
        }
    }

    /// The token-level parallelism this configuration exercises: the
    /// hardware verifies `length` tokens per request regardless of how
    /// many are ultimately accepted.
    pub fn tlp(&self) -> u64 {
        self.length
    }

    /// Samples how many tokens one request banks this iteration (at
    /// least 1, at most `length`).
    pub fn sample_accepted(&self, rng: &mut impl Rng) -> u64 {
        self.acceptance.sample(self.length, rng)
    }

    /// Expected tokens accepted per iteration.
    pub fn expected_accepted(&self) -> f64 {
        match self.acceptance {
            AcceptanceModel::Full => self.length as f64,
            AcceptanceModel::Geometric { p } => {
                // 1 + p + p² + … up to length-1 draft positions.
                let n = (self.length - 1) as i32;
                if (p - 1.0).abs() < 1e-12 {
                    self.length as f64
                } else {
                    (1.0 - p.powi(n + 1)) / (1.0 - p)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn full_acceptance_banks_length() {
        let mut rng = StdRng::seed_from_u64(1);
        let spec = SpeculativeConfig::fixed(4);
        for _ in 0..10 {
            assert_eq!(spec.sample_accepted(&mut rng), 4);
        }
        assert_eq!(spec.expected_accepted(), 4.0);
    }

    #[test]
    fn geometric_accepted_within_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let spec = SpeculativeConfig::geometric(8, 0.7);
        for _ in 0..1000 {
            let a = spec.sample_accepted(&mut rng);
            assert!((1..=8).contains(&a));
        }
    }

    #[test]
    fn geometric_mean_matches_expectation() {
        let mut rng = StdRng::seed_from_u64(3);
        let spec = SpeculativeConfig::geometric(8, 0.8);
        let n = 200_000;
        let sum: u64 = (0..n).map(|_| spec.sample_accepted(&mut rng)).sum();
        let mean = sum as f64 / n as f64;
        let expected = spec.expected_accepted();
        assert!(
            (mean - expected).abs() < 0.02,
            "sampled {mean} vs expected {expected}"
        );
    }

    #[test]
    fn p_equal_one_behaves_like_full() {
        let spec = SpeculativeConfig::geometric(5, 1.0);
        assert_eq!(spec.expected_accepted(), 5.0);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(spec.sample_accepted(&mut rng), 5);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_length_rejected() {
        SpeculativeConfig::fixed(0);
    }

    #[test]
    fn adaptive_tlp_targets_constant_tokens() {
        let policy = TlpPolicy::Adaptive {
            target_tokens: 64,
            max_length: 8,
        };
        assert_eq!(policy.length_at(64, 1), 1);
        assert_eq!(policy.length_at(32, 1), 2);
        assert_eq!(policy.length_at(16, 1), 4);
        assert_eq!(policy.length_at(8, 1), 8);
        // Clamped at the draft ceiling once the batch is tiny.
        assert_eq!(policy.length_at(2, 1), 8);
        assert_eq!(policy.length_at(1, 1), 8);
    }

    #[test]
    fn fixed_policy_keeps_base_length() {
        assert_eq!(TlpPolicy::Fixed.length_at(3, 4), 4);
        assert_eq!(TlpPolicy::Fixed.length_at(1000, 4), 4);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_probability_rejected() {
        SpeculativeConfig::geometric(4, 1.5);
    }
}
