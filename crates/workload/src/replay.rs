//! Production trace replay: a JSONL format that drives any experiment
//! with real arrival logs.
//!
//! One JSON object per line. Required field: `arrival_s` (seconds from
//! episode start, non-negative, non-decreasing across lines). Optional
//! fields: `prompt_tokens`, `decode_tokens` (positive request shape
//! overrides), and `prefix_key` (a conversation identity — lines
//! sharing a key share a prefix-cache home under affinity routing).
//!
//! ```text
//! {"arrival_s": 0.0,  "prompt_tokens": 512, "decode_tokens": 64, "prefix_key": 7}
//! {"arrival_s": 0.25}
//! {"arrival_s": 1.5,  "prefix_key": 7}
//! ```
//!
//! [`TraceReplay::parse`] validates eagerly — negative or unsorted
//! timestamps, malformed JSON, and zero-token overrides are
//! [`ReplayError`]s, not later panics — and [`TraceReplay::arrivals`]
//! lowers the timestamps onto the existing
//! [`ArrivalProcess::Trace`] variant so replayed traces flow through
//! every serving path unchanged.

use crate::arrival::ArrivalProcess;
use serde::{Deserialize, Serialize};

/// One parsed trace line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Arrival offset, seconds from episode start.
    pub arrival_s: f64,
    /// Prompt length override, tokens.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub prompt_tokens: Option<u64>,
    /// Output length override, tokens.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub decode_tokens: Option<u64>,
    /// Conversation identity for prefix-affinity routing.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub prefix_key: Option<u64>,
}

/// Why a trace file failed validation.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayError {
    /// The trace had no records (blank lines are skipped, so a file of
    /// blank lines is empty too).
    Empty,
    /// A line was not a valid JSON object with the expected fields.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The JSON parser's message.
        message: String,
    },
    /// A record's `arrival_s` was negative or not finite.
    NegativeTimestamp {
        /// 1-based line number.
        line: usize,
        /// The offending timestamp.
        arrival_s: f64,
    },
    /// A record arrived earlier than its predecessor.
    UnsortedTimestamp {
        /// 1-based line number.
        line: usize,
        /// The offending timestamp.
        arrival_s: f64,
        /// The preceding record's timestamp.
        previous_s: f64,
    },
    /// A token override was zero.
    ZeroTokens {
        /// 1-based line number.
        line: usize,
        /// Which field was zero (`prompt_tokens` or `decode_tokens`).
        field: &'static str,
    },
}

impl core::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ReplayError::Empty => write!(f, "trace has no records"),
            ReplayError::Malformed { line, message } => {
                write!(f, "line {line}: malformed trace record: {message}")
            }
            ReplayError::NegativeTimestamp { line, arrival_s } => {
                write!(
                    f,
                    "line {line}: arrival_s must be finite and >= 0, got {arrival_s}"
                )
            }
            ReplayError::UnsortedTimestamp {
                line,
                arrival_s,
                previous_s,
            } => write!(
                f,
                "line {line}: arrival_s {arrival_s} precedes previous record at {previous_s}"
            ),
            ReplayError::ZeroTokens { line, field } => {
                write!(f, "line {line}: {field} must be positive when present")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

/// A validated production trace, ready to drive a workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceReplay {
    records: Vec<TraceRecord>,
}

impl TraceReplay {
    /// Parses JSONL text (one record per line; blank lines skipped).
    pub fn parse(text: &str) -> Result<Self, ReplayError> {
        let mut records = Vec::new();
        let mut previous_s = f64::NEG_INFINITY;
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            if raw.trim().is_empty() {
                continue;
            }
            let record: TraceRecord =
                serde_json::from_str(raw).map_err(|e| ReplayError::Malformed {
                    line,
                    message: e.to_string(),
                })?;
            if !record.arrival_s.is_finite() || record.arrival_s < 0.0 {
                return Err(ReplayError::NegativeTimestamp {
                    line,
                    arrival_s: record.arrival_s,
                });
            }
            if record.arrival_s < previous_s {
                return Err(ReplayError::UnsortedTimestamp {
                    line,
                    arrival_s: record.arrival_s,
                    previous_s,
                });
            }
            if record.prompt_tokens == Some(0) {
                return Err(ReplayError::ZeroTokens {
                    line,
                    field: "prompt_tokens",
                });
            }
            if record.decode_tokens == Some(0) {
                return Err(ReplayError::ZeroTokens {
                    line,
                    field: "decode_tokens",
                });
            }
            previous_s = record.arrival_s;
            records.push(record);
        }
        if records.is_empty() {
            return Err(ReplayError::Empty);
        }
        Ok(Self { records })
    }

    /// Loads and parses a trace file from disk.
    pub fn load(path: &std::path::Path) -> Result<Self, ReplayError> {
        let text = std::fs::read_to_string(path).map_err(|e| ReplayError::Malformed {
            line: 0,
            message: format!("cannot read {}: {e}", path.display()),
        })?;
        Self::parse(&text)
    }

    /// The validated records, in arrival order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of records in the trace.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty (never true for a parsed trace).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The trace's arrival schedule as an [`ArrivalProcess::Trace`] —
    /// drop-in for any [`ServingWorkload`](crate::ServingWorkload).
    pub fn arrivals(&self) -> ArrivalProcess {
        ArrivalProcess::Trace(self.records.iter().map(|r| r.arrival_s).collect())
    }

    /// Applies the trace's per-request overrides onto generated
    /// requests: record `i` overrides request `i`'s prompt/output
    /// lengths and prefix identity where present. Requests beyond the
    /// trace's length are untouched. A `prefix_key` gets conversation
    /// semantics: the key's first appearance opens it (nothing cached
    /// yet), later appearances may reuse their whole prompt, and every
    /// turn publishes its full context for the next one.
    pub fn apply_overrides(&self, requests: &mut [crate::ServingRequest]) {
        let mut seen = std::collections::HashSet::new();
        for (record, serving) in self.records.iter().zip(requests.iter_mut()) {
            if let Some(prompt) = record.prompt_tokens {
                serving.request.input_len = prompt;
            }
            if let Some(decode) = record.decode_tokens {
                serving.request.output_len = decode;
            }
            if let Some(key) = record.prefix_key {
                let reuse = if seen.insert(key) {
                    0
                } else {
                    serving.request.input_len
                };
                serving.request.prefix = Some(papi_kv::PrefixHint {
                    key,
                    reuse_tokens: reuse,
                    publish_tokens: serving.request.input_len + serving.request.output_len,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_well_formed_trace() {
        let text = r#"
{"arrival_s": 0.0, "prompt_tokens": 512, "decode_tokens": 64, "prefix_key": 7}
{"arrival_s": 0.25}

{"arrival_s": 1.5, "prefix_key": 7}
"#;
        let trace = TraceReplay::parse(text).unwrap();
        assert_eq!(trace.len(), 3);
        assert!(!trace.is_empty());
        assert_eq!(trace.records()[0].prompt_tokens, Some(512));
        assert_eq!(trace.records()[1].prompt_tokens, None);
        assert_eq!(trace.records()[2].prefix_key, Some(7));
        assert_eq!(
            trace.arrivals(),
            ArrivalProcess::Trace(vec![0.0, 0.25, 1.5])
        );
    }

    #[test]
    fn arrivals_drive_a_workload() {
        use crate::{DatasetKind, ServingWorkload};
        let trace = TraceReplay::parse("{\"arrival_s\": 0.5}\n{\"arrival_s\": 2.0}\n").unwrap();
        let w = ServingWorkload::new(DatasetKind::GeneralQa, trace.arrivals(), 2);
        let requests = w.requests();
        assert_eq!(requests[0].arrival_s, 0.5);
        assert_eq!(requests[1].arrival_s, 2.0);
    }

    #[test]
    fn overrides_land_on_requests() {
        use crate::{DatasetKind, ServingWorkload};
        let text = "{\"arrival_s\": 0.0, \"prompt_tokens\": 99, \"decode_tokens\": 11, \"prefix_key\": 3}\n{\"arrival_s\": 1.0}\n";
        let trace = TraceReplay::parse(text).unwrap();
        let w = ServingWorkload::new(DatasetKind::GeneralQa, trace.arrivals(), 2);
        let mut requests = w.requests();
        let untouched = requests[1].request;
        trace.apply_overrides(&mut requests);
        assert_eq!(requests[0].request.input_len, 99);
        assert_eq!(requests[0].request.output_len, 11);
        let hint = requests[0].request.prefix.unwrap();
        assert_eq!(hint.key, 3);
        assert_eq!(hint.reuse_tokens, 0, "first appearance opens the key");
        assert_eq!(hint.publish_tokens, 110);
        assert_eq!(requests[1].request, untouched);
    }

    #[test]
    fn negative_timestamp_rejected() {
        let err = TraceReplay::parse("{\"arrival_s\": -1.0}\n").unwrap_err();
        assert!(matches!(
            err,
            ReplayError::NegativeTimestamp { line: 1, .. }
        ));
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn unsorted_timestamps_rejected() {
        let err = TraceReplay::parse("{\"arrival_s\": 2.0}\n{\"arrival_s\": 1.0}\n").unwrap_err();
        assert_eq!(
            err,
            ReplayError::UnsortedTimestamp {
                line: 2,
                arrival_s: 1.0,
                previous_s: 2.0
            }
        );
    }

    #[test]
    fn malformed_line_reports_its_number() {
        let err = TraceReplay::parse("{\"arrival_s\": 0.0}\nnot json\n").unwrap_err();
        assert!(matches!(err, ReplayError::Malformed { line: 2, .. }));
    }

    #[test]
    fn missing_arrival_rejected() {
        let err = TraceReplay::parse("{\"prompt_tokens\": 5}\n").unwrap_err();
        assert!(matches!(err, ReplayError::Malformed { line: 1, .. }));
    }

    #[test]
    fn zero_token_override_rejected() {
        let err = TraceReplay::parse("{\"arrival_s\": 0.0, \"decode_tokens\": 0}\n").unwrap_err();
        assert_eq!(
            err,
            ReplayError::ZeroTokens {
                line: 1,
                field: "decode_tokens"
            }
        );
    }

    #[test]
    fn empty_trace_rejected() {
        assert_eq!(TraceReplay::parse("\n  \n"), Err(ReplayError::Empty));
        assert_eq!(TraceReplay::parse(""), Err(ReplayError::Empty));
    }

    #[test]
    fn records_round_trip_through_serde() {
        let trace = TraceReplay::parse("{\"arrival_s\": 0.5, \"prefix_key\": 9}\n").unwrap();
        let json = serde_json::to_string(&trace).unwrap();
        let back: TraceReplay = serde_json::from_str(&json).unwrap();
        assert_eq!(trace, back);
    }
}
