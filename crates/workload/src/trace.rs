//! Per-iteration decode traces.
//!
//! A [`DecodeTrace`] is the interface between the workload layer and the
//! system simulator: one record per decoding iteration capturing the
//! parallelism state (RLP, TLP), the batch's aggregate KV footprint, and
//! the tokens banked — everything the hardware model needs to price the
//! iteration, and everything the PAPI scheduler observes at runtime.

use serde::{Deserialize, Serialize};

/// The state of one decoding iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IterationRecord {
    /// Live requests at the start of the iteration (runtime RLP).
    pub rlp: u64,
    /// Speculation length exercised (TLP).
    pub tlp: u64,
    /// Sum of KV-cache lengths over live requests, in tokens (sets
    /// attention traffic).
    pub total_kv_len: u64,
    /// Longest single KV cache, in tokens (sets capacity pressure).
    pub max_kv_len: u64,
    /// Tokens banked by all requests this iteration.
    pub new_tokens: u64,
    /// Requests that emitted `<|eos|>` during this iteration.
    pub finished: u64,
}

impl IterationRecord {
    /// Tokens processed in parallel this iteration (`RLP × TLP`) — the
    /// FC kernel's data-reuse level.
    pub fn tokens_in_flight(&self) -> u64 {
        self.rlp * self.tlp
    }
}

/// A complete decode of one batch (or one serving episode).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DecodeTrace {
    /// Per-iteration records, in order.
    pub iterations: Vec<IterationRecord>,
    /// Requests served.
    pub requests: u64,
    /// Output tokens produced overall.
    pub total_tokens: u64,
    /// Prompt tokens across all served requests (the prefill phase's
    /// workload).
    pub total_input_tokens: u64,
    /// Sum of squared prompt lengths — the prefill attention kernel is
    /// quadratic in each request's prompt.
    pub sum_input_len_squared: u64,
}

impl DecodeTrace {
    /// Number of decoding iterations.
    pub fn len(&self) -> usize {
        self.iterations.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.iterations.is_empty()
    }

    /// The RLP series over iterations — the paper's Fig. 3 curve.
    pub fn rlp_series(&self) -> Vec<u64> {
        self.iterations.iter().map(|it| it.rlp).collect()
    }

    /// Token-weighted mean RLP (how much parallelism the average token
    /// saw).
    pub fn mean_rlp(&self) -> f64 {
        if self.total_tokens == 0 {
            return 0.0;
        }
        let weighted: f64 = self
            .iterations
            .iter()
            .map(|it| it.rlp as f64 * it.new_tokens as f64)
            .sum();
        weighted / self.total_tokens as f64
    }

    /// Fraction of iterations spent below `threshold` RLP — the share of
    /// the decode where a statically-scheduled GPU is starved (and PAPI
    /// reschedules to FC-PIM).
    pub fn fraction_below_rlp(&self, threshold: u64) -> f64 {
        if self.iterations.is_empty() {
            return 0.0;
        }
        self.iterations
            .iter()
            .filter(|it| it.rlp < threshold)
            .count() as f64
            / self.iterations.len() as f64
    }

    /// Internal consistency check: token and finish counts add up,
    /// RLP never exceeds the previous iteration's in static batching.
    /// Used by tests and debug assertions in the simulator.
    pub fn validate(&self) -> Result<(), String> {
        let tokens: u64 = self.iterations.iter().map(|it| it.new_tokens).sum();
        if tokens != self.total_tokens {
            return Err(format!(
                "iteration tokens {tokens} != trace total {}",
                self.total_tokens
            ));
        }
        let finished: u64 = self.iterations.iter().map(|it| it.finished).sum();
        if finished != self.requests {
            return Err(format!("finished {finished} != requests {}", self.requests));
        }
        for (i, it) in self.iterations.iter().enumerate() {
            if it.rlp == 0 {
                return Err(format!("iteration {i} has zero RLP"));
            }
            if it.max_kv_len == 0 || it.total_kv_len < it.max_kv_len {
                return Err(format!("iteration {i} has inconsistent KV lengths"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(rlp: u64, new_tokens: u64, finished: u64) -> IterationRecord {
        IterationRecord {
            rlp,
            tlp: 1,
            total_kv_len: rlp * 100,
            max_kv_len: 100,
            new_tokens,
            finished,
        }
    }

    #[test]
    fn tokens_in_flight() {
        let it = IterationRecord {
            rlp: 4,
            tlp: 2,
            total_kv_len: 400,
            max_kv_len: 100,
            new_tokens: 8,
            finished: 0,
        };
        assert_eq!(it.tokens_in_flight(), 8);
    }

    #[test]
    fn validate_accepts_consistent_trace() {
        let trace = DecodeTrace {
            iterations: vec![record(2, 2, 0), record(2, 2, 1), record(1, 1, 1)],
            requests: 2,
            total_tokens: 5,
            total_input_tokens: 0,
            sum_input_len_squared: 0,
        };
        trace.validate().unwrap();
    }

    #[test]
    fn validate_rejects_token_mismatch() {
        let trace = DecodeTrace {
            iterations: vec![record(1, 1, 1)],
            requests: 1,
            total_tokens: 2,
            total_input_tokens: 0,
            sum_input_len_squared: 0,
        };
        assert!(trace.validate().is_err());
    }

    #[test]
    fn mean_rlp_token_weighted() {
        let trace = DecodeTrace {
            iterations: vec![record(4, 4, 0), record(1, 1, 1)],
            requests: 1,
            total_tokens: 5,
            total_input_tokens: 0,
            sum_input_len_squared: 0,
        };
        // (4×4 + 1×1) / 5 = 3.4
        assert!((trace.mean_rlp() - 3.4).abs() < 1e-12);
    }

    #[test]
    fn fraction_below_rlp_counts_iterations() {
        let trace = DecodeTrace {
            iterations: vec![record(4, 1, 0), record(2, 1, 0), record(1, 1, 1)],
            requests: 1,
            total_tokens: 3,
            total_input_tokens: 0,
            sum_input_len_squared: 0,
        };
        assert!((trace.fraction_below_rlp(3) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(trace.fraction_below_rlp(1), 0.0);
    }

    #[test]
    fn empty_trace_behaviour() {
        let t = DecodeTrace::default();
        assert!(t.is_empty());
        assert_eq!(t.mean_rlp(), 0.0);
        assert_eq!(t.fraction_below_rlp(10), 0.0);
    }
}
