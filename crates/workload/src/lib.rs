//! `papi-workload` — LLM serving workloads.
//!
//! The dynamic behaviour that motivates PAPI comes from the *workload*:
//! requests with unpredictable output lengths finish at different times,
//! so request-level parallelism (RLP) decays over a batch's lifetime
//! (paper Fig. 3); operators batch and speculate differently per
//! deployment, so token-level parallelism (TLP) varies too. This crate
//! generates those dynamics:
//!
//! - [`dataset`] — seeded synthetic stand-ins for the Dolly dataset's
//!   creative-writing (long, heavy-tailed outputs) and general-qa
//!   (short outputs) categories, plus a long-context category for
//!   prefill-heavy load. *Substitution note*: the paper uses the
//!   real Dolly records; the figures depend only on the length
//!   distributions, which we match qualitatively (see DESIGN.md).
//! - [`conversation`] — prefix-structured populations: shared system
//!   prompts and multi-turn conversations, stamped with the
//!   [`PrefixHint`](papi_kv::PrefixHint)s the paged KV cache keys on.
//! - [`speculative`] — speculation length (TLP) and token-acceptance
//!   models.
//! - [`batching`] — static batching and mixed continuous batching.
//! - [`arrival`] — open-loop arrival processes (Poisson, uniform,
//!   multi-hour diurnal, flash-crowd, replayed traces) and the online
//!   request lifecycle
//!   (`Queued → Prefilling → Decoding → Finished`).
//! - [`replay`] — the JSONL production-trace format
//!   ([`TraceReplay`]): validated arrival logs with optional
//!   per-request shape/prefix overrides, lowered onto
//!   [`ArrivalProcess::Trace`].
//! - [`routing`] — cluster-level request routing: replica snapshots
//!   (now carrying a [`ReplicaRole`] for disaggregated fleets), the
//!   open [`RoutePolicy`] trait a fleet router picks admission targets
//!   through, the built-in policies (round-robin, join-shortest-queue,
//!   KV-pressure-aware, prefix-affinity, adaptive-affinity,
//!   shared-tier-affinity), the declarative [`PolicySpec`] naming
//!   them, and the decode-side
//!   [`MigrationPolicy`] seam that places migrated prefill→decode
//!   handoffs.
//! - [`trace`] — per-iteration decode traces: the RLP/TLP/KV state the
//!   system simulator executes against.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arrival;
pub mod batching;
pub mod conversation;
pub mod dataset;
pub mod replay;
pub mod request;
pub mod routing;
pub mod speculative;
pub mod trace;

pub use arrival::{ArrivalProcess, RequestSource, RequestState, ServingRequest, ServingWorkload};
pub use batching::{BatchingPolicy, WorkloadSpec};
pub use conversation::ConversationDataset;
pub use dataset::DatasetKind;
pub use replay::{ReplayError, TraceRecord, TraceReplay};
pub use request::Request;
#[allow(deprecated)]
pub use routing::RoutingPolicy;
pub use routing::{
    AdaptiveAffinity, BuiltinRoutePolicy, DecodeJsq, DecodeKvPressure, HashRing, JoinShortestQueue,
    KvPressureAware, MigrationContext, MigrationPolicy, MigrationSpec, PolicySpec, PrefixAffinity,
    ReplicaRole, ReplicaSnapshot, ReplicaState, RoundRobin, RouteContext, RoutePolicy, Router,
    SharedTierAffinity,
};
pub use speculative::{AcceptanceModel, SpeculativeConfig, TlpPolicy};
pub use trace::{DecodeTrace, IterationRecord};
