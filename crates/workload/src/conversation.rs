//! Prefix-aware request populations: shared system prompts and
//! multi-turn conversations.
//!
//! The plain [`DatasetKind`] populations draw every prompt
//! independently, so no two requests can share KV state. Real serving
//! traffic is the opposite: deployments pin one system prompt in front
//! of every request, and chat turns resend the whole accumulated
//! conversation as context. A [`ConversationDataset`] generates that
//! structure and stamps each request with the [`PrefixHint`] the paged
//! serving engine's prefix cache keys on:
//!
//! - **Shared system prompt** (`turns == 1`): every request's prompt
//!   starts with the same `system_prompt_tokens`, published under one
//!   fleet-wide cache key.
//! - **Multi-turn conversations** (`turns > 1`): requests are grouped
//!   into conversations; turn *k*'s prompt is the system prompt plus
//!   every earlier turn's prompt-and-response, published under the
//!   conversation's key so turn *k + 1* forks it instead of
//!   re-prefilling. (Cross-conversation sharing of the system prompt is
//!   not modelled in this mode — keys are single-level.)

use crate::dataset::DatasetKind;
use crate::request::Request;
use papi_kv::PrefixHint;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A conversation-structured request population over a base length
/// distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConversationDataset {
    /// Length distributions for per-turn user messages and responses.
    pub base: DatasetKind,
    /// Tokens of the system prompt shared by every conversation.
    pub system_prompt_tokens: u64,
    /// Turns per conversation (1 = independent requests that share only
    /// the system prompt).
    pub turns: usize,
}

impl ConversationDataset {
    /// A shared-system-prompt population: independent single-turn
    /// requests all carrying the same `system_prompt_tokens` prefix.
    pub fn shared_system_prompt(base: DatasetKind, system_prompt_tokens: u64) -> Self {
        Self {
            base,
            system_prompt_tokens,
            turns: 1,
        }
    }

    /// A multi-turn chat population.
    ///
    /// # Panics
    ///
    /// Panics if `turns` is zero.
    #[track_caller]
    pub fn multi_turn(base: DatasetKind, system_prompt_tokens: u64, turns: usize) -> Self {
        assert!(turns > 0, "a conversation needs at least one turn");
        Self {
            base,
            system_prompt_tokens,
            turns,
        }
    }

    /// Generates `n` requests with a seeded RNG (fully reproducible).
    ///
    /// Requests are emitted turn-major — turn 0 of every conversation,
    /// then turn 1, … — so under any monotone arrival process a
    /// conversation's turn *k + 1* arrives well after turn *k* (the
    /// open-loop stand-in for think time between turns).
    pub fn generate(&self, seed: u64, n: usize) -> Vec<Request> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x51ed_270e_ca11_b0a7);
        let dist = self.base.distribution();
        let conversations = n.div_ceil(self.turns).max(1);
        // Sample every conversation's full script up front, in a fixed
        // order, so the population is independent of emission order.
        let scripts: Vec<Vec<(u64, u64)>> = (0..conversations)
            .map(|_| {
                (0..self.turns)
                    .map(|_| (dist.sample_input(&mut rng), dist.sample_output(&mut rng)))
                    .collect()
            })
            .collect();

        let mut requests = Vec::with_capacity(n);
        'emit: for turn in 0..self.turns {
            for (conv, script) in scripts.iter().enumerate() {
                if requests.len() == n {
                    break 'emit;
                }
                let (user_tokens, output_len) = script[turn];
                let context_before: u64 = self.system_prompt_tokens
                    + script[..turn].iter().map(|&(u, o)| u + o).sum::<u64>();
                let input_len = context_before + user_tokens;
                let mut request = Request::new(requests.len() as u64, input_len, output_len);
                request = if self.turns == 1 {
                    // One fleet-wide key: every request shares (and
                    // republishes) the system prompt.
                    if self.system_prompt_tokens > 0 {
                        request.with_prefix(PrefixHint {
                            key: 0,
                            reuse_tokens: self.system_prompt_tokens,
                            publish_tokens: self.system_prompt_tokens,
                        })
                    } else {
                        request
                    }
                } else {
                    let last_turn = turn + 1 == self.turns;
                    request.with_prefix(PrefixHint {
                        key: 1 + conv as u64,
                        // Turn 0 opens the conversation: nothing is
                        // cached under its key yet.
                        reuse_tokens: if turn == 0 { 0 } else { context_before },
                        // The final turn's context is never extended —
                        // publishing it would only pollute the cache.
                        publish_tokens: if last_turn { 0 } else { input_len + output_len },
                    })
                };
                requests.push(request);
            }
        }
        requests
    }

    /// Display label for reports and sweeps.
    pub fn label(&self) -> String {
        if self.turns == 1 {
            format!("{}+sys{}", self.base, self.system_prompt_tokens)
        } else {
            format!(
                "{}-chat{}x-sys{}",
                self.base, self.turns, self.system_prompt_tokens
            )
        }
    }
}

impl core::fmt::Display for ConversationDataset {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_system_prompt_stamps_one_key() {
        let ds = ConversationDataset::shared_system_prompt(DatasetKind::GeneralQa, 256);
        let requests = ds.generate(7, 40);
        assert_eq!(requests.len(), 40);
        for r in &requests {
            let hint = r.prefix.expect("every request shares the system prompt");
            assert_eq!(hint.key, 0);
            assert_eq!(hint.reuse_tokens, 256);
            assert_eq!(hint.publish_tokens, 256);
            assert!(r.input_len > 256, "prompt contains the system prefix");
        }
    }

    #[test]
    fn multi_turn_contexts_accumulate_and_chain() {
        let ds = ConversationDataset::multi_turn(DatasetKind::GeneralQa, 128, 3);
        let n = 12; // 4 conversations × 3 turns
        let requests = ds.generate(3, n);
        assert_eq!(requests.len(), n);
        // Turn-major emission: ids 0..3 are turn 0, 4..7 turn 1, …
        for conv in 0..4usize {
            let turn0 = &requests[conv];
            let turn1 = &requests[4 + conv];
            let turn2 = &requests[8 + conv];
            let key = turn0.prefix.unwrap().key;
            assert_eq!(key, 1 + conv as u64);
            assert_eq!(turn1.prefix.unwrap().key, key);
            assert_eq!(turn2.prefix.unwrap().key, key);
            // Turn 0 has nothing to reuse; later turns reuse exactly
            // what the previous turn publishes.
            assert_eq!(turn0.prefix.unwrap().reuse_tokens, 0);
            assert_eq!(
                turn0.prefix.unwrap().publish_tokens,
                turn0.total_len(),
                "published context is the full prompt + response"
            );
            assert_eq!(turn1.prefix.unwrap().reuse_tokens, turn0.total_len());
            assert_eq!(turn2.prefix.unwrap().reuse_tokens, turn1.total_len());
            // The final turn opts out of publishing.
            assert_eq!(turn2.prefix.unwrap().publish_tokens, 0);
            // Contexts grow monotonically.
            assert!(turn1.input_len > turn0.input_len);
            assert!(turn2.input_len > turn1.input_len);
        }
    }

    #[test]
    fn generation_is_deterministic_and_truncates() {
        let ds = ConversationDataset::multi_turn(DatasetKind::CreativeWriting, 64, 4);
        assert_eq!(ds.generate(11, 30), ds.generate(11, 30));
        assert_ne!(ds.generate(11, 30), ds.generate(12, 30));
        assert_eq!(ds.generate(11, 30).len(), 30); // 8 convs, cut mid-turn
    }

    #[test]
    fn zero_system_single_turn_has_no_prefix() {
        let ds = ConversationDataset::shared_system_prompt(DatasetKind::GeneralQa, 0);
        assert!(ds.generate(1, 8).iter().all(|r| r.prefix.is_none()));
    }

    #[test]
    fn labels() {
        assert_eq!(
            ConversationDataset::shared_system_prompt(DatasetKind::GeneralQa, 512).label(),
            "general-qa+sys512"
        );
        assert_eq!(
            ConversationDataset::multi_turn(DatasetKind::GeneralQa, 256, 4).label(),
            "general-qa-chat4x-sys256"
        );
    }
}
