//! Request arrival processes and the online request lifecycle.
//!
//! The paper's central observation is that runtime parallelism is
//! *unpredictable under online serving*: requests arrive and finish at
//! unknown times (§3.2). The closed-batch [`WorkloadSpec`] path cannot
//! express that — it starts every request at t = 0. This module adds
//! the open-loop side: an [`ArrivalProcess`] stamps each generated
//! request with an arrival time, and a [`ServingRequest`] carries the
//! request through its lifecycle states (`Queued → Prefilling →
//! Decoding → Finished`) as the serving engine advances simulated
//! wall-clock time.
//!
//! [`WorkloadSpec`]: crate::batching::WorkloadSpec

use crate::conversation::ConversationDataset;
use crate::dataset::DatasetKind;
use crate::request::Request;
use crate::speculative::{SpeculativeConfig, TlpPolicy};
use papi_types::Time;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// When requests reach the serving system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Open-loop Poisson arrivals at `rate_per_sec` (exponential
    /// inter-arrival gaps) — the standard serving-benchmark load model.
    Poisson {
        /// Mean arrivals per second.
        rate_per_sec: f64,
    },
    /// Evenly spaced arrivals, one every `interval_sec`.
    Uniform {
        /// Gap between consecutive arrivals, in seconds.
        interval_sec: f64,
    },
    /// Every request is present at t = 0 (the closed-batch limit; with
    /// a batch cap this reproduces queue-fed continuous batching).
    Immediate,
    /// Explicit arrival offsets in seconds (a replayed trace file).
    /// Requests beyond the trace's length reuse its last gap.
    Trace(Vec<f64>),
    /// Synchronized bursts: `burst_size` requests land together every
    /// `interval_sec` — the thundering-herd pattern (webhook fan-out,
    /// batch-job fan-in) that stresses admission and prefill the
    /// hardest.
    Bursty {
        /// Requests per burst.
        burst_size: usize,
        /// Gap between consecutive bursts, in seconds.
        interval_sec: f64,
    },
    /// Multi-hour production diurnal load: a non-homogeneous Poisson
    /// process whose rate follows a raised sinusoid from
    /// `base_rate_per_sec` (trough) to `peak_rate_per_sec` (crest) over
    /// `period_s`, with per-arrival multiplicative noise of relative
    /// magnitude `noise` (0 disables it). The episode starts at the
    /// trough — day traffic ramps up, peaks at `period_s / 2`, and
    /// falls back.
    Diurnal {
        /// Trough arrival rate, requests per second.
        base_rate_per_sec: f64,
        /// Crest arrival rate, requests per second.
        peak_rate_per_sec: f64,
        /// Seconds per full day/night cycle.
        period_s: f64,
        /// Relative rate jitter in `[0, 1)`: the instantaneous rate is
        /// scaled by `1 ± noise` uniformly.
        noise: f64,
    },
    /// Steady `base_rate_per_sec` Poisson baseline with flash-crowd
    /// spikes: every `spike_every_s` the rate jumps to
    /// `spike_rate_per_sec` for `spike_duration_s` (a viral link, a
    /// retry storm). The first spike starts one full period in, so the
    /// fleet sees the steady state first.
    FlashCrowd {
        /// Baseline arrival rate, requests per second.
        base_rate_per_sec: f64,
        /// Arrival rate during a spike, requests per second.
        spike_rate_per_sec: f64,
        /// Seconds between spike onsets.
        spike_every_s: f64,
        /// Seconds each spike lasts.
        spike_duration_s: f64,
    },
}

/// Draws arrivals from a non-homogeneous Poisson process by thinning:
/// candidate events at the envelope rate `max_rate`, each kept with
/// probability `rate(t) / max_rate`.
fn thinned_arrivals(
    rng: &mut StdRng,
    max_rate: f64,
    n: usize,
    mut rate_at: impl FnMut(&mut StdRng, f64) -> f64,
) -> Vec<f64> {
    let mut clock = 0.0;
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        clock += -u.ln() / max_rate;
        let keep: f64 = rng.gen_range(0.0..1.0);
        if keep * max_rate < rate_at(rng, clock) {
            out.push(clock);
        }
    }
    out
}

impl ArrivalProcess {
    /// Arrival times (seconds, non-decreasing, starting at 0) for `n`
    /// requests, deterministically derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if a rate/interval is not positive and finite, or if a
    /// trace is empty, unsorted, or negative while `n > 0`.
    #[track_caller]
    pub fn arrival_times(&self, seed: u64, n: usize) -> Vec<f64> {
        match self {
            ArrivalProcess::Poisson { rate_per_sec } => {
                assert!(
                    rate_per_sec.is_finite() && *rate_per_sec > 0.0,
                    "Poisson rate must be positive, got {rate_per_sec}"
                );
                let mut rng = StdRng::seed_from_u64(seed ^ 0xa55a_a55a_0f0f_f0f0);
                let mut clock = 0.0;
                (0..n)
                    .map(|_| {
                        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                        clock += -u.ln() / rate_per_sec;
                        clock
                    })
                    .collect()
            }
            ArrivalProcess::Uniform { interval_sec } => {
                assert!(
                    interval_sec.is_finite() && *interval_sec > 0.0,
                    "arrival interval must be positive, got {interval_sec}"
                );
                (0..n).map(|i| i as f64 * interval_sec).collect()
            }
            ArrivalProcess::Immediate => vec![0.0; n],
            ArrivalProcess::Trace(times) => {
                assert!(n == 0 || !times.is_empty(), "empty arrival trace");
                assert!(
                    times.windows(2).all(|w| w[0] <= w[1])
                        && times.first().is_none_or(|&t| t >= 0.0),
                    "arrival trace must be sorted and non-negative"
                );
                let last_gap = if times.len() >= 2 {
                    times[times.len() - 1] - times[times.len() - 2]
                } else {
                    0.0
                };
                (0..n)
                    .map(|i| match times.get(i) {
                        Some(&t) => t,
                        None => times[times.len() - 1] + last_gap * (i - times.len() + 1) as f64,
                    })
                    .collect()
            }
            ArrivalProcess::Bursty {
                burst_size,
                interval_sec,
            } => {
                assert!(*burst_size > 0, "burst size must be positive");
                assert!(
                    interval_sec.is_finite() && *interval_sec > 0.0,
                    "burst interval must be positive, got {interval_sec}"
                );
                (0..n)
                    .map(|i| (i / burst_size) as f64 * interval_sec)
                    .collect()
            }
            ArrivalProcess::Diurnal {
                base_rate_per_sec,
                peak_rate_per_sec,
                period_s,
                noise,
            } => {
                assert!(
                    base_rate_per_sec.is_finite() && *base_rate_per_sec > 0.0,
                    "diurnal base rate must be positive, got {base_rate_per_sec}"
                );
                assert!(
                    peak_rate_per_sec.is_finite() && *peak_rate_per_sec >= *base_rate_per_sec,
                    "diurnal peak rate must be >= base, got {peak_rate_per_sec}"
                );
                assert!(
                    period_s.is_finite() && *period_s > 0.0,
                    "diurnal period must be positive, got {period_s}"
                );
                assert!(
                    noise.is_finite() && (0.0..1.0).contains(noise),
                    "diurnal noise must be in [0, 1), got {noise}"
                );
                let mut rng = StdRng::seed_from_u64(seed ^ 0xa55a_a55a_0f0f_f0f0);
                let base = *base_rate_per_sec;
                let swing = peak_rate_per_sec - base;
                let period = *period_s;
                let noise = *noise;
                // Envelope: peak rate times the worst-case noise boost.
                let max_rate = *peak_rate_per_sec * (1.0 + noise);
                thinned_arrivals(&mut rng, max_rate, n, |rng, t| {
                    let phase = core::f64::consts::TAU * t / period;
                    let rate = base + swing * 0.5 * (1.0 - phase.cos());
                    if noise > 0.0 {
                        rate * rng.gen_range(1.0 - noise..1.0 + noise)
                    } else {
                        rate
                    }
                })
            }
            ArrivalProcess::FlashCrowd {
                base_rate_per_sec,
                spike_rate_per_sec,
                spike_every_s,
                spike_duration_s,
            } => {
                assert!(
                    base_rate_per_sec.is_finite() && *base_rate_per_sec > 0.0,
                    "flash-crowd base rate must be positive, got {base_rate_per_sec}"
                );
                assert!(
                    spike_rate_per_sec.is_finite() && *spike_rate_per_sec >= *base_rate_per_sec,
                    "flash-crowd spike rate must be >= base, got {spike_rate_per_sec}"
                );
                assert!(
                    spike_every_s.is_finite() && *spike_every_s > 0.0,
                    "spike interval must be positive, got {spike_every_s}"
                );
                assert!(
                    spike_duration_s.is_finite()
                        && *spike_duration_s > 0.0
                        && spike_duration_s <= spike_every_s,
                    "spike duration must be positive and <= the interval, got {spike_duration_s}"
                );
                let mut rng = StdRng::seed_from_u64(seed ^ 0xa55a_a55a_0f0f_f0f0);
                let base = *base_rate_per_sec;
                let spike = *spike_rate_per_sec;
                let every = *spike_every_s;
                let duration = *spike_duration_s;
                thinned_arrivals(&mut rng, spike, n, |_, t| {
                    // First spike one full period in: [every, every+duration).
                    if t >= every && (t % every) < duration {
                        spike
                    } else {
                        base
                    }
                })
            }
        }
    }
}

/// Where an open-loop workload's requests come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestSource {
    /// Independent requests drawn from one length category.
    Dataset(DatasetKind),
    /// Prefix-structured requests (shared system prompt or multi-turn
    /// conversations).
    Conversations(ConversationDataset),
}

impl RequestSource {
    /// Generates `n` requests with a seeded RNG (fully reproducible).
    pub fn generate(&self, seed: u64, n: usize) -> Vec<Request> {
        match self {
            RequestSource::Dataset(kind) => kind.generate(seed, n),
            RequestSource::Conversations(dataset) => dataset.generate(seed, n),
        }
    }

    /// Display label for reports and sweeps.
    pub fn label(&self) -> String {
        match self {
            RequestSource::Dataset(kind) => kind.to_string(),
            RequestSource::Conversations(dataset) => dataset.label(),
        }
    }
}

impl From<DatasetKind> for RequestSource {
    fn from(kind: DatasetKind) -> Self {
        RequestSource::Dataset(kind)
    }
}

impl From<ConversationDataset> for RequestSource {
    fn from(dataset: ConversationDataset) -> Self {
        RequestSource::Conversations(dataset)
    }
}

impl core::fmt::Display for RequestSource {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.label())
    }
}

/// Lifecycle state of an online request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestState {
    /// Arrived, waiting for a batch slot.
    Queued,
    /// Admitted; its prompt is being prefetched into the KV cache.
    Prefilling,
    /// Generating output tokens.
    Decoding,
    /// Emitted `<|eos|>`.
    Finished,
}

/// One request flowing through the online serving system: the static
/// [`Request`] plus its arrival stamp, lifecycle state, and progress.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingRequest {
    /// The underlying prompt/output-length pair.
    pub request: Request,
    /// Arrival time, seconds since the episode began.
    pub arrival_s: f64,
    /// Current lifecycle state.
    pub state: RequestState,
    /// Output tokens banked so far.
    pub generated: u64,
    /// Times this request was preempted back to the queue.
    pub preemptions: u64,
}

impl ServingRequest {
    /// A freshly arrived request.
    pub fn new(request: Request, arrival_s: f64) -> Self {
        Self {
            request,
            arrival_s,
            state: RequestState::Queued,
            generated: 0,
            preemptions: 0,
        }
    }

    /// Output tokens still to generate.
    pub fn remaining(&self) -> u64 {
        self.request.output_len - self.generated
    }

    /// Current KV-cache footprint in tokens (prompt + banked output).
    pub fn kv_len(&self) -> u64 {
        self.request.input_len + self.generated
    }

    /// Prompt tokens a (re-)admission must prefill: the prompt plus any
    /// output generated before a preemption (recompute-style
    /// preemption rebuilds the whole context).
    pub fn prefill_len(&self) -> u64 {
        self.kv_len()
    }

    /// Arrival time as a typed quantity.
    pub fn arrival(&self) -> Time {
        Time::new(self.arrival_s)
    }
}

/// An open-loop serving workload: who arrives, when, and how the
/// decoder speculates.
///
/// # Example
///
/// ```
/// use papi_workload::{DatasetKind, ServingWorkload};
///
/// let workload = ServingWorkload::poisson(DatasetKind::GeneralQa, 2.0, 64).with_seed(7);
/// let requests = workload.requests();
/// assert_eq!(requests.len(), 64);
/// assert!(requests.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingWorkload {
    /// Where requests come from (a plain dataset category, or a
    /// prefix-structured conversation population).
    pub source: RequestSource,
    /// The arrival process.
    pub arrivals: ArrivalProcess,
    /// Number of requests in the episode.
    pub num_requests: usize,
    /// Speculative-decoding configuration (TLP).
    pub speculation: SpeculativeConfig,
    /// Runtime speculation-length policy.
    pub tlp_policy: TlpPolicy,
    /// RNG seed for dataset generation, arrivals, and acceptance.
    pub seed: u64,
}

impl ServingWorkload {
    /// Poisson arrivals at `rate_per_sec` over `num_requests` requests,
    /// no speculation.
    pub fn poisson(
        source: impl Into<RequestSource>,
        rate_per_sec: f64,
        num_requests: usize,
    ) -> Self {
        Self::new(
            source,
            ArrivalProcess::Poisson { rate_per_sec },
            num_requests,
        )
    }

    /// A workload over an explicit arrival process.
    pub fn new(
        source: impl Into<RequestSource>,
        arrivals: ArrivalProcess,
        num_requests: usize,
    ) -> Self {
        Self {
            source: source.into(),
            arrivals,
            num_requests,
            speculation: SpeculativeConfig::fixed(1),
            tlp_policy: TlpPolicy::Fixed,
            seed: 0xC0FFEE,
        }
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the speculation configuration.
    pub fn with_speculation(mut self, speculation: SpeculativeConfig) -> Self {
        self.speculation = speculation;
        self
    }

    /// Enables batch-co-optimized dynamic speculation length.
    pub fn with_adaptive_tlp(mut self, target_tokens: u64, max_length: u64) -> Self {
        self.tlp_policy = TlpPolicy::Adaptive {
            target_tokens,
            max_length,
        };
        self
    }

    /// The episode's requests, stamped with arrival times and sorted by
    /// arrival (ties keep generation order).
    pub fn requests(&self) -> Vec<ServingRequest> {
        let requests = self.source.generate(self.seed, self.num_requests);
        let times = self.arrivals.arrival_times(self.seed, self.num_requests);
        let mut serving: Vec<ServingRequest> = requests
            .into_iter()
            .zip(times)
            .map(|(request, arrival_s)| ServingRequest::new(request, arrival_s))
            .collect();
        serving.sort_by(|a, b| {
            a.arrival_s
                .total_cmp(&b.arrival_s)
                .then(a.request.id.cmp(&b.request.id))
        });
        serving
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_rate_sets_mean_gap() {
        for rate in [0.5f64, 2.0, 10.0] {
            let times = ArrivalProcess::Poisson { rate_per_sec: rate }.arrival_times(9, 4000);
            assert_eq!(times.len(), 4000);
            assert!(times.windows(2).all(|w| w[0] <= w[1]));
            let span = times.last().unwrap() - times.first().unwrap();
            let mean_gap = span / (times.len() - 1) as f64;
            assert!(
                (mean_gap * rate - 1.0).abs() < 0.1,
                "rate {rate}: mean gap {mean_gap}"
            );
        }
    }

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let p = ArrivalProcess::Poisson { rate_per_sec: 3.0 };
        assert_eq!(p.arrival_times(4, 100), p.arrival_times(4, 100));
        assert_ne!(p.arrival_times(4, 100), p.arrival_times(5, 100));
    }

    #[test]
    fn uniform_and_immediate_shapes() {
        let u = ArrivalProcess::Uniform { interval_sec: 0.25 }.arrival_times(0, 5);
        assert_eq!(u, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
        let i = ArrivalProcess::Immediate.arrival_times(0, 3);
        assert_eq!(i, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn trace_extends_past_its_end_with_last_gap() {
        let t = ArrivalProcess::Trace(vec![0.0, 1.0, 3.0]).arrival_times(0, 5);
        assert_eq!(t, vec![0.0, 1.0, 3.0, 5.0, 7.0]);
    }

    #[test]
    fn bursts_land_together() {
        let t = ArrivalProcess::Bursty {
            burst_size: 3,
            interval_sec: 2.0,
        }
        .arrival_times(0, 8);
        assert_eq!(t, vec![0.0, 0.0, 0.0, 2.0, 2.0, 2.0, 4.0, 4.0]);
    }

    #[test]
    fn diurnal_rate_tracks_the_sinusoid() {
        let p = ArrivalProcess::Diurnal {
            base_rate_per_sec: 2.0,
            peak_rate_per_sec: 20.0,
            period_s: 1000.0,
            noise: 0.1,
        };
        let times = p.arrival_times(11, 8000);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(times, p.arrival_times(11, 8000), "seeded determinism");
        // Count arrivals in the trough vs the crest of the first cycle:
        // the crest must see several times the trough's traffic.
        let in_window = |lo: f64, hi: f64| times.iter().filter(|&&t| t >= lo && t < hi).count();
        let trough = in_window(0.0, 100.0);
        let crest = in_window(450.0, 550.0);
        assert!(
            crest > trough * 3,
            "crest {crest} should dwarf trough {trough}"
        );
    }

    #[test]
    fn flash_crowd_spikes_after_a_quiet_period() {
        let p = ArrivalProcess::FlashCrowd {
            base_rate_per_sec: 1.0,
            spike_rate_per_sec: 30.0,
            spike_every_s: 100.0,
            spike_duration_s: 10.0,
        };
        let times = p.arrival_times(3, 2000);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(times, p.arrival_times(3, 2000), "seeded determinism");
        let in_window = |lo: f64, hi: f64| times.iter().filter(|&&t| t >= lo && t < hi).count();
        // The first period is all baseline — no spike at t = 0.
        let quiet = in_window(0.0, 100.0);
        let spike = in_window(100.0, 110.0);
        assert!(
            spike > quiet,
            "a 10 s spike ({spike}) should outdraw 100 s of baseline ({quiet})"
        );
    }

    #[test]
    #[should_panic(expected = "peak rate must be >= base")]
    fn inverted_diurnal_rejected() {
        ArrivalProcess::Diurnal {
            base_rate_per_sec: 5.0,
            peak_rate_per_sec: 1.0,
            period_s: 100.0,
            noise: 0.0,
        }
        .arrival_times(0, 1);
    }

    #[test]
    #[should_panic(expected = "spike duration")]
    fn overlong_spike_rejected() {
        ArrivalProcess::FlashCrowd {
            base_rate_per_sec: 1.0,
            spike_rate_per_sec: 5.0,
            spike_every_s: 10.0,
            spike_duration_s: 20.0,
        }
        .arrival_times(0, 1);
    }

    #[test]
    #[should_panic(expected = "burst size")]
    fn empty_burst_rejected() {
        ArrivalProcess::Bursty {
            burst_size: 0,
            interval_sec: 1.0,
        }
        .arrival_times(0, 1);
    }

    #[test]
    fn conversation_source_flows_through_the_workload() {
        use crate::conversation::ConversationDataset;
        let w = ServingWorkload::poisson(
            ConversationDataset::multi_turn(DatasetKind::GeneralQa, 128, 3),
            4.0,
            24,
        )
        .with_seed(5);
        let requests = w.requests();
        assert_eq!(requests.len(), 24);
        assert!(requests.iter().all(|r| r.request.prefix.is_some()));
        assert_eq!(w.source.label(), "general-qa-chat3x-sys128");
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_trace_rejected() {
        ArrivalProcess::Trace(vec![1.0, 0.5]).arrival_times(0, 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        ArrivalProcess::Poisson { rate_per_sec: 0.0 }.arrival_times(0, 1);
    }

    #[test]
    fn serving_request_lifecycle_accounting() {
        let mut r = ServingRequest::new(Request::new(1, 100, 40), 2.5);
        assert_eq!(r.state, RequestState::Queued);
        assert_eq!(r.remaining(), 40);
        assert_eq!(r.kv_len(), 100);
        r.generated = 15;
        assert_eq!(r.remaining(), 25);
        assert_eq!(r.kv_len(), 115);
        assert_eq!(r.prefill_len(), 115);
        assert_eq!(r.arrival().value(), 2.5);
    }

    #[test]
    fn workload_requests_sorted_and_reproducible() {
        let w = ServingWorkload::poisson(DatasetKind::CreativeWriting, 4.0, 128).with_seed(3);
        let a = w.requests();
        let b = w.requests();
        assert_eq!(a, b);
        assert_eq!(a.len(), 128);
        assert!(a.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
        assert!(a.iter().all(|r| r.state == RequestState::Queued));
    }
}
