//! Synthetic Dolly-like datasets.
//!
//! The paper evaluates on two categories of the Databricks Dolly
//! instruction dataset. We cannot ship the dataset, so we substitute
//! seeded log-normal length distributions that preserve what the
//! experiments actually consume — the joint distribution of input and
//! output lengths:
//!
//! - **creative-writing**: short-ish prompts, *long and heavy-tailed*
//!   outputs (essays, stories). Long outputs mean many decoding
//!   iterations and strong RLP decay — the regime where PAPI shines
//!   (paper §7.2's explanation of why creative-writing speedups exceed
//!   general-qa's).
//! - **general-qa**: similar prompts, *short* outputs (a sentence or
//!   two), hence fewer iterations and milder dynamics.

use crate::request::Request;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Which request-length category to synthesize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// Long, heavy-tailed outputs.
    CreativeWriting,
    /// Short outputs.
    GeneralQa,
    /// Long, heavy-tailed *prompts* with moderate outputs — document
    /// QA / summarization-style load, where prefill dominates and the
    /// per-request KV footprint is large at admission (beyond the two
    /// Dolly categories the paper evaluates; the regime the paged KV
    /// cache and chunked prefill target).
    LongContext,
}

impl DatasetKind {
    /// The length distribution for this category.
    pub fn distribution(self) -> LengthDistribution {
        match self {
            DatasetKind::CreativeWriting => LengthDistribution {
                input_log_mean: (90.0f64).ln(),
                input_log_std: 0.6,
                output_log_mean: (400.0f64).ln(),
                output_log_std: 0.8,
                min_len: 8,
                max_len: 3072,
            },
            DatasetKind::GeneralQa => LengthDistribution {
                input_log_mean: (100.0f64).ln(),
                input_log_std: 0.6,
                output_log_mean: (70.0f64).ln(),
                output_log_std: 0.6,
                min_len: 4,
                max_len: 768,
            },
            DatasetKind::LongContext => LengthDistribution {
                input_log_mean: (1200.0f64).ln(),
                input_log_std: 0.9,
                output_log_mean: (150.0f64).ln(),
                output_log_std: 0.6,
                min_len: 16,
                max_len: 8192,
            },
        }
    }

    /// Generates `n` requests with a seeded RNG (fully reproducible).
    pub fn generate(self, seed: u64, n: usize) -> Vec<Request> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let dist = self.distribution();
        (0..n)
            .map(|i| {
                let input = dist.sample_input(&mut rng);
                let output = dist.sample_output(&mut rng);
                Request::new(i as u64, input, output)
            })
            .collect()
    }
}

impl core::fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DatasetKind::CreativeWriting => f.write_str("creative-writing"),
            DatasetKind::GeneralQa => f.write_str("general-qa"),
            DatasetKind::LongContext => f.write_str("long-context"),
        }
    }
}

/// Log-normal input/output token-length distribution, clamped to
/// `[min_len, max_len]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LengthDistribution {
    /// Mean of ln(input length).
    pub input_log_mean: f64,
    /// Std-dev of ln(input length).
    pub input_log_std: f64,
    /// Mean of ln(output length).
    pub output_log_mean: f64,
    /// Std-dev of ln(output length).
    pub output_log_std: f64,
    /// Clamp floor.
    pub min_len: u64,
    /// Clamp ceiling.
    pub max_len: u64,
}

impl LengthDistribution {
    fn sample_lognormal(&self, rng: &mut impl Rng, mu: f64, sigma: f64) -> u64 {
        // Box–Muller: two uniforms → one standard normal.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let sample = (mu + sigma * z).exp();
        (sample.round() as u64).clamp(self.min_len, self.max_len)
    }

    /// Samples an input (prompt) length.
    pub fn sample_input(&self, rng: &mut impl Rng) -> u64 {
        self.sample_lognormal(rng, self.input_log_mean, self.input_log_std)
    }

    /// Samples an output (generation) length.
    pub fn sample_output(&self, rng: &mut impl Rng) -> u64 {
        self.sample_lognormal(rng, self.output_log_mean, self.output_log_std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_output(kind: DatasetKind) -> f64 {
        let reqs = kind.generate(42, 2000);
        reqs.iter().map(|r| r.output_len as f64).sum::<f64>() / reqs.len() as f64
    }

    #[test]
    fn creative_writing_outputs_much_longer_than_qa() {
        let cw = mean_output(DatasetKind::CreativeWriting);
        let qa = mean_output(DatasetKind::GeneralQa);
        assert!(
            cw > 3.0 * qa,
            "creative-writing mean {cw} should be ≫ general-qa mean {qa}"
        );
        assert!(cw > 300.0 && cw < 900.0, "creative-writing mean {cw}");
        assert!(qa > 40.0 && qa < 150.0, "general-qa mean {qa}");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = DatasetKind::CreativeWriting.generate(7, 100);
        let b = DatasetKind::CreativeWriting.generate(7, 100);
        let c = DatasetKind::CreativeWriting.generate(8, 100);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn long_context_prompts_dwarf_the_dolly_categories() {
        let mean_input = |kind: DatasetKind| {
            let reqs = kind.generate(42, 2000);
            reqs.iter().map(|r| r.input_len as f64).sum::<f64>() / reqs.len() as f64
        };
        let long = mean_input(DatasetKind::LongContext);
        let qa = mean_input(DatasetKind::GeneralQa);
        assert!(
            long > 8.0 * qa,
            "long-context mean prompt {long} should dwarf general-qa's {qa}"
        );
    }

    #[test]
    fn lengths_respect_clamps() {
        for kind in [
            DatasetKind::CreativeWriting,
            DatasetKind::GeneralQa,
            DatasetKind::LongContext,
        ] {
            let dist = kind.distribution();
            for r in kind.generate(1, 5000) {
                assert!(r.output_len >= dist.min_len && r.output_len <= dist.max_len);
                assert!(r.input_len >= dist.min_len && r.input_len <= dist.max_len);
            }
        }
    }

    #[test]
    fn creative_writing_has_heavy_tail() {
        let reqs = DatasetKind::CreativeWriting.generate(11, 5000);
        let mut lens: Vec<u64> = reqs.iter().map(|r| r.output_len).collect();
        lens.sort_unstable();
        let p50 = lens[lens.len() / 2] as f64;
        let p95 = lens[lens.len() * 95 / 100] as f64;
        assert!(
            p95 / p50 > 2.5,
            "p95/p50 = {} — outputs should be heavy-tailed",
            p95 / p50
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(DatasetKind::CreativeWriting.to_string(), "creative-writing");
        assert_eq!(DatasetKind::GeneralQa.to_string(), "general-qa");
    }
}
