//! Batching policies and the workload → trace simulation.

use crate::dataset::DatasetKind;
use crate::request::Request;
use crate::speculative::{SpeculativeConfig, TlpPolicy};
use crate::trace::{DecodeTrace, IterationRecord};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// How the serving system forms batches (paper §2.2.1 / §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BatchingPolicy {
    /// Batch-level scheduling: no new request joins until the whole
    /// batch completes. Runtime RLP decays as requests finish (Fig. 3).
    /// This is the paper's evaluation setting.
    Static,
    /// Token-level scheduling: a finished request's slot is refilled
    /// from the arrival queue at the next iteration, keeping RLP near
    /// the maximum while demand lasts.
    MixedContinuous,
}

/// A complete workload description: dataset, batch, speculation,
/// batching policy and reproducibility seed.
///
/// # Example
///
/// ```
/// use papi_workload::{DatasetKind, WorkloadSpec};
///
/// let spec = WorkloadSpec::static_batching(DatasetKind::CreativeWriting, 16, 2)
///     .with_seed(7);
/// let trace = spec.trace();
/// assert_eq!(trace.iterations[0].rlp, 16);
/// trace.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Dataset category.
    pub dataset: DatasetKind,
    /// Initial RLP (batch size).
    pub initial_rlp: u64,
    /// Speculative-decoding configuration (TLP).
    pub speculation: SpeculativeConfig,
    /// Runtime speculation-length policy (fixed or batch-co-optimized).
    pub tlp_policy: TlpPolicy,
    /// Batching policy.
    pub policy: BatchingPolicy,
    /// RNG seed for dataset generation and acceptance sampling.
    pub seed: u64,
    /// Extra queued requests available for continuous refill (beyond the
    /// initial batch).
    pub queue_depth: usize,
    /// Optional cap on simulated iterations (for quick tests and
    /// benches).
    pub max_iterations: Option<u64>,
}

impl WorkloadSpec {
    /// The paper's evaluation setting: static batching with a fixed
    /// speculation length.
    ///
    /// # Panics
    ///
    /// Panics if `batch` or `speculation_len` is zero.
    #[track_caller]
    pub fn static_batching(dataset: DatasetKind, batch: u64, speculation_len: u64) -> Self {
        assert!(batch > 0, "batch must be positive");
        Self {
            dataset,
            initial_rlp: batch,
            speculation: SpeculativeConfig::fixed(speculation_len),
            tlp_policy: TlpPolicy::Fixed,
            policy: BatchingPolicy::Static,
            seed: 0xC0FFEE,
            queue_depth: 0,
            max_iterations: None,
        }
    }

    /// Mixed continuous batching with `queue_depth` requests waiting.
    #[track_caller]
    pub fn continuous_batching(
        dataset: DatasetKind,
        batch: u64,
        speculation_len: u64,
        queue_depth: usize,
    ) -> Self {
        Self {
            policy: BatchingPolicy::MixedContinuous,
            queue_depth,
            ..Self::static_batching(dataset, batch, speculation_len)
        }
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the speculation configuration.
    pub fn with_speculation(mut self, speculation: SpeculativeConfig) -> Self {
        self.speculation = speculation;
        self
    }

    /// Enables batch-co-optimized dynamic speculation length (§3.2's
    /// runtime-TLP scenario): the controller targets
    /// `RLP × TLP ≈ target_tokens`, raising speculation as the batch
    /// drains, up to `max_length`.
    pub fn with_adaptive_tlp(mut self, target_tokens: u64, max_length: u64) -> Self {
        self.tlp_policy = TlpPolicy::Adaptive {
            target_tokens,
            max_length,
        };
        self
    }

    /// Caps the number of simulated iterations.
    pub fn with_max_iterations(mut self, max: u64) -> Self {
        self.max_iterations = Some(max);
        self
    }

    /// Generates the requests this workload serves (initial batch plus
    /// refill queue).
    pub fn requests(&self) -> Vec<Request> {
        self.dataset
            .generate(self.seed, self.initial_rlp as usize + self.queue_depth)
    }

    /// Simulates the decode and returns the per-iteration trace.
    pub fn trace(&self) -> DecodeTrace {
        let all = self.requests();
        let mut queue: VecDeque<Request> = all.into();
        let mut live: Vec<LiveRequest> = Vec::with_capacity(self.initial_rlp as usize);
        let mut prefill_tokens = 0u64;
        let mut prefill_sq = 0u64;
        let mut admit = |r: Request, live: &mut Vec<LiveRequest>| {
            prefill_tokens += r.input_len;
            prefill_sq += r.input_len * r.input_len;
            live.push(LiveRequest::admit(r));
        };
        for _ in 0..self.initial_rlp {
            if let Some(r) = queue.pop_front() {
                admit(r, &mut live);
            }
        }
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_mul(0x5851_f42d_4c95_7f2d));
        let mut trace = DecodeTrace {
            requests: 0,
            ..Default::default()
        };
        let mut iterations = 0u64;
        while !live.is_empty() {
            if let Some(max) = self.max_iterations {
                if iterations >= max {
                    // Account the still-running requests so validate()
                    // remains meaningful on truncated traces.
                    trace.requests += live.len() as u64;
                    let record = IterationRecord {
                        rlp: live.len() as u64,
                        tlp: self.speculation.tlp(),
                        total_kv_len: live.iter().map(LiveRequest::kv_len).sum(),
                        max_kv_len: live.iter().map(LiveRequest::kv_len).max().unwrap_or(1),
                        new_tokens: 0,
                        finished: live.len() as u64,
                    };
                    trace.iterations.push(record);
                    break;
                }
            }
            iterations += 1;
            let rlp = live.len() as u64;
            let tlp = self.tlp_policy.length_at(rlp, self.speculation.length);
            let total_kv: u64 = live.iter().map(LiveRequest::kv_len).sum();
            let max_kv = live.iter().map(LiveRequest::kv_len).max().unwrap_or(1);
            let mut new_tokens = 0;
            let mut finished = 0;
            live.retain_mut(|req| {
                let banked = self
                    .speculation
                    .acceptance
                    .sample(tlp, &mut rng)
                    .min(req.remaining());
                req.generated += banked;
                new_tokens += banked;
                if req.remaining() == 0 {
                    finished += 1;
                    false
                } else {
                    true
                }
            });
            trace.iterations.push(IterationRecord {
                rlp,
                tlp,
                total_kv_len: total_kv,
                max_kv_len: max_kv,
                new_tokens,
                finished,
            });
            trace.total_tokens += new_tokens;
            trace.requests += finished;
            if self.policy == BatchingPolicy::MixedContinuous {
                while (live.len() as u64) < self.initial_rlp {
                    match queue.pop_front() {
                        Some(r) => admit(r, &mut live),
                        None => break,
                    }
                }
            }
        }
        trace.total_input_tokens = prefill_tokens;
        trace.sum_input_len_squared = prefill_sq;
        trace
    }
}

#[derive(Debug, Clone)]
struct LiveRequest {
    request: Request,
    generated: u64,
}

impl LiveRequest {
    fn admit(request: Request) -> Self {
        Self {
            request,
            generated: 0,
        }
    }

    fn remaining(&self) -> u64 {
        self.request.output_len - self.generated
    }

    fn kv_len(&self) -> u64 {
        self.request.input_len + self.generated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::speculative::SpeculativeConfig;

    #[test]
    fn static_rlp_is_monotone_nonincreasing() {
        // The paper's Fig. 3: runtime RLP only decays under static
        // batching.
        let spec = WorkloadSpec::static_batching(DatasetKind::CreativeWriting, 32, 1);
        let trace = spec.trace();
        trace.validate().unwrap();
        let rlp = trace.rlp_series();
        assert_eq!(rlp[0], 32);
        assert!(rlp.windows(2).all(|w| w[1] <= w[0]), "RLP increased");
        assert_eq!(*rlp.last().unwrap(), 1);
    }

    #[test]
    fn static_iterations_match_longest_request() {
        let spec = WorkloadSpec::static_batching(DatasetKind::GeneralQa, 8, 1);
        let reqs = spec.requests();
        let longest = reqs.iter().map(|r| r.output_len).max().unwrap();
        let trace = spec.trace();
        assert_eq!(trace.len() as u64, longest);
    }

    #[test]
    fn speculation_shortens_the_decode() {
        let s1 = WorkloadSpec::static_batching(DatasetKind::CreativeWriting, 16, 1);
        let s4 = WorkloadSpec::static_batching(DatasetKind::CreativeWriting, 16, 4);
        let (t1, t4) = (s1.trace(), s4.trace());
        assert_eq!(t1.total_tokens, t4.total_tokens, "same tokens generated");
        let ratio = t1.len() as f64 / t4.len() as f64;
        assert!(
            ratio > 3.0 && ratio <= 4.0,
            "speculation 4 should cut iterations ~4×, got {ratio}"
        );
    }

    #[test]
    fn continuous_batching_holds_rlp_while_queue_lasts() {
        let spec = WorkloadSpec::continuous_batching(DatasetKind::GeneralQa, 8, 1, 64);
        let trace = spec.trace();
        trace.validate().unwrap();
        // While the queue has depth, RLP stays at the maximum.
        let early = &trace.rlp_series()[..trace.len() / 4];
        assert!(early.iter().all(|&r| r == 8), "early RLP should hold at 8");
        // All 72 requests eventually finish.
        assert_eq!(trace.requests, 72);
    }

    #[test]
    fn continuous_serves_more_tokens_than_static_same_length() {
        let static_spec = WorkloadSpec::static_batching(DatasetKind::GeneralQa, 8, 1);
        let cont_spec = WorkloadSpec::continuous_batching(DatasetKind::GeneralQa, 8, 1, 32);
        let ts = static_spec.trace();
        let tc = cont_spec.trace();
        let static_tput = ts.total_tokens as f64 / ts.len() as f64;
        let cont_tput = tc.total_tokens as f64 / tc.len() as f64;
        assert!(
            cont_tput > static_tput,
            "continuous {cont_tput} tokens/iter should beat static {static_tput}"
        );
    }

    #[test]
    fn geometric_acceptance_still_consistent() {
        let spec = WorkloadSpec::static_batching(DatasetKind::GeneralQa, 8, 4)
            .with_speculation(SpeculativeConfig::geometric(4, 0.7));
        let trace = spec.trace();
        trace.validate().unwrap();
        // Stochastic acceptance means more iterations than full
        // acceptance would need.
        let full = WorkloadSpec::static_batching(DatasetKind::GeneralQa, 8, 4).trace();
        assert!(trace.len() >= full.len());
    }

    #[test]
    fn max_iterations_truncates_but_stays_valid() {
        let spec = WorkloadSpec::static_batching(DatasetKind::CreativeWriting, 16, 1)
            .with_max_iterations(10);
        let trace = spec.trace();
        trace.validate().unwrap();
        assert!(trace.len() <= 11);
    }

    #[test]
    fn prefill_totals_cover_admitted_requests() {
        let spec = WorkloadSpec::static_batching(DatasetKind::GeneralQa, 8, 1);
        let reqs = spec.requests();
        let trace = spec.trace();
        let expected: u64 = reqs.iter().map(|r| r.input_len).sum();
        let expected_sq: u64 = reqs.iter().map(|r| r.input_len * r.input_len).sum();
        assert_eq!(trace.total_input_tokens, expected);
        assert_eq!(trace.sum_input_len_squared, expected_sq);

        // Continuous batching admits the queue too.
        let cont = WorkloadSpec::continuous_batching(DatasetKind::GeneralQa, 8, 1, 16);
        let all: u64 = cont.requests().iter().map(|r| r.input_len).sum();
        assert_eq!(cont.trace().total_input_tokens, all);
    }

    #[test]
    fn same_seed_same_trace() {
        let a = WorkloadSpec::static_batching(DatasetKind::CreativeWriting, 8, 2)
            .with_seed(5)
            .trace();
        let b = WorkloadSpec::static_batching(DatasetKind::CreativeWriting, 8, 2)
            .with_seed(5)
            .trace();
        assert_eq!(a, b);
    }

    #[test]
    fn adaptive_tlp_holds_tokens_in_flight_as_rlp_decays() {
        let fixed = WorkloadSpec::static_batching(DatasetKind::CreativeWriting, 32, 2).with_seed(7);
        let adaptive = fixed.clone().with_adaptive_tlp(64, 8);
        let (tf, ta) = (fixed.trace(), adaptive.trace());
        tf.validate().unwrap();
        ta.validate().unwrap();
        // Same tokens end up generated either way.
        assert_eq!(tf.total_tokens, ta.total_tokens);
        // Under the adaptive policy, the decayed tail still runs near the
        // target while the fixed policy collapses to RLP × 2.
        let tail_fixed = &tf.iterations[tf.len() * 3 / 4..];
        let tail_adaptive = &ta.iterations[ta.len() * 3 / 4..];
        let mean_tokens = |records: &[IterationRecord]| {
            records.iter().map(|it| it.tokens_in_flight()).sum::<u64>() as f64
                / records.len() as f64
        };
        assert!(
            mean_tokens(tail_adaptive) > 2.0 * mean_tokens(tail_fixed),
            "adaptive tail {} vs fixed tail {}",
            mean_tokens(tail_adaptive),
            mean_tokens(tail_fixed)
        );
        // And it finishes in fewer iterations.
        assert!(ta.len() < tf.len());
    }

    #[test]
    fn adaptive_tlp_varies_within_bounds() {
        let spec = WorkloadSpec::static_batching(DatasetKind::GeneralQa, 16, 1)
            .with_adaptive_tlp(32, 6)
            .with_seed(3);
        let trace = spec.trace();
        assert!(trace.iterations.iter().all(|it| (1..=6).contains(&it.tlp)));
        // The first iteration at RLP 16 targets 32/16 = 2.
        assert_eq!(trace.iterations[0].tlp, 2);
        // TLP rises as the batch drains.
        let last = trace.iterations.last().unwrap();
        assert!(last.tlp > trace.iterations[0].tlp);
    }

    #[test]
    fn kv_grows_over_iterations() {
        let spec = WorkloadSpec::static_batching(DatasetKind::GeneralQa, 4, 1);
        let trace = spec.trace();
        // While no request finishes, total KV strictly grows.
        let mut prev = 0;
        for it in trace.iterations.iter().take_while(|it| it.finished == 0) {
            assert!(it.total_kv_len > prev);
            prev = it.total_kv_len;
        }
    }
}
