//! Cluster-level request routing: which replica admits an arriving
//! request.
//!
//! A data-parallel PAPI fleet replicates whole serving engines behind a
//! router. The router sees one [`ReplicaSnapshot`] per replica — queue
//! depth, live batch, KV occupancy — at the moment a request arrives,
//! and a [`RoutingPolicy`] turns those into a replica index. Policies
//! are deliberately simulator-agnostic: they consume snapshots, not
//! engines, so they unit-test without a cluster.

use serde::{Deserialize, Serialize};

/// A replica's admission-relevant state at one instant.
///
/// KV occupancy is reported in *blocks* of the replica's paged cache,
/// not tokens: block granularity is what the replica's admission
/// planner actually allocates at, so the router sees internal
/// fragmentation (a replica serving many ragged tails fills its pool
/// faster than its token count suggests). Blocks the replica could
/// reclaim from its prefix cache are reported separately — they are
/// capacity, not commitment. With a block size of 1 (the scalar
/// configuration) all of this degenerates to exact token counting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicaSnapshot {
    /// Requests waiting in the replica's arrival queue.
    pub queued: usize,
    /// Requests in the running batch (prefilling or decoding).
    pub live: usize,
    /// KV-cache blocks currently held (live sequences plus cached
    /// prefixes).
    pub kv_blocks_in_use: u64,
    /// Blocks only the replica's prefix cache holds — reclaimable by
    /// eviction the moment admission needs them.
    pub kv_evictable_blocks: u64,
    /// Blocks the replica's admission planner may use (the headroom
    /// budget, not the raw pool).
    pub kv_budget_blocks: u64,
    /// Tokens per block of the replica's pool.
    pub kv_block_size: u64,
}

impl ReplicaSnapshot {
    /// Total requests the replica is responsible for right now.
    pub fn load(&self) -> usize {
        self.queued + self.live
    }

    /// Blocks irrevocably committed to live sequences (in use minus
    /// what prefix-cache eviction could hand back).
    pub fn kv_committed_blocks(&self) -> u64 {
        self.kv_blocks_in_use
            .saturating_sub(self.kv_evictable_blocks)
    }

    /// Blocks a request needing `tokens` KV tokens would allocate here.
    pub fn blocks_for(&self, tokens: u64) -> u64 {
        tokens.div_ceil(self.kv_block_size.max(1))
    }

    /// Fraction of the admission budget committed (1 when the budget is
    /// zero — a degenerate replica is "full").
    pub fn kv_utilization(&self) -> f64 {
        if self.kv_budget_blocks == 0 {
            return 1.0;
        }
        self.kv_committed_blocks() as f64 / self.kv_budget_blocks as f64
    }

    /// Whether admitting `incoming_kv_tokens` more KV tokens would
    /// exceed the admission budget, at this replica's block
    /// granularity.
    pub fn kv_saturated_for(&self, incoming_kv_tokens: u64) -> bool {
        self.kv_committed_blocks() + self.blocks_for(incoming_kv_tokens) > self.kv_budget_blocks
    }
}

/// How the cluster router picks a replica for each arriving request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoutingPolicy {
    /// Cycle through replicas in order, ignoring state — the classic
    /// stateless baseline.
    RoundRobin,
    /// Join the replica with the fewest responsible requests
    /// (queued + live). Replicas whose KV budget cannot take the
    /// request are skipped while any replica still has headroom.
    JoinShortestQueue,
    /// Join the replica with the lowest KV-budget utilization, breaking
    /// ties by queue length — the policy that tracks the *actual*
    /// admission bottleneck (the paper's KV-capacity pressure) rather
    /// than a proxy count.
    KvPressureAware,
}

impl RoutingPolicy {
    /// Display label for reports and sweeps.
    pub fn label(&self) -> &'static str {
        match self {
            RoutingPolicy::RoundRobin => "round-robin",
            RoutingPolicy::JoinShortestQueue => "join-shortest-queue",
            RoutingPolicy::KvPressureAware => "kv-pressure-aware",
        }
    }
}

impl core::fmt::Display for RoutingPolicy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// The stateful router: a policy plus the round-robin cursor.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Router {
    policy: RoutingPolicy,
    next: usize,
    decisions: u64,
}

impl Router {
    /// A fresh router running `policy`.
    pub fn new(policy: RoutingPolicy) -> Self {
        Self {
            policy,
            next: 0,
            decisions: 0,
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> RoutingPolicy {
        self.policy
    }

    /// Routing decisions made so far.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Picks the replica that admits a request needing
    /// `incoming_kv_tokens` of KV capacity (its prompt length at
    /// admission), given one snapshot per replica.
    ///
    /// Ties prefer the lowest replica index, so routing is
    /// deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is empty.
    #[track_caller]
    pub fn route(&mut self, incoming_kv_tokens: u64, replicas: &[ReplicaSnapshot]) -> usize {
        assert!(!replicas.is_empty(), "cannot route to an empty fleet");
        self.decisions += 1;
        match self.policy {
            RoutingPolicy::RoundRobin => {
                let pick = self.next % replicas.len();
                self.next = (self.next + 1) % replicas.len();
                pick
            }
            RoutingPolicy::JoinShortestQueue => {
                let least_loaded = |saturated_ok: bool| {
                    replicas
                        .iter()
                        .enumerate()
                        .filter(|(_, s)| saturated_ok || !s.kv_saturated_for(incoming_kv_tokens))
                        .min_by_key(|&(i, s)| (s.load(), i))
                        .map(|(i, _)| i)
                };
                least_loaded(false)
                    .or_else(|| least_loaded(true))
                    .expect("fleet is non-empty")
            }
            RoutingPolicy::KvPressureAware => replicas
                .iter()
                .enumerate()
                .min_by(|(ia, a), (ib, b)| {
                    a.kv_utilization()
                        .total_cmp(&b.kv_utilization())
                        .then_with(|| a.load().cmp(&b.load()))
                        .then_with(|| ia.cmp(ib))
                })
                .map(|(i, _)| i)
                .expect("fleet is non-empty"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(queued: usize, live: usize, kv: u64, budget: u64) -> ReplicaSnapshot {
        // Block size 1: blocks are tokens, the scalar configuration.
        ReplicaSnapshot {
            queued,
            live,
            kv_blocks_in_use: kv,
            kv_evictable_blocks: 0,
            kv_budget_blocks: budget,
            kv_block_size: 1,
        }
    }

    #[test]
    fn round_robin_cycles_deterministically() {
        let mut r = Router::new(RoutingPolicy::RoundRobin);
        let fleet = vec![snap(9, 9, 900, 1000); 3];
        let picks: Vec<usize> = (0..7).map(|_| r.route(10, &fleet)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2, 0]);
        assert_eq!(r.decisions(), 7);
    }

    #[test]
    fn jsq_picks_least_loaded() {
        let mut r = Router::new(RoutingPolicy::JoinShortestQueue);
        let fleet = vec![
            snap(4, 8, 100, 10_000),
            snap(1, 3, 100, 10_000),
            snap(2, 8, 100, 10_000),
        ];
        assert_eq!(r.route(50, &fleet), 1);
    }

    #[test]
    fn jsq_never_admits_to_a_saturated_replica_while_another_has_headroom() {
        let mut r = Router::new(RoutingPolicy::JoinShortestQueue);
        // Replica 0 is the least loaded but its KV budget cannot take
        // the 200-token prompt; replica 2 has headroom.
        let fleet = vec![
            snap(0, 1, 9_900, 10_000),
            snap(5, 8, 9_950, 10_000),
            snap(3, 6, 2_000, 10_000),
        ];
        assert_eq!(r.route(200, &fleet), 2);
        // Once every replica is saturated, fall back to least loaded.
        let all_full = vec![
            snap(2, 2, 9_990, 10_000),
            snap(0, 1, 9_990, 10_000),
            snap(4, 4, 9_990, 10_000),
        ];
        assert_eq!(r.route(200, &all_full), 1);
    }

    #[test]
    fn kv_aware_follows_the_emptiest_pool() {
        let mut r = Router::new(RoutingPolicy::KvPressureAware);
        let fleet = vec![
            snap(0, 2, 8_000, 10_000),
            snap(6, 9, 1_000, 10_000), // busiest queue, emptiest pool
            snap(1, 1, 5_000, 10_000),
        ];
        assert_eq!(r.route(100, &fleet), 1);
        // Ties on utilization break by load, then index.
        let tied = vec![snap(3, 0, 500, 1_000), snap(1, 0, 500, 1_000)];
        assert_eq!(r.route(100, &tied), 1);
    }

    #[test]
    fn snapshot_accessors() {
        let s = snap(3, 5, 750, 1_000);
        assert_eq!(s.load(), 8);
        assert!((s.kv_utilization() - 0.75).abs() < 1e-12);
        assert!(!s.kv_saturated_for(250));
        assert!(s.kv_saturated_for(251));
        // A zero-budget replica reads as full, never as infinitely free.
        assert_eq!(snap(0, 0, 0, 0).kv_utilization(), 1.0);
    }

    #[test]
    fn block_granularity_exposes_fragmentation_to_the_router() {
        // Two replicas with the same *token* budget; the paged one
        // (16-token blocks) has burned more of its pool on ragged
        // tails, and saturation is judged in its own block units.
        let paged = ReplicaSnapshot {
            queued: 0,
            live: 4,
            kv_blocks_in_use: 60,
            kv_evictable_blocks: 0,
            kv_budget_blocks: 62, // 992 tokens of budget
            kv_block_size: 16,
        };
        assert_eq!(paged.blocks_for(1), 1);
        assert_eq!(paged.blocks_for(17), 2);
        // 33 tokens round up to 3 blocks: saturated despite 2 blocks
        // (32 token slots) of headroom for a token-counting view.
        assert!(paged.kv_saturated_for(33));
        assert!(!paged.kv_saturated_for(32));
    }

    #[test]
    fn evictable_prefix_blocks_read_as_headroom() {
        let mut s = snap(0, 2, 9_900, 10_000);
        assert!(s.kv_saturated_for(200));
        // The same occupancy, but mostly reclaimable prefix cache: the
        // router must treat it as available.
        s.kv_evictable_blocks = 5_000;
        assert!(!s.kv_saturated_for(200));
        assert!((s.kv_utilization() - 0.49).abs() < 1e-12);
        assert_eq!(s.kv_committed_blocks(), 4_900);
    }

    #[test]
    #[should_panic(expected = "empty fleet")]
    fn routing_to_nobody_is_a_bug() {
        Router::new(RoutingPolicy::RoundRobin).route(1, &[]);
    }

    #[test]
    fn labels() {
        assert_eq!(
            RoutingPolicy::JoinShortestQueue.to_string(),
            "join-shortest-queue"
        );
        assert_eq!(RoutingPolicy::RoundRobin.label(), "round-robin");
    }
}
