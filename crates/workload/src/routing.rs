//! Cluster-level request routing: which replica admits an arriving
//! request.
//!
//! A data-parallel PAPI fleet replicates whole serving engines behind a
//! router. At each arrival the router sees a [`RouteContext`]: the
//! arriving request itself (lengths, prefix hint, arrival time) plus
//! one [`ReplicaSnapshot`] per replica — queue depth, live batch, KV
//! occupancy — *as of that simulated instant*, and a [`RoutePolicy`]
//! turns the context into a replica index.
//!
//! Routing is an open trait, not a closed enum: the bundled policies
//! ([`RoundRobin`], [`JoinShortestQueue`], [`KvPressureAware`],
//! [`PrefixAffinity`], [`AdaptiveAffinity`], [`SharedTierAffinity`])
//! are ordinary `RoutePolicy` implementations, and
//! user code can plug its own. Declarative surfaces (cluster specs,
//! sweeps, JSON bins) name built-ins through the serde-able
//! [`PolicySpec`], which also parses from strings
//! (`"prefix-affinity:0.85".parse()`). Policies are deliberately
//! simulator-agnostic: they consume snapshots, not engines, so they
//! unit-test without a cluster.
//!
//! # Writing a custom policy
//!
//! ```
//! use papi_workload::{ReplicaSnapshot, RouteContext, RoutePolicy};
//!
//! /// Sends long prompts to replica 0 (the "prefill node"), everything
//! /// else to the least-loaded remaining replica.
//! #[derive(Debug, Default)]
//! struct PrefillOffload {
//!     long_prompts: u64,
//! }
//!
//! impl RoutePolicy for PrefillOffload {
//!     fn route(&mut self, ctx: &RouteContext<'_>) -> usize {
//!         if ctx.request.request.input_len > 2048 && ctx.replicas.len() > 1 {
//!             self.long_prompts += 1;
//!             return 0;
//!         }
//!         ctx.replicas
//!             .iter()
//!             .enumerate()
//!             .skip(1)
//!             .min_by_key(|(i, s)| (s.load(), *i))
//!             .map_or(0, |(i, _)| i)
//!     }
//!
//!     fn label(&self) -> String {
//!         "prefill-offload".to_owned()
//!     }
//! }
//! ```

use crate::arrival::ServingRequest;
use papi_kv::{GlobalKvTier, PrefixHint};
use serde::{Deserialize, Serialize};
use std::str::FromStr;

/// What phase of the request lifecycle a replica serves — the
/// disaggregation axis of a fleet.
///
/// A `Colocated` replica runs the classic path: it admits arrivals,
/// prefills them, and decodes them to completion. A `Prefill` replica
/// only admits and prefills — the moment a request's prompt is
/// resident, its KV blocks are exported and migrated to a decode-side
/// replica. A `Decode` replica never takes raw arrivals; it receives
/// migrated decode-ready sequences (prefill already paid) and runs
/// them to `<|eos|>`. Roles let the fleet match each phase's hardware
/// affinity: prefill is compute-bound (GPU-heavy pool), decode
/// attention is memory-bound (PIM-heavy pool) — the cluster-scale
/// mirror of PAPI's intra-node FC placement argument.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReplicaRole {
    /// Serves both phases (the classic, non-disaggregated replica).
    #[default]
    Colocated,
    /// Admits arrivals and prefills; hands decode off via KV migration.
    Prefill,
    /// Receives migrated sequences and decodes; takes no raw arrivals.
    Decode,
}

impl ReplicaRole {
    /// Whether a router may send *new arrivals* here (prefill happens
    /// on admission, so only prefill-capable replicas qualify).
    pub fn accepts_arrivals(&self) -> bool {
        !matches!(self, ReplicaRole::Decode)
    }

    /// Whether migrated decode-ready sequences may be placed here.
    pub fn can_decode(&self) -> bool {
        !matches!(self, ReplicaRole::Prefill)
    }

    /// Display label for reports and sweeps.
    pub fn label(&self) -> &'static str {
        match self {
            ReplicaRole::Colocated => "colocated",
            ReplicaRole::Prefill => "prefill",
            ReplicaRole::Decode => "decode",
        }
    }
}

impl core::fmt::Display for ReplicaRole {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// Where a replica sits in its provisioning lifecycle — the elasticity
/// axis of a fleet, orthogonal to its [`ReplicaRole`].
///
/// A fixed-size fleet (the default) keeps every replica `Active`
/// forever, and nothing below changes behavior. An autoscaled fleet
/// walks replicas through `Retired → Warming → Active → Draining →
/// Retired`: a `Warming` replica is spinning up (model loading, cache
/// cold) and admits nothing until its spin-up delay elapses; a
/// `Draining` replica finishes its in-flight requests but receives no
/// new work; a `Retired` replica is deprovisioned — it costs no
/// replica-hours and serves nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReplicaState {
    /// Provisioned but still spinning up: admits nothing yet, and its
    /// prefix caches start cold when it activates.
    Warming,
    /// Serving traffic (the only state routers may target).
    #[default]
    Active,
    /// Finishing in-flight work; receives no new arrivals, migrations,
    /// or conversation homes.
    Draining,
    /// Deprovisioned: not running, not billed.
    Retired,
}

impl ReplicaState {
    /// Whether a router or migration policy may send *new* work here.
    /// Only `Active` replicas take traffic — warming replicas are not
    /// ready, draining replicas are on their way out, retired replicas
    /// do not exist.
    pub fn serves_traffic(&self) -> bool {
        matches!(self, ReplicaState::Active)
    }

    /// Whether the replica is provisioned (billed by the hour):
    /// everything but `Retired`.
    pub fn provisioned(&self) -> bool {
        !matches!(self, ReplicaState::Retired)
    }

    /// Display label for reports and sweeps.
    pub fn label(&self) -> &'static str {
        match self {
            ReplicaState::Warming => "warming",
            ReplicaState::Active => "active",
            ReplicaState::Draining => "draining",
            ReplicaState::Retired => "retired",
        }
    }
}

impl core::fmt::Display for ReplicaState {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// A replica's admission-relevant state at one instant.
///
/// KV occupancy is reported in *blocks* of the replica's paged cache,
/// not tokens: block granularity is what the replica's admission
/// planner actually allocates at, so the router sees internal
/// fragmentation (a replica serving many ragged tails fills its pool
/// faster than its token count suggests). Blocks the replica could
/// reclaim from its prefix cache are reported separately — they are
/// capacity, not commitment. With a block size of 1 (the scalar
/// configuration) all of this degenerates to exact token counting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicaSnapshot {
    /// The lifecycle phase this replica serves. Routing policies must
    /// send new arrivals only to [`accepts_arrivals`](ReplicaRole)
    /// replicas; migration policies place decode-ready sequences only
    /// on [`can_decode`](ReplicaRole) ones.
    pub role: ReplicaRole,
    /// Where the replica sits in its provisioning lifecycle. Built-in
    /// policies route new work only to [`ReplicaState::Active`]
    /// replicas; a fixed-size fleet (the default) reports every
    /// replica `Active` and behaves exactly as before elasticity
    /// existed.
    pub lifecycle: ReplicaState,
    /// Requests waiting in the replica's arrival queue.
    pub queued: usize,
    /// Requests in the running batch (prefilling or decoding).
    pub live: usize,
    /// KV-cache blocks currently held (live sequences plus cached
    /// prefixes).
    pub kv_blocks_in_use: u64,
    /// Blocks only the replica's prefix cache holds — reclaimable by
    /// eviction the moment admission needs them.
    pub kv_evictable_blocks: u64,
    /// Blocks the replica's admission planner may use (the headroom
    /// budget, not the raw pool).
    pub kv_budget_blocks: u64,
    /// Tokens per block of the replica's pool.
    pub kv_block_size: u64,
    /// Blocks occupied in the replica's KV capacity tier (spilled cold
    /// prefixes). Zero when no tier is configured.
    pub kv_tier_blocks_in_use: u64,
    /// The capacity tier's block budget (zero: no tier).
    pub kv_tier_budget_blocks: u64,
}

impl ReplicaSnapshot {
    /// Total requests the replica is responsible for right now.
    pub fn load(&self) -> usize {
        self.queued + self.live
    }

    /// Blocks irrevocably committed to live sequences (in use minus
    /// what prefix-cache eviction could hand back).
    pub fn kv_committed_blocks(&self) -> u64 {
        self.kv_blocks_in_use
            .saturating_sub(self.kv_evictable_blocks)
    }

    /// Blocks a request needing `tokens` KV tokens would allocate here.
    pub fn blocks_for(&self, tokens: u64) -> u64 {
        tokens.div_ceil(self.kv_block_size.max(1))
    }

    /// Fraction of the admission budget committed (1 when the budget is
    /// zero — a degenerate replica is "full").
    pub fn kv_utilization(&self) -> f64 {
        if self.kv_budget_blocks == 0 {
            return 1.0;
        }
        self.kv_committed_blocks() as f64 / self.kv_budget_blocks as f64
    }

    /// Whether admitting `incoming_kv_tokens` more KV tokens would
    /// exceed the admission budget, at this replica's block
    /// granularity.
    pub fn kv_saturated_for(&self, incoming_kv_tokens: u64) -> bool {
        self.kv_committed_blocks() + self.blocks_for(incoming_kv_tokens) > self.kv_budget_blocks
    }

    /// Fraction of the capacity tier's block budget occupied (the
    /// `kv_tier_blocks_in_use` / `kv_tier_budget_blocks` ratio). Zero
    /// when no tier is configured: an absent tier exerts no pressure. A
    /// full tier (1.0) means the replica's next spill evicts a cold
    /// record outright — stickiness can no longer count on the local
    /// hierarchy retaining a conversation's context.
    pub fn tier_pressure(&self) -> f64 {
        if self.kv_tier_budget_blocks == 0 {
            return 0.0;
        }
        self.kv_tier_blocks_in_use as f64 / self.kv_tier_budget_blocks as f64
    }
}

/// Everything a routing decision may inspect: the arriving request
/// (identity, prompt/output lengths, prefix hint, arrival time), the
/// fleet's per-replica snapshots at the arrival instant, and — when the
/// cluster runs a fleet-shared KV tier — the global prefix directory.
///
/// Snapshots expose the full KV hierarchy: hot-pool occupancy
/// (`kv_blocks_in_use` / `kv_budget_blocks`) *and* the capacity tier
/// (`kv_tier_blocks_in_use` / `kv_tier_budget_blocks`, folded into
/// [`ReplicaSnapshot::tier_pressure`]), so policies can react to a
/// replica whose spill tier is churning, not just one whose hot pool is
/// full.
#[derive(Debug, Clone, Copy)]
pub struct RouteContext<'a> {
    /// The request being placed — `ctx.request.request` is the static
    /// [`Request`](crate::Request) (id, lengths, prefix hint), and
    /// `ctx.request.arrival_s` its arrival time.
    pub request: &'a ServingRequest,
    /// One snapshot per replica, indexed by replica id; the policy's
    /// return value indexes this slice.
    pub replicas: &'a [ReplicaSnapshot],
    /// The fleet-wide directory of spilled prefixes, when the cluster
    /// runs a shared tier (`None` otherwise). Entries record which
    /// replica owns each spilled prefix and how many tokens it holds;
    /// [`SharedTierAffinity`] consults residency here to decide when
    /// stickiness is safe to relax.
    pub shared_prefixes: Option<&'a GlobalKvTier>,
    /// The consistent-hash ring over the currently-active membership,
    /// when the cluster is elastic (`None` for a fixed-size fleet).
    /// Affinity policies derive conversation homes from the ring when
    /// present, so a scale event re-homes only ~K/N conversations
    /// instead of reshuffling every modulo-N assignment; without a
    /// ring they fall back to the classic stateless modulo hash,
    /// keeping fixed fleets bit-for-bit on their goldens.
    pub ring: Option<&'a HashRing>,
}

impl<'a> RouteContext<'a> {
    /// A context without a fleet-shared prefix directory (the common
    /// private-tier fleet).
    pub fn new(request: &'a ServingRequest, replicas: &'a [ReplicaSnapshot]) -> Self {
        Self {
            request,
            replicas,
            shared_prefixes: None,
            ring: None,
        }
    }

    /// Attaches the fleet-wide spilled-prefix directory.
    pub fn with_shared_prefixes(mut self, directory: &'a GlobalKvTier) -> Self {
        self.shared_prefixes = Some(directory);
        self
    }

    /// Attaches the elastic fleet's consistent-hash membership ring.
    pub fn with_ring(mut self, ring: &'a HashRing) -> Self {
        self.ring = Some(ring);
        self
    }
}

impl RouteContext<'_> {
    /// KV tokens the chosen replica must cover at admission (the
    /// request's prompt, plus any regenerated context after a
    /// preemption).
    pub fn incoming_kv_tokens(&self) -> u64 {
        self.request.prefill_len()
    }

    /// The request's shareable-prefix hint, if it carries one (the
    /// conversation or shared-system-prompt key prefix-affinity
    /// policies steer by).
    pub fn prefix(&self) -> Option<PrefixHint> {
        self.request.request.prefix
    }

    /// Whether the arriving request's prefix is registered in the
    /// fleet-wide shared tier — i.e. *any* replica could re-materialize
    /// its context over the fabric. `false` without a directory or a
    /// prefix hint.
    pub fn shared_resident(&self) -> bool {
        match (self.shared_prefixes, self.prefix()) {
            (Some(directory), Some(hint)) => directory.resident(hint.key),
            _ => false,
        }
    }

    /// The replica indices a new arrival may legally land on: role
    /// accepts arrivals *and* lifecycle is [`ReplicaState::Active`]
    /// (warming, draining, and retired replicas take no new work).
    /// Falls back to the role-capable subset when nothing is active,
    /// then to *every* index — a policy must stay total even over a
    /// malformed fleet (the cluster engine validates shape
    /// separately).
    pub fn arrival_targets(&self) -> Vec<usize> {
        let serving: Vec<usize> = self
            .replicas
            .iter()
            .enumerate()
            .filter(|(_, s)| s.role.accepts_arrivals() && s.lifecycle.serves_traffic())
            .map(|(i, _)| i)
            .collect();
        if !serving.is_empty() {
            return serving;
        }
        let capable: Vec<usize> = self
            .replicas
            .iter()
            .enumerate()
            .filter(|(_, s)| s.role.accepts_arrivals())
            .map(|(i, _)| i)
            .collect();
        if capable.is_empty() {
            (0..self.replicas.len()).collect()
        } else {
            capable
        }
    }
}

/// How a fleet router picks the replica that admits each arriving
/// request.
///
/// Implementations may keep state across decisions (a cursor, a spill
/// counter, learned load estimates); the cluster engine drives one
/// policy instance per episode, in arrival order. The returned index
/// must be in range for `ctx.replicas` — the driver asserts it.
pub trait RoutePolicy: core::fmt::Debug {
    /// Picks the replica index that admits `ctx.request`.
    fn route(&mut self, ctx: &RouteContext<'_>) -> usize;

    /// Display label for reports and sweeps.
    fn label(&self) -> String {
        "custom".to_owned()
    }
}

/// Label for a prefix-affinity policy: the spill threshold rides along
/// whenever it differs from the default, so `Display` → [`FromStr`]
/// round-trips losslessly and sweep rows over different thresholds stay
/// distinguishable.
fn affinity_label(spill_utilization: f64) -> String {
    if spill_utilization == PrefixAffinity::DEFAULT_SPILL_UTILIZATION {
        "prefix-affinity".to_owned()
    } else {
        format!("prefix-affinity:{spill_utilization}")
    }
}

/// SplitMix64: the stateless hash [`PrefixAffinity`] maps prefix keys
/// to home replicas with — deterministic across runs and platforms.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A consistent-hash ring over an elastic fleet's active membership.
///
/// The classic `splitmix64(key) % N` home assignment reshuffles almost
/// *every* conversation whenever `N` changes — one scale event and the
/// whole fleet's prefix caches go cold at once. The ring fixes the
/// blast radius: each member replica owns
/// [`VNODES`](Self::VNODES) pseudo-random points on a `u64` circle,
/// and a key homes to the owner of the first point at or after its
/// hash (wrapping). Adding or removing one replica moves only the
/// arcs adjacent to that replica's points — ~K/N of the keys — while
/// every other conversation keeps its warm home.
///
/// Construction is a pure function of the member set, so both cluster
/// step modes (and any two runs) build identical rings.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HashRing {
    /// `(point, member)` pairs sorted by point; keys home to the first
    /// point at or after their hash, wrapping at the top.
    points: Vec<(u64, usize)>,
}

impl HashRing {
    /// Virtual nodes per member: enough that per-member load imbalance
    /// and single-event remap fractions concentrate near their ideal
    /// 1/N, cheap enough that rebuilding on a scale event is free at
    /// fleet scale.
    pub const VNODES: usize = 64;

    /// The ring over `members` (replica indices; order is irrelevant,
    /// duplicates collapse). An empty member set builds an empty ring —
    /// [`home`](Self::home) then returns `None`.
    pub fn new(members: &[usize]) -> Self {
        let mut points: Vec<(u64, usize)> = members
            .iter()
            .flat_map(|&m| {
                (0..Self::VNODES).map(move |v| {
                    let point = splitmix64((m as u64) ^ ((v as u64) << 32) ^ 0xA076_1D64_78BD_642F);
                    (point, m)
                })
            })
            .collect();
        // Sort by point, tie-breaking by member index, then keep the
        // first owner of any colliding point — deterministic no matter
        // the input order.
        points.sort_unstable();
        points.dedup_by_key(|&mut (point, _)| point);
        Self { points }
    }

    /// Whether the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The home member for `key`: the owner of the first ring point at
    /// or after `splitmix64(key)`, wrapping. `None` on an empty ring.
    pub fn home(&self, key: u64) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let hash = splitmix64(key);
        let idx = self.points.partition_point(|&(point, _)| point < hash);
        let (_, member) = self.points[if idx == self.points.len() { 0 } else { idx }];
        Some(member)
    }

    /// The distinct members on the ring, ascending.
    pub fn members(&self) -> Vec<usize> {
        let mut members: Vec<usize> = self.points.iter().map(|&(_, m)| m).collect();
        members.sort_unstable();
        members.dedup();
        members
    }
}

/// The affinity home for `key` over the legal `targets`: the ring's
/// assignment when an elastic membership ring is attached (and names a
/// legal target), otherwise the classic stateless modulo hash over the
/// target subset. The modulo path is what every fixed-size fleet takes
/// — bit-for-bit the pre-elasticity behavior.
fn affinity_home(ctx: &RouteContext<'_>, targets: &[usize], key: u64) -> usize {
    if let Some(ring) = ctx.ring {
        if let Some(home) = ring.home(key) {
            if targets.contains(&home) {
                return home;
            }
        }
    }
    targets[PrefixAffinity::home_replica(key, targets.len())]
}

/// Cycle through replicas in order, ignoring state — the classic
/// stateless baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// A fresh cursor at replica 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl RoutePolicy for RoundRobin {
    fn route(&mut self, ctx: &RouteContext<'_>) -> usize {
        // Cycle over the arrival-capable subset only; in an
        // all-colocated fleet that subset is the whole fleet, so the
        // classic behavior is unchanged.
        let targets = ctx.arrival_targets();
        let pick = targets[self.next % targets.len()];
        self.next = (self.next + 1) % targets.len();
        pick
    }

    fn label(&self) -> String {
        "round-robin".to_owned()
    }
}

/// Join the replica with the fewest responsible requests
/// (queued + live). Replicas whose KV budget cannot take the request
/// are skipped while any replica still has headroom.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinShortestQueue;

impl RoutePolicy for JoinShortestQueue {
    fn route(&mut self, ctx: &RouteContext<'_>) -> usize {
        let incoming = ctx.incoming_kv_tokens();
        let targets = ctx.arrival_targets();
        let least_loaded = |saturated_ok: bool| {
            targets
                .iter()
                .map(|&i| (i, &ctx.replicas[i]))
                .filter(|(_, s)| saturated_ok || !s.kv_saturated_for(incoming))
                .min_by_key(|&(i, s)| (s.load(), i))
                .map(|(i, _)| i)
        };
        least_loaded(false)
            .or_else(|| least_loaded(true))
            .expect("fleet is non-empty")
    }

    fn label(&self) -> String {
        "join-shortest-queue".to_owned()
    }
}

/// Join the replica with the lowest KV-budget utilization, breaking
/// ties by queue length — the policy that tracks the *actual*
/// admission bottleneck (the paper's KV-capacity pressure) rather than
/// a proxy count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KvPressureAware;

impl RoutePolicy for KvPressureAware {
    fn route(&mut self, ctx: &RouteContext<'_>) -> usize {
        ctx.arrival_targets()
            .into_iter()
            .map(|i| (i, &ctx.replicas[i]))
            .min_by(|(ia, a), (ib, b)| {
                a.kv_utilization()
                    .total_cmp(&b.kv_utilization())
                    .then_with(|| a.load().cmp(&b.load()))
                    .then_with(|| ia.cmp(ib))
            })
            .map(|(i, _)| i)
            .expect("fleet is non-empty")
    }

    fn label(&self) -> String {
        "kv-pressure-aware".to_owned()
    }
}

/// Session-sticky, prefix-aware routing: hash the request's prefix key
/// (its conversation id, or the fleet-wide shared-system-prompt key) to
/// a *home* replica, so every turn of a conversation lands on the
/// replica whose private prefix cache holds its accumulated context.
/// When the home replica is KV-saturated for the incoming prompt — or
/// its budget utilization has crossed `spill_utilization` — the request
/// spills to the least-pressured replica with headroom instead of
/// queueing behind a full pool.
///
/// Requests without a prefix hint fall back to join-shortest-queue.
/// This is the policy the closed `RoutingPolicy` enum could not
/// express: it needs the *request* (its prefix key), not just the
/// replica snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrefixAffinity {
    spill_utilization: f64,
    spills: u64,
}

impl PrefixAffinity {
    /// Default KV-utilization fraction above which the home replica
    /// spills (1.0 = spill only on hard saturation).
    pub const DEFAULT_SPILL_UTILIZATION: f64 = 1.0;

    /// Affinity routing that spills only when the home replica's KV
    /// budget cannot take the request.
    pub fn new() -> Self {
        Self::with_spill_utilization(Self::DEFAULT_SPILL_UTILIZATION)
    }

    /// Affinity routing that additionally spills once the home
    /// replica's KV-budget utilization reaches `spill_utilization`.
    ///
    /// # Panics
    ///
    /// Panics if `spill_utilization` is not in `(0, 1]`.
    #[track_caller]
    pub fn with_spill_utilization(spill_utilization: f64) -> Self {
        assert!(
            spill_utilization > 0.0 && spill_utilization <= 1.0,
            "spill utilization must be in (0, 1], got {spill_utilization}"
        );
        Self {
            spill_utilization,
            spills: 0,
        }
    }

    /// The home replica for `key` in a fleet of `replicas` replicas.
    pub fn home_replica(key: u64, replicas: usize) -> usize {
        debug_assert!(replicas > 0);
        (splitmix64(key) % replicas as u64) as usize
    }

    /// Requests routed away from their home replica because it was
    /// saturated.
    pub fn spills(&self) -> u64 {
        self.spills
    }

    /// The least-pressured arrival-capable replica with headroom for
    /// `incoming` tokens, preferring anywhere but `home` (a "spill"
    /// that lands back home is no spill at all). If only the home
    /// replica has headroom it keeps the request; an all-saturated
    /// fleet falls back to the least-pressured replica overall. Ties
    /// break by load, then index, so spills are deterministic.
    fn spill_target(
        home: usize,
        incoming: u64,
        targets: &[usize],
        replicas: &[ReplicaSnapshot],
    ) -> usize {
        let best = |saturated_ok: bool, home_ok: bool| {
            targets
                .iter()
                .map(|&i| (i, &replicas[i]))
                .filter(|(i, _)| home_ok || *i != home)
                .filter(|(_, s)| saturated_ok || !s.kv_saturated_for(incoming))
                .min_by(|(ia, a), (ib, b)| {
                    a.kv_utilization()
                        .total_cmp(&b.kv_utilization())
                        .then_with(|| a.load().cmp(&b.load()))
                        .then_with(|| ia.cmp(ib))
                })
                .map(|(i, _)| i)
        };
        best(false, false)
            .or_else(|| best(false, true))
            .or_else(|| best(true, true))
            .expect("fleet is non-empty")
    }
}

impl Default for PrefixAffinity {
    fn default() -> Self {
        Self::new()
    }
}

impl RoutePolicy for PrefixAffinity {
    fn route(&mut self, ctx: &RouteContext<'_>) -> usize {
        let incoming = ctx.incoming_kv_tokens();
        let Some(hint) = ctx.prefix() else {
            // Prefix-free requests have no cache to protect: balance
            // them like join-shortest-queue.
            return JoinShortestQueue.route(ctx);
        };
        // Hash over the arrival-capable subset (in an all-colocated
        // fleet: every replica, i.e. the classic behavior), so a
        // disaggregated fleet's conversations stay sticky to prefill
        // homes and decode-only replicas are never picked. Elastic
        // fleets attach a membership ring, which bounds how many homes
        // a scale event moves.
        let targets = ctx.arrival_targets();
        let home = affinity_home(ctx, &targets, hint.key);
        let snapshot = &ctx.replicas[home];
        if !snapshot.kv_saturated_for(incoming)
            && snapshot.kv_utilization() < self.spill_utilization
        {
            home
        } else {
            let pick = Self::spill_target(home, incoming, &targets, ctx.replicas);
            // A degenerate fleet (or one where only home has headroom)
            // keeps the request — that is not a spill.
            if pick != home {
                self.spills += 1;
            }
            pick
        }
    }

    fn label(&self) -> String {
        affinity_label(self.spill_utilization)
    }
}

/// Label for an adaptive-affinity policy; like [`affinity_label`], the
/// queue threshold rides along when non-default so `Display` →
/// [`FromStr`] round-trips losslessly.
fn adaptive_label(queue_pressure: f64) -> String {
    if queue_pressure == AdaptiveAffinity::DEFAULT_QUEUE_PRESSURE {
        "adaptive-affinity".to_owned()
    } else {
        format!("adaptive-affinity:{queue_pressure}")
    }
}

/// The affinity/balance hybrid: [`PrefixAffinity`] while the fleet has
/// slack, [`JoinShortestQueue`] once it saturates.
///
/// Pure affinity has a known failure mode past saturation: stickiness
/// stacks conversations onto hot replicas whose queues are already
/// deep, and prefix-oblivious JSQ re-wins goodput (the residual trade
/// the PR 4 `RoutingSweep` table shows). This policy watches the
/// fleet-wide *queue pressure* — mean queued requests per
/// arrival-capable replica — at every decision: below
/// `queue_pressure` it routes exactly like `PrefixAffinity`
/// (conversations stay home, caches stay hot); at or above it, queues
/// have grown past what cache hits can buy back, and it degrades to
/// JSQ until the backlog drains. The switch is per-decision and
/// hysteresis-free, so bursts degrade and recover automatically.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveAffinity {
    affinity: PrefixAffinity,
    queue_pressure: f64,
    balanced: u64,
}

impl AdaptiveAffinity {
    /// Default mean-queued-per-replica threshold above which affinity
    /// yields to load balancing. Below saturation, queues hover near
    /// zero; a sustained backlog of a few requests per replica means
    /// arrivals outpace service and stickiness is stacking hot queues.
    pub const DEFAULT_QUEUE_PRESSURE: f64 = 2.0;

    /// The hybrid at the default queue-pressure threshold.
    pub fn new() -> Self {
        Self::with_queue_pressure(Self::DEFAULT_QUEUE_PRESSURE)
    }

    /// The hybrid switching to JSQ once mean queued requests per
    /// arrival-capable replica reaches `queue_pressure`.
    ///
    /// # Panics
    ///
    /// Panics if `queue_pressure` is not positive and finite.
    #[track_caller]
    pub fn with_queue_pressure(queue_pressure: f64) -> Self {
        assert!(
            queue_pressure.is_finite() && queue_pressure > 0.0,
            "queue pressure must be positive, got {queue_pressure}"
        );
        Self {
            affinity: PrefixAffinity::new(),
            queue_pressure,
            balanced: 0,
        }
    }

    /// Decisions routed in the degraded (JSQ) regime so far.
    pub fn balanced_decisions(&self) -> u64 {
        self.balanced
    }

    /// Requests routed away from a saturated home replica while in the
    /// affinity regime.
    pub fn spills(&self) -> u64 {
        self.affinity.spills()
    }
}

impl Default for AdaptiveAffinity {
    fn default() -> Self {
        Self::new()
    }
}

impl RoutePolicy for AdaptiveAffinity {
    fn route(&mut self, ctx: &RouteContext<'_>) -> usize {
        let targets = ctx.arrival_targets();
        let queued: usize = targets.iter().map(|&i| ctx.replicas[i].queued).sum();
        let pressure = queued as f64 / targets.len() as f64;
        if pressure >= self.queue_pressure {
            self.balanced += 1;
            JoinShortestQueue.route(ctx)
        } else {
            self.affinity.route(ctx)
        }
    }

    fn label(&self) -> String {
        adaptive_label(self.queue_pressure)
    }
}

/// Label for a shared-tier-affinity policy; like [`affinity_label`],
/// the queue threshold rides along when non-default so `Display` →
/// [`FromStr`] round-trips losslessly.
fn shared_tier_label(queue_pressure: f64) -> String {
    if queue_pressure == SharedTierAffinity::DEFAULT_QUEUE_PRESSURE {
        "shared-tier-affinity".to_owned()
    } else {
        format!("shared-tier-affinity:{queue_pressure}")
    }
}

/// Affinity that relaxes stickiness exactly when the fleet-shared KV
/// tier has made it redundant.
///
/// [`PrefixAffinity`]'s stickiness buys cache hits at the price of
/// queueing: a hot home replica keeps winning its conversations even
/// when its queue is deep, because no other replica holds their
/// context. A fleet-shared tier changes that calculus — once a
/// conversation's prefix is registered in the global directory, *any*
/// replica can re-materialize it at one fabric hop, so waiting behind
/// the home's queue no longer protects anything. This policy routes
/// like `PrefixAffinity` while the home is healthy, but when the home
/// is **pressured** (its queue has reached `queue_pressure`, or its
/// private capacity tier is full per
/// [`ReplicaSnapshot::tier_pressure`]) *and* the request's prefix is
/// [resident](RouteContext::shared_resident) in the shared tier, it
/// relaxes to [`JoinShortestQueue`] — the fetch path recovers the
/// context wherever the request lands.
///
/// Unlike [`AdaptiveAffinity`], which degrades on fleet-wide pressure
/// regardless of what the move costs in cache hits, this policy only
/// relaxes when the remote-fetch escape hatch actually exists; a
/// pressured home whose conversation is *not* in the directory stays
/// sticky (moving it would cold-start the prefix). Without a shared
/// tier (`ctx.shared_prefixes == None`) it is exactly
/// `PrefixAffinity`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SharedTierAffinity {
    affinity: PrefixAffinity,
    queue_pressure: f64,
    relaxed: u64,
}

impl SharedTierAffinity {
    /// Default home-queue depth at which stickiness yields to load
    /// balancing for tier-resident prefixes. A couple of queued
    /// requests at the home means a remote fetch (microseconds of
    /// fabric time) beats the wait.
    pub const DEFAULT_QUEUE_PRESSURE: f64 = 2.0;

    /// The policy at the default queue-pressure threshold.
    pub fn new() -> Self {
        Self::with_queue_pressure(Self::DEFAULT_QUEUE_PRESSURE)
    }

    /// The policy relaxing once the home replica's queue reaches
    /// `queue_pressure` (tier-resident prefixes only).
    ///
    /// # Panics
    ///
    /// Panics if `queue_pressure` is not positive and finite.
    #[track_caller]
    pub fn with_queue_pressure(queue_pressure: f64) -> Self {
        assert!(
            queue_pressure.is_finite() && queue_pressure > 0.0,
            "queue pressure must be positive, got {queue_pressure}"
        );
        Self {
            affinity: PrefixAffinity::new(),
            queue_pressure,
            relaxed: 0,
        }
    }

    /// Decisions where stickiness was relaxed because the prefix was
    /// fleet-resident and the home was pressured.
    pub fn relaxed_decisions(&self) -> u64 {
        self.relaxed
    }

    /// Requests routed away from a saturated home replica while in the
    /// sticky regime.
    pub fn spills(&self) -> u64 {
        self.affinity.spills()
    }
}

impl Default for SharedTierAffinity {
    fn default() -> Self {
        Self::new()
    }
}

impl RoutePolicy for SharedTierAffinity {
    fn route(&mut self, ctx: &RouteContext<'_>) -> usize {
        if ctx.prefix().is_some() && ctx.shared_resident() {
            let targets = ctx.arrival_targets();
            let hint = ctx.prefix().expect("checked above");
            let home = affinity_home(ctx, &targets, hint.key);
            let snapshot = &ctx.replicas[home];
            let pressured =
                snapshot.queued as f64 >= self.queue_pressure || snapshot.tier_pressure() >= 1.0;
            if pressured {
                self.relaxed += 1;
                return JoinShortestQueue.route(ctx);
            }
        }
        self.affinity.route(ctx)
    }

    fn label(&self) -> String {
        shared_tier_label(self.queue_pressure)
    }
}

/// The built-in policies as a closed, serde-able value — the concrete
/// state a [`Router`] snapshots and restores. Custom [`RoutePolicy`]
/// implementations live outside this enum and drive the cluster engine
/// directly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BuiltinRoutePolicy {
    /// See [`RoundRobin`].
    RoundRobin(RoundRobin),
    /// See [`JoinShortestQueue`].
    JoinShortestQueue(JoinShortestQueue),
    /// See [`KvPressureAware`].
    KvPressureAware(KvPressureAware),
    /// See [`PrefixAffinity`].
    PrefixAffinity(PrefixAffinity),
    /// See [`AdaptiveAffinity`].
    AdaptiveAffinity(AdaptiveAffinity),
    /// See [`SharedTierAffinity`].
    SharedTierAffinity(SharedTierAffinity),
}

impl RoutePolicy for BuiltinRoutePolicy {
    fn route(&mut self, ctx: &RouteContext<'_>) -> usize {
        match self {
            BuiltinRoutePolicy::RoundRobin(p) => p.route(ctx),
            BuiltinRoutePolicy::JoinShortestQueue(p) => p.route(ctx),
            BuiltinRoutePolicy::KvPressureAware(p) => p.route(ctx),
            BuiltinRoutePolicy::PrefixAffinity(p) => p.route(ctx),
            BuiltinRoutePolicy::AdaptiveAffinity(p) => p.route(ctx),
            BuiltinRoutePolicy::SharedTierAffinity(p) => p.route(ctx),
        }
    }

    fn label(&self) -> String {
        match self {
            BuiltinRoutePolicy::RoundRobin(p) => p.label(),
            BuiltinRoutePolicy::JoinShortestQueue(p) => p.label(),
            BuiltinRoutePolicy::KvPressureAware(p) => p.label(),
            BuiltinRoutePolicy::PrefixAffinity(p) => p.label(),
            BuiltinRoutePolicy::AdaptiveAffinity(p) => p.label(),
            BuiltinRoutePolicy::SharedTierAffinity(p) => p.label(),
        }
    }
}

/// Declarative name of a built-in routing policy: what cluster specs,
/// sweeps, and JSON bins carry. `build()` turns it into the live
/// [`BuiltinRoutePolicy`]; [`FromStr`] parses the same labels
/// [`PolicySpec::label`] prints (plus `prefix-affinity:<threshold>` for
/// a custom spill point), so command-line and config surfaces stay
/// declarative.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PolicySpec {
    /// Cycle through replicas, ignoring state.
    RoundRobin,
    /// Fewest responsible requests, skipping KV-saturated replicas.
    JoinShortestQueue,
    /// Lowest KV-budget utilization, then shortest queue.
    KvPressureAware,
    /// Conversation-sticky routing with KV-pressure spill.
    PrefixAffinity {
        /// KV-utilization fraction above which the home replica spills.
        spill_utilization: f64,
    },
    /// Conversation-sticky below the queue-pressure threshold,
    /// join-shortest-queue above it.
    AdaptiveAffinity {
        /// Mean queued requests per arrival-capable replica at which
        /// affinity yields to load balancing.
        queue_pressure: f64,
    },
    /// Conversation-sticky, relaxing to join-shortest-queue only for
    /// prefixes resident in the fleet-shared KV tier whose home replica
    /// is pressured.
    SharedTierAffinity {
        /// Home-replica queue depth at which stickiness yields for
        /// tier-resident prefixes.
        queue_pressure: f64,
    },
}

impl PolicySpec {
    /// Prefix-affinity with the default spill point (hard saturation
    /// only).
    pub fn prefix_affinity() -> Self {
        PolicySpec::PrefixAffinity {
            spill_utilization: PrefixAffinity::DEFAULT_SPILL_UTILIZATION,
        }
    }

    /// The affinity/balance hybrid at the default queue-pressure
    /// threshold.
    pub fn adaptive_affinity() -> Self {
        PolicySpec::AdaptiveAffinity {
            queue_pressure: AdaptiveAffinity::DEFAULT_QUEUE_PRESSURE,
        }
    }

    /// Shared-tier-aware affinity at the default queue-pressure
    /// threshold.
    pub fn shared_tier_affinity() -> Self {
        PolicySpec::SharedTierAffinity {
            queue_pressure: SharedTierAffinity::DEFAULT_QUEUE_PRESSURE,
        }
    }

    /// Instantiates the policy this spec names, with fresh state.
    ///
    /// # Panics
    ///
    /// Panics if a `PrefixAffinity` spec carries a `spill_utilization`
    /// outside `(0, 1]` — possible only for values that bypassed
    /// [`FromStr`]'s validation, e.g. hand-built or deserialized specs.
    #[track_caller]
    pub fn build(&self) -> BuiltinRoutePolicy {
        match *self {
            PolicySpec::RoundRobin => BuiltinRoutePolicy::RoundRobin(RoundRobin::new()),
            PolicySpec::JoinShortestQueue => {
                BuiltinRoutePolicy::JoinShortestQueue(JoinShortestQueue)
            }
            PolicySpec::KvPressureAware => BuiltinRoutePolicy::KvPressureAware(KvPressureAware),
            PolicySpec::PrefixAffinity { spill_utilization } => BuiltinRoutePolicy::PrefixAffinity(
                PrefixAffinity::with_spill_utilization(spill_utilization),
            ),
            PolicySpec::AdaptiveAffinity { queue_pressure } => {
                BuiltinRoutePolicy::AdaptiveAffinity(AdaptiveAffinity::with_queue_pressure(
                    queue_pressure,
                ))
            }
            PolicySpec::SharedTierAffinity { queue_pressure } => {
                BuiltinRoutePolicy::SharedTierAffinity(SharedTierAffinity::with_queue_pressure(
                    queue_pressure,
                ))
            }
        }
    }

    /// Display label for reports and sweeps. Never instantiates the
    /// policy (and so never panics, even for an out-of-range
    /// deserialized spec); a non-default spill threshold is part of
    /// the label, so `Display` → [`FromStr`] round-trips losslessly.
    pub fn label(&self) -> String {
        match *self {
            PolicySpec::RoundRobin => "round-robin".to_owned(),
            PolicySpec::JoinShortestQueue => "join-shortest-queue".to_owned(),
            PolicySpec::KvPressureAware => "kv-pressure-aware".to_owned(),
            PolicySpec::PrefixAffinity { spill_utilization } => affinity_label(spill_utilization),
            PolicySpec::AdaptiveAffinity { queue_pressure } => adaptive_label(queue_pressure),
            PolicySpec::SharedTierAffinity { queue_pressure } => shared_tier_label(queue_pressure),
        }
    }
}

impl core::fmt::Display for PolicySpec {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.label())
    }
}

impl FromStr for PolicySpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "round-robin" => return Ok(PolicySpec::RoundRobin),
            "join-shortest-queue" => return Ok(PolicySpec::JoinShortestQueue),
            "kv-pressure-aware" => return Ok(PolicySpec::KvPressureAware),
            "prefix-affinity" => return Ok(PolicySpec::prefix_affinity()),
            "adaptive-affinity" => return Ok(PolicySpec::adaptive_affinity()),
            "shared-tier-affinity" => return Ok(PolicySpec::shared_tier_affinity()),
            _ => {}
        }
        if let Some(threshold) = s.strip_prefix("prefix-affinity:") {
            let spill_utilization: f64 = threshold
                .parse()
                .map_err(|_| format!("invalid spill utilization {threshold:?}"))?;
            if !(spill_utilization > 0.0 && spill_utilization <= 1.0) {
                return Err(format!(
                    "spill utilization must be in (0, 1], got {spill_utilization}"
                ));
            }
            return Ok(PolicySpec::PrefixAffinity { spill_utilization });
        }
        if let Some(threshold) = s.strip_prefix("adaptive-affinity:") {
            let queue_pressure: f64 = threshold
                .parse()
                .map_err(|_| format!("invalid queue pressure {threshold:?}"))?;
            if !(queue_pressure.is_finite() && queue_pressure > 0.0) {
                return Err(format!(
                    "queue pressure must be positive, got {queue_pressure}"
                ));
            }
            return Ok(PolicySpec::AdaptiveAffinity { queue_pressure });
        }
        if let Some(threshold) = s.strip_prefix("shared-tier-affinity:") {
            let queue_pressure: f64 = threshold
                .parse()
                .map_err(|_| format!("invalid queue pressure {threshold:?}"))?;
            if !(queue_pressure.is_finite() && queue_pressure > 0.0) {
                return Err(format!(
                    "queue pressure must be positive, got {queue_pressure}"
                ));
            }
            return Ok(PolicySpec::SharedTierAffinity { queue_pressure });
        }
        Err(format!(
            "unknown routing policy {s:?} (expected round-robin, join-shortest-queue, \
             kv-pressure-aware, prefix-affinity[:<spill>], adaptive-affinity[:<pressure>], \
             or shared-tier-affinity[:<pressure>])"
        ))
    }
}

/// Deprecated name for [`PolicySpec`], kept so pre-trait call sites
/// still compile.
#[deprecated(
    since = "0.2.0",
    note = "renamed to PolicySpec; routing is now the open RoutePolicy trait"
)]
pub type RoutingPolicy = PolicySpec;

/// The stateful router: a built-in policy plus its decision counter,
/// resumable by construction — every routing-relevant bit (the spec,
/// the policy's cursor/spill state, the decision count) round-trips
/// through serde, so a serialized mid-run router resumes exactly where
/// it stopped.
///
/// `Router` itself implements [`RoutePolicy`], so the cluster engine
/// drives built-ins and custom policies through the same trait seam.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Router {
    spec: PolicySpec,
    policy: BuiltinRoutePolicy,
    decisions: u64,
}

impl Router {
    /// A fresh router running the policy `spec` names.
    pub fn new(spec: PolicySpec) -> Self {
        Self {
            spec,
            policy: spec.build(),
            decisions: 0,
        }
    }

    /// The configured policy spec.
    pub fn policy(&self) -> PolicySpec {
        self.spec
    }

    /// The live policy state (cursor, spill counters, …).
    pub fn state(&self) -> &BuiltinRoutePolicy {
        &self.policy
    }

    /// Routing decisions made so far.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Picks the replica that admits `request`, given one snapshot per
    /// replica.
    ///
    /// Ties prefer the lowest replica index, so routing is
    /// deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is empty.
    #[track_caller]
    pub fn route(&mut self, request: &ServingRequest, replicas: &[ReplicaSnapshot]) -> usize {
        RoutePolicy::route(self, &RouteContext::new(request, replicas))
    }
}

impl RoutePolicy for Router {
    // The trait impl is the real entry point: the positional
    // `Router::route` wraps its arguments in a directory-free context
    // and delegates here, so a caller-built context (e.g. one carrying
    // `shared_prefixes`) reaches the policy intact.
    fn route(&mut self, ctx: &RouteContext<'_>) -> usize {
        assert!(!ctx.replicas.is_empty(), "cannot route to an empty fleet");
        self.decisions += 1;
        let pick = self.policy.route(ctx);
        debug_assert!(pick < ctx.replicas.len(), "built-in policy out of range");
        pick
    }

    fn label(&self) -> String {
        self.spec.label()
    }
}

// ---------------------------------------------------------------------
// Decode-side placement of migrated sequences
// ---------------------------------------------------------------------

/// Everything a decode-side placement decision may inspect: the
/// decode-ready request being handed off, its resident KV footprint,
/// where it prefilled, and the fleet's snapshots at the delivery
/// instant.
#[derive(Debug, Clone, Copy)]
pub struct MigrationContext<'a> {
    /// The request whose prefill just completed (prefill already paid;
    /// `generated` is still zero).
    pub request: &'a ServingRequest,
    /// KV tokens the destination must allocate on arrival.
    pub kv_tokens: u64,
    /// Index of the prefill-role replica the sequence departed from.
    pub source: usize,
    /// One snapshot per replica, indexed by replica id; the policy's
    /// return value indexes this slice and must name a
    /// [`can_decode`](ReplicaRole::can_decode) replica.
    pub replicas: &'a [ReplicaSnapshot],
}

impl MigrationContext<'_> {
    /// The replica indices a migrated sequence may legally land on:
    /// role can decode *and* lifecycle is [`ReplicaState::Active`]
    /// (the same uniform skip routing applies — a draining replica
    /// finishes what it has, it does not absorb new sequences). Falls
    /// back to the role-capable subset when nothing is active, then to
    /// every index, so policies stay total; the cluster engine
    /// validates fleet shape separately.
    pub fn decode_targets(&self) -> Vec<usize> {
        let serving: Vec<usize> = self
            .replicas
            .iter()
            .enumerate()
            .filter(|(_, s)| s.role.can_decode() && s.lifecycle.serves_traffic())
            .map(|(i, _)| i)
            .collect();
        if !serving.is_empty() {
            return serving;
        }
        let capable: Vec<usize> = self
            .replicas
            .iter()
            .enumerate()
            .filter(|(_, s)| s.role.can_decode())
            .map(|(i, _)| i)
            .collect();
        if capable.is_empty() {
            (0..self.replicas.len()).collect()
        } else {
            capable
        }
    }
}

/// How a disaggregated fleet places a freshly prefilled sequence on
/// its decode pool — the decode-side twin of [`RoutePolicy`].
///
/// Consulted once per completed migration transfer, in delivery order.
/// The returned index must be in range and decode-capable — the
/// cluster engine asserts both.
pub trait MigrationPolicy: core::fmt::Debug {
    /// Picks the replica that admits the migrated sequence.
    fn place(&mut self, ctx: &MigrationContext<'_>) -> usize;

    /// Display label for reports and sweeps.
    fn label(&self) -> String {
        "custom".to_owned()
    }
}

/// Join the decode-capable replica with the fewest responsible
/// requests, skipping replicas whose KV budget cannot take the
/// sequence while any has headroom — JSQ over the decode pool, the
/// default [`MigrationPolicy`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecodeJsq;

impl MigrationPolicy for DecodeJsq {
    fn place(&mut self, ctx: &MigrationContext<'_>) -> usize {
        let targets = ctx.decode_targets();
        let least_loaded = |saturated_ok: bool| {
            targets
                .iter()
                .map(|&i| (i, &ctx.replicas[i]))
                .filter(|(_, s)| saturated_ok || !s.kv_saturated_for(ctx.kv_tokens))
                .min_by_key(|&(i, s)| (s.load(), i))
                .map(|(i, _)| i)
        };
        least_loaded(false)
            .or_else(|| least_loaded(true))
            .expect("fleet is non-empty")
    }

    fn label(&self) -> String {
        "decode-jsq".to_owned()
    }
}

/// Place on the decode-capable replica with the lowest KV-budget
/// utilization (ties by load, then index) — the placement that tracks
/// the decode pool's actual bottleneck, its KV capacity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecodeKvPressure;

impl MigrationPolicy for DecodeKvPressure {
    fn place(&mut self, ctx: &MigrationContext<'_>) -> usize {
        ctx.decode_targets()
            .into_iter()
            .map(|i| (i, &ctx.replicas[i]))
            .min_by(|(ia, a), (ib, b)| {
                a.kv_utilization()
                    .total_cmp(&b.kv_utilization())
                    .then_with(|| a.load().cmp(&b.load()))
                    .then_with(|| ia.cmp(ib))
            })
            .map(|(i, _)| i)
            .expect("fleet is non-empty")
    }

    fn label(&self) -> String {
        "decode-kv-pressure".to_owned()
    }
}

/// Declarative name of a built-in [`MigrationPolicy`] — what cluster
/// specs and sweeps carry, mirroring [`PolicySpec`] for routing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum MigrationSpec {
    /// JSQ over the decode pool (the default).
    #[default]
    JoinShortestQueue,
    /// Lowest KV-budget utilization over the decode pool.
    KvPressureAware,
}

impl MigrationSpec {
    /// Instantiates the policy this spec names, with fresh state.
    pub fn build(&self) -> Box<dyn MigrationPolicy> {
        match self {
            MigrationSpec::JoinShortestQueue => Box::new(DecodeJsq),
            MigrationSpec::KvPressureAware => Box::new(DecodeKvPressure),
        }
    }

    /// Display label for reports and sweeps.
    pub fn label(&self) -> String {
        match self {
            MigrationSpec::JoinShortestQueue => "decode-jsq".to_owned(),
            MigrationSpec::KvPressureAware => "decode-kv-pressure".to_owned(),
        }
    }
}

impl core::fmt::Display for MigrationSpec {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.label())
    }
}

impl FromStr for MigrationSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "decode-jsq" => Ok(MigrationSpec::JoinShortestQueue),
            "decode-kv-pressure" => Ok(MigrationSpec::KvPressureAware),
            _ => Err(format!(
                "unknown migration policy {s:?} (expected decode-jsq or decode-kv-pressure)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Request;

    fn snap(queued: usize, live: usize, kv: u64, budget: u64) -> ReplicaSnapshot {
        // Block size 1: blocks are tokens, the scalar configuration.
        ReplicaSnapshot {
            role: ReplicaRole::Colocated,
            lifecycle: ReplicaState::Active,
            queued,
            live,
            kv_blocks_in_use: kv,
            kv_evictable_blocks: 0,
            kv_budget_blocks: budget,
            kv_block_size: 1,
            kv_tier_blocks_in_use: 0,
            kv_tier_budget_blocks: 0,
        }
    }

    /// A prefix-free request whose admission needs `tokens` KV tokens.
    fn req(tokens: u64) -> ServingRequest {
        ServingRequest::new(Request::new(0, tokens, 1), 0.0)
    }

    /// A conversation turn: `tokens` KV tokens under prefix `key`.
    fn turn(key: u64, tokens: u64) -> ServingRequest {
        ServingRequest::new(
            Request::new(0, tokens, 1).with_prefix(PrefixHint {
                key,
                reuse_tokens: 0,
                publish_tokens: tokens,
            }),
            0.0,
        )
    }

    #[test]
    fn round_robin_cycles_deterministically() {
        let mut r = Router::new(PolicySpec::RoundRobin);
        let fleet = vec![snap(9, 9, 900, 1000); 3];
        let picks: Vec<usize> = (0..7).map(|_| r.route(&req(10), &fleet)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2, 0]);
        assert_eq!(r.decisions(), 7);
    }

    #[test]
    fn jsq_picks_least_loaded() {
        let mut r = Router::new(PolicySpec::JoinShortestQueue);
        let fleet = vec![
            snap(4, 8, 100, 10_000),
            snap(1, 3, 100, 10_000),
            snap(2, 8, 100, 10_000),
        ];
        assert_eq!(r.route(&req(50), &fleet), 1);
    }

    #[test]
    fn jsq_never_admits_to_a_saturated_replica_while_another_has_headroom() {
        let mut r = Router::new(PolicySpec::JoinShortestQueue);
        // Replica 0 is the least loaded but its KV budget cannot take
        // the 200-token prompt; replica 2 has headroom.
        let fleet = vec![
            snap(0, 1, 9_900, 10_000),
            snap(5, 8, 9_950, 10_000),
            snap(3, 6, 2_000, 10_000),
        ];
        assert_eq!(r.route(&req(200), &fleet), 2);
        // Once every replica is saturated, fall back to least loaded.
        let all_full = vec![
            snap(2, 2, 9_990, 10_000),
            snap(0, 1, 9_990, 10_000),
            snap(4, 4, 9_990, 10_000),
        ];
        assert_eq!(r.route(&req(200), &all_full), 1);
    }

    #[test]
    fn kv_aware_follows_the_emptiest_pool() {
        let mut r = Router::new(PolicySpec::KvPressureAware);
        let fleet = vec![
            snap(0, 2, 8_000, 10_000),
            snap(6, 9, 1_000, 10_000), // busiest queue, emptiest pool
            snap(1, 1, 5_000, 10_000),
        ];
        assert_eq!(r.route(&req(100), &fleet), 1);
        // Ties on utilization break by load, then index.
        let tied = vec![snap(3, 0, 500, 1_000), snap(1, 0, 500, 1_000)];
        assert_eq!(r.route(&req(100), &tied), 1);
    }

    #[test]
    fn snapshot_accessors() {
        let s = snap(3, 5, 750, 1_000);
        assert_eq!(s.load(), 8);
        assert!((s.kv_utilization() - 0.75).abs() < 1e-12);
        assert!(!s.kv_saturated_for(250));
        assert!(s.kv_saturated_for(251));
        // A zero-budget replica reads as full, never as infinitely free.
        assert_eq!(snap(0, 0, 0, 0).kv_utilization(), 1.0);
    }

    #[test]
    fn block_granularity_exposes_fragmentation_to_the_router() {
        // Two replicas with the same *token* budget; the paged one
        // (16-token blocks) has burned more of its pool on ragged
        // tails, and saturation is judged in its own block units.
        let paged = ReplicaSnapshot {
            role: ReplicaRole::Colocated,
            lifecycle: ReplicaState::Active,
            queued: 0,
            live: 4,
            kv_blocks_in_use: 60,
            kv_evictable_blocks: 0,
            kv_budget_blocks: 62, // 992 tokens of budget
            kv_block_size: 16,
            kv_tier_blocks_in_use: 0,
            kv_tier_budget_blocks: 0,
        };
        assert_eq!(paged.blocks_for(1), 1);
        assert_eq!(paged.blocks_for(17), 2);
        // 33 tokens round up to 3 blocks: saturated despite 2 blocks
        // (32 token slots) of headroom for a token-counting view.
        assert!(paged.kv_saturated_for(33));
        assert!(!paged.kv_saturated_for(32));
    }

    #[test]
    fn evictable_prefix_blocks_read_as_headroom() {
        let mut s = snap(0, 2, 9_900, 10_000);
        assert!(s.kv_saturated_for(200));
        // The same occupancy, but mostly reclaimable prefix cache: the
        // router must treat it as available.
        s.kv_evictable_blocks = 5_000;
        assert!(!s.kv_saturated_for(200));
        assert!((s.kv_utilization() - 0.49).abs() < 1e-12);
        assert_eq!(s.kv_committed_blocks(), 4_900);
    }

    #[test]
    #[should_panic(expected = "empty fleet")]
    fn routing_to_nobody_is_a_bug() {
        Router::new(PolicySpec::RoundRobin).route(&req(1), &[]);
    }

    #[test]
    fn labels_and_parsing_round_trip() {
        for spec in [
            PolicySpec::RoundRobin,
            PolicySpec::JoinShortestQueue,
            PolicySpec::KvPressureAware,
            PolicySpec::prefix_affinity(),
        ] {
            let parsed: PolicySpec = spec.to_string().parse().expect("label parses back");
            assert_eq!(parsed.label(), spec.label());
        }
        assert_eq!(
            "prefix-affinity:0.85".parse::<PolicySpec>().unwrap(),
            PolicySpec::PrefixAffinity {
                spill_utilization: 0.85
            }
        );
        // Non-default thresholds survive the Display -> FromStr round
        // trip (the label carries them).
        let tuned = PolicySpec::PrefixAffinity {
            spill_utilization: 0.85,
        };
        assert_eq!(tuned.to_string(), "prefix-affinity:0.85");
        assert_eq!(tuned.to_string().parse::<PolicySpec>().unwrap(), tuned);
        // Labelling never instantiates the policy, so even an invalid
        // hand-built spec formats instead of panicking.
        assert_eq!(
            PolicySpec::PrefixAffinity {
                spill_utilization: 1.5
            }
            .label(),
            "prefix-affinity:1.5"
        );
        assert!("prefix-affinity:1.5".parse::<PolicySpec>().is_err());
        assert!("least-recently-fed".parse::<PolicySpec>().is_err());
        assert_eq!(
            PolicySpec::JoinShortestQueue.to_string(),
            "join-shortest-queue"
        );
    }

    #[test]
    fn prefix_affinity_keeps_a_conversation_home_until_saturation() {
        let mut policy = PrefixAffinity::new();
        let roomy = vec![snap(0, 2, 1_000, 10_000); 4];
        let key = 42;
        let home = PrefixAffinity::home_replica(key, roomy.len());
        // Every turn of the conversation lands on the home replica,
        // regardless of how busy the others are.
        for tokens in [100, 400, 900, 2_000] {
            assert_eq!(
                policy.route(&RouteContext::new(&turn(key, tokens), &roomy)),
                home
            );
        }
        assert_eq!(policy.spills(), 0);

        // Saturate the home replica: the next turn spills, and the
        // spill target has headroom.
        let mut strained = roomy.clone();
        strained[home] = snap(0, 8, 9_990, 10_000);
        let pick = policy.route(&RouteContext::new(&turn(key, 200), &strained));
        assert_ne!(pick, home, "saturated home must spill");
        assert!(!strained[pick].kv_saturated_for(200));
        assert_eq!(policy.spills(), 1);
    }

    #[test]
    fn prefix_affinity_spreads_distinct_conversations() {
        let fleet = vec![snap(0, 0, 0, 10_000); 8];
        let homes: std::collections::BTreeSet<usize> = (0..64)
            .map(|key| {
                let mut policy = PrefixAffinity::new();
                policy.route(&RouteContext::new(&turn(key, 100), &fleet))
            })
            .collect();
        assert!(
            homes.len() >= 6,
            "64 conversations should hash across most of 8 replicas, hit {homes:?}"
        );
    }

    #[test]
    fn prefix_affinity_soft_spill_threshold() {
        let mut policy = PrefixAffinity::with_spill_utilization(0.5);
        let key = 7;
        let mut fleet = vec![snap(0, 0, 1_000, 10_000); 3];
        let home = PrefixAffinity::home_replica(key, fleet.len());
        // 60% utilization: above the soft threshold even though the
        // prompt would still fit.
        fleet[home] = snap(0, 1, 6_000, 10_000);
        let pick = policy.route(&RouteContext::new(&turn(key, 10), &fleet));
        assert_ne!(pick, home);
        assert_eq!(policy.spills(), 1);
    }

    #[test]
    fn spill_never_relands_home_silently() {
        let mut policy = PrefixAffinity::with_spill_utilization(0.5);
        let key = 7;
        // Home is past the soft threshold, but every other replica is
        // hard-saturated: the request stays home and that is NOT a
        // spill.
        let mut fleet = vec![snap(0, 0, 9_990, 10_000); 3];
        let home = PrefixAffinity::home_replica(key, fleet.len());
        fleet[home] = snap(0, 1, 6_000, 10_000);
        let pick = policy.route(&RouteContext::new(&turn(key, 200), &fleet));
        assert_eq!(pick, home, "only home has headroom");
        assert_eq!(policy.spills(), 0, "staying home is not a spill");
        // Give another replica headroom: now the same request spills,
        // and the counter moves.
        let other = (home + 1) % fleet.len();
        fleet[other] = snap(0, 0, 1_000, 10_000);
        let pick = policy.route(&RouteContext::new(&turn(key, 200), &fleet));
        assert_eq!(pick, other);
        assert_eq!(policy.spills(), 1);
    }

    #[test]
    fn prefix_free_requests_fall_back_to_jsq() {
        let mut policy = PrefixAffinity::new();
        let fleet = vec![
            snap(4, 8, 100, 10_000),
            snap(1, 3, 100, 10_000),
            snap(2, 8, 100, 10_000),
        ];
        let pick = policy.route(&RouteContext::new(&req(50), &fleet));
        assert_eq!(pick, 1, "no hint: least-loaded replica");
    }

    /// A replica snapshot at `queued`/`kv` with an explicit role.
    fn role_snap(role: ReplicaRole, queued: usize, kv: u64) -> ReplicaSnapshot {
        ReplicaSnapshot {
            role,
            ..snap(queued, 0, kv, 10_000)
        }
    }

    #[test]
    fn every_builtin_skips_decode_only_replicas() {
        // Replica 1 is decode-only and by every metric the most
        // attractive target — each built-in must still avoid it.
        let fleet = vec![
            role_snap(ReplicaRole::Prefill, 5, 8_000),
            role_snap(ReplicaRole::Decode, 0, 0),
            role_snap(ReplicaRole::Colocated, 3, 4_000),
        ];
        for spec in [
            PolicySpec::RoundRobin,
            PolicySpec::JoinShortestQueue,
            PolicySpec::KvPressureAware,
            PolicySpec::prefix_affinity(),
            PolicySpec::adaptive_affinity(),
            PolicySpec::shared_tier_affinity(),
        ] {
            let mut policy = spec.build();
            for key in 0..16u64 {
                let request = turn(key, 100);
                let pick = policy.route(&RouteContext::new(&request, &fleet));
                assert_ne!(pick, 1, "{spec:?} routed an arrival to a decode replica");
            }
        }
    }

    #[test]
    fn round_robin_cycles_over_the_prefill_capable_subset() {
        let mut r = RoundRobin::new();
        let fleet = vec![
            role_snap(ReplicaRole::Prefill, 0, 0),
            role_snap(ReplicaRole::Decode, 0, 0),
            role_snap(ReplicaRole::Prefill, 0, 0),
            role_snap(ReplicaRole::Decode, 0, 0),
        ];
        let picks: Vec<usize> = (0..5)
            .map(|_| r.route(&RouteContext::new(&req(10), &fleet)))
            .collect();
        assert_eq!(picks, vec![0, 2, 0, 2, 0]);
    }

    #[test]
    fn role_capabilities() {
        assert!(ReplicaRole::Colocated.accepts_arrivals());
        assert!(ReplicaRole::Colocated.can_decode());
        assert!(ReplicaRole::Prefill.accepts_arrivals());
        assert!(!ReplicaRole::Prefill.can_decode());
        assert!(!ReplicaRole::Decode.accepts_arrivals());
        assert!(ReplicaRole::Decode.can_decode());
        assert_eq!(ReplicaRole::default(), ReplicaRole::Colocated);
        assert_eq!(ReplicaRole::Prefill.to_string(), "prefill");
    }

    #[test]
    fn adaptive_affinity_sticks_below_pressure_and_balances_above() {
        let mut policy = AdaptiveAffinity::with_queue_pressure(2.0);
        let key = 42;
        // Idle fleet: behaves exactly like prefix-affinity.
        let idle = vec![snap(0, 2, 1_000, 10_000); 4];
        let home = {
            let mut pure = PrefixAffinity::new();
            pure.route(&RouteContext::new(&turn(key, 100), &idle))
        };
        assert_eq!(
            policy.route(&RouteContext::new(&turn(key, 100), &idle)),
            home
        );
        assert_eq!(policy.balanced_decisions(), 0);

        // Saturated fleet (mean queued ≥ 2): degrade to JSQ — the pick
        // is the least-loaded replica even though home has KV headroom.
        let mut hot = vec![snap(4, 8, 1_000, 10_000); 4];
        let other = (home + 1) % 4;
        hot[other] = snap(0, 1, 1_000, 10_000);
        let pick = policy.route(&RouteContext::new(&turn(key, 100), &hot));
        assert_eq!(pick, other, "under pressure the hybrid must balance");
        assert_eq!(policy.balanced_decisions(), 1);

        // Pressure drains: affinity resumes.
        assert_eq!(
            policy.route(&RouteContext::new(&turn(key, 100), &idle)),
            home
        );
        assert_eq!(policy.balanced_decisions(), 1);
    }

    #[test]
    fn tier_pressure_reads_the_capacity_tier() {
        let mut s = snap(0, 0, 0, 1_000);
        assert_eq!(s.tier_pressure(), 0.0, "no tier, no pressure");
        s.kv_tier_budget_blocks = 200;
        s.kv_tier_blocks_in_use = 50;
        assert!((s.tier_pressure() - 0.25).abs() < 1e-12);
        s.kv_tier_blocks_in_use = 200;
        assert_eq!(s.tier_pressure(), 1.0);
    }

    #[test]
    fn shared_tier_affinity_relaxes_only_for_resident_prefixes() {
        let key = 42;
        let fleet_size = 4;
        let idle = vec![snap(0, 2, 1_000, 10_000); fleet_size];
        let home = PrefixAffinity::home_replica(key, fleet_size);
        let mut directory = GlobalKvTier::new(16);
        directory.publish(key, home, 256);

        // No directory attached: identical to prefix-affinity.
        let mut policy = SharedTierAffinity::with_queue_pressure(2.0);
        assert_eq!(
            policy.route(&RouteContext::new(&turn(key, 100), &idle)),
            home
        );
        assert_eq!(policy.relaxed_decisions(), 0);

        // Resident prefix, idle home: stickiness still wins.
        let request = turn(key, 100);
        let ctx = RouteContext::new(&request, &idle).with_shared_prefixes(&directory);
        assert_eq!(policy.route(&ctx), home);
        assert_eq!(policy.relaxed_decisions(), 0);

        // Pressured home + resident prefix: relax to JSQ.
        let mut hot = idle.clone();
        hot[home] = snap(3, 8, 1_000, 10_000);
        let other = (home + 1) % fleet_size;
        hot[other] = snap(0, 0, 1_000, 10_000);
        let ctx = RouteContext::new(&request, &hot).with_shared_prefixes(&directory);
        assert_eq!(
            policy.route(&ctx),
            other,
            "remote fetch beats the hot queue"
        );
        assert_eq!(policy.relaxed_decisions(), 1);

        // Pressured home, prefix NOT in the directory: stay sticky —
        // moving would cold-start the conversation.
        let absent = key + 1;
        let stranger_home = PrefixAffinity::home_replica(absent, fleet_size);
        let mut hot = idle.clone();
        hot[stranger_home] = snap(3, 8, 1_000, 10_000);
        let stranger = turn(absent, 100);
        let ctx = RouteContext::new(&stranger, &hot).with_shared_prefixes(&directory);
        assert_eq!(policy.route(&ctx), stranger_home);
        assert_eq!(policy.relaxed_decisions(), 1, "non-resident never relaxes");

        // A full private tier at the home also counts as pressure.
        let mut churning = idle.clone();
        churning[home].kv_tier_budget_blocks = 100;
        churning[home].kv_tier_blocks_in_use = 100;
        let ctx = RouteContext::new(&request, &churning).with_shared_prefixes(&directory);
        let pick = policy.route(&ctx);
        assert_eq!(
            policy.relaxed_decisions(),
            2,
            "full tier relaxes stickiness"
        );
        assert!(pick < fleet_size);
    }

    #[test]
    fn shared_tier_labels_and_parsing_round_trip() {
        assert_eq!(
            PolicySpec::shared_tier_affinity().label(),
            "shared-tier-affinity"
        );
        assert_eq!(
            "shared-tier-affinity".parse::<PolicySpec>().unwrap(),
            PolicySpec::shared_tier_affinity()
        );
        let tuned = PolicySpec::SharedTierAffinity {
            queue_pressure: 4.5,
        };
        assert_eq!(tuned.to_string(), "shared-tier-affinity:4.5");
        assert_eq!(tuned.to_string().parse::<PolicySpec>().unwrap(), tuned);
        assert!("shared-tier-affinity:-2".parse::<PolicySpec>().is_err());
        assert!("shared-tier-affinity:soon".parse::<PolicySpec>().is_err());
        assert_eq!(tuned.build().label(), tuned.label());
    }

    #[test]
    fn adaptive_labels_and_parsing_round_trip() {
        assert_eq!(PolicySpec::adaptive_affinity().label(), "adaptive-affinity");
        assert_eq!(
            "adaptive-affinity".parse::<PolicySpec>().unwrap(),
            PolicySpec::adaptive_affinity()
        );
        let tuned = PolicySpec::AdaptiveAffinity {
            queue_pressure: 6.5,
        };
        assert_eq!(tuned.to_string(), "adaptive-affinity:6.5");
        assert_eq!(tuned.to_string().parse::<PolicySpec>().unwrap(), tuned);
        assert!("adaptive-affinity:-1".parse::<PolicySpec>().is_err());
        assert!("adaptive-affinity:forever".parse::<PolicySpec>().is_err());
    }

    #[test]
    fn migration_policies_place_only_on_decode_capable_replicas() {
        // Replica 0 (prefill) is empty and would win both metrics; the
        // migration built-ins must skip it.
        let fleet = vec![
            role_snap(ReplicaRole::Prefill, 0, 0),
            role_snap(ReplicaRole::Decode, 2, 6_000),
            role_snap(ReplicaRole::Decode, 5, 2_000),
        ];
        let request = req(100);
        let ctx = MigrationContext {
            request: &request,
            kv_tokens: 100,
            source: 0,
            replicas: &fleet,
        };
        assert_eq!(DecodeJsq.place(&ctx), 1, "fewest responsible requests");
        assert_eq!(DecodeKvPressure.place(&ctx), 2, "emptiest pool");
        // JSQ skips a KV-saturated decode replica while another has
        // headroom.
        let strained = vec![
            role_snap(ReplicaRole::Prefill, 0, 0),
            role_snap(ReplicaRole::Decode, 0, 9_950),
            role_snap(ReplicaRole::Decode, 5, 2_000),
        ];
        let ctx = MigrationContext {
            request: &request,
            kv_tokens: 100,
            source: 0,
            replicas: &strained,
        };
        assert_eq!(DecodeJsq.place(&ctx), 2);
    }

    /// A replica snapshot with an explicit lifecycle state.
    fn lifecycle_snap(lifecycle: ReplicaState, queued: usize, kv: u64) -> ReplicaSnapshot {
        ReplicaSnapshot {
            lifecycle,
            ..snap(queued, 0, kv, 10_000)
        }
    }

    #[test]
    fn lifecycle_capabilities() {
        assert!(ReplicaState::Active.serves_traffic());
        assert!(!ReplicaState::Warming.serves_traffic());
        assert!(!ReplicaState::Draining.serves_traffic());
        assert!(!ReplicaState::Retired.serves_traffic());
        assert!(ReplicaState::Warming.provisioned());
        assert!(ReplicaState::Active.provisioned());
        assert!(ReplicaState::Draining.provisioned());
        assert!(!ReplicaState::Retired.provisioned());
        assert_eq!(ReplicaState::default(), ReplicaState::Active);
        assert_eq!(ReplicaState::Draining.to_string(), "draining");
    }

    #[test]
    fn every_builtin_skips_non_active_replicas() {
        // Replica 1 (warming) and replica 3 (draining) are by every
        // metric the most attractive targets — each built-in must
        // still avoid them.
        let fleet = vec![
            lifecycle_snap(ReplicaState::Active, 5, 8_000),
            lifecycle_snap(ReplicaState::Warming, 0, 0),
            lifecycle_snap(ReplicaState::Active, 3, 4_000),
            lifecycle_snap(ReplicaState::Draining, 0, 0),
            lifecycle_snap(ReplicaState::Retired, 0, 0),
        ];
        for spec in [
            PolicySpec::RoundRobin,
            PolicySpec::JoinShortestQueue,
            PolicySpec::KvPressureAware,
            PolicySpec::prefix_affinity(),
            PolicySpec::adaptive_affinity(),
            PolicySpec::shared_tier_affinity(),
        ] {
            let mut policy = spec.build();
            for key in 0..16u64 {
                let request = turn(key, 100);
                let pick = policy.route(&RouteContext::new(&request, &fleet));
                assert!(
                    matches!(pick, 0 | 2),
                    "{spec:?} routed an arrival to non-active replica {pick}"
                );
            }
        }
    }

    #[test]
    fn migration_builtins_skip_non_active_replicas() {
        let fleet = vec![
            lifecycle_snap(ReplicaState::Draining, 0, 0),
            lifecycle_snap(ReplicaState::Active, 2, 6_000),
            lifecycle_snap(ReplicaState::Warming, 0, 0),
        ];
        let request = req(100);
        let ctx = MigrationContext {
            request: &request,
            kv_tokens: 100,
            source: 0,
            replicas: &fleet,
        };
        assert_eq!(DecodeJsq.place(&ctx), 1);
        assert_eq!(DecodeKvPressure.place(&ctx), 1);
    }

    #[test]
    fn ring_is_deterministic_and_covers_members() {
        let ring = HashRing::new(&[0, 1, 2, 3]);
        assert_eq!(ring, HashRing::new(&[3, 2, 1, 0]), "order-independent");
        assert_eq!(ring.members(), vec![0, 1, 2, 3]);
        // Every key homes to a member, identically across calls.
        for key in 0..256u64 {
            let home = ring.home(key).unwrap();
            assert!(home < 4);
            assert_eq!(ring.home(key), Some(home));
        }
        // All members receive a share of the keyspace.
        let homes: std::collections::BTreeSet<usize> =
            (0..512u64).map(|k| ring.home(k).unwrap()).collect();
        assert_eq!(homes.len(), 4, "512 keys must touch all 4 members");
        assert!(HashRing::new(&[]).is_empty());
        assert_eq!(HashRing::new(&[]).home(7), None);
    }

    #[test]
    fn ring_scale_event_remaps_a_bounded_fraction() {
        let before = HashRing::new(&[0, 1, 2, 3]);
        let after = HashRing::new(&[0, 1, 2, 3, 4]);
        let keys = 4_000u64;
        let moved = (0..keys)
            .filter(|&k| before.home(k) != after.home(k))
            .count();
        // Ideal remap on 4→5 members is 1/5 of keys; vnode variance
        // stays well under double that. Mod-N hashing would move ~4/5.
        assert!(
            (moved as f64) < keys as f64 * 0.4,
            "adding one member moved {moved}/{keys} homes"
        );
        assert!(moved > 0, "a scale event must move some homes");
        // Every moved key moved *to* the new member (pure accretion).
        for k in 0..keys {
            if before.home(k) != after.home(k) {
                assert_eq!(after.home(k), Some(4));
            }
        }
    }

    #[test]
    fn affinity_uses_the_ring_when_attached() {
        let fleet = vec![snap(0, 0, 1_000, 10_000); 4];
        let ring = HashRing::new(&[0, 1, 2, 3]);
        let key = 42;
        let request = turn(key, 100);
        let ctx = RouteContext::new(&request, &fleet).with_ring(&ring);
        let mut policy = PrefixAffinity::new();
        assert_eq!(policy.route(&ctx), ring.home(key).unwrap());
        // Without the ring: the classic modulo home.
        let mut policy = PrefixAffinity::new();
        assert_eq!(
            policy.route(&RouteContext::new(&request, &fleet)),
            PrefixAffinity::home_replica(key, 4)
        );
        // A ring over drained membership (member absent from the
        // active target set) falls back to the modulo home rather
        // than routing to a non-target.
        let stale = HashRing::new(&[17]);
        let ctx = RouteContext::new(&request, &fleet).with_ring(&stale);
        let mut policy = PrefixAffinity::new();
        assert_eq!(policy.route(&ctx), PrefixAffinity::home_replica(key, 4));
    }

    #[test]
    fn migration_spec_round_trips_and_builds() {
        for spec in [
            MigrationSpec::JoinShortestQueue,
            MigrationSpec::KvPressureAware,
        ] {
            assert_eq!(spec.to_string().parse::<MigrationSpec>().unwrap(), spec);
            assert_eq!(spec.build().label(), spec.label());
        }
        assert_eq!(MigrationSpec::default(), MigrationSpec::JoinShortestQueue);
        assert!("teleport".parse::<MigrationSpec>().is_err());
    }

    #[test]
    fn router_serde_round_trip_resumes_mid_run() {
        // Route a prefix of the decisions, snapshot, restore, and check
        // the restored router continues exactly like the original —
        // cursor, spill counters, and decision count all survive.
        for spec in [
            PolicySpec::RoundRobin,
            PolicySpec::JoinShortestQueue,
            PolicySpec::KvPressureAware,
            PolicySpec::PrefixAffinity {
                spill_utilization: 0.75,
            },
            PolicySpec::AdaptiveAffinity {
                queue_pressure: 3.0,
            },
            PolicySpec::SharedTierAffinity {
                queue_pressure: 1.5,
            },
        ] {
            let fleet: Vec<ReplicaSnapshot> = (0..5)
                .map(|i| snap(i, i, 2_000 * i as u64, 10_000))
                .collect();
            let mut original = Router::new(spec);
            for k in 0..7u64 {
                original.route(&turn(k % 3, 100 + 700 * k), &fleet);
            }
            let snapshot = serde_json::to_string(&original).expect("router serializes");
            let mut restored: Router =
                serde_json::from_str(&snapshot).expect("router deserializes");
            assert_eq!(restored, original);
            for k in 0..11u64 {
                let request = turn(k % 4, 50 + 300 * k);
                assert_eq!(
                    restored.route(&request, &fleet),
                    original.route(&request, &fleet),
                    "{spec:?}: decision {k} diverged after restore"
                );
            }
            assert_eq!(restored.decisions(), original.decisions());
        }
    }
}
