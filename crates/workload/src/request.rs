//! A single inference request.

use papi_kv::PrefixHint;
use serde::{Deserialize, Serialize};

/// One user request: a prompt of `input_len` tokens that will generate
/// `output_len` tokens before emitting `<|eos|>`.
///
/// Output lengths are a property of the *workload* (the model decides
/// when to stop); the serving system cannot observe them in advance —
/// which is exactly why runtime RLP is unpredictable (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Request {
    /// Request identifier.
    pub id: u64,
    /// Prompt length in tokens.
    pub input_len: u64,
    /// Tokens the request will generate before finishing.
    pub output_len: u64,
    /// Shareable-prefix description, when the leading prompt tokens are
    /// common with other requests (a shared system prompt, or the
    /// accumulated context of a multi-turn conversation). `None` means
    /// the prompt is entirely private.
    pub prefix: Option<PrefixHint>,
}

impl Request {
    /// Creates a request.
    ///
    /// # Panics
    ///
    /// Panics if either length is zero (the paper's serving model always
    /// has a prompt and generates at least the first token).
    #[track_caller]
    pub fn new(id: u64, input_len: u64, output_len: u64) -> Self {
        assert!(
            input_len > 0 && output_len > 0,
            "request lengths must be positive"
        );
        Self {
            id,
            input_len,
            output_len,
            prefix: None,
        }
    }

    /// Attaches a shareable-prefix hint.
    ///
    /// # Panics
    ///
    /// Panics if the hint claims more reusable tokens than the prompt
    /// holds, or more publishable tokens than the final context will.
    #[track_caller]
    pub fn with_prefix(mut self, prefix: PrefixHint) -> Self {
        assert!(
            prefix.reuse_tokens <= self.input_len,
            "prefix reuse {} exceeds the {}-token prompt",
            prefix.reuse_tokens,
            self.input_len
        );
        assert!(
            prefix.publish_tokens <= self.total_len(),
            "prefix publish {} exceeds the {}-token final context",
            prefix.publish_tokens,
            self.total_len()
        );
        self.prefix = Some(prefix);
        self
    }

    /// Total sequence length once complete (KV-cache footprint in
    /// tokens).
    pub fn total_len(&self) -> u64 {
        self.input_len + self.output_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_len_sums() {
        let r = Request::new(1, 100, 50);
        assert_eq!(r.total_len(), 150);
        assert_eq!(r.prefix, None);
    }

    #[test]
    fn prefix_hint_attaches_within_bounds() {
        let hint = PrefixHint {
            key: 9,
            reuse_tokens: 60,
            publish_tokens: 150,
        };
        let r = Request::new(1, 100, 50).with_prefix(hint);
        assert_eq!(r.prefix, Some(hint));
    }

    #[test]
    #[should_panic(expected = "exceeds the 100-token prompt")]
    fn oversized_reuse_rejected() {
        Request::new(1, 100, 50).with_prefix(PrefixHint {
            key: 1,
            reuse_tokens: 101,
            publish_tokens: 0,
        });
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_output_rejected() {
        Request::new(1, 10, 0);
    }
}
