//! A single inference request.

use serde::{Deserialize, Serialize};

/// One user request: a prompt of `input_len` tokens that will generate
/// `output_len` tokens before emitting `<|eos|>`.
///
/// Output lengths are a property of the *workload* (the model decides
/// when to stop); the serving system cannot observe them in advance —
/// which is exactly why runtime RLP is unpredictable (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Request {
    /// Request identifier.
    pub id: u64,
    /// Prompt length in tokens.
    pub input_len: u64,
    /// Tokens the request will generate before finishing.
    pub output_len: u64,
}

impl Request {
    /// Creates a request.
    ///
    /// # Panics
    ///
    /// Panics if either length is zero (the paper's serving model always
    /// has a prompt and generates at least the first token).
    #[track_caller]
    pub fn new(id: u64, input_len: u64, output_len: u64) -> Self {
        assert!(
            input_len > 0 && output_len > 0,
            "request lengths must be positive"
        );
        Self {
            id,
            input_len,
            output_len,
        }
    }

    /// Total sequence length once complete (KV-cache footprint in
    /// tokens).
    pub fn total_len(&self) -> u64 {
        self.input_len + self.output_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_len_sums() {
        let r = Request::new(1, 100, 50);
        assert_eq!(r.total_len(), 150);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_output_rejected() {
        Request::new(1, 10, 0);
    }
}
