//! Criterion benchmarks for the substrate models: the cycle-level DRAM
//! controller, the PIM kernel executors, and the GPU roofline.

use criterion::{criterion_group, criterion_main, Criterion};
use papi_dram::{derive, BusModel, Controller, HbmDevice, TimingParams};
use papi_gpu::{execute_kernel, GpuEnergyModel, KernelProfile, MultiGpu};
use papi_pim::attention::execute_attention;
use papi_pim::gemv::execute_gemv;
use papi_pim::{AttentionSpec, GemvSpec, PimDevice};
use papi_types::{Bytes, DataType, Flops};
use std::hint::black_box;

fn bench_dram_streaming(c: &mut Criterion) {
    c.bench_function("dram_pim_stream_8banks_16rows", |b| {
        b.iter(|| {
            let mut ctrl = Controller::new(TimingParams::hbm3(), 8, 32, BusModel::PerBankPim);
            for bank in 0..8 {
                for row in 0..16 {
                    ctrl.enqueue_row_stream(bank, row, 64);
                }
            }
            black_box(ctrl.run_until_drained(10_000_000).unwrap())
        })
    });
}

fn bench_dram_shared_bus(c: &mut Criterion) {
    c.bench_function("dram_shared_bus_8banks_16rows", |b| {
        b.iter(|| {
            let mut ctrl = Controller::new(TimingParams::hbm3(), 8, 32, BusModel::SharedDataBus);
            for bank in 0..8 {
                for row in 0..16 {
                    ctrl.enqueue_row_stream(bank, row, 64);
                }
            }
            black_box(ctrl.run_until_drained(10_000_000).unwrap())
        })
    });
}

fn bench_bandwidth_derivation(c: &mut Criterion) {
    let device = HbmDevice::hbm3_16gb();
    c.bench_function("derive_pim_streaming_bandwidth", |b| {
        b.iter(|| black_box(derive::pim_streaming_bandwidth(&device, 8, 32)))
    });
}

fn bench_pim_gemv(c: &mut Criterion) {
    let fc = PimDevice::fc_pim();
    let spec = GemvSpec::new(3 * 8192, 8192, 16, DataType::Fp16);
    c.bench_function("pim_gemv_qkv_llama_t16", |b| {
        b.iter(|| black_box(execute_gemv(&fc, 30, &spec)))
    });
}

fn bench_pim_attention(c: &mut Criterion) {
    let attn = PimDevice::attn_pim();
    let spec = AttentionSpec::new(16, 64, 128, 512, 2, DataType::Fp16);
    c.bench_function("pim_attention_llama_b16", |b| {
        b.iter(|| black_box(execute_attention(&attn, 60, &spec)))
    });
}

fn bench_gpu_roofline(c: &mut Criterion) {
    let gpus = MultiGpu::dgx6_a100();
    let em = GpuEnergyModel::a100();
    let kernel = KernelProfile::new(Flops::from_tflops(2.0), Bytes::from_gib(100.0));
    c.bench_function("gpu_roofline_kernel", |b| {
        b.iter(|| black_box(execute_kernel(&gpus, &em, &kernel)))
    });
}

criterion_group!(
    substrates,
    bench_dram_streaming,
    bench_dram_shared_bus,
    bench_bandwidth_derivation,
    bench_pim_gemv,
    bench_pim_attention,
    bench_gpu_roofline,
);
criterion_main!(substrates);
