//! Criterion benchmarks for iteration pricing: the cold analytic path
//! (attention + FC + interconnect + dispatch models per call) versus
//! the fleet-shared direct-mapped memo the parallel cluster loop
//! installs. The gap between these two is most of the parallel loop's
//! wall-clock win, so a regression here is a regression in fleet
//! simulation throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use papi_core::pricer::SharedIterationCache;
use papi_core::{IterationPricer, SystemConfig};
use papi_llm::ModelPreset;
use papi_sched::Placement;
use papi_workload::IterationRecord;
use std::hint::black_box;
use std::sync::Arc;

/// A decode-shaped sweep: single-request lanes with a sliding KV
/// length, the key distribution a serving fleet actually prices.
fn records() -> Vec<IterationRecord> {
    (0..256u64)
        .map(|i| IterationRecord {
            rlp: 1 + i % 4,
            tlp: 1,
            total_kv_len: 600 + i * 7 % 1000,
            max_kv_len: 600 + i * 7 % 1000,
            new_tokens: 1 + i % 4,
            finished: 0,
        })
        .collect()
}

fn bench_price_cold(c: &mut Criterion) {
    let config = SystemConfig::pim_only_papi(ModelPreset::Llama65B.config());
    let records = records();
    c.bench_function("price_iteration_cold", |b| {
        let mut pricer = IterationPricer::new(&config);
        b.iter(|| {
            let mut acc = 0.0;
            for it in &records {
                acc += pricer
                    .price_iteration(Placement::FcPim, black_box(it))
                    .total_time()
                    .value();
            }
            black_box(acc)
        })
    });
}

fn bench_price_memoized(c: &mut Criterion) {
    let config = SystemConfig::pim_only_papi(ModelPreset::Llama65B.config());
    let records = records();
    c.bench_function("price_iteration_memoized", |b| {
        let mut pricer = IterationPricer::new(&config);
        pricer.set_shared_cache(Arc::new(SharedIterationCache::new()));
        // Warm every shape so the timed loop measures pure hits.
        for it in &records {
            pricer.price_iteration(Placement::FcPim, it);
        }
        b.iter(|| {
            let mut acc = 0.0;
            for it in &records {
                acc += pricer
                    .price_iteration(Placement::FcPim, black_box(it))
                    .total_time()
                    .value();
            }
            black_box(acc)
        })
    });
}

criterion_group!(benches, bench_price_cold, bench_price_memoized);
criterion_main!(benches);
