//! Criterion benchmarks: one group per paper figure, measuring the
//! regeneration of that figure's data (simulator throughput, not
//! hardware latency — the figure *values* come from the `fig*`
//! binaries).

use criterion::{criterion_group, criterion_main, Criterion};
use papi_core::experiments::{
    end_to_end_cell, fig12_breakdown, fig2_roofline, fig3_rlp_decay, fig4_fc_latency,
    fig6_ai_estimation, fig7_energy_power,
};
use papi_core::{DecodingSimulator, DesignKind, SystemConfig};
use papi_llm::ModelPreset;
use papi_workload::{DatasetKind, WorkloadSpec};
use std::hint::black_box;

fn bench_fig2(c: &mut Criterion) {
    c.bench_function("fig02_roofline_sweeps", |b| {
        b.iter(|| black_box(fig2_roofline()))
    });
}

fn bench_fig3(c: &mut Criterion) {
    c.bench_function("fig03_rlp_decay_batch32", |b| {
        b.iter(|| black_box(fig3_rlp_decay(32, 42)))
    });
}

fn bench_fig4(c: &mut Criterion) {
    c.bench_function("fig04_fc_latency_grid", |b| {
        b.iter(|| black_box(fig4_fc_latency()))
    });
}

fn bench_fig6(c: &mut Criterion) {
    c.bench_function("fig06_ai_estimation_grid", |b| {
        b.iter(|| black_box(fig6_ai_estimation()))
    });
}

fn bench_fig7(c: &mut Criterion) {
    c.bench_function("fig07_energy_power_curves", |b| {
        b.iter(|| black_box(fig7_energy_power()))
    });
}

fn bench_fig8_cell(c: &mut Criterion) {
    // One representative Fig. 8 cell (LLaMA-65B, spec 2, batch 16, all
    // four designs); the full grid is the fig08 binary's job.
    c.bench_function("fig08_one_cell_llama_s2_b16", |b| {
        b.iter(|| {
            black_box(end_to_end_cell(
                ModelPreset::Llama65B,
                DatasetKind::CreativeWriting,
                2,
                16,
                &DesignKind::FIG8,
                42,
            ))
        })
    });
}

fn bench_fig9_cell(c: &mut Criterion) {
    c.bench_function("fig09_one_cell_gpt3_s2_b16", |b| {
        b.iter(|| {
            black_box(end_to_end_cell(
                ModelPreset::Gpt3_175B,
                DatasetKind::GeneralQa,
                2,
                16,
                &[
                    DesignKind::A100AttAcc,
                    DesignKind::AttAccOnly,
                    DesignKind::Papi,
                ],
                42,
            ))
        })
    });
}

fn bench_fig10_point(c: &mut Criterion) {
    c.bench_function("fig10_one_point_batch128", |b| {
        b.iter(|| {
            black_box(end_to_end_cell(
                ModelPreset::Llama65B,
                DatasetKind::CreativeWriting,
                1,
                128,
                &[
                    DesignKind::A100AttAcc,
                    DesignKind::AttAccOnly,
                    DesignKind::Papi,
                ],
                42,
            ))
        })
    });
}

fn bench_fig11_point(c: &mut Criterion) {
    c.bench_function("fig11_one_point_s4_b64", |b| {
        b.iter(|| {
            black_box(end_to_end_cell(
                ModelPreset::Llama65B,
                DatasetKind::CreativeWriting,
                4,
                64,
                &[DesignKind::AttAccOnly, DesignKind::PimOnlyPapi],
                42,
            ))
        })
    });
}

fn bench_fig12(c: &mut Criterion) {
    c.bench_function("fig12_breakdown", |b| {
        b.iter(|| black_box(fig12_breakdown(42)))
    });
}

fn bench_decode_iteration_throughput(c: &mut Criterion) {
    // How fast the simulator prices decoding iterations — the unit of
    // all end-to-end experiments.
    let config = SystemConfig::pim_only_papi(ModelPreset::Llama65B.config());
    let sim = DecodingSimulator::new(config);
    let trace = WorkloadSpec::static_batching(DatasetKind::CreativeWriting, 16, 2)
        .with_seed(42)
        .trace();
    c.bench_function("decode_trace_pim_only_llama_b16", |b| {
        b.iter(|| black_box(sim.run_trace(&trace)))
    });
}

criterion_group!(
    figures,
    bench_fig2,
    bench_fig3,
    bench_fig4,
    bench_fig6,
    bench_fig7,
    bench_fig8_cell,
    bench_fig9_cell,
    bench_fig10_point,
    bench_fig11_point,
    bench_fig12,
    bench_decode_iteration_throughput,
);
criterion_main!(figures);
