//! §5.2.1: the offline α-calibration sweep — FC latency on FC-PIM vs
//! the PUs across token counts, and the chosen threshold per model.

use papi_bench::{f3, print_table};
use papi_core::SystemConfig;
use papi_llm::ModelPreset;

fn main() {
    for preset in ModelPreset::EVALUATED {
        let model = preset.config();
        let cal = SystemConfig::calibrate(&model);
        println!("\n== α calibration — {} ==", model.name);
        let table: Vec<Vec<String>> = cal
            .samples
            .iter()
            .filter(|(tokens, ..)| {
                [1, 2, 4, 8, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512].contains(tokens)
            })
            .map(|(tokens, pim, pu)| {
                vec![
                    tokens.to_string(),
                    f3(pim.as_millis()),
                    f3(pu.as_millis()),
                    if pu.value() < pim.value() {
                        "PU"
                    } else {
                        "FC-PIM"
                    }
                    .to_string(),
                ]
            })
            .collect();
        print_table(
            &["tokens (RLP×TLP)", "FC-PIM (ms)", "PU (ms)", "winner"],
            &table,
        );
        println!("chosen α = {:.1}", cal.alpha);
    }
}
