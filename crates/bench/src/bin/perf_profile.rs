//! Phase-level profiler for the fleet simulator.
//!
//! Runs the `cluster_fleet_64` perf scenario (64 prefix-affinity
//! replicas, bursty multi-turn chat) with the `papi-perf` timers
//! enabled and prints the per-phase breakdown — where a fleet episode
//! actually spends wall time (`step`, `price`, `snapshot`, `route`,
//! `migrate`). Optionally persists the profile for CI artifacts and
//! gates against a saved baseline:
//!
//! ```text
//! cargo run --release -p papi-bench --bin perf_profile -- \
//!     --json profile.json --folded profile.folded \
//!     [--baseline old-profile.json] [--threshold 0.5]
//! ```
//!
//! `--folded` writes `outer;inner <self µs>` lines for flamegraph
//! tooling (`inferno`, `flamegraph.pl`). With `--baseline`, exits
//! non-zero if any phase's total grew past `1 + threshold` times the
//! baseline (default threshold 0.5 — phase walls on a shared CI runner
//! are noisy, so the gate is loose; the artifact trend is the signal).

use papi_core::{ClusterEngine, ClusterSpec, DesignKind, SessionTuning, StepMode};
use papi_llm::ModelPreset;
use papi_perf::Profile;
use papi_workload::{
    ArrivalProcess, ConversationDataset, DatasetKind, PolicySpec, ServingWorkload,
};
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: perf_profile [--json FILE] [--folded FILE] [--baseline FILE] [--threshold F]"
    );
    std::process::exit(2);
}

fn main() {
    let mut json_path: Option<String> = None;
    let mut folded_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut threshold = 0.5f64;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--json" => json_path = Some(value()),
            "--folded" => folded_path = Some(value()),
            "--baseline" => baseline_path = Some(value()),
            "--threshold" => {
                threshold = value().parse().unwrap_or_else(|e| {
                    eprintln!("invalid --threshold: {e}");
                    std::process::exit(2);
                })
            }
            _ => usage(),
        }
    }

    // The same shape perf_bench's cluster_fleet_64 scenario times.
    let workload = ServingWorkload::new(
        ConversationDataset::multi_turn(DatasetKind::GeneralQa, 512, 4),
        ArrivalProcess::Bursty {
            burst_size: 8,
            interval_sec: 1.0,
        },
        2048,
    )
    .with_seed(42);
    let spec = ClusterSpec::new(
        DesignKind::PimOnlyPapi,
        ModelPreset::Llama65B.config(),
        1,
        64,
    )
    .with_routing(PolicySpec::prefix_affinity())
    .with_tuning(
        SessionTuning::default()
            .with_max_batch(8)
            .with_kv_block_size(16)
            .with_prefix_sharing(true),
    )
    .with_step_mode(StepMode::Parallel);

    // Warm (JIT-free in Rust, but it pages in the binary and fills the
    // pricing memo exactly as a long-running server would), then
    // profile one clean episode.
    let engine = ClusterEngine::new(spec).expect("valid fleet");
    engine.run(&workload);
    papi_perf::enable();
    papi_perf::reset();
    let wall = Instant::now();
    let report = engine.run(&workload);
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    papi_perf::disable();
    let profile = papi_perf::report();

    let iterations: u64 = report.replicas.iter().map(|r| r.iterations).sum();
    eprintln!(
        "cluster_fleet_64: {wall_ms:.1} ms wall, {iterations} replica iterations, \
         {:.1} ms instrumented",
        profile.total_s() * 1e3
    );
    print!("{}", profile.table());

    if let Some(path) = &json_path {
        std::fs::write(path, profile.to_json()).expect("write profile JSON");
        eprintln!("profile JSON -> {path}");
    }
    if let Some(path) = &folded_path {
        std::fs::write(path, profile.folded_stacks()).expect("write folded stacks");
        eprintln!("folded stacks -> {path}");
    }
    if let Some(path) = &baseline_path {
        let text = std::fs::read_to_string(path).expect("read baseline profile");
        let baseline = Profile::from_json(&text).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            std::process::exit(2);
        });
        let diff = profile.compare(&baseline, threshold);
        print!("{}", diff.table());
        if !diff.passed() {
            eprintln!(
                "phase regression(s) past {:.0}% over baseline",
                threshold * 100.0
            );
            std::process::exit(1);
        }
        eprintln!("profile within {:.0}% of baseline", threshold * 100.0);
    }
}
