//! Fig. 2: roofline analysis of OPT-30B FC and attention kernels on an
//! A100, sweeping batch size (a) and speculation length (b).

use papi_bench::{f2, print_table};
use papi_core::experiments::fig2_roofline;

fn main() {
    let (sweep_a, sweep_b) = fig2_roofline();
    for (title, points) in [
        ("Fig. 2(a) — batch 4..128, speculation length 8", &sweep_a),
        ("Fig. 2(b) — speculation 2..8, batch size 32", &sweep_b),
    ] {
        println!("\n== {title} ==");
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                vec![
                    p.kernel.to_string(),
                    p.batch.to_string(),
                    p.speculation.to_string(),
                    f2(p.ai),
                    f2(p.attainable_tflops),
                    p.boundedness.to_string(),
                ]
            })
            .collect();
        print_table(
            &[
                "kernel",
                "batch",
                "spec",
                "AI (FLOP/B)",
                "attainable TFLOPS",
                "classification",
            ],
            &rows,
        );
    }
    println!("\nPaper check: FC flips memory→compute-bound at batch ≥32 (spec 8)");
    println!("and at speculation >6 (batch 32); attention never flips.");
}
