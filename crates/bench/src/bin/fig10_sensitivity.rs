//! Fig. 10: sensitivity of end-to-end speedup to RLP (batch sweep) and
//! TLP (speculation sweep) for LLaMA-65B on creative-writing.

use papi_bench::{f2, print_table};
use papi_core::experiments::fig10_sensitivity;

fn main() {
    let (batch_sweep, spec_sweep) = fig10_sensitivity(42);
    println!("== Fig. 10(a) — batch 4..128, speculation 1 ==");
    let table: Vec<Vec<String>> = batch_sweep
        .iter()
        .map(|r| {
            vec![
                r.batch.to_string(),
                r.design.clone(),
                f2(r.speedup),
                f2(r.latency_s),
            ]
        })
        .collect();
    print_table(&["batch", "design", "speedup", "latency (s)"], &table);

    println!("\n== Fig. 10(b) — speculation 1..8, batch 4 ==");
    let table: Vec<Vec<String>> = spec_sweep
        .iter()
        .map(|r| {
            vec![
                r.speculation.to_string(),
                r.design.clone(),
                f2(r.speedup),
                f2(r.latency_s),
            ]
        })
        .collect();
    print_table(&["spec", "design", "speedup", "latency (s)"], &table);
    println!("\nPaper check: PAPI wins at every RLP; its edge over A100+AttAcc");
    println!("narrows as TLP grows (more FC iterations go to the GPU), and");
    println!("AttAcc-only collapses as parallelism rises.");
}
