//! Fig. 8: end-to-end speedup and energy efficiency on the Dolly
//! creative-writing workload — 3 models × speculation {1,2,4} × batch
//! {4,16,64} × 4 designs, normalized to A100+AttAcc.

use papi_bench::{f2, print_design_summary, print_table};
use papi_core::experiments::fig8_end_to_end;

fn main() {
    let rows = fig8_end_to_end(42);
    println!("== Fig. 8 — creative-writing end-to-end (normalized to A100+AttAcc) ==");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                r.speculation.to_string(),
                r.batch.to_string(),
                r.design.clone(),
                f2(r.speedup),
                f2(r.energy_efficiency),
            ]
        })
        .collect();
    print_table(
        &["model", "spec", "batch", "design", "speedup", "energy eff."],
        &table,
    );
    print_design_summary("Fig. 8", &rows);
    println!("\nPaper check: PAPI ≈1.8× over A100+AttAcc, ≈1.9× over A100+HBM-PIM,");
    println!("≈11.1× over AttAcc-only; energy efficiency ≈3.4× over A100+AttAcc.");
}
