//! Ablation: sensitivity of PAPI's end-to-end latency to the threshold
//! α. The calibrated value should sit at (or very near) the sweep's
//! minimum; the endpoints degenerate into the two static mappings.

use papi_bench::{f2, print_table};
use papi_core::{DecodingSimulator, SystemConfig};
use papi_llm::ModelPreset;
use papi_workload::{DatasetKind, WorkloadSpec};

fn main() {
    let model = ModelPreset::Llama65B.config();
    let calibrated = SystemConfig::calibrate(&model).alpha;
    let workload = WorkloadSpec::static_batching(DatasetKind::CreativeWriting, 64, 1).with_seed(42);
    let trace = workload.trace();

    println!("== α ablation — LLaMA-65B, creative-writing, batch 64 ==");
    println!("(calibrated α = {calibrated:.1})\n");
    let mut rows = Vec::new();
    let mut best = (f64::INFINITY, 0.0);
    for alpha in [
        1.0, 2.0, 4.0, 8.0, 16.0, calibrated, 32.0, 64.0, 128.0, 512.0, 1e9,
    ] {
        let sim = DecodingSimulator::new(SystemConfig::papi_with_alpha(model.clone(), alpha));
        let report = sim.run_trace(&trace);
        let latency = report.total_latency().as_secs();
        if latency < best.0 {
            best = (latency, alpha);
        }
        let label = if alpha >= 1e9 {
            "∞ (always FC-PIM)".to_owned()
        } else if alpha == 1.0 {
            "1 (≈always PU)".to_owned()
        } else if (alpha - calibrated).abs() < 1e-9 {
            format!("{alpha:.1} (calibrated)")
        } else {
            format!("{alpha:.0}")
        };
        rows.push(vec![
            label,
            f2(latency),
            report.scheduler.switches.to_string(),
        ]);
    }
    print_table(&["alpha", "latency (s)", "reschedules"], &rows);
    println!(
        "\nBest α in sweep: {:.1} ({:.2} s) — calibration found {:.1}.",
        best.1, best.0, calibrated
    );
}
