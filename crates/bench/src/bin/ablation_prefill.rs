//! Ablation: including the prefill phase in the end-to-end account.
//!
//! The paper's evaluation measures the decoding phase (prefill is
//! compute-bound and "to be executed on the GPU platform", §7.4). A
//! PIM-only design has no GPU, so charging it for prefill is
//! devastating — this ablation shows how much of the paper's 11.1×
//! PAPI-vs-AttAcc-only headline a full-lifetime account recovers.

use papi_bench::{f2, print_table};
use papi_core::{DecodingSimulator, DesignKind, SystemConfig};
use papi_llm::ModelPreset;
use papi_workload::{DatasetKind, WorkloadSpec};

fn main() {
    let model = ModelPreset::Gpt3_175B.config();
    println!("== prefill ablation — GPT-3 175B, creative-writing ==\n");
    let mut rows = Vec::new();
    for (batch, spec) in [(4u64, 1u64), (16, 2), (64, 4)] {
        let workload =
            WorkloadSpec::static_batching(DatasetKind::CreativeWriting, batch, spec).with_seed(42);
        let reports: Vec<_> = [
            DesignKind::A100AttAcc,
            DesignKind::AttAccOnly,
            DesignKind::Papi,
        ]
        .into_iter()
        .map(|kind| {
            DecodingSimulator::new(SystemConfig::build(kind, model.clone()))
                .run_end_to_end(&workload)
        })
        .collect();
        let base = &reports[0];
        for report in &reports {
            rows.push(vec![
                format!("b{batch} s{spec}"),
                report.design.clone(),
                f2(report.prefill_time.as_secs()),
                f2(report.total_latency().as_secs()),
                f2(base.total_latency().value() / report.total_latency().value()),
                f2(base.end_to_end_latency().value() / report.end_to_end_latency().value()),
            ]);
        }
    }
    print_table(
        &[
            "config",
            "design",
            "prefill (s)",
            "decode (s)",
            "decode speedup",
            "e2e speedup",
        ],
        &rows,
    );
    println!("\nAttAcc-only must prefill on its FPUs (compute-bound, ~16x fewer FLOPS");
    println!("than 6 A100s): the end-to-end column collapses accordingly, while PAPI");
    println!("prefills on its GPUs like the baseline.");
}
