//! Fig. 9: end-to-end speedup and energy efficiency on the Dolly
//! general-qa workload for GPT-3 175B (three designs).

use papi_bench::{f2, print_design_summary, print_table};
use papi_core::experiments::fig9_general_qa;

fn main() {
    let rows = fig9_general_qa(42);
    println!("== Fig. 9 — general-qa end-to-end, GPT-3 175B (normalized to A100+AttAcc) ==");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.speculation.to_string(),
                r.batch.to_string(),
                r.design.clone(),
                f2(r.speedup),
                f2(r.energy_efficiency),
            ]
        })
        .collect();
    print_table(
        &["spec", "batch", "design", "speedup", "energy eff."],
        &table,
    );
    print_design_summary("Fig. 9", &rows);
    println!("\nPaper check: ≈1.7× over A100+AttAcc and ≈8.1× over AttAcc-only —");
    println!("lower than creative-writing because general-qa outputs are short,");
    println!("so the decode sees fewer iterations and milder RLP decay.");
}
