//! Fig. 7: PIM energy breakdown (a)(b) and power vs data-reuse level
//! against the 116 W HBM3 budget (c).

use papi_bench::{f2, print_table};
use papi_core::experiments::fig7_energy_power;

fn main() {
    let (no_reuse, reuse64, power_rows) = fig7_energy_power();

    for (title, b) in [
        ("Fig. 7(a) — energy split, no data reuse", &no_reuse),
        ("Fig. 7(b) — energy split, data reuse 64", &reuse64),
    ] {
        let (dram, transfer, compute) = b.fractions();
        println!("\n== {title} ==");
        print_table(
            &["DRAM access", "Transfer", "Computation"],
            &[vec![
                format!("{:.1}%", dram * 100.0),
                format!("{:.1}%", transfer * 100.0),
                format!("{:.1}%", compute * 100.0),
            ]],
        );
    }

    println!("\n== Fig. 7(c) — device power vs data-reuse level (budget 116 W) ==");
    let table: Vec<Vec<String>> = power_rows
        .iter()
        .map(|r| {
            vec![
                r.config.clone(),
                r.reuse.to_string(),
                f2(r.power_watts),
                if r.within_budget { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    print_table(&["config", "reuse", "power (W)", "within budget"], &table);
    println!("\nPaper check: 4P1B ~390 W without reuse, inside budget from reuse 4;");
    println!("1P1B slightly over budget without reuse (why Attn-PIM is 1P2B).");
}
