//! CI perf-regression gate over `papi-perf-bench/1` JSON reports.
//!
//! Compares a current [`perf_bench`](../perf_bench.rs) report against a
//! committed baseline (`BENCH_baseline.json` at the repo root) and
//! exits non-zero if the simulator got slower or drifted:
//!
//! - **throughput**: a scenario whose `tokens_per_sec` fell more than
//!   the tolerance (default 15 %) below baseline fails the gate; with
//!   `--normalize`, ratios are first divided by the median ratio across
//!   scenarios, so a uniformly slower/faster *machine* cancels out and
//!   only relative regressions gate (CI runs this mode, because the
//!   committed baseline was produced on a different host);
//! - **determinism**: `tokens` / `iterations` are simulation *outputs*
//!   and machine-independent — any mismatch fails (an intentional model
//!   change should refresh the baseline, see README);
//! - **cache hit rate**: for scenarios whose baseline exercises the
//!   prefix cache (`cache_hit_rate > 0`, including the fleet-wide rate
//!   of the `prefix_affinity_routing` scenario), a current hit rate
//!   more than the hit-rate tolerance (default 15 %) below baseline
//!   fails — a quietly colder cache is a performance regression even
//!   when wall time looks fine. Tighten or loosen with
//!   `--hit-rate-tolerance <fraction>`;
//! - **serving latency**: for scenarios whose baseline reports a
//!   simulated tail latency (`ttft_p99_ms > 0`, e.g. the
//!   `disaggregated_long_context` fleet), a current p99 TTFT more than
//!   the latency tolerance (default 15 %) *above* baseline fails —
//!   simulated latency is deterministic and machine-independent, so
//!   growth is a modeled-performance regression, not noise. Tune with
//!   `--latency-tolerance <fraction>`;
//! - **tier fetch time**: for scenarios whose baseline reports time
//!   re-materializing KV from capacity tiers (`tier_fetch_time_s > 0`,
//!   e.g. `long_context_offload` and `fleet_prefix_sharing`), growth
//!   beyond the latency tolerance fails — fetch seconds are simulated
//!   and deterministic, so growth is modeled regression;
//! - **SLO goodput**: for scenarios whose baseline reports a goodput
//!   (`goodput_rps > 0`, e.g. `long_context_offload`), a current
//!   goodput more than the goodput tolerance (default 15 %) *below*
//!   baseline fails — the tiered-KV scenario exists to hold that
//!   number up. Tune with `--goodput-tolerance <fraction>`;
//! - **provisioning cost**: for scenarios whose baseline reports
//!   elastic-fleet cost (`replica_hours > 0` /
//!   `energy_per_good_token_j > 0`, e.g. `autoscale_diurnal`), growth
//!   beyond the cost tolerance (default 15 %) fails — replica-hours
//!   and energy per SLO-good token are the numbers autoscaling exists
//!   to minimize, and both are deterministic simulation outputs. Tune
//!   with `--cost-tolerance <fraction>`;
//! - **coverage**: a baseline scenario missing from the current report
//!   fails; new scenarios are reported but pass.
//!
//! ```sh
//! cargo run --release -p papi-bench --bin perf_bench > perf_bench.json
//! cargo run --release -p papi-bench --bin bench_compare -- \
//!     [--normalize] [--hit-rate-tolerance 0.05] [--latency-tolerance 0.05] \
//!     [--cost-tolerance 0.05] BENCH_baseline.json perf_bench.json [tolerance]
//! ```

use serde::Deserialize;
use std::process::ExitCode;

#[derive(Debug, Deserialize)]
struct ScenarioResult {
    scenario: String,
    wall_ms: f64,
    tokens: u64,
    tokens_per_sec: f64,
    iterations: u64,
    cache_hit_rate: f64,
    /// `None` (pre-disaggregation reports) or zero both mean "not a
    /// latency-gated scenario".
    ttft_p99_ms: Option<f64>,
    /// `None` (pre-tiered-KV reports) or zero both mean "not a
    /// goodput-gated scenario".
    goodput_rps: Option<f64>,
    /// Simulated seconds re-materializing KV from capacity tiers
    /// (local DIMM + remote fabric); `None` (pre-shared-tier reports)
    /// or zero both mean "not a tier-gated scenario".
    tier_fetch_time_s: Option<f64>,
    /// Replica-hours an elastic fleet rented; `None` (pre-autoscaling
    /// reports) or zero both mean "not a cost-gated scenario".
    replica_hours: Option<f64>,
    /// Fleet energy per SLO-good output token, J; `None` or zero both
    /// mean "not a cost-gated scenario".
    energy_per_good_token_j: Option<f64>,
    /// Parallel-over-sequential wall-clock ratio for scenarios timing
    /// both cluster step modes; `None` elsewhere (and in old reports).
    speedup_vs_sequential: Option<f64>,
}

impl ScenarioResult {
    fn ttft_p99_ms(&self) -> f64 {
        self.ttft_p99_ms.unwrap_or(0.0)
    }

    fn goodput_rps(&self) -> f64 {
        self.goodput_rps.unwrap_or(0.0)
    }

    fn tier_fetch_time_s(&self) -> f64 {
        self.tier_fetch_time_s.unwrap_or(0.0)
    }

    fn replica_hours(&self) -> f64 {
        self.replica_hours.unwrap_or(0.0)
    }

    fn energy_per_good_token_j(&self) -> f64 {
        self.energy_per_good_token_j.unwrap_or(0.0)
    }
}

/// Hit rates are deterministic, but gate by default with the same 15 %
/// band as throughput so an intentional small model change doesn't
/// demand a baseline refresh twice over (`--hit-rate-tolerance`
/// overrides).
const DEFAULT_HIT_RATE_TOLERANCE: f64 = 0.15;

/// Same rationale for simulated tail latency (`--latency-tolerance`
/// overrides; it gates growth *above* baseline).
const DEFAULT_LATENCY_TOLERANCE: f64 = 0.15;

/// Same rationale for SLO goodput (`--goodput-tolerance` overrides; it
/// gates decay *below* baseline).
const DEFAULT_GOODPUT_TOLERANCE: f64 = 0.15;

/// Same rationale for elastic provisioning cost — replica-hours rented
/// and energy per SLO-good token (`--cost-tolerance` overrides; it
/// gates growth *above* baseline).
const DEFAULT_COST_TOLERANCE: f64 = 0.15;

#[derive(Debug, Deserialize)]
struct PerfReport {
    schema: String,
    scenarios: Vec<ScenarioResult>,
}

fn load(path: &str) -> PerfReport {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read perf report {path}: {e}"));
    let report: PerfReport = serde_json::from_str(text.trim())
        .unwrap_or_else(|e| panic!("cannot parse perf report {path}: {e:?}"));
    assert_eq!(
        report.schema, "papi-perf-bench/1",
        "{path}: unsupported schema {}",
        report.schema
    );
    report
}

/// Parses `<flag> <fraction>` out of `args` (removing both tokens),
/// returning `default` when the flag is absent, or an exit code (with
/// the error already printed) when the value is missing or outside
/// `[0, 1)`.
fn parse_fraction_flag(args: &mut Vec<String>, flag: &str, default: f64) -> Result<f64, ExitCode> {
    let Some(pos) = args.iter().position(|a| a == flag) else {
        return Ok(default);
    };
    args.remove(pos);
    if pos >= args.len() {
        eprintln!("{flag} needs a value");
        return Err(ExitCode::from(2));
    }
    let value = args.remove(pos);
    match value.parse::<f64>() {
        Ok(parsed) if (0.0..1.0).contains(&parsed) => Ok(parsed),
        _ => {
            eprintln!("{flag} must be a number in [0, 1), got {value:?}");
            Err(ExitCode::from(2))
        }
    }
}

/// Median of a non-empty slice (averaging the middle pair).
fn median(values: &mut [f64]) -> f64 {
    values.sort_by(f64::total_cmp);
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // --normalize: divide every scenario's throughput ratio by the
    // median ratio across scenarios before gating. The median captures
    // the machine-speed difference between the baseline host and this
    // one, so the gate fires on *relative* regressions (one scenario
    // got slower than the rest) instead of on hardware. Use it whenever
    // the baseline was produced on a different machine — CI does.
    let normalize = if let Some(pos) = args.iter().position(|a| a == "--normalize") {
        args.remove(pos);
        true
    } else {
        false
    };
    // --hit-rate-tolerance <fraction>: how far a prefix-cache hit rate
    // may fall below baseline before gating. --latency-tolerance
    // <fraction>: how far a scenario's simulated p99 TTFT may rise
    // above baseline. Both gate deterministic simulation outputs, so
    // routing/caching/disaggregation PRs can tighten either to 0 for
    // exact-match gating without touching the wall-clock tolerance.
    let hit_rate_tolerance = match parse_fraction_flag(
        &mut args,
        "--hit-rate-tolerance",
        DEFAULT_HIT_RATE_TOLERANCE,
    ) {
        Ok(tolerance) => tolerance,
        Err(code) => return code,
    };
    let latency_tolerance =
        match parse_fraction_flag(&mut args, "--latency-tolerance", DEFAULT_LATENCY_TOLERANCE) {
            Ok(tolerance) => tolerance,
            Err(code) => return code,
        };
    let goodput_tolerance =
        match parse_fraction_flag(&mut args, "--goodput-tolerance", DEFAULT_GOODPUT_TOLERANCE) {
            Ok(tolerance) => tolerance,
            Err(code) => return code,
        };
    let cost_tolerance =
        match parse_fraction_flag(&mut args, "--cost-tolerance", DEFAULT_COST_TOLERANCE) {
            Ok(tolerance) => tolerance,
            Err(code) => return code,
        };
    let (Some(baseline_path), Some(current_path)) = (args.first(), args.get(1)) else {
        eprintln!(
            "usage: bench_compare [--normalize] [--hit-rate-tolerance <f>] \
             [--latency-tolerance <f>] [--goodput-tolerance <f>] \
             [--cost-tolerance <f>] <baseline.json> <current.json> [tolerance]"
        );
        return ExitCode::from(2);
    };
    let tolerance: f64 = args
        .get(2)
        .map(|t| t.parse().expect("tolerance must be a number"))
        .unwrap_or(0.15);
    assert!(
        (0.0..1.0).contains(&tolerance),
        "tolerance must be in [0, 1), got {tolerance}"
    );

    let baseline = load(baseline_path);
    let current = load(current_path);
    let mut failures = Vec::new();

    let ratio_of = |base: &ScenarioResult, cur: &ScenarioResult| {
        cur.tokens_per_sec / base.tokens_per_sec.max(f64::MIN_POSITIVE)
    };
    let machine_factor = if normalize {
        let mut ratios: Vec<f64> = baseline
            .scenarios
            .iter()
            .filter_map(|base| {
                current
                    .scenarios
                    .iter()
                    .find(|c| c.scenario == base.scenario)
                    .map(|cur| ratio_of(base, cur))
            })
            .collect();
        if ratios.is_empty() {
            1.0
        } else {
            median(&mut ratios).max(f64::MIN_POSITIVE)
        }
    } else {
        1.0
    };
    if normalize {
        println!("machine-speed factor (median throughput ratio): {machine_factor:.3}");
    }

    println!(
        "{:<32} {:>12} {:>12} {:>8}  verdict",
        "scenario", "base tok/s", "cur tok/s", "ratio"
    );
    for base in &baseline.scenarios {
        let Some(cur) = current
            .scenarios
            .iter()
            .find(|c| c.scenario == base.scenario)
        else {
            failures.push(format!(
                "{}: present in baseline but missing from the current report",
                base.scenario
            ));
            continue;
        };
        if (cur.tokens, cur.iterations) != (base.tokens, base.iterations) {
            failures.push(format!(
                "{}: deterministic outputs drifted (tokens {} -> {}, iterations {} -> {}); \
                 if the model change is intentional, refresh BENCH_baseline.json",
                base.scenario, base.tokens, cur.tokens, base.iterations, cur.iterations
            ));
        }
        if base.cache_hit_rate > 0.0
            && cur.cache_hit_rate < base.cache_hit_rate * (1.0 - hit_rate_tolerance)
        {
            failures.push(format!(
                "{}: prefix-cache hit rate regressed {:.1}% (baseline {:.3}, current {:.3}); \
                 gate allows {:.0}%",
                base.scenario,
                (1.0 - cur.cache_hit_rate / base.cache_hit_rate) * 100.0,
                base.cache_hit_rate,
                cur.cache_hit_rate,
                hit_rate_tolerance * 100.0
            ));
        }
        // Scenarios that time both cluster step modes must keep the
        // parallel path ahead of the sequential reference. The ratio is
        // same-process and same-machine, so it needs no normalization —
        // but it is noisy on loaded runners, so the gate only fires
        // when the advantage is *gone*, not merely reduced.
        if base.speedup_vs_sequential.unwrap_or(0.0) > 1.0 {
            match cur.speedup_vs_sequential {
                Some(speedup) if speedup < 1.0 => failures.push(format!(
                    "{}: parallel stepping lost its advantage (speedup {:.2}x, baseline {:.2}x)",
                    base.scenario,
                    speedup,
                    base.speedup_vs_sequential.unwrap_or(0.0)
                )),
                Some(speedup) => println!(
                    "{:<32} parallel speedup {speedup:.2}x (baseline {:.2}x)",
                    base.scenario,
                    base.speedup_vs_sequential.unwrap_or(0.0)
                ),
                None => failures.push(format!(
                    "{}: baseline gates parallel speedup but the current report omits it",
                    base.scenario
                )),
            }
        }
        if base.goodput_rps() > 0.0
            && cur.goodput_rps() < base.goodput_rps() * (1.0 - goodput_tolerance)
        {
            failures.push(format!(
                "{}: SLO goodput regressed {:.1}% (baseline {:.4} req/s, current {:.4} req/s); \
                 gate allows {:.0}%",
                base.scenario,
                (1.0 - cur.goodput_rps() / base.goodput_rps()) * 100.0,
                base.goodput_rps(),
                cur.goodput_rps(),
                goodput_tolerance * 100.0
            ));
        }
        // Tier fetch time is deterministic like simulated latency and
        // gates the same direction: growth means the scenario is
        // spending more simulated time re-materializing KV than the
        // baseline did.
        if base.tier_fetch_time_s() > 0.0
            && cur.tier_fetch_time_s() > base.tier_fetch_time_s() * (1.0 + latency_tolerance)
        {
            failures.push(format!(
                "{}: tier fetch time regressed {:.1}% (baseline {:.2} s, current {:.2} s); \
                 gate allows {:.0}%",
                base.scenario,
                (cur.tier_fetch_time_s() / base.tier_fetch_time_s() - 1.0) * 100.0,
                base.tier_fetch_time_s(),
                cur.tier_fetch_time_s(),
                latency_tolerance * 100.0
            ));
        }
        // Elastic provisioning cost gates growth: an autoscaler that
        // starts renting more replica-hours — or burning more joules
        // per SLO-good token — than the committed baseline has
        // regressed on the numbers the subsystem exists to minimize,
        // even when throughput and goodput hold.
        if base.replica_hours() > 0.0
            && cur.replica_hours() > base.replica_hours() * (1.0 + cost_tolerance)
        {
            failures.push(format!(
                "{}: replica-hours rented grew {:.1}% (baseline {:.4} h, current {:.4} h); \
                 gate allows {:.0}%",
                base.scenario,
                (cur.replica_hours() / base.replica_hours() - 1.0) * 100.0,
                base.replica_hours(),
                cur.replica_hours(),
                cost_tolerance * 100.0
            ));
        }
        if base.energy_per_good_token_j() > 0.0
            && cur.energy_per_good_token_j()
                > base.energy_per_good_token_j() * (1.0 + cost_tolerance)
        {
            failures.push(format!(
                "{}: energy per SLO-good token grew {:.1}% (baseline {:.3} J, current {:.3} J); \
                 gate allows {:.0}%",
                base.scenario,
                (cur.energy_per_good_token_j() / base.energy_per_good_token_j() - 1.0) * 100.0,
                base.energy_per_good_token_j(),
                cur.energy_per_good_token_j(),
                cost_tolerance * 100.0
            ));
        }
        if base.ttft_p99_ms() > 0.0
            && cur.ttft_p99_ms() > base.ttft_p99_ms() * (1.0 + latency_tolerance)
        {
            failures.push(format!(
                "{}: simulated p99 TTFT regressed {:.1}% (baseline {:.0} ms, current {:.0} ms); \
                 gate allows {:.0}%",
                base.scenario,
                (cur.ttft_p99_ms() / base.ttft_p99_ms() - 1.0) * 100.0,
                base.ttft_p99_ms(),
                cur.ttft_p99_ms(),
                latency_tolerance * 100.0
            ));
        }
        let ratio = ratio_of(base, cur) / machine_factor;
        let regressed = ratio < 1.0 - tolerance;
        println!(
            "{:<32} {:>12.0} {:>12.0} {:>8.3}  {}",
            base.scenario,
            base.tokens_per_sec,
            cur.tokens_per_sec,
            ratio,
            if regressed { "REGRESSED" } else { "ok" }
        );
        if regressed {
            failures.push(format!(
                "{}: tokens_per_sec fell {:.1}% (baseline {:.0}, current {:.0}, wall {:.2} ms{}); \
                 gate allows {:.0}%",
                base.scenario,
                (1.0 - ratio) * 100.0,
                base.tokens_per_sec,
                cur.tokens_per_sec,
                cur.wall_ms,
                if normalize {
                    format!(", machine factor {machine_factor:.3}")
                } else {
                    String::new()
                },
                tolerance * 100.0
            ));
        }
    }
    for cur in &current.scenarios {
        if !baseline
            .scenarios
            .iter()
            .any(|b| b.scenario == cur.scenario)
        {
            println!(
                "{:<32} {:>12} {:>12.0} {:>8}  new (not gated)",
                cur.scenario, "-", cur.tokens_per_sec, "-"
            );
        }
    }

    if failures.is_empty() {
        println!(
            "\nperf gate passed: {} scenarios within {:.0}% of baseline",
            baseline.scenarios.len(),
            tolerance * 100.0
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("\nperf gate FAILED:");
        for failure in &failures {
            eprintln!("  - {failure}");
        }
        ExitCode::FAILURE
    }
}
