//! Fig. 11: PIM-only PAPI (FC-PIM + Attn-PIM) vs AttAcc-only in the
//! decoding phase — the hybrid-PIM ablation.

use papi_bench::{f2, print_table};
use papi_core::experiments::fig11_pim_only;
use papi_types::geometric_mean;

fn main() {
    let rows = fig11_pim_only(42);
    println!("== Fig. 11 — PIM-only PAPI speedup over AttAcc-only ==");
    let table: Vec<Vec<String>> = rows
        .iter()
        .filter(|r| r.design == "PIM-only PAPI")
        .map(|r| {
            vec![
                r.speculation.to_string(),
                r.batch.to_string(),
                f2(r.speedup),
            ]
        })
        .collect();
    print_table(&["spec", "batch", "speedup over AttAcc-only"], &table);
    let speedups: Vec<f64> = rows
        .iter()
        .filter(|r| r.design == "PIM-only PAPI")
        .map(|r| r.speedup)
        .collect();
    println!(
        "\nGeometric mean: {:.2}× (paper: 2.3×; 1.6× at batch 4/spec 1 rising to 2.7× at batch 64/spec 4)",
        geometric_mean(&speedups).unwrap()
    );
}
