//! Fig. 3: decoding iterations per request in a static batch, and the
//! remaining-RLP curve over decoding iterations.

use papi_bench::print_table;
use papi_core::experiments::fig3_rlp_decay;

fn main() {
    let batch = 32;
    let (lifetimes, rlp) = fig3_rlp_decay(batch, 42);
    println!("== Fig. 3 — per-request decoding iterations (batch {batch}) ==");
    let mut sorted = lifetimes.clone();
    sorted.sort_by_key(|l| l.iterations);
    let rows: Vec<Vec<String>> = sorted
        .iter()
        .map(|l| vec![l.request.to_string(), l.iterations.to_string()])
        .collect();
    print_table(&["request", "iterations to <eos>"], &rows);

    println!("\n== Remaining RLP over decoding iterations ==");
    let sample_points: Vec<usize> = (0..rlp.len()).step_by((rlp.len() / 20).max(1)).collect();
    let rows: Vec<Vec<String>> = sample_points
        .iter()
        .map(|&i| vec![i.to_string(), rlp[i].to_string()])
        .collect();
    print_table(&["iteration", "remaining RLP"], &rows);
    println!(
        "\nRLP decays {} → {} over {} iterations (the dynamic the PAPI scheduler exploits).",
        rlp.first().unwrap(),
        rlp.last().unwrap(),
        rlp.len()
    );
}
