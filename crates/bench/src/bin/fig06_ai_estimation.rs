//! Fig. 6: measured vs estimated (RLP × TLP) arithmetic intensity of
//! GPT-3 66B FC kernels.

use papi_bench::{f2, print_table};
use papi_core::experiments::fig6_ai_estimation;

fn main() {
    let rows = fig6_ai_estimation();
    println!("== Fig. 6 — FC arithmetic intensity: measured vs RLP×TLP estimate ==");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let rel = (r.estimated - r.measured) / r.measured * 100.0;
            vec![
                r.tlp.to_string(),
                r.rlp.to_string(),
                f2(r.measured),
                f2(r.estimated),
                format!("{rel:+.1}%"),
            ]
        })
        .collect();
    print_table(
        &["TLP", "RLP", "measured (FLOP/B)", "estimated", "error"],
        &table,
    );
    println!("\nPaper check: the estimate tracks closely except at RLP=128,");
    println!("where the overshoot is harmless (both sides are compute-bound).");
}
