//! Fig. 4: FC kernel latency of A100 GPUs vs HBM-PIM vs AttAcc at
//! varying batch sizes and speculation lengths, normalized to the A100.

use papi_bench::{f2, f3, print_table};
use papi_core::experiments::fig4_fc_latency;

fn main() {
    let rows = fig4_fc_latency();
    println!("== Fig. 4 — FC kernel latency (GPT-3 66B class), normalized to A100 ==");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.speculation.to_string(),
                r.batch.to_string(),
                r.platform.to_string(),
                f3(r.latency_ms),
                f2(r.normalized_to_a100),
            ]
        })
        .collect();
    print_table(
        &["spec", "batch", "platform", "latency (ms)", "vs A100"],
        &table,
    );
    println!("\nPaper check: PIM wins at low parallelism (batch 1–4),");
    println!("the A100 wins decisively from batch 16 up — static mapping");
    println!("cannot be right on both sides, motivating dynamic scheduling.");
}
