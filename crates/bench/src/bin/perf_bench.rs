//! Machine-readable simulator-performance harness.
//!
//! Times the simulator itself (not the modeled hardware) over a fixed
//! trajectory of scenarios covering both execution paths — closed-batch
//! trace pricing and the online serving engine — and emits one JSON
//! document on stdout for CI trend tracking:
//!
//! ```json
//! {"schema":"papi-perf-bench/1","scenarios":[
//!   {"scenario":"trace_llama65b_b64_s2","wall_ms":12.3,
//!    "tokens":9000,"tokens_per_sec":730000.0,"iterations":220}]}
//! ```
//!
//! `tokens_per_sec` is simulated output tokens per wall-clock second of
//! simulation — the harness's throughput figure of merit. Run with
//! `cargo run --release -p papi-bench --bin perf_bench`.

use papi_core::{DecodingSimulator, DesignKind, ServingEngine, SystemConfig};
use papi_llm::ModelPreset;
use papi_workload::{DatasetKind, ServingWorkload, WorkloadSpec};
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct ScenarioResult {
    scenario: String,
    wall_ms: f64,
    tokens: u64,
    tokens_per_sec: f64,
    iterations: u64,
}

#[derive(Debug, Serialize)]
struct PerfReport {
    schema: String,
    scenarios: Vec<ScenarioResult>,
}

fn time_scenario(name: &str, run: impl Fn() -> (u64, u64)) -> ScenarioResult {
    // One warmup, then best-of-5 timed runs: the minimum is the least
    // noisy estimator of the code's cost, which keeps the CI
    // regression gate (`bench_compare`) off scheduler jitter.
    let _ = run();
    let mut best = f64::INFINITY;
    let mut outputs = (0, 0);
    for _ in 0..5 {
        let start = Instant::now();
        outputs = run();
        best = best.min(start.elapsed().as_secs_f64());
    }
    let (tokens, iterations) = outputs;
    ScenarioResult {
        scenario: name.to_owned(),
        wall_ms: best * 1e3,
        tokens,
        tokens_per_sec: tokens as f64 / best.max(1e-12),
        iterations,
    }
}

fn main() {
    let model = ModelPreset::Llama65B;
    let mut scenarios = Vec::new();

    // Closed-batch trace pricing, low and high parallelism.
    for (batch, speculation) in [(4u64, 1u64), (64, 2)] {
        let name = format!("trace_llama65b_b{batch}_s{speculation}");
        scenarios.push(time_scenario(&name, || {
            let workload =
                WorkloadSpec::static_batching(DatasetKind::CreativeWriting, batch, speculation)
                    .with_seed(42);
            let report = DecodingSimulator::new(SystemConfig::papi(model.config())).run(&workload);
            (report.tokens, report.iterations)
        }));
    }

    // The §5.2.1 offline α calibration (runs the FC latency models).
    scenarios.push(time_scenario("alpha_calibration_llama65b", || {
        let calibration = SystemConfig::calibrate(&model.config());
        (calibration.alpha as u64, 1)
    }));

    // Online serving: moderate and saturating Poisson load.
    for rate in [2.0f64, 16.0] {
        let name = format!("serving_llama65b_poisson_r{rate:.0}");
        scenarios.push(time_scenario(&name, || {
            let workload = ServingWorkload::poisson(DatasetKind::GeneralQa, rate, 96).with_seed(42);
            let report = ServingEngine::new(SystemConfig::build(DesignKind::Papi, model.config()))
                .with_max_batch(32)
                .run(&workload);
            (report.tokens, report.iterations)
        }));
    }

    let report = PerfReport {
        schema: "papi-perf-bench/1".to_owned(),
        scenarios,
    };
    println!(
        "{}",
        serde_json::to_string(&report).expect("perf report serializes")
    );
}
